"""Equivalence tests for the vectorized/batched crypto fast paths.

Every fast path must be bit-identical to the straightforward scalar
evaluation: the sizes straddle the block and dispatch boundaries
(0, 1, 63, 64, 65, 255, 256, 257 bytes and the vectorization threshold).
"""

import struct

import pytest

from repro.crypto.chacha20 import (
    chacha20_block,
    chacha20_combined_keystream,
    chacha20_keystream,
    chacha20_xor,
    chacha20_xor_layers,
    xor_bytes,
)
from repro.crypto.poly1305 import Poly1305, poly1305_mac
from repro.errors import CryptoError
from repro.perfbench.legacy import legacy_onion_round_trip, legacy_poly1305_mac

KEY = bytes(range(32))
KEY2 = bytes(range(100, 132))
KEY3 = bytes(range(200, 232))
NONCE = bytes(range(12))

#: Straddles block boundaries and the scalar->vectorized dispatch point
#: in chacha20_xor (4 * 64 = 256 bytes) and the Poly1305 batch threshold.
BOUNDARY_SIZES = [0, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1024]


def _pattern(length: int) -> bytes:
    return bytes((i * 31 + 7) & 0xFF for i in range(length))


def _scalar_keystream(key: bytes, nonce: bytes, length: int, counter: int = 0) -> bytes:
    n_blocks = (length + 63) // 64
    stream = b"".join(chacha20_block(key, counter + i, nonce) for i in range(n_blocks))
    return stream[:length]


class TestChaCha20Vectorized:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_xor_matches_scalar_blocks(self, size):
        data = _pattern(size)
        expected = xor_bytes(data, _scalar_keystream(KEY, NONCE, size))
        assert chacha20_xor(KEY, NONCE, data) == expected

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_keystream_matches_scalar_blocks(self, size):
        assert chacha20_keystream(KEY, NONCE, size) == _scalar_keystream(
            KEY, NONCE, size
        )

    def test_keystream_honours_counter(self):
        offset = chacha20_keystream(KEY, NONCE, 640, counter=3)
        assert offset == _scalar_keystream(KEY, NONCE, 640, counter=3)

    def test_keystream_negative_length_rejected(self):
        with pytest.raises(CryptoError):
            chacha20_keystream(KEY, NONCE, -1)

    def test_keystream_zero_length_still_validates(self):
        with pytest.raises(CryptoError):
            chacha20_keystream(b"short", NONCE, 0)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_combined_keystream_is_xor_of_streams(self, size):
        keys = [KEY, KEY2, KEY3]
        expected = _scalar_keystream(keys[0], NONCE, size)
        for key in keys[1:]:
            expected = xor_bytes(expected, _scalar_keystream(key, NONCE, size))
        assert chacha20_combined_keystream(keys, NONCE, size) == expected

    def test_combined_keystream_single_key(self):
        assert chacha20_combined_keystream([KEY], NONCE, 300) == chacha20_keystream(
            KEY, NONCE, 300
        )

    def test_combined_keystream_needs_a_key(self):
        with pytest.raises(CryptoError):
            chacha20_combined_keystream([], NONCE, 16)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_xor_layers_equals_sequential_layering(self, size):
        keys = [KEY, KEY2, KEY3]
        data = _pattern(size)
        expected = data
        for key in keys:
            expected = chacha20_xor(key, NONCE, expected)
        assert chacha20_xor_layers(keys, NONCE, data) == expected

    def test_xor_layers_round_trips(self):
        keys = [KEY, KEY2, KEY3]
        data = _pattern(700)
        wrapped = chacha20_xor_layers(keys, NONCE, data)
        assert wrapped != data
        assert chacha20_xor_layers(list(reversed(keys)), NONCE, wrapped) == data

    def test_legacy_onion_round_trip_is_identity(self):
        forward = [KEY, KEY2, KEY3]
        backward = [KEY3, KEY, KEY2]
        data = _pattern(512)
        assert legacy_onion_round_trip(forward, backward, NONCE, data) == data

    def test_xor_bytes_length_mismatch_rejected(self):
        with pytest.raises(CryptoError):
            xor_bytes(b"abc", b"ab")

    def test_xor_bytes_is_involutive(self):
        data, stream = _pattern(129), _scalar_keystream(KEY, NONCE, 129)
        assert xor_bytes(xor_bytes(data, stream), stream) == data


class TestPoly1305Batched:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES + [2048, 4096, 10_000])
    def test_matches_seed_per_block_loop(self, size):
        message = _pattern(size)
        assert poly1305_mac(KEY, message) == legacy_poly1305_mac(KEY, message)

    @pytest.mark.parametrize("chunks", [
        [0, 1, 15, 16, 17, 100],
        [512, 512, 512],
        [1, 1, 1, 1],
        [700, 3],
    ])
    def test_streaming_chunking_is_irrelevant(self, chunks):
        pieces = [_pattern(size) for size in chunks]
        message = b"".join(pieces)
        mac = Poly1305(KEY)
        for piece in pieces:
            mac.update(piece)
        assert mac.tag() == poly1305_mac(KEY, message)

    def test_rfc8439_vector(self):
        # RFC 8439 section 2.5.2
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a8"
            "0103808afb0db2fd4abff6af4149f51b"
        )
        message = b"Cryptographic Forum Research Group"
        expected = bytes.fromhex("a8061dc1305136c6c22b8baf0c0127a9")
        assert poly1305_mac(key, message) == expected

    def test_rfc8439_aead_tag_vector(self):
        # RFC 8439 section 2.8.2: the full AEAD construction end to end.
        from repro.crypto.aead import ChaCha20Poly1305

        key = bytes(range(0x80, 0xA0))
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        sealed = ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)
        assert sealed[-16:] == bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")
        assert ChaCha20Poly1305(key).decrypt(nonce, sealed, aad) == plaintext

    def test_tag_is_one_shot(self):
        mac = Poly1305(KEY)
        mac.update(b"data")
        mac.tag()
        with pytest.raises(CryptoError):
            mac.tag()
        with pytest.raises(CryptoError):
            mac.update(b"more")

    def test_key_length_enforced(self):
        with pytest.raises(CryptoError) as excinfo:
            Poly1305(b"short")
        assert "Poly1305 key must be 32 bytes, got 5" in str(excinfo.value)

    def test_batch_threshold_boundary_sizes(self):
        # Exactly around _BATCH_THRESHOLD_BYTES and _BATCH_BLOCKS * 16.
        for size in [496, 511, 512, 513, 528, 1023, 1040]:
            message = _pattern(size)
            assert poly1305_mac(KEY, message) == legacy_poly1305_mac(KEY, message)


class TestAeadFraming:
    def test_streamed_tag_matches_concat_framing(self):
        """The streamed MAC must equal MAC(pad16(aad)||pad16(ct)||lens)."""
        from repro.crypto.aead import ChaCha20Poly1305

        key = bytes(range(32, 64))
        nonce = bytes(range(12))
        for aad_len, pt_len in [(0, 0), (1, 1), (12, 100), (16, 256), (7, 1000)]:
            aad, plaintext = _pattern(aad_len), _pattern(pt_len)
            aead = ChaCha20Poly1305(key)
            sealed = aead.encrypt(nonce, plaintext, aad)
            ciphertext = sealed[:-16]

            def pad16(data):
                return data + b"\x00" * ((16 - len(data) % 16) % 16)

            otk = chacha20_block(key, 0, nonce)[:32]
            mac_data = (
                pad16(aad)
                + pad16(ciphertext)
                + struct.pack("<QQ", len(aad), len(ciphertext))
            )
            assert sealed[-16:] == legacy_poly1305_mac(otk, mac_data)


class TestPoly1305LimbPath:
    """The radix-2^26 limb path and widened batch window stay exact."""

    @pytest.mark.parametrize(
        "size",
        # Straddle the limb-path dispatch (1024 B) and the 512-block
        # batch window (8192 B), plus a multi-batch tail.
        [1008, 1023, 1024, 1025, 1040, 8176, 8191, 8192, 8193, 8208, 20_000],
    )
    def test_limb_path_matches_seed_per_block_loop(self, size):
        message = _pattern(size)
        assert poly1305_mac(KEY, message) == legacy_poly1305_mac(KEY, message)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_keys_and_sizes_match_seed(self, seed):
        import random

        rng = random.Random(seed)
        for _ in range(20):
            key = bytes(rng.randrange(256) for _ in range(32))
            size = rng.randrange(0, 12_000)
            message = bytes(rng.randrange(256) for _ in range(size))
            assert poly1305_mac(key, message) == legacy_poly1305_mac(key, message)

    def test_streaming_across_the_limb_threshold(self):
        message = _pattern(5000)
        mac = Poly1305(KEY)
        mac.update(message[:700])     # scalar batch
        mac.update(message[700:703])  # tail carry
        mac.update(message[703:4000])  # limb path with carried tail
        mac.update(message[4000:])
        assert mac.tag() == legacy_poly1305_mac(KEY, message)

    def test_power_table_shared_across_instances(self):
        from repro.crypto.poly1305 import _POWER_CACHE

        _POWER_CACHE.clear()
        message = _pattern(4096)
        first = poly1305_mac(KEY, message)
        assert len(_POWER_CACHE) == 1
        assert poly1305_mac(KEY, message) == first
        assert len(_POWER_CACHE) == 1  # second MAC reused the same table


class TestMultiKeyKeystreams:
    def test_matches_per_key_keystream(self):
        from repro.crypto.chacha20 import chacha20_keystream, chacha20_keystreams

        keys = [KEY, KEY2, KEY3]
        for length in (0, 1, 64, 65, 300, 1024):
            batched = chacha20_keystreams(keys, NONCE, length, counter=5)
            singles = [
                chacha20_keystream(key, NONCE, length, counter=5) for key in keys
            ]
            assert batched == singles, length

    def test_empty_key_list(self):
        from repro.crypto.chacha20 import chacha20_keystreams

        assert chacha20_keystreams([], NONCE, 100) == []
