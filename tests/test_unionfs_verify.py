"""The Merkle-verified base layer (§3.4 tamper detection)."""

import pytest

from repro.unionfs import Layer, TamperDetected, UnionMount, VerifiedLayer
from repro.unionfs.layer import TmpfsLayer
from repro.unionfs.verify import commit_layer


def _base():
    return Layer(
        "base",
        files={"/etc/hosts": b"hosts", "/usr/bin/tor": b"tor-binary"},
        read_only=True,
    )


class TestVerifiedLayer:
    def test_untampered_reads_succeed(self):
        base = _base()
        verified = VerifiedLayer(base, commit_layer(base).root)
        assert verified.read("/etc/hosts") == b"hosts"
        assert verified.read("/usr/bin/tor") == b"tor-binary"

    def test_tampered_content_detected(self):
        base = _base()
        root = commit_layer(base).root
        # The USB stick was modified by another OS after the root shipped.
        tampered = Layer(
            "base",
            files={"/etc/hosts": b"EVIL", "/usr/bin/tor": b"tor-binary"},
            read_only=True,
        )
        verified = VerifiedLayer(tampered, root)
        with pytest.raises(TamperDetected):
            verified.read("/etc/hosts")

    def test_untampered_files_still_fail_against_wrong_root(self):
        base = _base()
        other = Layer("other", files={"/etc/hosts": b"different"}, read_only=True)
        verified = VerifiedLayer(base, commit_layer(other).root)
        with pytest.raises(TamperDetected):
            verified.read("/etc/hosts")

    def test_tamper_callback_fires_before_raise(self):
        base = _base()
        root = commit_layer(base).root
        tampered = Layer("base", files={"/etc/hosts": b"EVIL"}, read_only=True)
        halted = []
        verified = VerifiedLayer(tampered, root, on_tamper=halted.append)
        with pytest.raises(TamperDetected):
            verified.read("/etc/hosts")
        assert halted == ["/etc/hosts"]

    def test_verified_layer_in_union_mount(self):
        base = _base()
        verified = VerifiedLayer(base, commit_layer(base).root)
        mount = UnionMount([TmpfsLayer("t", 1024), verified])
        assert mount.read("/etc/hosts") == b"hosts"
        # Writes land in tmpfs and bypass verification (they're ours).
        mount.write("/etc/hosts", b"local")
        assert mount.read("/etc/hosts") == b"local"

    def test_is_read_only(self):
        base = _base()
        verified = VerifiedLayer(base, commit_layer(base).root)
        assert verified.read_only

    def test_delegates_metadata(self):
        base = _base()
        verified = VerifiedLayer(base, commit_layer(base).root)
        assert verified.file_count == base.file_count
        assert list(verified.paths()) == list(base.paths())
        assert verified.used_bytes == base.used_bytes

    def test_commit_root_stable(self):
        assert commit_layer(_base()).root == commit_layer(_base()).root
