"""SOCKS5 framing (RFC 1928)."""

import pytest
from hypothesis import given, strategies as st

from repro.anonymizers.socks import (
    ATYP_DOMAIN,
    AUTH_NONE,
    CMD_CONNECT,
    REPLY_SUCCESS,
    build_connect,
    build_greeting,
    build_method_selection,
    build_reply,
    parse_connect,
    parse_greeting,
    parse_reply,
)
from repro.errors import NetworkError
from repro.net.addresses import Ipv4Address


class TestGreeting:
    def test_roundtrip(self):
        assert parse_greeting(build_greeting()) == (AUTH_NONE,)

    def test_bad_version(self):
        with pytest.raises(NetworkError):
            parse_greeting(bytes([4, 1, 0]))

    def test_truncated(self):
        with pytest.raises(NetworkError):
            parse_greeting(bytes([5, 2, 0]))

    def test_method_selection(self):
        assert build_method_selection() == bytes([5, 0])


class TestConnect:
    def test_domain_roundtrip(self):
        request = parse_connect(build_connect("twitter.com", 443))
        assert request.command == CMD_CONNECT
        assert request.hostname == "twitter.com"
        assert request.port == 443

    def test_wire_format(self):
        wire = build_connect("ab.c", 80)
        assert wire[0] == 5
        assert wire[3] == ATYP_DOMAIN
        assert wire[4] == 4  # hostname length
        assert wire[-2:] == (80).to_bytes(2, "big")

    def test_ipv4_request_parse(self):
        wire = bytes([5, 1, 0, 1]) + bytes([10, 0, 2, 15]) + (9050).to_bytes(2, "big")
        request = parse_connect(wire)
        assert str(request.ip) == "10.0.2.15"
        assert request.port == 9050

    def test_too_long_hostname(self):
        with pytest.raises(NetworkError):
            build_connect("x" * 256, 80)

    def test_garbage_rejected(self):
        with pytest.raises(NetworkError):
            parse_connect(b"\x05\x01")

    def test_unsupported_atyp(self):
        with pytest.raises(NetworkError):
            parse_connect(bytes([5, 1, 0, 4]) + b"\x00" * 18)

    @given(
        st.from_regex(r"[a-z0-9.-]{1,60}", fullmatch=True),
        st.integers(min_value=0, max_value=65535),
    )
    def test_roundtrip_property(self, hostname, port):
        request = parse_connect(build_connect(hostname, port))
        assert request.hostname == hostname
        assert request.port == port


class TestReply:
    def test_roundtrip(self):
        wire = build_reply(REPLY_SUCCESS, Ipv4Address.parse("0.0.0.0"), 0)
        code, ip, port = parse_reply(wire)
        assert code == REPLY_SUCCESS
        assert str(ip) == "0.0.0.0"
        assert port == 0

    def test_garbage_rejected(self):
        with pytest.raises(NetworkError):
            parse_reply(b"\x05\x00")
