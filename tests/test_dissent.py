"""Dissent: DC-net protocol correctness and the anonymizer adapter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymizers.dissent import DcNetDeployment, DcNetRound, DissentClient
from repro.errors import AnonymizerError
from repro.net import Internet, MasqueradeNat, PacketCapture
from repro.net.addresses import Ipv4Address
from repro.sim import SeededRng, Timeline


@pytest.fixture
def timeline():
    return Timeline(seed=6)


@pytest.fixture
def deployment(timeline):
    return DcNetDeployment(timeline.fork_rng("dc"), num_clients=4, num_servers=2)


@pytest.fixture
def client(timeline, deployment):
    internet = Internet(timeline)
    from repro.guest.websites import populate_internet

    populate_internet(internet)
    nat = MasqueradeNat(
        timeline, "nat(d)", Ipv4Address.parse("203.0.113.77"), internet,
        host_capture=PacketCapture(timeline),
    )
    return DissentClient(
        timeline, internet, nat, timeline.fork_rng("dissent"),
        deployment=deployment, client_index=0,
    )


class TestDcNetProtocol:
    def test_round_recovers_message(self, deployment):
        round_obj = DcNetRound(round_id=1, slot_bytes=32, owner="client00", message=b"hi anon")
        output = deployment.run_round(round_obj)
        assert output[:7] == b"hi anon"
        assert output[7:] == b"\x00" * 25

    def test_empty_round_yields_zeros(self, deployment):
        round_obj = DcNetRound(round_id=2, slot_bytes=16, owner=None)
        assert deployment.run_round(round_obj) == b"\x00" * 16

    def test_individual_ciphertexts_hide_sender(self, deployment):
        """No single client ciphertext reveals whether it carries the message."""
        message = b"secret"
        with_msg = DcNetRound(round_id=3, slot_bytes=8, owner="client00", message=message)
        without = DcNetRound(round_id=3, slot_bytes=8, owner=None)
        # The non-owner's ciphertext is identical whether or not someone
        # else transmits; only the owner's differs, and it looks random.
        c1_with = with_msg.client_ciphertext(deployment, "client01")
        c1_without = without.client_ciphertext(deployment, "client01")
        assert c1_with == c1_without
        owner_ct = with_msg.client_ciphertext(deployment, "client00")
        assert message not in owner_ct

    def test_different_rounds_different_pads(self, deployment):
        a = DcNetRound(round_id=1, slot_bytes=16).client_ciphertext(deployment, "client00")
        b = DcNetRound(round_id=2, slot_bytes=16).client_ciphertext(deployment, "client00")
        assert a != b

    def test_pairwise_secrets_agree(self, deployment):
        # Construction already verifies both sides derive the same secret;
        # spot-check the table is fully populated.
        for client_party in deployment.clients:
            for server in deployment.servers:
                assert deployment.secret(client_party.name, server.name)

    def test_message_too_large_rejected(self):
        with pytest.raises(AnonymizerError):
            DcNetRound(round_id=1, slot_bytes=4, owner="c", message=b"too long")

    def test_minimum_population(self, timeline):
        with pytest.raises(AnonymizerError):
            DcNetDeployment(timeline.fork_rng("x"), num_clients=1)
        with pytest.raises(AnonymizerError):
            DcNetDeployment(timeline.fork_rng("y"), num_clients=2, num_servers=0)

    @given(st.binary(min_size=1, max_size=48), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_any_owner_any_message_property(self, message, owner_index):
        deployment = DcNetDeployment(SeededRng(9), num_clients=4, num_servers=2)
        owner = deployment.clients[owner_index].name
        round_obj = DcNetRound(
            round_id=7, slot_bytes=len(message), owner=owner, message=message
        )
        assert deployment.run_round(round_obj) == message


class TestDissentClient:
    def test_start(self, client):
        duration = client.start()
        assert duration > 0
        assert client.started

    def test_transmit_anonymously(self, client):
        client.start()
        assert client.transmit_anonymously(b"post to blog") == b"post to blog"

    def test_round_pacing_advances_time(self, client):
        client.start()
        before = client.timeline.now
        client.transmit_anonymously(b"x")
        assert client.timeline.now - before == pytest.approx(DissentClient.ROUND_SECONDS)

    def test_throughput_ceiling(self, client):
        plan = client.plan(1_000_000)
        expected = DissentClient.SLOT_BYTES * 8 / DissentClient.ROUND_SECONDS
        assert plan.per_flow_ceiling_bps == pytest.approx(expected)

    def test_exit_is_front_server(self, client):
        client.start()
        client.fetch("twitter.com", path="tok")
        server = client.internet.server_named("twitter.com")
        assert str(server.seen_client_ips[-1]) == "198.51.102.1"

    def test_slower_than_tor_for_bulk(self, client):
        """The §3.3 trade-off: Dissent trades throughput for anonymity."""
        plan = client.plan(0)
        assert plan.per_flow_ceiling_bps < 10_000_000
        assert plan.path_latency_s >= DissentClient.ROUND_SECONDS

    def test_bad_client_index(self, timeline, deployment, client):
        with pytest.raises(AnonymizerError):
            DissentClient(
                client.timeline, client.internet, client.nat,
                timeline.fork_rng("z"), deployment=deployment, client_index=99,
            )

    def test_oversized_slot_rejected(self, client):
        client.start()
        with pytest.raises(AnonymizerError):
            client.transmit_anonymously(b"x" * (DissentClient.SLOT_BYTES + 1))
