"""Tests for the processor-sharing completion-time model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import processor_sharing_times
from repro.sim.sharing import equal_share_rate


class TestProcessorSharing:
    def test_single_job_runs_at_capacity(self):
        assert processor_sharing_times([10.0], capacity=2.0) == [5.0]

    def test_single_job_respects_max_share(self):
        # One job, 4 units of capacity, but the job can use at most 1.
        assert processor_sharing_times([10.0], capacity=4.0, max_share=1.0) == [10.0]

    def test_equal_jobs_finish_together(self):
        times = processor_sharing_times([10.0, 10.0], capacity=1.0)
        assert times[0] == pytest.approx(times[1])
        assert times[0] == pytest.approx(20.0)

    def test_two_jobs_share_then_speed_up(self):
        # Jobs of 10 and 20 on capacity 2: both run at 1 until t=10 (short
        # job done), then the long job runs at 2 for its remaining 10.
        times = processor_sharing_times([10.0, 20.0], capacity=2.0)
        assert times[0] == pytest.approx(10.0)
        assert times[1] == pytest.approx(15.0)

    def test_max_share_prevents_speed_up(self):
        # Same as above but single-threaded jobs can't exceed rate 1.
        times = processor_sharing_times([10.0, 20.0], capacity=2.0, max_share=1.0)
        assert times[0] == pytest.approx(10.0)
        assert times[1] == pytest.approx(20.0)

    def test_results_in_input_order(self):
        times = processor_sharing_times([20.0, 10.0], capacity=2.0)
        assert times[0] > times[1]

    def test_empty_input(self):
        assert processor_sharing_times([], capacity=1.0) == []

    def test_zero_work_completes_immediately(self):
        times = processor_sharing_times([0.0, 10.0], capacity=1.0)
        assert times[0] == 0.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            processor_sharing_times([1.0], capacity=0.0)

    def test_rejects_negative_work(self):
        with pytest.raises(SimulationError):
            processor_sharing_times([-1.0], capacity=1.0)

    def test_rejects_bad_max_share(self):
        with pytest.raises(SimulationError):
            processor_sharing_times([1.0], capacity=1.0, max_share=0.0)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_total_work_conserved(self, work, capacity):
        """Makespan is at least total_work/capacity and at most sum of solos."""
        times = processor_sharing_times(work, capacity)
        makespan = max(times)
        assert makespan >= sum(work) / capacity * (1 - 1e-9)
        assert makespan <= sum(w / capacity for w in work) * (1 + 1e-9)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=10),
        st.floats(min_value=0.5, max_value=50.0),
    )
    def test_larger_jobs_never_finish_earlier(self, work, capacity):
        times = processor_sharing_times(work, capacity)
        pairs = sorted(zip(work, times))
        for (w1, t1), (w2, t2) in zip(pairs, pairs[1:]):
            if w1 < w2:
                assert t1 <= t2 + 1e-9


class TestEqualShareRate:
    def test_fair_split(self):
        assert equal_share_rate(10.0, 5) == 2.0

    def test_ceiling_applies(self):
        assert equal_share_rate(10.0, 2, max_share=3.0) == 3.0

    def test_rejects_zero_jobs(self):
        with pytest.raises(SimulationError):
            equal_share_rate(10.0, 0)
