"""Merkle tree construction, proofs, and tamper detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import MerkleTree
from repro.errors import CryptoError


def _blocks(n, size=32):
    return [bytes([i % 256]) * size for i in range(n)]


class TestMerkleTree:
    def test_single_block(self):
        tree = MerkleTree([b"only"])
        assert MerkleTree.verify(tree.root, b"only", tree.proof(0))

    def test_all_proofs_verify(self):
        blocks = _blocks(9)
        tree = MerkleTree(blocks)
        for index, block in enumerate(blocks):
            assert MerkleTree.verify(tree.root, block, tree.proof(index))

    def test_power_of_two_leaves(self):
        blocks = _blocks(8)
        tree = MerkleTree(blocks)
        for index, block in enumerate(blocks):
            assert MerkleTree.verify(tree.root, block, tree.proof(index))

    def test_tampered_block_fails(self):
        blocks = _blocks(5)
        tree = MerkleTree(blocks)
        assert not MerkleTree.verify(tree.root, b"tampered", tree.proof(2))

    def test_wrong_index_proof_fails(self):
        blocks = _blocks(5)
        tree = MerkleTree(blocks)
        assert not MerkleTree.verify(tree.root, blocks[1], tree.proof(2))

    def test_root_depends_on_content(self):
        assert MerkleTree(_blocks(4)).root != MerkleTree(_blocks(5)[1:]).root

    def test_root_depends_on_order(self):
        blocks = _blocks(4)
        assert MerkleTree(blocks).root != MerkleTree(list(reversed(blocks))).root

    def test_deterministic_root(self):
        assert MerkleTree(_blocks(7)).root == MerkleTree(_blocks(7)).root

    def test_rejects_empty(self):
        with pytest.raises(CryptoError):
            MerkleTree([])

    def test_rejects_out_of_range_proof(self):
        tree = MerkleTree(_blocks(3))
        with pytest.raises(CryptoError):
            tree.proof(3)

    def test_leaf_count(self):
        assert MerkleTree(_blocks(6)).leaf_count == 6

    def test_second_preimage_guard(self):
        """Leaf and node hashing are domain-separated: a node's children
        concatenation presented as a leaf must not verify."""
        blocks = _blocks(2)
        tree = MerkleTree(blocks)
        import hashlib

        fake_leaf = hashlib.sha256(b"\x00" + blocks[0]).digest() + hashlib.sha256(
            b"\x00" + blocks[1]
        ).digest()
        from repro.crypto.merkle import MerkleProof

        assert not MerkleTree.verify(tree.root, fake_leaf, MerkleProof(0, ()))

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=24))
    @settings(max_examples=40)
    def test_every_leaf_provable_property(self, blocks):
        tree = MerkleTree(blocks)
        for index, block in enumerate(blocks):
            assert MerkleTree.verify(tree.root, block, tree.proof(index))
