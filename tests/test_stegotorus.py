"""StegoTorus camouflage and the DPI censor model."""

import pytest

from repro.anonymizers.stegotorus import DpiCensor, StegoTorusWrapper
from repro.errors import AnonymizerError


@pytest.fixture
def stego_nym(manager):
    return manager.create_nym(name="stego", anonymizer="stegotorus")


class TestStegoTorusWrapper:
    def test_manager_constructs_wrapper(self, stego_nym):
        assert stego_nym.anonymizer.kind == "stegotorus(tor)"
        assert stego_nym.anonymizer.started
        assert stego_nym.anonymizer.inner.kind == "tor"

    def test_wraps_alternative_inner(self, manager):
        nymbox = manager.create_nym(name="stego-d", anonymizer="stegotorus:dissent")
        assert nymbox.anonymizer.inner.kind == "dissent"

    def test_identity_protection_inherited(self, stego_nym, manager):
        assert stego_nym.anonymizer.protects_network_identity
        manager.timed_browse(stego_nym, "twitter.com")
        server = manager.internet.server_named("twitter.com")
        assert server.seen_client_ips[-1] != manager.hypervisor.public_ip

    def test_cover_costs_compose(self, stego_nym):
        wrapper = stego_nym.anonymizer
        inner_plan = wrapper.inner.plan(0)
        plan = wrapper.plan(0)
        assert plan.overhead_factor == pytest.approx(
            inner_plan.overhead_factor * StegoTorusWrapper.COVER_OVERHEAD
        )
        assert plan.path_latency_s > inner_plan.path_latency_s

    def test_state_roundtrip_preserves_guards(self, manager, stego_nym):
        guards = stego_nym.anonymizer.inner.guard_manager.guards
        state = stego_nym.anonymizer.export_state()
        fresh = manager.create_nym(name="stego2", anonymizer="stegotorus")
        fresh.anonymizer.import_state(state)
        assert fresh.anonymizer.inner.guard_manager.guards == guards

    def test_state_kind_checked(self, manager, stego_nym):
        other = manager.create_nym(name="plain", anonymizer="tor")
        with pytest.raises(AnonymizerError):
            stego_nym.anonymizer.import_state(other.anonymizer.export_state())


class TestDpiCensor:
    def test_blocks_bare_tor(self, manager):
        censor = DpiCensor()
        tor_nym = manager.create_nym(name="bare-tor", anonymizer="tor")
        assert not censor.allows(tor_nym.anonymizer)
        assert censor.flows_blocked == 1

    def test_passes_stegotorus(self, manager):
        """The point of the camouflage: DPI sees plain HTTP."""
        censor = DpiCensor()
        stego = manager.create_nym(name="hidden", anonymizer="stegotorus")
        assert censor.classify(stego.anonymizer) == "http"
        assert censor.allows(stego.anonymizer)

    def test_passes_incognito_and_sweet(self, manager):
        censor = DpiCensor()
        assert censor.allows(manager.create_nym(name="i", anonymizer="incognito").anonymizer)
        assert censor.allows(manager.create_nym(name="s", anonymizer="sweet").anonymizer)

    def test_custom_block_list(self, manager):
        censor = DpiCensor(blocked_protocols=("http",))
        stego = manager.create_nym(name="hidden", anonymizer="stegotorus")
        assert not censor.allows(stego.anonymizer)
