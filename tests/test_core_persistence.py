"""Quasi-persistent nyms: snapshots, sealing, cloud round trips (§3.5)."""

import pytest

from repro.core import NymUsageModel
from repro.core.persistence import FsSnapshot
from repro.errors import PersistenceError


@pytest.fixture
def alice(manager):
    nymbox = manager.create_nym(name="alice")
    manager.timed_browse(nymbox, "twitter.com")
    nymbox.sign_in("twitter.com", "pseudo", "account-pw")
    return nymbox


@pytest.fixture
def dropbox_account(manager):
    return manager.create_cloud_account("dropbox.com", "anon991", "cloud-pw")


class TestFsSnapshot:
    def test_capture_includes_both_vms(self, alice):
        snapshot = FsSnapshot.capture(alice)
        assert snapshot.anon_files
        assert snapshot.raw_bytes > 0
        assert snapshot.anonymizer_state.kind == "tor"

    def test_anonvm_dominates_size(self, alice):
        """§5.3: the AnonVM accounts for ~85% of pseudonym size."""
        snapshot = FsSnapshot.capture(alice)
        assert snapshot.anonvm_fraction > 0.8

    def test_wire_roundtrip(self, alice):
        snapshot = FsSnapshot.capture(alice)
        parsed = FsSnapshot.from_bytes(snapshot.to_bytes())
        assert parsed.anon_files == snapshot.anon_files
        assert parsed.comm_files == snapshot.comm_files
        assert parsed.anonymizer_state.kind == snapshot.anonymizer_state.kind

    def test_garbage_rejected(self):
        with pytest.raises(PersistenceError):
            FsSnapshot.from_bytes(b"junk")


class TestPackUnpack:
    def test_roundtrip(self, manager, alice):
        snapshot = FsSnapshot.capture(alice)
        sealed, receipt = manager.store.pack(snapshot, "pw")
        restored = manager.store.unpack(sealed, "pw")
        assert restored.anon_files == snapshot.anon_files

    def test_wrong_password(self, manager, alice):
        sealed, _ = manager.store.pack(FsSnapshot.capture(alice), "pw")
        with pytest.raises(PersistenceError):
            manager.store.unpack(sealed, "wrong")

    def test_receipt_sizes_ordered(self, manager, alice):
        _, receipt = manager.store.pack(FsSnapshot.capture(alice), "pw")
        assert receipt.compressed_bytes <= receipt.raw_bytes + 1024
        assert receipt.encrypted_bytes == pytest.approx(receipt.compressed_bytes, rel=0.01)
        assert 0 < receipt.compression_ratio <= 1.05

    def test_pack_advances_time(self, manager, alice):
        before = manager.timeline.now
        manager.store.pack(FsSnapshot.capture(alice), "pw")
        assert manager.timeline.now > before


class TestCloudStore:
    def test_store_and_load_roundtrip(self, manager, alice, dropbox_account):
        history_before = list(alice.browser.history)
        receipt = manager.store_nym(
            alice, password="nym-pw", provider_host="dropbox.com", account_username="anon991"
        )
        assert receipt.encrypted_bytes > 0
        manager.discard_nym(alice)

        restored = manager.load_nym("alice", "nym-pw")
        assert restored.running
        assert restored.browser.history == history_before
        assert restored.browser.has_credentials_for("twitter.com")

    def test_restored_nym_keeps_tor_guards(self, manager, alice, dropbox_account):
        guards = list(alice.anonymizer.guard_manager.guards)
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        manager.discard_nym(alice)
        restored = manager.load_nym("alice", "pw")
        assert restored.anonymizer.guard_manager.guards == guards

    def test_restored_start_is_warm(self, manager, alice, dropbox_account):
        fresh_tor = alice.startup.start_anonymizer_s
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        manager.discard_nym(alice)
        restored = manager.load_nym("alice", "pw")
        assert restored.startup.start_anonymizer_s < fresh_tor

    def test_load_records_ephemeral_phase(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        manager.discard_nym(alice)
        restored = manager.load_nym("alice", "pw")
        assert restored.startup.ephemeral_nym_s > 10.0

    def test_loader_nym_is_destroyed(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        manager.discard_nym(alice)
        manager.load_nym("alice", "pw")
        assert "alice-loader" not in manager.live_nyms()

    def test_provider_never_sees_user_ip(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        manager.discard_nym(alice)
        manager.load_nym("alice", "pw")
        provider = manager.providers["dropbox.com"]
        for ip in provider.observed_ips_for("anon991"):
            assert ip != manager.hypervisor.public_ip
            assert not ip.is_private()

    def test_provider_stores_only_ciphertext(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        blob = dropbox_account.blobs["alice.nymbox"]
        # The browser history mentions hostnames; the blob must not.
        assert b"twitter.com" not in blob.data

    def test_cloud_needs_account(self, manager, alice):
        from repro.errors import NymError

        with pytest.raises(NymError):
            manager.store_nym(alice, password="pw", provider_host="dropbox.com")

    def test_load_unknown_nym(self, manager):
        with pytest.raises(PersistenceError):
            manager.load_nym("ghost", "pw")

    def test_load_while_running_rejected(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        with pytest.raises(Exception):
            manager.load_nym("alice", "pw")


class TestLocalStore:
    def test_local_roundtrip(self, manager, alice):
        manager.store_nym(alice, password="pw")  # no provider: local media
        manager.discard_nym(alice)
        restored = manager.load_nym("alice", "pw")
        assert restored.running
        assert restored.startup.ephemeral_nym_s < 10.0  # no download nym needed

    def test_local_leaves_record(self, manager, alice):
        manager.store_nym(alice, password="pw")
        record = manager.stored_nyms["alice"]
        assert record.provider_host is None


class TestUsageModels:
    def test_store_promotes_to_persistent(self, manager, alice, dropbox_account):
        assert alice.nym.usage_model is NymUsageModel.EPHEMERAL
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        assert alice.nym.usage_model is NymUsageModel.PERSISTENT

    def test_snapshot_marks_preconfigured(self, manager, alice, dropbox_account):
        manager.snapshot_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        assert alice.nym.usage_model is NymUsageModel.PRECONFIGURED

    def test_close_session_persistent_resaves(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        cycles_before = manager.stored_nyms["alice"].save_cycles
        receipt = manager.close_session(alice, password="pw")
        assert receipt is not None
        assert manager.stored_nyms["alice"].save_cycles == cycles_before + 1

    def test_close_session_persistent_needs_password(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        with pytest.raises(PersistenceError):
            manager.close_session(alice)

    def test_close_session_preconfigured_discards(self, manager, alice, dropbox_account):
        manager.snapshot_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        cycles_before = manager.stored_nyms["alice"].save_cycles
        receipt = manager.close_session(alice)
        assert receipt is None
        assert manager.stored_nyms["alice"].save_cycles == cycles_before

    def test_preconfigured_session_changes_scrubbed(self, manager, alice, dropbox_account):
        """§3.5: a stain acquired in one pre-configured session is gone at
        the next restore."""
        manager.snapshot_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        alice.anonvm.fs.write("/home/user/.cache/stain", b"malware marker")
        manager.close_session(alice)
        restored = manager.load_nym("alice", "pw")
        assert not restored.anonvm.fs.exists("/home/user/.cache/stain")

    def test_persistent_session_changes_survive(self, manager, alice, dropbox_account):
        manager.store_nym(alice, password="pw", provider_host="dropbox.com", account_username="anon991")
        alice.anonvm.fs.write("/home/user/notes.txt", b"remember me")
        manager.close_session(alice, password="pw")
        restored = manager.load_nym("alice", "pw")
        assert restored.anonvm.fs.read("/home/user/notes.txt") == b"remember me"
