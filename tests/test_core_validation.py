"""The §5.1 validation: leak scan and isolation matrix."""

import pytest

from repro.core.validation import (
    count_dns_leaks,
    probe_isolation,
    validate_system,
)


class TestLeakValidation:
    def test_idle_system_is_clean(self, manager):
        manager.create_nym(name="a")
        manager.create_nym(name="b")
        result = validate_system(manager)
        assert result.passed, result.summary()
        assert result.leak_report.clean
        assert not result.anonvm_emitted_uplink_traffic

    def test_browsing_traffic_is_all_anonymizer_labelled(self, manager):
        nymbox = manager.create_nym(name="a")
        manager.hypervisor.host_capture.clear()
        manager.timed_browse(nymbox, "bbc.co.uk")
        labels = set(manager.hypervisor.host_capture.by_label())
        assert labels <= {"anonymizer"}

    def test_leak_detected_if_raw_traffic_appears(self, manager):
        manager.create_nym(name="a")
        capture = manager.hypervisor.host_capture

        # Simulate a broken configuration that lets unlabeled traffic out
        # right after the scan starts.
        manager.timeline.after(1.0, lambda: capture.record_flow("uplink", "anonvm", "", 100))
        result = validate_system(manager, idle_seconds=5.0)
        assert not result.passed
        assert len(result.leak_report.leaks) == 1

    def test_summary_format(self, manager):
        manager.create_nym(name="a")
        result = validate_system(manager)
        assert "PASS" in result.summary()


class TestIsolationMatrix:
    def test_only_own_pairs_allowed(self, manager):
        manager.create_nym(name="a")
        manager.create_nym(name="b")
        matrix = probe_isolation(manager)
        assert matrix.clean
        pair_names = set(matrix.allowed_pairs)
        assert ("a-anon", "a-comm") in pair_names
        assert ("b-anon", "b-comm") in pair_names
        assert all(
            {src.rsplit("-", 1)[0]} == {dst.rsplit("-", 1)[0]}
            for src, dst in pair_names
        )

    def test_no_local_network_access(self, manager):
        manager.create_nym(name="a")
        matrix = probe_isolation(manager)
        assert matrix.local_network_reachable_from == []

    def test_matrix_scales_with_many_nyms(self, manager):
        for index in range(4):
            manager.create_nym(name=f"nym{index}")
        matrix = probe_isolation(manager)
        assert matrix.clean
        assert len(matrix.allowed_pairs) == 8  # 4 nyms x 2 directions


class TestDnsLeaks:
    def test_no_dns_leaks_by_construction(self, manager):
        nymbox = manager.create_nym(name="a")
        manager.timed_browse(nymbox, "gmail.com")
        assert count_dns_leaks(manager) == 0
