"""Host memory remanence (§3.4's Dunn discussion) and manager integration."""

import pytest

from repro.core import NymManager, NymixConfig
from repro.errors import MemoryError_
from repro.memory.remanence import AdversaryAccess, RemanenceTracker

MIB = 1024 * 1024


class TestRemanenceTracker:
    def test_teardown_leaves_traces(self):
        tracker = RemanenceTracker(residual_fraction=0.02)
        residual = tracker.record_nym_teardown("alice", 512 * MIB)
        assert residual == int(512 * MIB * 0.02)
        assert tracker.total_residual_bytes > 0
        assert tracker.traces_for("alice")

    def test_trace_kinds(self):
        tracker = RemanenceTracker()
        tracker.record_nym_teardown("alice", 512 * MIB)
        kinds = {trace.kind for trace in tracker.traces_for("alice")}
        assert kinds == {"page-cache", "dma-buffer", "vmm-heap"}

    def test_live_adversary_recovers_traces(self):
        tracker = RemanenceTracker()
        tracker.record_nym_teardown("alice", 512 * MIB)
        assert tracker.recoverable_bytes(AdversaryAccess.LIVE) > 0
        assert tracker.evidence_of_nym("alice", AdversaryAccess.LIVE)

    def test_powered_off_adversary_recovers_nothing(self):
        """Volatile RAM: 'such state is likely to be inaccessible.'"""
        tracker = RemanenceTracker()
        tracker.record_nym_teardown("alice", 512 * MIB)
        assert tracker.recoverable_bytes(AdversaryAccess.AFTER_SHUTDOWN) == 0
        assert not tracker.evidence_of_nym("alice", AdversaryAccess.AFTER_SHUTDOWN)

    def test_reboot_clears_everything(self):
        tracker = RemanenceTracker()
        tracker.record_nym_teardown("alice", 512 * MIB)
        cleared = tracker.reboot()
        assert cleared > 0
        assert tracker.total_residual_bytes == 0
        assert tracker.reboots == 1

    def test_ephemeral_channels_nearly_eliminate_traces(self):
        """Dunn's mitigation [18] as a config option."""
        plain = RemanenceTracker(ephemeral_channels=False)
        scrubbed = RemanenceTracker(ephemeral_channels=True)
        plain_residual = plain.record_nym_teardown("a", 512 * MIB)
        scrubbed_residual = scrubbed.record_nym_teardown("a", 512 * MIB)
        assert scrubbed_residual < plain_residual * 0.05

    def test_summary_by_kind(self):
        tracker = RemanenceTracker()
        tracker.record_nym_teardown("a", 512 * MIB)
        tracker.record_nym_teardown("b", 512 * MIB)
        summary = tracker.summary()
        assert summary["page-cache"] > summary["dma-buffer"]

    def test_invalid_inputs(self):
        with pytest.raises(MemoryError_):
            RemanenceTracker(residual_fraction=1.5)
        with pytest.raises(MemoryError_):
            RemanenceTracker().record_nym_teardown("a", -1)


class TestManagerIntegration:
    def test_discard_records_remanence(self, manager):
        nymbox = manager.create_nym(name="alice")
        manager.discard_nym(nymbox)
        assert manager.remanence.total_residual_bytes > 0
        assert manager.remanence.evidence_of_nym("alice", AdversaryAccess.LIVE)

    def test_reboot_host_kills_nyms_and_clears_traces(self, manager):
        manager.create_nym(name="a")
        nymbox = manager.create_nym(name="b")
        manager.discard_nym(nymbox)
        cleared = manager.reboot_host()
        assert cleared > 0
        assert manager.live_nyms() == []
        assert manager.remanence.total_residual_bytes == 0

    def test_ephemeral_channels_config(self):
        manager = NymManager(NymixConfig(seed=2, ephemeral_channels=True))
        nymbox = manager.create_nym(name="a")
        manager.discard_nym(nymbox)
        plain = NymManager(NymixConfig(seed=2))
        nymbox2 = plain.create_nym(name="a")
        plain.discard_nym(nymbox2)
        assert (
            manager.remanence.total_residual_bytes
            < plain.remanence.total_residual_bytes * 0.05
        )
