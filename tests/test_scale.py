"""Scale: many simultaneous nyms on the paper's 16 GB host."""

import pytest

from repro.core.validation import probe_isolation, validate_system
from repro.errors import OutOfMemoryError

MIB = 1024 * 1024


class TestManyNyms:
    def test_sixteen_simultaneous_nyms(self, manager):
        """~656 MB nominal per nymbox: 16 fit in 16 GB with the 1 GB base."""
        nyms = [manager.create_nym(name=f"scale-{i}") for i in range(16)]
        assert len(manager.live_nyms()) == 16
        snapshot = manager.hypervisor.memory_snapshot()
        assert snapshot.guest_ram_bytes == 16 * (384 + 128) * MIB

    def test_isolation_holds_at_scale(self, manager):
        for index in range(8):
            manager.create_nym(name=f"scale-{index}")
        matrix = probe_isolation(manager)
        assert matrix.clean
        assert len(matrix.allowed_pairs) == 16

    def test_each_of_many_nyms_browses_independently(self, manager):
        nyms = [manager.create_nym(name=f"scale-{i}") for i in range(6)]
        for index, nymbox in enumerate(nyms):
            load = manager.timed_browse(nymbox, "bbc.co.uk")
            assert load.payload_bytes > 0
        histories = [len(n.browser.history) for n in nyms]
        assert histories == [1] * 6

    def test_admission_limit_reached_gracefully(self, manager):
        created = []
        with pytest.raises(OutOfMemoryError):
            for index in range(40):  # will exhaust 16 GB well before 40
                created.append(manager.create_nym(name=f"scale-{index}"))
        assert len(created) >= 16
        # Every admitted nym still works.
        assert all(nymbox.running for nymbox in created)

    def test_validation_with_mixed_transports_at_scale(self, manager):
        for index, kind in enumerate(
            ("tor", "dissent", "incognito", "tor", "stegotorus", "sweet")
        ):
            nymbox = manager.create_nym(name=f"mix-{index}", anonymizer=kind)
            manager.timed_browse(nymbox, "bbc.co.uk")
        result = validate_system(manager)
        assert result.passed, result.summary()

    def test_churn_is_stable(self, manager):
        """Create/destroy cycles must not leak memory or names."""
        baseline = manager.hypervisor.memory.stats().guest_allocated_bytes
        for cycle in range(10):
            nymbox = manager.create_nym(name="churn")
            manager.timed_browse(nymbox, "slashdot.org")
            manager.discard_nym(nymbox)
        assert manager.hypervisor.memory.stats().guest_allocated_bytes == baseline
        assert manager.live_nyms() == []
