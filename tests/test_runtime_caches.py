"""Process-global cache bounds, deterministic eviction, and session reset.

The caches under test memoize values that are pure functions of seeded
key material, so none of them may influence a single journal byte — not
when warm, not when cold, and not while evicting under a tiny bound.
"""

import pytest

import repro.fleet.fleet  # noqa: F401  (registers the base-image cache)
from repro.anonymizers.tor.circuit import NTOR_CLIENT_CACHE
from repro.api import NymixSession
from repro.core.config import NymixConfig
from repro.mixnet.packet import (
    MIX_STREAM_CACHE,
    SENDER_KEY_CACHE,
    build_packet,
    open_body,
    peel_layer,
)
from repro.mixnet.topology import MixTopology
from repro.runtime import (
    evict_oldest,
    process_cache_sizes,
    register_process_cache,
    registered_cache_names,
    reset_process_caches,
)
from repro.sim.rng import SeededRng


@pytest.fixture(autouse=True)
def pristine_caches():
    reset_process_caches()
    saved = (
        SENDER_KEY_CACHE.max_entries,
        MIX_STREAM_CACHE.max_entries,
        NTOR_CLIENT_CACHE.max_entries,
    )
    yield
    SENDER_KEY_CACHE.max_entries = saved[0]
    MIX_STREAM_CACHE.max_entries = saved[1]
    NTOR_CLIENT_CACHE.max_entries = saved[2]
    reset_process_caches()


def _mix_run(seed=17, packets=6):
    """Build and fully peel a few packets.

    Returns the sender RNG's end-of-run fingerprint: cache state (warm,
    cold, bounded, disabled) must never shift the seeded stream — that
    is exactly the property that keeps same-seed journals byte-identical.
    """
    topology = MixTopology(SeededRng(seed), layers=3, nodes_per_layer=3)
    rng = SeededRng(seed + 1)
    for index in range(packets):
        path = topology.sample_path(SeededRng(seed + 2 + index))
        packet = build_packet(rng, path, b"payload-%d" % index * 20)
        for hop in path:
            _, packet, _ = peel_layer(hop.private_key, packet, memo={})
        assert open_body(packet) == b"payload-%d" % index * 20
    return rng.token_bytes(32)


class TestEvictOldest:
    def test_fifo_and_deterministic(self):
        entries = {k: k for k in "abcdef"}
        assert evict_oldest(entries, 4) == 2
        assert list(entries) == ["c", "d", "e", "f"]
        assert evict_oldest(entries, 4) == 0

    def test_registry_lists_the_builtin_caches(self):
        names = registered_cache_names()
        for expected in (
            "fleet.base_image",
            "mixnet.sender_keys",
            "mixnet.streams",
            "tor.ntor_keyshares",
        ):
            assert expected in names


class TestBoundedMixCaches:
    def test_sender_key_cache_respects_bound(self):
        SENDER_KEY_CACHE.max_entries = 4
        _mix_run()
        assert len(SENDER_KEY_CACHE) <= 4
        assert SENDER_KEY_CACHE.evictions > 0

    def test_stream_cache_respects_bound(self):
        MIX_STREAM_CACHE.max_entries = 2
        _mix_run()
        assert len(MIX_STREAM_CACHE) <= 2
        assert MIX_STREAM_CACHE.evictions > 0

    def test_bounded_warm_cold_bytes_identical(self):
        """Eviction churn must not change packet bytes (and therefore
        journal bytes, which record packet-derived fields)."""
        unbounded = _mix_run()
        reset_process_caches()
        SENDER_KEY_CACHE.max_entries = 2
        MIX_STREAM_CACHE.max_entries = 1
        bounded = _mix_run()
        reset_process_caches()
        SENDER_KEY_CACHE.enabled = False
        MIX_STREAM_CACHE.enabled = False
        try:
            disabled = _mix_run()
        finally:
            SENDER_KEY_CACHE.enabled = True
            MIX_STREAM_CACHE.enabled = True
        assert unbounded == bounded == disabled


class TestSessionResetHook:
    def test_close_resets_process_caches(self):
        _mix_run()
        assert len(SENDER_KEY_CACHE) > 0
        with NymixSession(seed=3) as nx:
            nx.create_nym(name="alice")
        assert len(SENDER_KEY_CACHE) == 0
        assert len(NTOR_CLIENT_CACHE) == 0
        assert process_cache_sizes()["mixnet.streams"] == 0

    def test_warm_vs_post_reset_session_journals_identical(self):
        def run():
            with NymixSession(seed=11) as nx:
                nymbox = nx.create_nym(name="alice")
                nx.timed_browse(nymbox, "bbc.co.uk")
                return nx.obs.journal.export_jsonl()

        first = run()  # cold caches
        _mix_run()  # unrelated warm state in the same process
        second = run()  # caches warm from first run? no — reset at close
        assert first == second

    def test_bounded_mixnet_session_journal_identical(self):
        """Tiny cache bounds (constant eviction churn) must not move a
        single journal byte of a mixnet-backed session."""

        def run():
            config = NymixConfig(seed=23, default_anonymizer="mixnet")
            with NymixSession(config) as nx:
                nymbox = nx.create_nym(name="carol")
                nx.timed_browse(nymbox, "bbc.co.uk")
                return nx.obs.journal.export_jsonl()

        baseline = run()
        SENDER_KEY_CACHE.max_entries = 1
        MIX_STREAM_CACHE.max_entries = 1
        NTOR_CLIENT_CACHE.max_entries = 1
        bounded = run()
        assert baseline == bounded

    def test_reset_returns_prior_sizes(self):
        calls = []
        register_process_cache("test.scratch", lambda: calls.append(1), lambda: 7)
        try:
            sizes = reset_process_caches()
            assert sizes["test.scratch"] == 7
            assert calls == [1]
        finally:
            from repro import runtime

            runtime._PROCESS_CACHES.pop("test.scratch", None)
