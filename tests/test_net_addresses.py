"""MAC/IPv4 address types."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.net import Ipv4Address, MacAddress
from repro.net.addresses import DNS_IP, GATEWAY_IP, GUEST_IP, QEMU_DEFAULT_MAC


class TestMacAddress:
    def test_parse_format_roundtrip(self):
        mac = MacAddress.parse("52:54:00:12:34:56")
        assert str(mac) == "52:54:00:12:34:56"

    def test_equality(self):
        assert MacAddress.parse("aa:bb:cc:dd:ee:ff") == MacAddress.parse("AA:BB:CC:DD:EE:FF".lower())

    def test_hashable(self):
        assert len({MacAddress(1), MacAddress(1), MacAddress(2)}) == 2

    def test_malformed_rejected(self):
        for bad in ("52:54:00", "zz:54:00:12:34:56", "52-54-00-12-34-56", ""):
            with pytest.raises(NetworkError):
                MacAddress.parse(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(NetworkError):
            MacAddress(1 << 48)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip_property(self, value):
        assert MacAddress.parse(str(MacAddress(value))).value == value


class TestIpv4Address:
    def test_parse_format_roundtrip(self):
        assert str(Ipv4Address.parse("10.0.2.15")) == "10.0.2.15"

    def test_malformed_rejected(self):
        for bad in ("10.0.2", "10.0.2.256", "a.b.c.d", "", "10.0.2.15.1"):
            with pytest.raises(NetworkError):
                Ipv4Address.parse(bad)

    def test_subnet_membership(self):
        ip = Ipv4Address.parse("10.0.2.15")
        assert ip.in_subnet(Ipv4Address.parse("10.0.2.0"), 24)
        assert not ip.in_subnet(Ipv4Address.parse("10.0.3.0"), 24)
        assert ip.in_subnet(Ipv4Address.parse("0.0.0.0"), 0)

    def test_private_detection(self):
        assert Ipv4Address.parse("10.1.2.3").is_private()
        assert Ipv4Address.parse("192.168.1.1").is_private()
        assert Ipv4Address.parse("172.16.0.1").is_private()
        assert Ipv4Address.parse("172.32.0.1").is_private() is False
        assert not Ipv4Address.parse("8.8.8.8").is_private()

    def test_bad_prefix_rejected(self):
        with pytest.raises(NetworkError):
            Ipv4Address.parse("10.0.0.1").in_subnet(Ipv4Address.parse("10.0.0.0"), 33)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert Ipv4Address.parse(str(Ipv4Address(value))).value == value


class TestHomogenizedConstants:
    def test_guest_addressing_is_qemu_defaults(self):
        """The fixed identity every nymbox advertises (§4.2)."""
        assert str(QEMU_DEFAULT_MAC) == "52:54:00:12:34:56"
        assert str(GUEST_IP) == "10.0.2.15"
        assert str(GATEWAY_IP) == "10.0.2.2"
        assert str(DNS_IP) == "10.0.2.3"
