"""The Tor simulator: cells, relays, directory, guards, circuits, client."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymizers.tor import (
    CELL_PAYLOAD_SIZE,
    CELL_SIZE,
    Cell,
    CellCommand,
    Circuit,
    DirectoryAuthority,
    GuardManager,
    TorClient,
)
from repro.anonymizers.tor.cells import CELL_OVERHEAD_FACTOR, cells_for_payload
from repro.anonymizers.tor.guard import DEFAULT_NUM_GUARDS
from repro.errors import AnonymizerError, CircuitError
from repro.net import Internet, MasqueradeNat, PacketCapture
from repro.net.addresses import Ipv4Address
from repro.sim import SeededRng, Timeline


@pytest.fixture
def timeline():
    return Timeline(seed=5)


@pytest.fixture
def directory(timeline):
    return DirectoryAuthority(timeline.fork_rng("dir"), relay_count=20)


@pytest.fixture
def internet(timeline):
    net = Internet(timeline)
    from repro.guest.websites import populate_internet

    populate_internet(net)
    return net


@pytest.fixture
def nat(timeline, internet):
    return MasqueradeNat(
        timeline, "nat(test)", Ipv4Address.parse("203.0.113.77"), internet,
        host_capture=PacketCapture(timeline),
    )


def _client(timeline, internet, nat, directory, **kwargs):
    return TorClient(
        timeline, internet, nat, timeline.fork_rng("tor"), directory, **kwargs
    )


class TestCells:
    def test_pack_unpack_roundtrip(self):
        cell = Cell(circ_id=0x1234, command=CellCommand.RELAY_DATA, payload=b"data")
        packed = cell.pack()
        assert len(packed) == CELL_SIZE
        assert Cell.unpack(packed) == cell

    def test_oversized_payload_rejected(self):
        with pytest.raises(AnonymizerError):
            Cell(1, CellCommand.RELAY_DATA, b"x" * (CELL_PAYLOAD_SIZE + 1)).pack()

    def test_unpack_wrong_size(self):
        with pytest.raises(AnonymizerError):
            Cell.unpack(b"short")

    def test_cells_for_payload(self):
        assert cells_for_payload(0) == 0
        assert cells_for_payload(1) == 1
        assert cells_for_payload(CELL_PAYLOAD_SIZE) == 1
        assert cells_for_payload(CELL_PAYLOAD_SIZE + 1) == 2

    def test_overhead_factor(self):
        assert CELL_OVERHEAD_FACTOR == pytest.approx(512 / 498)

    @given(st.binary(max_size=CELL_PAYLOAD_SIZE), st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_roundtrip_property(self, payload, circ_id):
        cell = Cell(circ_id, CellCommand.RELAY_DATA, payload)
        assert Cell.unpack(cell.pack()) == cell


class TestDirectory:
    def test_relay_population(self, directory):
        consensus = directory.consensus()
        assert len(consensus.descriptors) == 20
        assert len(consensus.guards()) == 7
        assert len(consensus.exits()) == 7

    def test_consensus_document_sized(self, directory):
        assert directory.consensus().document_bytes() > 1024

    def test_by_nickname(self, directory):
        descriptor = directory.consensus().by_nickname("relay000")
        assert descriptor.nickname == "relay000"
        with pytest.raises(AnonymizerError):
            directory.consensus().by_nickname("missing")

    def test_too_few_relays_rejected(self, timeline):
        with pytest.raises(AnonymizerError):
            DirectoryAuthority(timeline.fork_rng("d2"), relay_count=2)

    def test_relay_keys_distinct(self, directory):
        keys = {d.onion_public_key for d in directory.consensus().descriptors}
        assert len(keys) == 20


class TestGuardManager:
    def test_selects_requested_count(self, directory, timeline):
        manager = GuardManager(timeline.fork_rng("g"))
        guards = manager.ensure_guards(directory.consensus(), now=0.0)
        assert len(guards) == DEFAULT_NUM_GUARDS
        assert all(directory.consensus().by_nickname(g).is_guard for g in guards)

    def test_stable_within_rotation_period(self, directory, timeline):
        manager = GuardManager(timeline.fork_rng("g"))
        first = manager.ensure_guards(directory.consensus(), now=0.0)
        later = manager.ensure_guards(directory.consensus(), now=86400.0)
        assert first == later

    def test_rotates_after_period(self, directory, timeline):
        manager = GuardManager(timeline.fork_rng("g"), rotation_s=100.0)
        first = manager.ensure_guards(directory.consensus(), now=0.0)
        manager.ensure_guards(directory.consensus(), now=150.0)
        # A rotation occurred (selection timestamp moved); sets may overlap
        # by chance but the re-draw must have happened.
        assert manager._selected_at == 150.0

    def test_export_import_state(self, directory, timeline):
        manager = GuardManager(timeline.fork_rng("g"))
        guards = manager.ensure_guards(directory.consensus(), now=0.0)
        restored = GuardManager(timeline.fork_rng("other"))
        restored.import_state(manager.export_state())
        assert restored.guards == guards

    def test_deterministic_seeding(self, directory):
        """§3.5: (location, password) fully determine the guard set."""
        a = GuardManager.deterministic("dropbox.com/alice.nymbox", "pw")
        b = GuardManager.deterministic("dropbox.com/alice.nymbox", "pw")
        consensus = directory.consensus()
        assert a.ensure_guards(consensus, 0.0) == b.ensure_guards(consensus, 0.0)

    def test_deterministic_seeding_differs_by_password(self, directory):
        a = GuardManager.deterministic("dropbox.com/alice.nymbox", "pw1")
        b = GuardManager.deterministic("dropbox.com/alice.nymbox", "pw2")
        consensus = directory.consensus()
        # 7 guards choose 3: different seeds almost surely differ; assert
        # at least that the selections are independent draws.
        assert a.ensure_guards(consensus, 0.0) != b.ensure_guards(consensus, 0.0)

    def test_zero_guards_rejected(self, timeline):
        with pytest.raises(AnonymizerError):
            GuardManager(timeline.fork_rng("g"), num_guards=0)


class TestCircuit:
    def test_build_three_hops(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        relays = directory.relays()[:3]
        duration = circuit.build(relays)
        assert duration > 0
        assert len(circuit.path_nicknames) == 3
        assert circuit.guard is relays[0]
        assert circuit.exit is relays[2]

    def test_onion_layers_peel_in_order(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        circuit.build(directory.relays()[:3])
        plaintext = b"GET / HTTP/1.1"
        onion = circuit.onion_encrypt(plaintext)
        assert onion != plaintext
        assert circuit.relay_forward(onion) == plaintext

    def test_backward_path(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        circuit.build(directory.relays()[:3])
        response = b"HTTP/1.1 200 OK"
        wrapped = circuit.relay_backward(response)
        assert wrapped != response
        assert circuit.onion_decrypt(wrapped) == response

    def test_partial_peel_is_still_ciphertext(self, timeline, directory):
        """A middle relay must not see plaintext."""
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        relays = directory.relays()[:3]
        circuit.build(relays)
        plaintext = b"sensitive request"
        onion = circuit.onion_encrypt(plaintext)
        after_guard = relays[0].peel_forward(circuit.circ_id, onion)
        assert after_guard != plaintext
        after_middle = relays[1].peel_forward(circuit.circ_id, after_guard)
        assert after_middle != plaintext

    def test_repeated_relay_rejected(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        relay = directory.relays()[0]
        with pytest.raises(CircuitError):
            circuit.build([relay, relay])

    def test_stream_opens_at_exit(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        circuit.build(directory.relays()[:3])
        circuit.open_stream("twitter.com:443")
        assert circuit.exit.streams_on_circuit(circuit.circ_id) == ["twitter.com:443"]

    def test_destroy_clears_relay_state(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        relays = directory.relays()[:3]
        circuit.build(relays)
        circuit.destroy()
        assert all(r.active_circuits == 0 for r in relays)

    def test_unbuilt_circuit_operations_rejected(self, timeline):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        with pytest.raises(CircuitError):
            circuit.onion_encrypt(b"x")
        with pytest.raises(CircuitError):
            circuit.open_stream("x:1")

    def test_build_advances_time(self, timeline, directory):
        circuit = Circuit(timeline, timeline.fork_rng("c"))
        before = timeline.now
        circuit.build(directory.relays()[:3])
        # 3 telescoping round trips: 2*(0.025*1 + 0.025*2 + 0.025*3)
        assert timeline.now - before == pytest.approx(0.3)


class TestTorClient:
    def test_bootstrap(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        duration = client.start()
        assert 3.0 <= duration <= 12.0
        assert client.started
        assert client.guard_manager.has_guards

    def test_warm_start_faster(self, timeline, internet, nat, directory):
        cold = _client(timeline, internet, nat, directory)
        cold_time = cold.start()
        warm = _client(timeline, internet, nat, directory)
        warm.import_state(cold.export_state())
        warm_time = warm.start()
        assert warm_time < cold_time
        assert warm.guard_manager.guards == cold.guard_manager.guards

    def test_fetch_goes_to_exit_address(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        client.fetch("twitter.com", path="tok")
        server = internet.server_named("twitter.com")
        assert server.seen_client_ips[-1] == client.exit_address()
        assert server.seen_client_ips[-1] != nat.public_ip

    def test_overhead_factor_near_12_percent(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        assert client.plan(0).overhead_factor == pytest.approx(1.115, abs=0.01)

    def test_guard_always_first_hop(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        for _ in range(5):
            circuit = client.new_identity()
            assert circuit.path_nicknames[0] in client.guard_manager.guards

    def test_new_identity_rotates_circuit(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        first = client.current_circuit.circ_id
        second = client.new_identity().circ_id
        assert first != second

    def test_socks_connect_opens_stream(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        client.socks_connect("gmail.com", 443)
        exit_relay = client.current_circuit.exit
        assert "gmail.com:443" in exit_relay.streams_on_circuit(
            client.current_circuit.circ_id
        )

    def test_onion_payload_roundtrip(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        assert client.send_payload(b"hello world") == b"hello world"

    def test_requires_start(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        with pytest.raises(AnonymizerError):
            client.fetch("twitter.com")

    def test_resolve_via_exit(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        ip = client.resolve("gmail.com")
        assert str(ip) == "198.51.100.10"

    def test_stop_destroys_circuits(self, timeline, internet, nat, directory):
        client = _client(timeline, internet, nat, directory)
        client.start()
        exit_relay = client.current_circuit.exit
        client.stop()
        assert exit_relay.active_circuits == 0

    def test_independent_clients_rarely_share_circuits(self, timeline, internet, nat, directory):
        """Per-nym Tor instances: distinct circuit ids, usually distinct paths."""
        a = _client(timeline, internet, nat, directory)
        b = TorClient(timeline, internet, nat, timeline.fork_rng("tor-b"), directory)
        a.start()
        b.start()
        assert a.current_circuit.circ_id != b.current_circuit.circ_id
