"""Installed-OS nyms: repair, boot, COW isolation (§3.7 / Table 1)."""

import pytest

from repro.errors import VmStateError
from repro.guest.installed_os import INSTALLED_OS_CATALOG, InstalledOs
from repro.sim import SeededRng, Timeline

MIB = 1024 * 1024


@pytest.fixture
def timeline():
    return Timeline(seed=3)


def _os(name="Windows 7"):
    return InstalledOs(INSTALLED_OS_CATALOG[name], SeededRng(4))


class TestCatalog:
    def test_table1_rows_present(self):
        for name in ("Windows Vista", "Windows 7", "Windows 8"):
            assert name in INSTALLED_OS_CATALOG

    def test_table1_values(self):
        vista = INSTALLED_OS_CATALOG["Windows Vista"]
        assert vista.repair_seconds == pytest.approx(133.7)
        assert vista.boot_seconds == pytest.approx(37.7)
        assert vista.repair_cow_bytes == pytest.approx(4.9 * MIB)
        win8 = INSTALLED_OS_CATALOG["Windows 8"]
        assert win8.repair_seconds == pytest.approx(157.0)

    def test_linux_needs_no_repair(self):
        assert not INSTALLED_OS_CATALOG["Ubuntu 12.04"].needs_repair


class TestRepairAndBoot:
    def test_windows_requires_repair(self, timeline):
        ios = _os("Windows 7")
        with pytest.raises(VmStateError):
            ios.boot(timeline)

    def test_repair_takes_table1_time(self, timeline):
        ios = _os("Windows 7")
        duration = ios.repair(timeline)
        assert duration == pytest.approx(129.3, rel=0.06)
        assert ios.repaired

    def test_repair_idempotent(self, timeline):
        ios = _os("Windows 7")
        ios.repair(timeline)
        assert ios.repair(timeline) == 0.0

    def test_linux_repair_is_noop(self, timeline):
        ios = _os("Ubuntu 12.04")
        assert ios.repair(timeline) == 0.0
        assert timeline.now == 0.0

    def test_boot_after_repair(self, timeline):
        ios = _os("Windows 7")
        ios.repair(timeline)
        duration = ios.boot(timeline)
        assert duration == pytest.approx(34.3, rel=0.06)

    def test_cow_size_matches_table1(self, timeline):
        ios = _os("Windows 7")
        ios.repair(timeline)
        ios.boot(timeline)
        assert ios.cow_bytes == pytest.approx(4.5 * MIB, rel=0.15)

    def test_win8_largest(self, timeline):
        sizes = {}
        for name in ("Windows Vista", "Windows 7", "Windows 8"):
            ios = _os(name)
            ios.repair(timeline)
            ios.boot(timeline)
            sizes[name] = ios.cow_bytes
        assert sizes["Windows 8"] == max(sizes.values())


class TestCowIsolation:
    def test_physical_disk_never_modified(self, timeline):
        ios = _os("Windows 7")
        original = [ios.physical_disk.read_block(i) for i in range(8)]
        ios.repair(timeline)
        ios.boot(timeline)
        assert not ios.physical_disk_modified
        assert [ios.physical_disk.read_block(i) for i in range(8)] == original

    def test_discard_session_drops_changes(self, timeline):
        ios = _os("Windows 7")
        ios.repair(timeline)
        ios.boot(timeline)
        assert ios.cow_bytes > 0
        ios.discard_session()
        assert ios.cow_bytes == 0

    def test_overlay_requires_attach(self):
        ios = InstalledOs(INSTALLED_OS_CATALOG["Windows 7"], SeededRng(4))
        with pytest.raises(VmStateError):
            _ = ios.overlay
        assert ios.cow_bytes == 0
