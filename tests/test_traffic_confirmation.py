"""The traffic-confirmation adversary: verdicts, tradeoffs, determinism."""

import pytest

from repro.attacks import TrafficConfirmationAttack
from repro.attacks.traffic_confirmation import anonymity_after_packets
from repro.errors import SimulationError
from repro.sim.rng import SeededRng


@pytest.fixture
def attack(rng):
    return TrafficConfirmationAttack(rng, senders=20, packets=10)


class TestVerdicts:
    def test_tor_is_confirmed(self, attack):
        report = attack.run("tor")
        assert report.confirmed
        assert report.anonymity_set_size == 1

    def test_dissent_holds_the_whole_group(self, attack):
        report = attack.run("dissent")
        assert not report.confirmed
        assert report.anonymity_set_size == attack.senders
        assert report.mean_candidates == attack.senders

    def test_mixnet_without_cover_is_confirmed(self, attack):
        report = attack.run("mixnet", cover_rate_pps=0.0)
        assert report.confirmed

    def test_heavy_cover_and_delay_defeat_confirmation(self, attack):
        report = attack.run(
            "mixnet", layers=5, mean_hop_delay_s=0.25, cover_rate_pps=8.0
        )
        assert not report.confirmed
        assert report.anonymity_set_size > 1

    def test_unknown_transport_rejected(self, attack):
        with pytest.raises(SimulationError):
            attack.run("carrier-pigeon")


class TestTradeoffShape:
    def test_anonymity_grows_with_cover_rate(self, rng):
        sizes = []
        for cover in (0.0, 2.0, 8.0):
            attack = TrafficConfirmationAttack(
                rng.fork(f"cover:{cover}"), senders=20, packets=10
            )
            report = attack.run(
                "mixnet", mean_hop_delay_s=0.2, cover_rate_pps=cover
            )
            sizes.append(report.mean_candidates)
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_delay_widens_the_window(self, attack):
        fast = attack.run("mixnet", mean_hop_delay_s=0.02)
        slow = attack.run("mixnet", mean_hop_delay_s=0.5)
        assert slow.window_s > fast.window_s
        assert slow.mean_delay_s > fast.mean_delay_s

    def test_analytic_expectation_matches_shape(self):
        # More packets observed -> smaller expected candidate set.
        few = anonymity_after_packets(20, 0.5, 2)
        many = anonymity_after_packets(20, 0.5, 12)
        assert few > many >= 1.0


class TestConstruction:
    def test_determinism(self):
        runs = [
            TrafficConfirmationAttack(SeededRng(5))
            .run("mixnet", cover_rate_pps=2.0)
            .export()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_population_validation(self, rng):
        with pytest.raises(SimulationError):
            TrafficConfirmationAttack(rng, senders=1)
        with pytest.raises(SimulationError):
            TrafficConfirmationAttack(rng, packets=0)

    def test_export_is_json_friendly(self, attack):
        import json

        payload = attack.run("tor").export()
        assert json.loads(json.dumps(payload)) == payload
