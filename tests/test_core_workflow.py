"""The §3.5 interactive workflow state machine."""

import pytest

from repro.core.workflow import NymManagerWorkflow, Screen
from repro.errors import NymStateError


@pytest.fixture
def workflow(manager):
    manager.create_cloud_account("dropbox.com", "wf-user", "cloud-pw")
    return NymManagerWorkflow(manager)


class TestHappyPath:
    def test_full_store_flow(self, workflow, manager):
        workflow.start_fresh_nym("alice")
        assert workflow.screen is Screen.NYM_RUNNING
        manager.timed_browse(workflow.nymbox, "twitter.com")

        workflow.open_store_dialog()
        workflow.enter_store_details("alice", "nym-pw", "dropbox.com")
        assert workflow.screen is Screen.CLOUD_LOGIN
        workflow.login_to_cloud("wf-user", "cloud-pw")
        receipt = workflow.complete_save()
        assert receipt.encrypted_bytes > 0
        assert workflow.screen is Screen.SAVED

        workflow.close_nym()
        assert workflow.screen is Screen.MAIN_MENU
        assert manager.live_nyms() == []

    def test_load_flow_after_store(self, workflow, manager):
        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        workflow.enter_store_details("alice", "nym-pw", "dropbox.com")
        workflow.login_to_cloud("wf-user", "cloud-pw")
        workflow.complete_save()
        workflow.close_nym()

        nymbox = workflow.load_existing_nym("alice", "nym-pw")
        assert workflow.screen is Screen.NYM_RUNNING
        assert nymbox.running

    def test_transcript_records_journey(self, workflow):
        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        transcript = workflow.transcript()
        assert len(transcript) == 2
        assert "fresh nym" in transcript[0]


class TestStateErrors:
    def test_cannot_store_from_main_menu(self, workflow):
        with pytest.raises(NymStateError):
            workflow.open_store_dialog()

    def test_cannot_skip_details(self, workflow):
        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        with pytest.raises(NymStateError):
            workflow.login_to_cloud("wf-user", "cloud-pw")

    def test_cannot_save_without_login(self, workflow):
        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        workflow.enter_store_details("alice", "pw", "dropbox.com")
        with pytest.raises(NymStateError):
            workflow.complete_save()

    def test_empty_name_rejected(self, workflow):
        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        with pytest.raises(NymStateError):
            workflow.enter_store_details("", "pw", "dropbox.com")

    def test_unknown_provider_rejected(self, workflow):
        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        with pytest.raises(NymStateError):
            workflow.enter_store_details("alice", "pw", "nowhere.example")

    def test_cannot_start_two_nyms_without_closing(self, workflow):
        workflow.start_fresh_nym("alice")
        with pytest.raises(NymStateError):
            workflow.start_fresh_nym("bob")

    def test_bad_cloud_credentials_surface(self, workflow):
        from repro.errors import CloudError

        workflow.start_fresh_nym("alice")
        workflow.open_store_dialog()
        workflow.enter_store_details("alice", "pw", "dropbox.com")
        with pytest.raises(CloudError):
            workflow.login_to_cloud("wf-user", "wrong-password")
