"""The operator CLI."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_validate_passes(self, capsys):
        code = main(["--seed", "3", "validate", "--nyms", "2", "--idle", "5"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_redteam_contained(self, capsys):
        code = main(["--seed", "3", "redteam", "--nyms", "2"])
        assert code == 0
        assert "ALL CONTAINED" in capsys.readouterr().out

    def test_demo_runs(self, capsys):
        code = main(["demo"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stored:" in out and "restored" in out

    def test_catalog_lists_world(self, capsys):
        code = main(["catalog"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tor" in out and "gmail.com" in out and "Windows 8" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestStatsCommand:
    def test_stats_prints_metrics(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nym.created" in out
        assert "vmm.boot.phase_s" in out
        assert "tor.circuit.built" in out

    def test_stats_prefix_filters(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1", "--prefix", "tor"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tor.circuit.built" in out
        assert "nym.created" not in out

    def test_stats_unknown_prefix_fails(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1", "--prefix", "nosuch"])
        assert code == 1

    def test_stats_json_is_parseable(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1", "--json"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["nym.created"] == 1
        assert snapshot["nymbox.page_loads"] == 1

    def test_stats_writes_journal(self, tmp_path, capsys):
        journal = tmp_path / "events.jsonl"
        code = main(["--seed", "3", "stats", "--nyms", "1", "--journal", str(journal)])
        assert code == 0
        lines = journal.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert any(e["event"] == "nym.created" for e in events)
        assert any(e["event"] == "nym.discarded" for e in events)

    def test_journal_is_byte_identical_across_runs(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["--seed", "5", "stats", "--journal", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestTraceCommand:
    def test_trace_prints_span_tree(self, capsys):
        code = main(["--seed", "3", "trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nymbox.launch" in out
        assert "vm.boot" in out
        assert "tor.start" in out
        # Children are indented beneath their parent span.
        assert "\n  vm.boot" in out

    def test_trace_is_deterministic(self, capsys):
        main(["--seed", "4", "trace"])
        first = capsys.readouterr().out
        main(["--seed", "4", "trace"])
        assert capsys.readouterr().out == first
