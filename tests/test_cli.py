"""The operator CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_validate_passes(self, capsys):
        code = main(["--seed", "3", "validate", "--nyms", "2", "--idle", "5"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_redteam_contained(self, capsys):
        code = main(["--seed", "3", "redteam", "--nyms", "2"])
        assert code == 0
        assert "ALL CONTAINED" in capsys.readouterr().out

    def test_demo_runs(self, capsys):
        code = main(["demo"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stored:" in out and "restored" in out

    def test_catalog_lists_world(self, capsys):
        code = main(["catalog"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tor" in out and "gmail.com" in out and "Windows 8" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
