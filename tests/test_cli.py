"""The operator CLI."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_validate_passes(self, capsys):
        code = main(["--seed", "3", "validate", "--nyms", "2", "--idle", "5"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_redteam_contained(self, capsys):
        code = main(["--seed", "3", "redteam", "--nyms", "2"])
        assert code == 0
        assert "ALL CONTAINED" in capsys.readouterr().out

    def test_demo_runs(self, capsys):
        code = main(["demo"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stored:" in out and "restored" in out

    def test_catalog_lists_world(self, capsys):
        code = main(["catalog"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tor" in out and "gmail.com" in out and "Windows 8" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestStatsCommand:
    def test_stats_prints_metrics(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nym.created" in out
        assert "vmm.boot.phase_s" in out
        assert "tor.circuit.built" in out

    def test_stats_prefix_filters(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1", "--prefix", "tor"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tor.circuit.built" in out
        assert "nym.created" not in out

    def test_stats_unknown_prefix_fails(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1", "--prefix", "nosuch"])
        assert code == 1

    def test_stats_json_is_parseable(self, capsys):
        code = main(["--seed", "3", "stats", "--nyms", "1", "--json"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["nym.created"] == 1
        assert snapshot["nymbox.page_loads"] == 1

    def test_stats_writes_journal(self, tmp_path, capsys):
        journal = tmp_path / "events.jsonl"
        code = main(["--seed", "3", "stats", "--nyms", "1", "--journal", str(journal)])
        assert code == 0
        lines = journal.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert any(e["event"] == "nym.created" for e in events)
        assert any(e["event"] == "nym.discarded" for e in events)

    def test_journal_is_byte_identical_across_runs(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["--seed", "5", "stats", "--journal", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestTraceCommand:
    def test_trace_prints_span_tree(self, capsys):
        code = main(["--seed", "3", "trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nymbox.launch" in out
        assert "vm.boot" in out
        assert "tor.start" in out
        # Children are indented beneath their parent span.
        assert "\n  vm.boot" in out

    def test_trace_is_deterministic(self, capsys):
        main(["--seed", "4", "trace"])
        first = capsys.readouterr().out
        main(["--seed", "4", "trace"])
        assert capsys.readouterr().out == first


class TestCommonFlags:
    def test_subcommand_seed_overrides_global(self, capsys):
        main(["--seed", "1", "stats", "--seed", "3", "--nyms", "1", "--json"])
        override = capsys.readouterr().out
        main(["--seed", "3", "stats", "--nyms", "1", "--json"])
        assert capsys.readouterr().out == override

    def test_every_subcommand_accepts_common_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        for name, sub in subparsers.choices.items():
            flags = {opt for action in sub._actions for opt in action.option_strings}
            assert {"--seed", "--duration", "--json"} <= flags, name

    def test_validate_json_report(self, capsys):
        code = main(["validate", "--seed", "3", "--nyms", "1", "--idle", "5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["dns_leaks"] == 0

    def test_catalog_json_report(self, capsys):
        assert main(["catalog", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "tor" in payload["anonymizers"]
        assert "gmail.com" in payload["websites"]

    def test_duration_extends_the_run(self, capsys):
        main(["stats", "--seed", "3", "--nyms", "1", "--json", "--duration", "0"])
        base = json.loads(capsys.readouterr().out)
        main(["stats", "--seed", "3", "--nyms", "1", "--json", "--duration", "120"])
        longer = json.loads(capsys.readouterr().out)
        assert longer == base  # idle time adds no metric churn, but is accepted


class TestFleetCommand:
    def test_fleet_quick_runs_and_reports(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fleet.json"
        code = main(["fleet", "--quick", "--seed", "7", "--out", str(out)])
        assert code == 0
        assert "ksm-aware saves more RAM than first-fit: yes" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["bench"] == "fleet"
        assert payload["ksm_aware_beats_first_fit"] is True

    def test_fleet_json_output(self, tmp_path, capsys):
        code = main([
            "fleet", "--seed", "7", "--hosts", "2", "--nyms", "6",
            "--no-compare", "--host-crashes", "0", "--json",
            "--out", str(tmp_path / "b.json"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["nyms_resident"] == 6

    def test_fleet_journal_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            code = main([
                "fleet", "--seed", "7", "--hosts", "2", "--nyms", "8",
                "--no-compare", "--journal", str(path),
                "--out", str(tmp_path / "bench.json"),
            ])
            assert code == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()
