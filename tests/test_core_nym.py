"""Nym metadata and usage models."""

from repro.core import Nym, NymUsageModel


class TestNymUsageModel:
    def test_ephemeral_is_not_quasi_persistent(self):
        assert not NymUsageModel.EPHEMERAL.quasi_persistent

    def test_persistent_and_preconfigured_are(self):
        assert NymUsageModel.PERSISTENT.quasi_persistent
        assert NymUsageModel.PRECONFIGURED.quasi_persistent

    def test_only_persistent_saves_each_session(self):
        assert NymUsageModel.PERSISTENT.saves_after_each_session
        assert not NymUsageModel.PRECONFIGURED.saves_after_each_session
        assert not NymUsageModel.EPHEMERAL.saves_after_each_session


class TestNym:
    def _nym(self, model=NymUsageModel.EPHEMERAL):
        return Nym(name="alice", usage_model=model, anonymizer_kind="tor", created_at=0.0)

    def test_ephemeral_flag(self):
        assert self._nym().ephemeral
        assert not self._nym(NymUsageModel.PERSISTENT).ephemeral

    def test_bind_account(self):
        nym = self._nym()
        nym.bind_account("twitter.com", "pseudonym123")
        assert nym.accounts == {"twitter.com": "pseudonym123"}

    def test_storage_location_default(self):
        assert self._nym().storage_location() == "local/alice"

    def test_storage_location_with_provider(self):
        nym = self._nym()
        nym.storage_provider = "dropbox.com"
        nym.storage_blob = "alice.nymbox"
        assert nym.storage_location() == "dropbox.com/alice.nymbox"

    def test_repr_mentions_model(self):
        assert "ephemeral" in repr(self._nym())
