"""The seeded chaos scenario: survival and byte-identical reproducibility."""

import pytest

from repro.faults.chaos import run_chaos


@pytest.fixture(scope="module")
def chaos_run():
    return run_chaos(seed=7, quick=True)


class TestChaosSurvival:
    def test_scenario_survives(self, chaos_run):
        manager, report = chaos_run
        assert report.survived, report.summary()

    def test_required_fault_kinds_delivered(self, chaos_run):
        """The acceptance scenario: >=1 relay churn, >=1 cloud upload
        failure, >=1 VM crash — all delivered, none skipped."""
        _, report = chaos_run
        outcomes = {e["kind"]: e["outcome"] for e in report.injected}
        assert outcomes.get("tor.relay_churn") == "churned"
        assert outcomes.get("cloud.upload") == "armed"
        assert outcomes.get("vmm.crash") == "crashed"

    def test_crash_recovered_via_persistence(self, chaos_run):
        manager, report = chaos_run
        assert report.metrics.get("nym.recovered", 0) >= 1
        assert report.metrics.get("vmm.vm.crashes", 0) >= 2  # both VMs died
        # the relaunched nym ended the run alive and was closed cleanly
        steps = {s.kind: s for s in report.steps}
        assert steps["vmm.crash"].ok
        assert steps["final"].ok

    def test_retries_visible_in_metrics(self, chaos_run):
        _, report = chaos_run
        assert report.metrics.get("retry.attempts", 0) >= 1
        assert report.metrics.get("cloud.upload.retries", 0) >= 1
        backoff = report.metrics.get("retry.backoff_s")
        assert backoff and backoff["count"] >= 1
        assert report.metrics.get("tor.circuit.rebuilds", 0) >= 1

    def test_report_summary_renders(self, chaos_run):
        _, report = chaos_run
        text = report.summary()
        assert "verdict: SURVIVED" in text
        assert "tor.relay_churn" in text
        assert "retry" in text


class TestChaosMixnet:
    @pytest.fixture(scope="class")
    def mixnet_run(self):
        return run_chaos(seed=7, quick=True, anonymizer="mixnet")

    def test_mixnet_scenario_survives(self, mixnet_run):
        _, report = mixnet_run
        assert report.anonymizer == "mixnet"
        assert report.survived, report.summary()

    def test_node_crashes_delivered_and_rerouted(self, mixnet_run):
        _, report = mixnet_run
        crashes = [
            e for e in report.injected if e["kind"] == "mixnet.node_crash"
        ]
        assert len(crashes) == 2
        assert all(e["outcome"] == "node_crashed" for e in crashes)
        assert report.metrics.get("mixnet.node.crashes", 0) == 2
        steps = [s for s in report.steps if s.kind == "mixnet.node_crash"]
        assert steps and all(s.ok for s in steps)

    def test_default_tor_plan_unchanged_by_the_new_kind(self):
        """Adding mixnet churn must not move the tor run's fault draws."""
        _, tor_report = run_chaos(seed=7, quick=True)
        kinds = {e["kind"] for e in tor_report.injected}
        assert "mixnet.node_crash" not in kinds
        _, mixnet_report = run_chaos(seed=7, quick=True, anonymizer="mixnet")
        tor_times = {
            (e["kind"], e["at_s"])
            for e in tor_report.injected
        }
        mixnet_times = {
            (e["kind"], e["at_s"])
            for e in mixnet_report.injected
            if e["kind"] != "mixnet.node_crash"
        }
        assert tor_times == mixnet_times


class TestChaosDeterminism:
    def test_same_seed_runs_produce_byte_identical_journals(self):
        manager_a, report_a = run_chaos(seed=11, quick=True)
        manager_b, report_b = run_chaos(seed=11, quick=True)
        journal_a = manager_a.obs.journal.export_jsonl()
        journal_b = manager_b.obs.journal.export_jsonl()
        assert journal_a == journal_b
        assert report_a.survived and report_b.survived
        assert report_a.injected == report_b.injected

    def test_different_seeds_diverge(self, chaos_run):
        manager_a, _ = chaos_run
        manager_b, _ = run_chaos(seed=11, quick=True)
        assert (
            manager_a.obs.journal.export_jsonl()
            != manager_b.obs.journal.export_jsonl()
        )
