"""The sweep harness: grids, scoring, reports, and journal determinism."""

import json

import pytest

from repro.errors import SimulationError
from repro.sweeps import SweepPoint, build_grid, mixnet_grid, run_sweep
from repro.sweeps.grid import BASELINE_POINTS

#: a tiny grid the tests can afford to run end to end
TINY_POINTS = (
    SweepPoint("tor"),
    SweepPoint("mixnet", cover_rate_pps=2.0, mean_hop_delay_s=0.05),
)
TINY_SITES = ("bbc.co.uk",)


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_sweep(seed=7, points=TINY_POINTS, sites=TINY_SITES, idle_s=5.0)


class TestGrid:
    def test_quick_grid_shape(self):
        grid = build_grid(quick=True)
        assert len(grid) == 6  # 2 baselines + 2x2 mixnet
        assert grid[:2] == BASELINE_POINTS
        assert all(p.anonymizer == "mixnet" for p in grid[2:])

    def test_full_grid_shape(self):
        grid = build_grid(quick=False)
        assert len(grid) == 20  # 2 baselines + 2 layers x 3 covers x 3 delays

    def test_labels_are_unique(self):
        for grid in (build_grid(quick=True), build_grid(quick=False)):
            labels = [point.label for point in grid]
            assert len(labels) == len(set(labels))

    def test_mixnet_grid_order_is_deterministic(self):
        grid = mixnet_grid((1.0, 2.0), (0.1,), layer_counts=(3, 5))
        assert [p.label for p in grid] == [
            "mixnet/L3/c1/d0.1",
            "mixnet/L3/c2/d0.1",
            "mixnet/L5/c1/d0.1",
            "mixnet/L5/c2/d0.1",
        ]

    def test_point_validation(self):
        with pytest.raises(SimulationError):
            SweepPoint("socks")
        with pytest.raises(SimulationError):
            SweepPoint("mixnet", layers=0)
        with pytest.raises(SimulationError):
            SweepPoint("mixnet", cover_rate_pps=-1.0)


class TestScoring:
    def test_every_point_scored(self, tiny_sweep):
        assert [p.label for p in tiny_sweep.points] == [
            "tor",
            "mixnet/L3/c2/d0.05",
        ]
        for point in tiny_sweep.points:
            assert point.mean_page_load_s > 0.0
            assert point.bytes_carried > 0
            assert point.bandwidth_overhead > 1.0
            assert 1 <= point.anonymity_set_size <= 20
            assert point.journal_events > 0

    def test_mixnet_pays_latency_and_overhead_for_cover(self, tiny_sweep):
        tor, mixnet = tiny_sweep.points
        assert mixnet.mean_page_load_s > tor.mean_page_load_s
        assert mixnet.bandwidth_overhead > tor.bandwidth_overhead
        assert mixnet.cover_bytes > 0
        assert tor.cover_bytes == 0

    def test_tor_confirmed_in_the_report(self, tiny_sweep):
        tor = tiny_sweep.points[0]
        assert tor.confirmed
        assert tor.anonymity_set_size == 1

    def test_export_and_summary(self, tiny_sweep):
        payload = tiny_sweep.export()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["workload_sites"] == list(TINY_SITES)
        assert len(payload["points"]) == 2
        text = tiny_sweep.summary()
        assert "tor" in text
        assert "mixnet/L3/c2/d0.05" in text
        assert "largest anonymity set" in text


class TestDeterminismAndFiles:
    def test_same_seed_sweeps_write_identical_journals(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            path = tmp_path / f"sweep_{run}.jsonl"
            run_sweep(
                seed=11,
                points=TINY_POINTS,
                sites=TINY_SITES,
                idle_s=3.0,
                journal_path=str(path),
            )
            paths.append(path)
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        assert first  # not trivially empty

    def test_journal_has_per_point_headers(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_sweep(
            seed=11,
            points=TINY_POINTS,
            sites=TINY_SITES,
            idle_s=3.0,
            journal_path=str(path),
        )
        lines = path.read_text().splitlines()
        headers = [
            json.loads(line) for line in lines if "sweep_point" in line
        ]
        assert [h["sweep_point"] for h in headers] == [
            "tor",
            "mixnet/L3/c2/d0.05",
        ]
        # every line parses as JSON (headers and journal events alike)
        for line in lines:
            json.loads(line)

    def test_out_path_writes_the_report(self, tmp_path):
        out = tmp_path / "sweep.json"
        report = run_sweep(
            seed=11,
            points=TINY_POINTS[:1],
            sites=TINY_SITES,
            idle_s=1.0,
            out_path=str(out),
        )
        on_disk = json.loads(out.read_text())
        assert on_disk == report.export()
