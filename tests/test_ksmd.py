"""The background KSM daemon on the simulation timeline."""

import pytest

from repro.errors import SimulationError
from repro.memory import GuestMemory, Ksm
from repro.memory.ksmd import KsmDaemon
from repro.sim import Timeline

MIB = 1024 * 1024


def _setup(pages_per_scan=1000):
    timeline = Timeline()
    ksm = Ksm(pages_per_scan=pages_per_scan)
    for name in ("vm1", "vm2"):
        guest = GuestMemory(name, 64 * MIB)
        guest.map_image("base", 32 * MIB)
        ksm.register(guest)
    return timeline, ksm


class TestKsmDaemon:
    def test_progress_accrues_with_simulated_time(self):
        timeline, ksm = _setup()
        daemon = KsmDaemon(timeline, ksm, interval_s=2.0)
        daemon.start()
        assert ksm.stats().pages_saved == 0
        timeline.sleep(10.0)
        early = ksm.stats().pages_saved
        timeline.sleep(60.0)
        later = ksm.stats().pages_saved
        assert 0 < early < later

    def test_wakeup_cadence(self):
        timeline, ksm = _setup()
        daemon = KsmDaemon(timeline, ksm, interval_s=2.0)
        daemon.start()
        timeline.sleep(10.0)
        assert daemon.wakeups == 5

    def test_stop_halts_scanning(self):
        timeline, ksm = _setup()
        daemon = KsmDaemon(timeline, ksm, interval_s=1.0)
        daemon.start()
        timeline.sleep(3.0)
        saved = ksm.stats().pages_saved
        daemon.stop()
        timeline.sleep(30.0)
        assert ksm.stats().pages_saved == saved
        assert not daemon.running

    def test_start_is_idempotent(self):
        timeline, ksm = _setup()
        daemon = KsmDaemon(timeline, ksm, interval_s=1.0)
        daemon.start()
        daemon.start()
        timeline.sleep(2.0)
        assert daemon.wakeups == 2  # not doubled

    def test_invalid_config(self):
        timeline, ksm = _setup()
        with pytest.raises(SimulationError):
            KsmDaemon(timeline, ksm, interval_s=0)
        with pytest.raises(SimulationError):
            KsmDaemon(timeline, ksm, passes_per_wake=0)
