"""Third-party tracking: linked dossiers vs per-nym compartments."""

import pytest

from repro.guest.trackers import AdNetwork, browse_with_trackers
from repro.sim import SeededRng

SITES = {"facebook.com", "bbc.co.uk", "espn.com", "twitter.com"}


@pytest.fixture
def network(manager):
    return AdNetwork("adsync", embedded_on=SITES, rng=SeededRng(37))


class TestSingleProfileTracking:
    def test_one_browser_one_dossier(self, manager, network):
        """The pre-Nymix world: everything lands in one profile."""
        nymbox = manager.create_nym(name="everything")
        for hostname in ("facebook.com", "bbc.co.uk", "espn.com"):
            browse_with_trackers(manager, nymbox, hostname, [network])
        assert len(network.profiles) == 1
        assert network.largest_dossier() == 3
        assert network.can_link("facebook.com", "espn.com")

    def test_cookie_persists_across_visits(self, manager, network):
        nymbox = manager.create_nym(name="everything")
        a = browse_with_trackers(manager, nymbox, "facebook.com", [network])
        ids = set(network.profiles)
        browse_with_trackers(manager, nymbox, "facebook.com", [network])
        assert set(network.profiles) == ids  # same cookie reused

    def test_interest_segments(self, manager, network):
        nymbox = manager.create_nym(name="everything")
        browse_with_trackers(manager, nymbox, "facebook.com", [network])
        browse_with_trackers(manager, nymbox, "espn.com", [network])
        profile = next(iter(network.profiles.values()))
        assert {"social", "sports"} <= profile.interests()

    def test_not_embedded_not_observed(self, manager, network):
        nymbox = manager.create_nym(name="everything")
        browse_with_trackers(manager, nymbox, "gmail.com", [network])
        assert network.profiles == {}


class TestPerNymCompartments:
    def test_roles_get_disjoint_dossiers(self, manager, network):
        """Alice's defense: one nym per role, tracker profiles disjoint."""
        social = manager.create_nym(name="social")
        news = manager.create_nym(name="news")
        browse_with_trackers(manager, social, "facebook.com", [network])
        browse_with_trackers(manager, social, "twitter.com", [network])
        browse_with_trackers(manager, news, "bbc.co.uk", [network])
        assert len(network.profiles) == 2
        assert not network.can_link("facebook.com", "bbc.co.uk")
        assert network.can_link("facebook.com", "twitter.com")  # same role: fine

    def test_ephemeral_nym_resets_tracking_identity(self, manager, network):
        nymbox = manager.create_nym(name="reader")
        browse_with_trackers(manager, nymbox, "bbc.co.uk", [network])
        first_ids = set(network.profiles)
        manager.discard_nym(nymbox)
        fresh = manager.create_nym(name="reader")
        browse_with_trackers(manager, fresh, "bbc.co.uk", [network])
        assert len(network.profiles) == 2  # new cookie, new stub
        assert set(network.profiles) != first_ids

    def test_persistent_nym_keeps_one_identity_within_its_role(self, manager, network):
        """Persistence trades tracking-reset for convenience — within the
        role only, which is the §3.5 design point."""
        manager.create_cloud_account("dropbox.com", "u", "p")
        nymbox = manager.create_nym(name="social")
        browse_with_trackers(manager, nymbox, "facebook.com", [network])
        manager.store_nym(nymbox, password="pw", provider_host="dropbox.com", account_username="u")
        manager.discard_nym(nymbox)
        restored = manager.load_nym("social", "pw")
        # The jar came back, but our in-memory tracker-id map is the
        # tracker's server-side view; a restored nym re-presents the same
        # *cookie jar*, so the tracker can resume the same profile.
        assert f"third-party:{network.name}" in restored.browser.cookies

    def test_dossier_size_bounded_by_role(self, manager, network):
        for role, hostname in (
            ("a", "facebook.com"), ("b", "bbc.co.uk"), ("c", "espn.com"),
        ):
            nymbox = manager.create_nym(name=role)
            browse_with_trackers(manager, nymbox, hostname, [network])
        assert network.largest_dossier() == 1
