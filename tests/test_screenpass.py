"""Trusted password entry vs in-guest keyloggers (§6 / ScreenPass [47])."""

import pytest

from repro.core.screenpass import GuestKeylogger, TrustedPasswordEntry
from repro.errors import NymixError


@pytest.fixture
def entry():
    return TrustedPasswordEntry()


@pytest.fixture
def infected(manager, entry):
    nymbox = manager.create_nym(name="victim")
    keylogger = GuestKeylogger()
    entry.keyloggers.append(keylogger)
    return nymbox, keylogger


class TestKeyloggerBaseline:
    def test_in_guest_typing_is_captured(self, manager, entry, infected):
        nymbox, keylogger = infected
        manager.timed_browse(nymbox, "twitter.com")
        entry.type_in_guest(nymbox, "twitter.com", "pseudo", "hunter2")
        assert keylogger.captured_text(nymbox.anonvm.vm_id) == "hunter2"

    def test_login_still_works(self, manager, entry, infected):
        nymbox, _ = infected
        manager.timed_browse(nymbox, "twitter.com")
        entry.type_in_guest(nymbox, "twitter.com", "pseudo", "hunter2")
        assert nymbox.browser.has_credentials_for("twitter.com")


class TestTrustedPath:
    def test_trusted_entry_leaks_nothing(self, manager, entry, infected):
        nymbox, keylogger = infected
        manager.timed_browse(nymbox, "twitter.com")
        entry.enroll_security_image("victim", "blue-sailboat")
        entry.enter_via_trusted_path(nymbox, "twitter.com", "pseudo", "hunter2")
        assert keylogger.captured_text(nymbox.anonvm.vm_id) == ""
        assert nymbox.browser.has_credentials_for("twitter.com")

    def test_requires_enrolled_image(self, manager, entry, infected):
        nymbox, _ = infected
        with pytest.raises(NymixError):
            entry.enter_via_trusted_path(nymbox, "twitter.com", "u", "p")

    def test_banner_identifies_genuine_dialog(self, entry):
        entry.enroll_security_image("victim", "blue-sailboat")
        banner = entry.dialog_banner("victim")
        assert "blue-sailboat" in banner
        assert entry.is_genuine_dialog("victim", banner)

    def test_spoofed_dialog_detectable(self, entry):
        """A guest-drawn fake cannot reproduce the per-nym image."""
        entry.enroll_security_image("victim", "blue-sailboat")
        fake = "[hypervisor dialog | generic-lock-icon]"
        assert not entry.is_genuine_dialog("victim", fake)

    def test_per_nym_images_differ(self, entry):
        entry.enroll_security_image("a", "sailboat")
        entry.enroll_security_image("b", "mountain")
        assert entry.dialog_banner("a") != entry.dialog_banner("b")

    def test_entry_counters(self, manager, entry, infected):
        nymbox, _ = infected
        manager.timed_browse(nymbox, "twitter.com")
        entry.enroll_security_image("victim", "img")
        entry.type_in_guest(nymbox, "twitter.com", "u", "p1")
        entry.enter_via_trusted_path(nymbox, "twitter.com", "u", "p2")
        assert entry.entries_typed_in_guest == 1
        assert entry.entries_via_trusted_path == 1

    def test_empty_image_rejected(self, entry):
        with pytest.raises(NymixError):
            entry.enroll_security_image("victim", "")
