"""Hypervisor: admission, nymbox wiring, isolation, memory accounting, VirtFS."""

import pytest

from repro.errors import FileSystemError, HypervisorError, OutOfMemoryError
from repro.memory.physmem import GIB, MIB
from repro.net.internet import Internet
from repro.sim import Timeline
from repro.vmm import HostSpec, Hypervisor, SharedFolder, VmSpec
from repro.vmm.baseimage import build_base_layer
from repro.unionfs.verify import TamperDetected
from repro.unionfs.layer import Layer


@pytest.fixture
def timeline():
    return Timeline(seed=2)


@pytest.fixture
def hypervisor(timeline):
    return Hypervisor(timeline, Internet(timeline))


def _nymbox(hv, index=1):
    anon = hv.create_vm(VmSpec.anonvm(), name=f"nym{index}-anon")
    comm = hv.create_vm(VmSpec.commvm(), name=f"nym{index}-comm")
    hv.wire_nymbox(anon, comm)
    hv.attach_nat(comm)
    return anon, comm


class TestVmFactory:
    def test_create_and_boot(self, hypervisor):
        vm = hypervisor.create_vm(VmSpec.anonvm())
        vm.boot()
        assert vm.running

    def test_duplicate_name_rejected(self, hypervisor):
        hypervisor.create_vm(VmSpec.anonvm(), name="x")
        with pytest.raises(HypervisorError):
            hypervisor.create_vm(VmSpec.commvm(), name="x")

    def test_admission_control(self, timeline):
        hv = Hypervisor(
            timeline, Internet(timeline), host=HostSpec(ram_bytes=2 * GIB)
        )
        hv.create_vm(VmSpec.anonvm(ram_bytes=512 * MIB))
        with pytest.raises(OutOfMemoryError):
            hv.create_vm(VmSpec.anonvm(ram_bytes=1024 * MIB))

    def test_destroy_releases_memory(self, hypervisor):
        vm = hypervisor.create_vm(VmSpec.anonvm())
        vm.boot()
        used = hypervisor.memory.stats().guest_allocated_bytes
        hypervisor.destroy_vm(vm)
        assert hypervisor.memory.stats().guest_allocated_bytes < used
        assert vm.memory.erased

    def test_destroy_discards_fs(self, hypervisor):
        vm = hypervisor.create_vm(VmSpec.anonvm())
        vm.boot()
        vm.fs.write("/home/user/secret", b"data")
        hypervisor.destroy_vm(vm)
        assert vm.fs.ram_bytes == 0


class TestNymboxWiring:
    def test_anonvm_reaches_own_commvm_only(self, hypervisor):
        anon1, comm1 = _nymbox(hypervisor, 1)
        anon2, comm2 = _nymbox(hypervisor, 2)
        assert hypervisor.probe_cross_vm(anon1, comm1)
        assert hypervisor.probe_cross_vm(anon2, comm2)
        assert not hypervisor.probe_cross_vm(anon1, comm2)
        assert not hypervisor.probe_cross_vm(anon1, anon2)
        assert not hypervisor.probe_cross_vm(comm1, comm2)

    def test_identical_guest_addressing(self, hypervisor):
        anon1, _ = _nymbox(hypervisor, 1)
        anon2, _ = _nymbox(hypervisor, 2)
        assert str(anon1.primary_nic.mac) == str(anon2.primary_nic.mac)
        assert str(anon1.primary_nic.ip) == str(anon2.primary_nic.ip)

    def test_destroy_takes_wire_down(self, hypervisor):
        anon, comm = _nymbox(hypervisor, 1)
        hypervisor.destroy_vm(anon)
        assert not hypervisor.probe_cross_vm(comm, anon)

    def test_local_network_unreachable(self, hypervisor):
        _, comm = _nymbox(hypervisor, 1)
        assert not hypervisor.probe_local_network(comm)


class TestHostBringUp:
    def test_dhcp_acquire(self, hypervisor):
        ip = hypervisor.acquire_lan_address()
        assert str(ip).startswith("192.168.1.")
        assert hypervisor.host_capture.by_label() == {"dhcp": 4}


class TestMemoryAccounting:
    def test_snapshot_counts_ram_and_fs(self, hypervisor):
        anon, comm = _nymbox(hypervisor, 1)
        anon.boot()
        comm.boot()
        anon.fs.write("/home/user/cache", b"x" * (1 * MIB))
        snap = hypervisor.memory_snapshot()
        assert snap.guest_ram_bytes == (384 + 128) * MIB
        assert snap.fs_bytes >= 1 * MIB

    def test_ksm_reduces_usage_across_nymboxes(self, hypervisor):
        for index in range(4):
            anon, comm = _nymbox(hypervisor, index)
            anon.boot()
            comm.boot()
        hypervisor.ksm.run_to_completion()
        snap = hypervisor.memory_snapshot()
        assert snap.ksm_pages_saved > 0

    def test_expected_per_nymbox(self, hypervisor):
        expected = hypervisor.expected_bytes_per_nymbox(VmSpec.anonvm(), VmSpec.commvm())
        assert expected == (384 + 128 + 128 + 16) * MIB


class TestVerifiedBoot:
    def test_tamper_halts_hypervisor(self, timeline):
        hv = Hypervisor(timeline, Internet(timeline), verify_base_image=True)
        # Swap the base layer under the hypervisor (the evil-USB scenario)
        # while keeping the published root.
        tampered_files = {p: hv.base_layer.read(p) for p in hv.base_layer.paths()}
        tampered_files["/usr/bin/tor"] = b"#!ELF backdoored tor"
        tampered = Layer("base(nymix)", files=tampered_files, read_only=True)
        vm = hv.create_vm(VmSpec.commvm(), base_layer=tampered)
        with pytest.raises(TamperDetected):
            vm.fs.read("/usr/bin/tor")
        assert hv.emergency_halted
        assert hv.tamper_log == ["/usr/bin/tor"]
        with pytest.raises(HypervisorError):
            hv.create_vm(VmSpec.anonvm())

    def test_clean_base_verifies(self, timeline):
        hv = Hypervisor(timeline, Internet(timeline), verify_base_image=True)
        vm = hv.create_vm(VmSpec.anonvm())
        assert vm.fs.read("/usr/bin/tor").startswith(b"#!ELF")
        assert not hv.emergency_halted


class TestSharedFolder:
    def test_write_read_move(self):
        a = SharedFolder("sanivm-out")
        b = SharedFolder("anonvm-in")
        a.write("/photo.jpg", b"scrubbed")
        a.move_to("/photo.jpg", b)
        assert b.read("/photo.jpg") == b"scrubbed"
        assert not a.exists("/photo.jpg")

    def test_read_only_folder(self):
        folder = SharedFolder("ro", read_only=True)
        with pytest.raises(FileSystemError):
            folder.write("/x", b"1")

    def test_missing_file(self):
        with pytest.raises(FileSystemError):
            SharedFolder("f").read("/missing")

    def test_used_bytes(self):
        folder = SharedFolder("f")
        folder.write("/a", b"123")
        assert folder.used_bytes == 3
