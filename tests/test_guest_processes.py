"""Homogenized guest process tables."""

from repro.attacks import distinguishing_bits
from repro.guest.processes import process_fingerprint, process_table, ps_output


class TestProcessTables:
    def test_anonvm_runs_browser_not_tor(self, manager):
        nymbox = manager.create_nym(name="a")
        names = {p.name for p in process_table(nymbox.anonvm)}
        assert any("chromium" in n for n in names)
        assert "tor" not in names

    def test_commvm_runs_tor_not_browser(self, manager):
        nymbox = manager.create_nym(name="a")
        names = {p.name for p in process_table(nymbox.commvm)}
        assert "tor" in names
        assert not any("chromium" in n for n in names)

    def test_identical_across_nyms(self, manager):
        """PID-for-PID identical: the process surface leaks zero bits."""
        nyms = [manager.create_nym(name=f"n{i}") for i in range(3)]
        fingerprints = [process_fingerprint(n.anonvm) for n in nyms]
        assert distinguishing_bits(fingerprints) == 0.0

    def test_ps_output_format(self, manager):
        nymbox = manager.create_nym(name="a")
        out = ps_output(nymbox.anonvm)
        assert out.splitlines()[0].startswith("  PID")
        assert "chromium" in out

    def test_roles_differ_from_each_other(self, manager):
        """Roles are distinguishable (by design); instances are not."""
        nymbox = manager.create_nym(name="a")
        assert process_fingerprint(nymbox.anonvm) != process_fingerprint(nymbox.commvm)
