"""Multi-authority directory voting."""

import pytest

from repro.anonymizers.tor.directory import DirectoryAuthority
from repro.anonymizers.tor.relay import RelayDescriptor
from repro.anonymizers.tor.voting import (
    DirectoryVote,
    cast_vote,
    tally_votes,
    verify_consensus,
)
from repro.errors import AnonymizerError
from repro.sim import SeededRng


@pytest.fixture
def relays():
    return [r.descriptor for r in DirectoryAuthority(SeededRng(31), relay_count=12).relays()]


def _vote(name, descriptors, flag_override=None):
    vote = cast_vote(name, descriptors)
    if flag_override:
        flags = dict(vote.flags)
        flags.update(flag_override)
        vote = DirectoryVote(authority=name, descriptors=vote.descriptors, flags=flags)
    return vote


class TestHonestVoting:
    def test_unanimous_votes_reproduce_population(self, relays):
        votes = [_vote(f"auth{i}", relays) for i in range(3)]
        signed = tally_votes(votes)
        assert len(signed.consensus.descriptors) == len(relays)
        assert signed.quorum

    def test_flags_preserved_under_agreement(self, relays):
        votes = [_vote(f"auth{i}", relays) for i in range(3)]
        signed = tally_votes(votes)
        original = {d.nickname: d.flags for d in relays}
        for descriptor in signed.consensus.descriptors:
            assert descriptor.flags == original[descriptor.nickname]

    def test_deterministic(self, relays):
        votes = [_vote(f"auth{i}", relays) for i in range(3)]
        a = tally_votes(votes)
        b = tally_votes(votes)
        assert [d.nickname for d in a.consensus.descriptors] == [
            d.nickname for d in b.consensus.descriptors
        ]


class TestByzantineAuthority:
    def test_single_authority_cannot_inject_relay(self, relays):
        evil_relay = RelayDescriptor(
            nickname="evilrelay",
            ip=relays[0].ip,
            or_port=9001,
            bandwidth_bps=10**9,  # tempting bandwidth
            flags=frozenset({"Guard", "Exit", "Running", "Valid"}),
            onion_public_key=b"\x66" * 32,
        )
        votes = [
            _vote("honest1", relays),
            _vote("honest2", relays),
            _vote("evil", list(relays) + [evil_relay]),
        ]
        signed = tally_votes(votes)
        nicknames = {d.nickname for d in signed.consensus.descriptors}
        assert "evilrelay" not in nicknames

    def test_single_authority_cannot_grant_guard_flag(self, relays):
        target = next(d for d in relays if not d.is_guard)
        votes = [
            _vote("honest1", relays),
            _vote("honest2", relays),
            _vote("evil", relays, flag_override={
                target.nickname: target.flags | {"Guard"}
            }),
        ]
        signed = tally_votes(votes)
        voted = signed.consensus.by_nickname(target.nickname)
        assert "Guard" not in voted.flags

    def test_single_authority_cannot_drop_relay(self, relays):
        victim = relays[0]
        votes = [
            _vote("honest1", relays),
            _vote("honest2", relays),
            _vote("evil", relays[1:]),  # omits the victim
        ]
        signed = tally_votes(votes)
        assert victim.nickname in {d.nickname for d in signed.consensus.descriptors}

    def test_majority_collusion_succeeds(self, relays):
        """The model's honest bound: two of three colluding wins."""
        votes = [
            _vote("evil1", relays[1:]),
            _vote("evil2", relays[1:]),
            _vote("honest", relays),
        ]
        signed = tally_votes(votes)
        assert relays[0].nickname not in {
            d.nickname for d in signed.consensus.descriptors
        }


class TestClientVerification:
    def test_quorum_of_known_authorities(self, relays):
        votes = [_vote(f"auth{i}", relays) for i in range(3)]
        signed = tally_votes(votes)
        assert verify_consensus(signed, known_authorities={"auth0", "auth1", "auth2"})

    def test_unknown_signers_rejected(self, relays):
        votes = [_vote(f"rogue{i}", relays) for i in range(3)]
        signed = tally_votes(votes)
        assert not verify_consensus(signed, known_authorities={"auth0", "auth1", "auth2"})

    def test_partial_signatures_insufficient(self, relays):
        votes = [_vote("auth0", relays)]
        signed = tally_votes(votes)
        assert not verify_consensus(
            signed, known_authorities={"auth0", "auth1", "auth2"}
        )


class TestTallyValidation:
    def test_zero_votes_rejected(self):
        with pytest.raises(AnonymizerError):
            tally_votes([])

    def test_duplicate_authorities_rejected(self, relays):
        votes = [_vote("auth0", relays), _vote("auth0", relays)]
        with pytest.raises(AnonymizerError):
            tally_votes(votes)
