"""NAT, DHCP, DNS, Internet registry, and the leak analyzer."""

import pytest

from repro.errors import NetworkError, UnreachableError
from repro.net import (
    DnsResolver,
    Internet,
    LeakAnalyzer,
    MasqueradeNat,
    PacketCapture,
    Server,
)
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.dhcp import DhcpClient, DhcpServer
from repro.net.frame import Ipv4Packet, TcpSegment, UdpDatagram
from repro.net.link import VirtualWire
from repro.net.nic import VirtualNic
from repro.sim import Timeline


@pytest.fixture
def timeline():
    return Timeline(seed=1)


@pytest.fixture
def internet(timeline):
    net = Internet(timeline)
    net.add_server(Server("example.com", Ipv4Address.parse("93.184.216.34")))
    return net


@pytest.fixture
def nat(timeline, internet):
    return MasqueradeNat(
        timeline,
        "nat(test)",
        Ipv4Address.parse("203.0.113.77"),
        internet,
        host_capture=PacketCapture(timeline),
    )


def _udp_packet(dst, src="10.0.2.2", label="anonymizer"):
    return Ipv4Packet(
        src=Ipv4Address.parse(src),
        dst=Ipv4Address.parse(dst),
        transport=UdpDatagram(src_port=5000, dst_port=443, payload=b"hi", label=label),
    )


class TestMasqueradeNat:
    def test_translates_source(self, nat):
        out = nat.forward(_udp_packet("93.184.216.34"))
        assert str(out.src) == "203.0.113.77"
        assert out.transport.src_port >= 49152

    def test_stable_binding_per_connection(self, nat):
        a = nat.forward(_udp_packet("93.184.216.34"))
        b = nat.forward(_udp_packet("93.184.216.34"))
        assert a.transport.src_port == b.transport.src_port
        assert nat.active_bindings == 1

    def test_distinct_connections_distinct_ports(self, nat):
        a = nat.forward(_udp_packet("93.184.216.34"))
        tcp = Ipv4Packet(
            src=Ipv4Address.parse("10.0.2.2"),
            dst=Ipv4Address.parse("93.184.216.34"),
            transport=TcpSegment(src_port=5000, dst_port=443, label="anonymizer"),
        )
        b = nat.forward(tcp)
        assert a.transport.src_port != b.transport.src_port

    def test_private_destinations_blocked(self, nat):
        """Nymboxes must never reach local intranets (§5.1)."""
        with pytest.raises(UnreachableError):
            nat.forward(_udp_packet("192.168.1.10"))
        assert nat.blocked_packets == 1

    def test_unknown_destination_unreachable(self, nat):
        with pytest.raises(UnreachableError):
            nat.forward(_udp_packet("8.8.8.8"))

    def test_ttl_decrements(self, nat):
        out = nat.forward(_udp_packet("93.184.216.34"))
        assert out.ttl == 63

    def test_capture_records_flows(self, nat):
        nat.forward(_udp_packet("93.184.216.34"))
        nat.stream(Ipv4Address.parse("93.184.216.34"), 10_000, label="anonymizer")
        assert len(nat.host_capture.entries) == 2

    def test_stream_blocked_to_private(self, nat):
        with pytest.raises(UnreachableError):
            nat.stream(Ipv4Address.parse("10.0.0.1"), 100, label="x")


class TestDhcp:
    def test_full_handshake(self, timeline):
        server_nic = VirtualNic(
            "dhcp-server", MacAddress.parse("00:16:3e:00:00:01"), Ipv4Address.parse("192.168.1.1")
        )
        client_nic = VirtualNic("host-eth0", MacAddress.parse("00:16:3e:00:00:02"))
        VirtualWire(timeline, server_nic, client_nic, name="lan")
        DhcpServer(timeline, server_nic, Ipv4Address.parse("192.168.1.100"))
        client = DhcpClient(timeline, client_nic)
        ip = client.acquire()
        assert str(ip) == "192.168.1.100"
        assert client_nic.ip == ip

    def test_same_mac_same_lease(self, timeline):
        server_nic = VirtualNic(
            "dhcp-server", MacAddress.parse("00:16:3e:00:00:01"), Ipv4Address.parse("192.168.1.1")
        )
        client_nic = VirtualNic("host-eth0", MacAddress.parse("00:16:3e:00:00:02"))
        VirtualWire(timeline, server_nic, client_nic)
        server = DhcpServer(timeline, server_nic, Ipv4Address.parse("192.168.1.100"))
        DhcpClient(timeline, client_nic).acquire()
        first = server.lease_for(client_nic.mac)
        DhcpClient(timeline, client_nic)._broadcast(b"DISCOVER")
        timeline.sleep(1.0)
        assert server.lease_for(client_nic.mac).ip == first.ip

    def test_timeout_without_server(self, timeline):
        client_nic = VirtualNic("host-eth0", MacAddress.parse("00:16:3e:00:00:02"))
        client = DhcpClient(timeline, client_nic)
        with pytest.raises(NetworkError):
            client.acquire(timeout_s=0.5)

    def test_pool_exhaustion(self, timeline):
        server_nic = VirtualNic(
            "dhcp-server", MacAddress.parse("00:16:3e:00:00:01"), Ipv4Address.parse("192.168.1.1")
        )
        server = DhcpServer(timeline, server_nic, Ipv4Address.parse("192.168.1.100"), pool_size=1)
        server._leases[MacAddress(1)] = server.lease_for(MacAddress(1)) or type(
            "L", (), {"ip": Ipv4Address.parse("192.168.1.100")}
        )()
        with pytest.raises(NetworkError):
            server._next_free_ip()


class TestDnsResolver:
    def test_resolves_and_logs_path(self, internet):
        resolver = DnsResolver(internet, via="anonymizer")
        ip = resolver.resolve("example.com")
        assert str(ip) == "93.184.216.34"
        assert resolver.query_log[0].answered_by == "anonymizer"
        assert resolver.direct_queries() == []

    def test_direct_queries_flagged(self, internet):
        resolver = DnsResolver(internet, via="direct")
        resolver.resolve("example.com")
        assert len(resolver.direct_queries()) == 1

    def test_nxdomain(self, internet):
        with pytest.raises(UnreachableError):
            DnsResolver(internet).resolve("nonexistent.example")


class TestInternet:
    def test_duplicate_registration_rejected(self, internet):
        with pytest.raises(NetworkError):
            internet.add_server(Server("example.com", Ipv4Address.parse("1.1.1.1")))
        with pytest.raises(NetworkError):
            internet.add_server(Server("other.com", Ipv4Address.parse("93.184.216.34")))

    def test_fetch_advances_time(self, timeline, internet):
        before = timeline.now
        result = internet.fetch("example.com")
        assert timeline.now > before
        assert result.response.status == 200

    def test_fetch_records_client_ip(self, internet):
        src = Ipv4Address.parse("198.51.101.9")
        internet.fetch("example.com", src_ip=src)
        assert internet.server_named("example.com").seen_client_ips == [src]

    def test_unknown_host(self, internet):
        with pytest.raises(UnreachableError):
            internet.fetch("missing.example")


class TestLeakAnalyzer:
    def test_clean_capture(self, timeline):
        capture = PacketCapture(timeline)
        capture.record_flow("uplink", "nat", "anonymizer", 100)
        capture.record_flow("uplink", "host", "dhcp", 100)
        report = LeakAnalyzer().analyze(capture)
        assert report.clean
        assert "CLEAN" in report.summary()

    def test_leak_detected(self, timeline):
        capture = PacketCapture(timeline)
        capture.record_flow("uplink", "anonvm", "", 100)
        report = LeakAnalyzer().analyze(capture)
        assert not report.clean
        assert len(report.leaks) == 1

    def test_custom_policy(self, timeline):
        capture = PacketCapture(timeline)
        capture.record_flow("uplink", "x", "ntp", 100)
        assert not LeakAnalyzer().analyze(capture).clean
        assert LeakAnalyzer(allowed_labels=("ntp",)).analyze(capture).clean
