"""Wave-batched admission must be indistinguishable from sequential place().

`Fleet.place_many` plans a whole arrival wave against vectorized per-host
state and executes through the sequential machinery, verifying each
prediction as it lands.  These tests drive the same seeded workload
through `place()` one arrival at a time and through `place_many`, and
require byte-identical event journals, identical per-host residency, and
identical chosen hosts — for every policy, including waves that trip
pressure evacuation mid-stream and waves that exhaust capacity.
"""

import pytest

from repro.errors import FleetCapacityError, FleetError
from repro.fleet.fleet import Fleet, PlacementRequest
from repro.fleet.placement import PlacementPolicy
from repro.sim.clock import Timeline
from repro.tenancy.policy import FleetPolicies

POLICIES = ["first-fit", "least-loaded", "ksm-aware"]


def build_fleet(policy, seed=1234, hosts=4, high_watermark=0.90,
                low_watermark=0.80, **kwargs):
    timeline = Timeline(seed=seed)
    policies = FleetPolicies(
        placement=policy,
        high_watermark=high_watermark,
        low_watermark=low_watermark,
    )
    return timeline, Fleet(timeline, hosts=hosts, policies=policies, **kwargs)


def wave(n, images=3):
    return [(f"nym-{i:03d}", f"img-{i % images}") for i in range(n)]


def run_sequential(fleet, requests):
    boxes = []
    for name, image_id in requests:
        try:
            boxes.append(fleet.place(name, image_id))
        except FleetCapacityError:
            boxes.append(None)
    return boxes


def snapshot(timeline, fleet, boxes):
    return (
        timeline.obs.journal.export_jsonl(),
        {h.host_id: sorted(h.residents) for h in fleet.host_list()},
        [box.host_id if box else None for box in boxes],
    )


class TestWaveEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_plain_wave_matches_sequential(self, policy):
        tl_a, fleet_a = build_fleet(policy)
        boxes_a = run_sequential(fleet_a, wave(24))
        tl_b, fleet_b = build_fleet(policy)
        boxes_b = fleet_b.place_many(wave(24), on_reject="skip")
        assert snapshot(tl_a, fleet_a, boxes_a) == snapshot(tl_b, fleet_b, boxes_b)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_wave_with_evacuations_matches_sequential(self, policy):
        # Overfill deliberately: placements trip the high watermark and
        # evacuate mid-wave, forcing the planner to replan from live state.
        tl_a, fleet_a = build_fleet(policy, hosts=2)
        boxes_a = run_sequential(fleet_a, wave(120))
        assert fleet_a.evacuations > 0  # the scenario must actually diverge
        tl_b, fleet_b = build_fleet(policy, hosts=2)
        boxes_b = fleet_b.place_many(wave(120), on_reject="skip")
        assert fleet_b.evacuations == fleet_a.evacuations
        assert snapshot(tl_a, fleet_a, boxes_a) == snapshot(tl_b, fleet_b, boxes_b)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_capacity_exhaustion_skip_mode(self, policy):
        # high=1.0 disables evacuation so the fleet genuinely fills up.
        marks = dict(high_watermark=1.0, low_watermark=0.99)
        tl_a, fleet_a = build_fleet(policy, hosts=2, **marks)
        boxes_a = run_sequential(fleet_a, wave(80, images=2))
        assert any(box is None for box in boxes_a)
        tl_b, fleet_b = build_fleet(policy, hosts=2, **marks)
        boxes_b = fleet_b.place_many(wave(80, images=2), on_reject="skip")
        assert snapshot(tl_a, fleet_a, boxes_a) == snapshot(tl_b, fleet_b, boxes_b)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_capacity_exhaustion_raise_mode(self, policy):
        marks = dict(high_watermark=1.0, low_watermark=0.99)
        tl_a, fleet_a = build_fleet(policy, hosts=2, **marks)
        err_a = None
        try:
            for name, image_id in wave(80, images=2):
                fleet_a.place(name, image_id)
        except FleetCapacityError as exc:
            err_a = str(exc)
        assert err_a is not None
        tl_b, fleet_b = build_fleet(policy, hosts=2, **marks)
        with pytest.raises(FleetCapacityError) as excinfo:
            fleet_b.place_many(wave(80, images=2))
        assert str(excinfo.value) == err_a
        assert tl_a.obs.journal.export_jsonl() == tl_b.obs.journal.export_jsonl()
        assert {h.host_id: sorted(h.residents) for h in fleet_a.host_list()} == {
            h.host_id: sorted(h.residents) for h in fleet_b.host_list()
        }


class TestPlaceManyApi:
    def test_accepts_request_objects_and_arrival_shapes(self):
        _, fleet = build_fleet("first-fit")
        boxes = fleet.place_many(
            [PlacementRequest(name="a", image_id="img"), ("b", "img")]
        )
        assert [box.name for box in boxes] == ["a", "b"]
        assert set(fleet.nymboxes) == {"a", "b"}

    def test_duplicate_name_raises(self):
        _, fleet = build_fleet("first-fit")
        fleet.place("dup", "img")
        with pytest.raises(FleetError):
            fleet.place_many([("dup", "img")])

    def test_unknown_reject_mode_raises(self):
        _, fleet = build_fleet("first-fit")
        with pytest.raises(FleetError):
            fleet.place_many([("a", "img")], on_reject="ignore")

    def test_empty_wave_is_a_noop(self):
        _, fleet = build_fleet("first-fit")
        assert fleet.place_many([]) == []
        assert fleet.placements == 0

    def test_non_batch_policy_falls_back_to_sequential_planning(self):
        class Weird(PlacementPolicy):
            name = "weird"

            def choose(self, candidates, image_id):
                return candidates[-1] if candidates else None

        tl_a, fleet_a = build_fleet(Weird())
        boxes_a = run_sequential(fleet_a, wave(10))
        tl_b, fleet_b = build_fleet(Weird())
        boxes_b = fleet_b.place_many(wave(10), on_reject="skip")
        assert snapshot(tl_a, fleet_a, boxes_a) == snapshot(tl_b, fleet_b, boxes_b)

    def test_results_align_with_requests(self):
        marks = dict(high_watermark=1.0, low_watermark=0.99)
        _, fleet = build_fleet("first-fit", hosts=1, **marks)
        requests = wave(40, images=1)
        boxes = fleet.place_many(requests, on_reject="skip")
        assert len(boxes) == len(requests)
        for (name, _), box in zip(requests, boxes):
            if box is not None:
                assert box.name == name


class TestRejectionAccountingAudit:
    """skip vs raise must agree with the sequential reference, rejection
    by rejection — counters, journal bytes, and cached verdicts alike."""

    MARKS = dict(high_watermark=1.0, low_watermark=0.99)  # no evacuation

    @staticmethod
    def _rejected_count(timeline):
        return timeline.obs.metrics.counter("fleet.admission_rejected").value

    @pytest.mark.parametrize("policy", POLICIES)
    def test_skip_mode_counter_matches_sequential(self, policy):
        requests = wave(80, images=2)
        tl_a, fleet_a = build_fleet(policy, hosts=2, **self.MARKS)
        boxes_a = run_sequential(fleet_a, requests)
        rejected = sum(1 for box in boxes_a if box is None)
        assert rejected > 0
        tl_b, fleet_b = build_fleet(policy, hosts=2, **self.MARKS)
        fleet_b.place_many(requests, on_reject="skip")
        assert self._rejected_count(tl_a) == rejected
        assert self._rejected_count(tl_b) == rejected
        assert tl_a.obs.journal.export_jsonl() == tl_b.obs.journal.export_jsonl()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_raise_mode_counter_matches_sequential(self, policy):
        # The sequential reference stops at the first rejection; raise
        # mode must have counted exactly as many rejections (one) and
        # recorded exactly the same journal when it bailed.
        requests = wave(80, images=2)
        tl_a, fleet_a = build_fleet(policy, hosts=2, **self.MARKS)
        with pytest.raises(FleetCapacityError):
            for name, image_id in requests:
                fleet_a.place(name, image_id)
        tl_b, fleet_b = build_fleet(policy, hosts=2, **self.MARKS)
        with pytest.raises(FleetCapacityError):
            fleet_b.place_many(requests, on_reject="raise")
        assert self._rejected_count(tl_a) == self._rejected_count(tl_b) == 1
        assert tl_a.obs.journal.export_jsonl() == tl_b.obs.journal.export_jsonl()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_mid_wave_capacity_error_leaves_caches_consistent(self, policy):
        # After place_many raises mid-wave, the admission-verdict cache
        # and every host's memory-snapshot cache must match a fresh
        # recomputation from live hypervisor state.
        tl, fleet = build_fleet(policy, hosts=2, **self.MARKS)
        with pytest.raises(FleetCapacityError):
            fleet.place_many(wave(80, images=2), on_reject="raise")
        for host in fleet.host_list():
            assert host.memory_snapshot() == host.hypervisor.memory_snapshot()
        before = [h.host_id for h in fleet._candidates()]
        cached = dict(fleet._admission_cache)
        fleet._admission_cache.clear()
        assert [h.host_id for h in fleet._candidates()] == before
        assert fleet._admission_cache == cached

    @pytest.mark.parametrize("on_reject", ["skip", "raise"])
    def test_fleet_survives_mid_wave_rejection(self, on_reject):
        # The fleet must keep working after a rejected wave: freeing
        # space admits the next arrival, identically in both modes.
        tl, fleet = build_fleet("first-fit", hosts=2, **self.MARKS)
        requests = wave(80, images=2)
        if on_reject == "raise":
            with pytest.raises(FleetCapacityError):
                fleet.place_many(requests, on_reject="raise")
        else:
            fleet.place_many(requests, on_reject="skip")
        resident_before = len(fleet.nymboxes)
        victim = sorted(fleet.nymboxes)[0]
        fleet.remove(victim)
        box = fleet.place("late-arrival", "img-0")
        assert box is not None
        assert len(fleet.nymboxes) == resident_before
        with pytest.raises(FleetCapacityError):
            fleet.place("over-capacity", "img-0")


class TestIncrementalResidency:
    def test_image_counts_track_place_and_remove(self):
        _, fleet = build_fleet("ksm-aware")
        fleet.place_many([("a", "img-0"), ("b", "img-0"), ("c", "img-1")])
        counts = {}
        for host in fleet.host_list():
            for image, count in host.image_counts().items():
                counts[image] = counts.get(image, 0) + count
        assert counts == {"img-0": 2, "img-1": 1}
        fleet.remove("a")
        fleet.remove("c")
        counts = {}
        for host in fleet.host_list():
            for image, count in host.image_counts().items():
                counts[image] = counts.get(image, 0) + count
        assert counts == {"img-0": 1}

    def test_host_images_derive_from_residents(self):
        _, fleet = build_fleet("ksm-aware")
        fleet.place_many([("a", "img-0"), ("b", "img-1")])
        for host in fleet.host_list():
            expected = {box.image_id for box in host.residents.values()}
            assert host.images() == expected
            for image in expected:
                assert host.image_count(image) >= 1
