"""WiFi identity: radiometric fingerprints, MAC randomization, social mixes (§7)."""

import pytest

from repro.errors import NetworkError
from repro.net.wifi import (
    RadioObserver,
    WifiSocialMix,
    make_card,
    session_transmission,
)
from repro.sim import SeededRng


@pytest.fixture
def rng():
    return SeededRng(13)


class TestWifiCards:
    def test_sequential_serials_have_distinct_signatures(self, rng):
        """Brik et al. [7]: same manufacturer, sequential serials, still
        distinguishable by analog fingerprint."""
        a = make_card(rng, "ACME-0001")
        b = make_card(rng, "ACME-0002")
        assert not a.signature.matches(b.signature)

    def test_mac_randomization_changes_mac_only(self, rng):
        card = make_card(rng, "ACME-0001")
        original_mac = card.active_mac
        original_sig = card.signature
        card.randomize_mac(rng)
        assert card.active_mac != original_mac
        assert card.signature is original_sig  # analog identity unchanged

    def test_randomized_mac_is_locally_administered(self, rng):
        card = make_card(rng, "ACME-0001")
        mac = card.randomize_mac(rng)
        second_octet_bit = (mac.value >> 41) & 1
        assert second_octet_bit == 1

    def test_reset_mac(self, rng):
        card = make_card(rng, "ACME-0001")
        card.randomize_mac(rng)
        card.reset_mac()
        assert card.active_mac == card.burned_in_mac


class TestRadioAdversary:
    def test_mac_randomization_defeats_mac_tracking(self, rng):
        card = make_card(rng, "ACME-0001")
        mac_db = {str(card.burned_in_mac): "bob"}
        observer = RadioObserver()
        card.randomize_mac(rng)
        transmission = session_transmission(card)
        assert observer.identify_by_mac(transmission, mac_db) is None

    def test_radiometric_tracking_survives_mac_randomization(self, rng):
        """The §7 point: well-equipped adversaries fingerprint the radio."""
        card = make_card(rng, "ACME-0001")
        observer = RadioObserver()
        observer.enroll(session_transmission(card), "bob")
        card.randomize_mac(rng)
        assert observer.identify(session_transmission(card)) == "bob"

    def test_unknown_device_unidentified(self, rng):
        observer = RadioObserver()
        observer.enroll(session_transmission(make_card(rng, "A-1")), "bob")
        stranger = make_card(rng, "B-9")
        assert observer.identify(session_transmission(stranger)) is None


class TestSocialMix:
    def test_swap_redistributes_all_cards(self, rng):
        mix = WifiSocialMix(rng)
        members = [f"member{i}" for i in range(6)]
        cards = {m: make_card(rng, f"CARD-{i}") for i, m in enumerate(members)}
        for member, card in cards.items():
            mix.contribute(member, card)
        drawn = mix.swap()
        assert set(drawn) == set(members)
        assert {c.serial for c in drawn.values()} == {c.serial for c in cards.values()}

    def test_swap_severs_signature_to_person_mapping(self, rng):
        """After the party, the adversary's database points at the wrong
        people (for at least some members, with high probability)."""
        mix = WifiSocialMix(rng)
        members = [f"member{i}" for i in range(8)]
        observer = RadioObserver()
        for index, member in enumerate(members):
            card = make_card(rng, f"CARD-{index}")
            observer.enroll(session_transmission(card), member)
            mix.contribute(member, card)
        drawn = mix.swap()
        misattributed = sum(
            1
            for member, card in drawn.items()
            if observer.identify(session_transmission(card)) != member
        )
        assert misattributed >= len(members) // 2

    def test_duplicate_contribution_rejected(self, rng):
        mix = WifiSocialMix(rng)
        mix.contribute("bob", make_card(rng, "C-1"))
        with pytest.raises(NetworkError):
            mix.contribute("bob", make_card(rng, "C-2"))

    def test_swap_needs_two_members(self, rng):
        mix = WifiSocialMix(rng)
        mix.contribute("bob", make_card(rng, "C-1"))
        with pytest.raises(NetworkError):
            mix.swap()
