"""The USB distribution invariant (§3.4).

"The USB device used during a Nymix session remains unchanged, ensuring
that even if confiscated and thoroughly analyzed neither the computer
nor the USB device harbors evidence of Nymix use."

The base layer *is* the USB stick's OS partition.  These tests take its
Merkle root before a full day of sensitive use and compare after: any
drift would be both a tracking vector (§3.4) and evidence.
"""

from repro.unionfs.verify import commit_layer


def _usb_root(manager) -> bytes:
    return commit_layer(manager.hypervisor.base_layer).root


class TestUsbInvariance:
    def test_full_session_leaves_usb_bit_identical(self, manager):
        manager.create_cloud_account("dropbox.com", "u", "p")
        before = _usb_root(manager)

        nymbox = manager.create_nym(name="busy")
        manager.timed_browse(nymbox, "facebook.com")
        nymbox.sign_in("facebook.com", "pseudo", "pw")
        manager.store_nym(nymbox, password="pw", provider_host="dropbox.com", account_username="u")
        manager.discard_nym(nymbox)
        restored = manager.load_nym("busy", "pw")
        manager.timed_browse(restored, "facebook.com")
        manager.discard_nym(restored)
        report, vm, ios = manager.boot_installed_os_nym("Windows 7")
        ios.discard_session()

        assert _usb_root(manager) == before

    def test_usb_root_matches_published_distribution(self, manager):
        """Any user can verify their stick against the published root."""
        assert _usb_root(manager) == manager.hypervisor.merkle_root

    def test_guest_writes_cannot_drift_the_root(self, manager):
        nymbox = manager.create_nym(name="writer")
        nymbox.anonvm.fs.write("/etc/hostname", b"stained")
        nymbox.anonvm.fs.write("/usr/bin/chromium", b"patched")
        assert _usb_root(manager) == manager.hypervisor.merkle_root
