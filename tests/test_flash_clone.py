"""Flash-clone launch path: zygote templates, COW adoption, handshake caches.

The load-bearing property throughout: a flash-cloned nymbox is
*semantically identical* to a cold-booted one — same fingerprints, same
memory accounting, and byte-identical same-seed event journals — so the
zygote cache is purely a wall-clock optimization.
"""

import pytest

from repro.core import NymManager, NymixConfig
from repro.memory.pages import GuestMemory
from repro.memory.physmem import MIB
from repro.net.internet import Internet
from repro.sim import Timeline
from repro.vmm import Hypervisor, VmSpec


@pytest.fixture(autouse=True)
def _fresh_ntor_cache():
    """Isolate the process-global client keyshare cache per test."""
    from repro.anonymizers.tor.circuit import NTOR_CLIENT_CACHE

    NTOR_CLIENT_CACHE.clear()
    yield
    NTOR_CLIENT_CACHE.clear()


def _churn_manager(flash_clone: bool, seed: int = 42, cycles: int = 3):
    manager = NymManager(NymixConfig(seed=seed, flash_clone=flash_clone))
    for _ in range(cycles):
        manager.discard_nym(manager.create_nym())
    nym = manager.create_nym()
    return manager, nym


# ---------------------------------------------------------------------------
# Clone vs cold-boot equivalence
# ---------------------------------------------------------------------------


class TestCloneColdEquivalence:
    def test_manager_state_identical(self):
        cold_mgr, cold_nym = _churn_manager(flash_clone=False)
        flash_mgr, flash_nym = _churn_manager(flash_clone=True)

        assert (
            flash_mgr.hypervisor.memory_snapshot()
            == cold_mgr.hypervisor.memory_snapshot()
        )
        assert flash_nym.anonvm.fingerprint() == cold_nym.anonvm.fingerprint()
        assert flash_nym.commvm.fingerprint() == cold_nym.commvm.fingerprint()
        assert flash_nym.anonvm.memory.stats() == cold_nym.anonvm.memory.stats()
        assert flash_nym.commvm.memory.stats() == cold_nym.commvm.memory.stats()
        assert (
            flash_mgr.hypervisor.memory.ksm.stats()
            == cold_mgr.hypervisor.memory.ksm.stats()
        )

    def test_same_seed_journals_byte_identical(self):
        cold_mgr, _ = _churn_manager(flash_clone=False)
        flash_mgr, _ = _churn_manager(flash_clone=True)
        cold = cold_mgr.obs.journal.export_jsonl()
        flash = flash_mgr.obs.journal.export_jsonl()
        assert flash == cold

    def test_journals_identical_with_caches_disabled(self):
        """The handshake caches are stream-neutral: warm, cold, or
        disabled, the same seed draws the same RNG stream."""
        from repro.perfbench.legacy import seed_crypto_mode

        flash_mgr, _ = _churn_manager(flash_clone=True)
        with seed_crypto_mode():
            cold_mgr, _ = _churn_manager(flash_clone=False)
        assert (
            flash_mgr.obs.journal.export_jsonl()
            == cold_mgr.obs.journal.export_jsonl()
        )

    def test_fleet_stats_and_journals_identical(self):
        from repro.fleet import Fleet
        from repro.tenancy.policy import FleetPolicies
        from repro.workloads.fleet import fleet_workload

        def run(flash_clone: bool):
            timeline = Timeline(seed=5)
            fleet = Fleet(
                timeline, hosts=2,
                policies=FleetPolicies(placement="ksm-aware"),
                flash_clone=flash_clone,
            )
            workload = fleet_workload(timeline.fork_rng("wl"), 8)
            for item in workload:
                fleet.place(item.name, item.image_id)
            fleet.settle_ksm()
            return fleet.stats(), timeline.obs.journal.export_jsonl()

        cold_stats, cold_journal = run(flash_clone=False)
        flash_stats, flash_journal = run(flash_clone=True)
        assert flash_stats == cold_stats
        assert flash_journal == cold_journal


# ---------------------------------------------------------------------------
# COW guest-memory adoption
# ---------------------------------------------------------------------------


def _booted(owner: str, template=None) -> GuestMemory:
    guest = GuestMemory(owner, 64 * MIB)
    if template is not None and guest.can_adopt(template):
        guest.adopt_template(template)
    else:
        guest.map_image("img", 16 * MIB)
        guest.dirty(8 * MIB)
    return guest


class TestCowAdoption:
    def _template(self) -> GuestMemory:
        return _booted("zygote")

    def test_adopted_stats_match_cold_boot(self):
        template = self._template()
        clone = _booted("clone", template)
        cold = _booted("cold")
        assert clone.stats() == cold.stats()
        assert clone.dirty_epoch == cold.dirty_epoch

    def test_can_adopt_requires_pristine_guest(self):
        template = self._template()
        guest = GuestMemory("g", 64 * MIB)
        assert guest.can_adopt(template)
        guest.dirty(1 * MIB)
        assert not guest.can_adopt(template)
        smaller = GuestMemory("s", 32 * MIB)
        assert not smaller.can_adopt(template)

    def test_writes_after_adoption_do_not_touch_template(self):
        template = self._template()
        before = template.stats()
        clone = _booted("clone", template)
        clone.dirty(4 * MIB)
        assert template.stats() == before

    def test_erasing_clone_leaves_template_intact(self):
        template = self._template()
        before = template.stats()
        clone = _booted("clone", template)
        clone.secure_erase()
        assert clone.erased
        assert template.stats() == before
        assert not template.erased

    def test_clone_helper_equivalent_to_adopt(self):
        template = self._template()
        clone = template.clone("clone")
        assert clone.stats() == template.stats()
        assert clone.owner_id == "clone"

    def test_unique_serials_continue_after_adoption(self):
        """Clones inherit the template's serial watermark, so pages they
        dirty later never collide with adopted unique pages."""
        template = self._template()
        clone = _booted("clone", template)
        adopted = {tag for tag, _ in clone.page_groups() if tag[0] == "unique"}
        clone.dirty(1 * MIB)
        fresh = {
            tag for tag, _ in clone.page_groups() if tag[0] == "unique"
        } - adopted
        assert fresh and not (fresh & adopted)


# ---------------------------------------------------------------------------
# Zygote cache on the hypervisor
# ---------------------------------------------------------------------------


class TestZygoteCache:
    @pytest.fixture
    def hv(self):
        timeline = Timeline(seed=9)
        return Hypervisor(timeline, Internet(timeline))

    def test_flash_clone_boots_running_pair(self, hv):
        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        anon, comm, wire = hv.flash_clone(template, "nym1")
        anon.boot()
        comm.boot()
        assert anon.running and comm.running
        cold_anon = Hypervisor(hv.timeline, hv.internet, zygote_cache=False)
        cold = cold_anon.create_vm(VmSpec.anonvm(), name="cold-anon")
        cold.boot()
        assert anon.memory.stats() == cold.memory.stats()

    def test_zygote_memory_not_registered_with_host(self, hv):
        baseline = hv.memory.stats().guest_allocated_bytes
        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        hv._zygote_memory(template.anon_spec, template.image_id)
        assert hv.memory.stats().guest_allocated_bytes == baseline

    def test_mount_layers_shared_across_clones(self, hv):
        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        anon1, _, _ = hv.flash_clone(template, "nym1")
        anon2, _, _ = hv.flash_clone(template, "nym2")
        layers1 = anon1.fs.layers
        layers2 = anon2.fs.layers
        assert layers1[0] is not layers2[0]  # fresh tmpfs top per clone
        assert layers1[1] is layers2[1]  # shared config layer
        assert layers1[2] is layers2[2]  # shared base/verified bottom

    def test_partial_clone_failure_rolls_back(self, hv):
        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        hv.create_vm(VmSpec.commvm(), name="nym1-comm")  # occupy the comm name
        with pytest.raises(Exception):
            hv.flash_clone(template, "nym1")
        assert "nym1-anon" not in [vm.vm_id for vm in hv.vms()]


# ---------------------------------------------------------------------------
# Handshake precomputation
# ---------------------------------------------------------------------------


class TestHandshakeCaches:
    def test_fixed_base_matches_ladder(self):
        import sys

        x = sys.modules["repro.crypto.x25519"]
        base_u = (9).to_bytes(32, "little")
        for i in range(16):
            scalar = bytes([i * 7 + 1]) + bytes(30) + bytes([64])
            assert x.x25519_base(scalar) == x.x25519(scalar, base_u)

    def test_fixed_base_toggle_round_trips(self):
        import sys

        from repro.sim.rng import SeededRng

        x = sys.modules["repro.crypto.x25519"]
        assert x.fixed_base_enabled()
        private, public = x.x25519_keypair(SeededRng(3))
        x.set_fixed_base_enabled(False)
        try:
            private2, public2 = x.x25519_keypair(SeededRng(3))
        finally:
            x.set_fixed_base_enabled(True)
        assert (private, public) == (private2, public2)

    def test_relay_memo_skips_recompute(self, monkeypatch):
        import sys

        from repro.anonymizers.tor.relay import Relay
        from repro.net.addresses import Ipv4Address
        from repro.sim.rng import SeededRng

        x = sys.modules["repro.crypto.x25519"]
        relay = Relay(
            "r1",
            Ipv4Address.parse("10.9.0.1"),
            10e6,
            frozenset({"Guard", "Exit"}),
            SeededRng(1),
        )
        client_private, client_public = x.x25519_keypair(SeededRng(2))
        relay.handle_create(1, client_public)
        first = relay._circuits[1]

        calls = [0]
        real = x.x25519

        def counting(private, public):
            calls[0] += 1
            return real(private, public)

        monkeypatch.setattr("repro.anonymizers.tor.relay.x25519", counting)
        relay.handle_create(2, client_public)
        assert calls[0] == 0  # memo hit: no scalar multiplication
        second = relay._circuits[2]
        assert (first.forward_key, first.backward_key) == (
            second.forward_key,
            second.backward_key,
        )

    def test_client_cache_preserves_rng_stream_and_keys(self):
        from repro.anonymizers.tor.circuit import NTOR_CLIENT_CACHE, Circuit
        from repro.anonymizers.tor.relay import Relay
        from repro.net.addresses import Ipv4Address
        from repro.sim.rng import SeededRng

        def build(enabled: bool):
            NTOR_CLIENT_CACHE.clear()
            rng = SeededRng(77)
            relays = [
                Relay(
                    f"r{i}",
                    Ipv4Address.parse(f"10.9.0.{i + 1}"),
                    10e6,
                    frozenset({"Guard", "Exit"}),
                    rng.fork(f"r{i}"),
                )
                for i in range(3)
            ]
            circuit_rng = rng.fork("circuit")
            keys = []
            NTOR_CLIENT_CACHE.enabled = enabled
            try:
                for _ in range(2):  # second build hits the cache when enabled
                    circuit = Circuit(Timeline(seed=1), circuit_rng)
                    circuit.build(relays)
                    keys.append(
                        [(h.forward_key, h.backward_key) for h in circuit._hops]
                    )
            finally:
                NTOR_CLIENT_CACHE.enabled = True
            return keys, circuit_rng.token_bytes(8)

        warm_keys, warm_tail = build(enabled=True)
        cold_keys, cold_tail = build(enabled=False)
        # First builds start from an empty cache, so they agree exactly.
        assert warm_keys[0] == cold_keys[0]
        # The repeat build reuses the cached keyshares; without the cache
        # it derives fresh ones from the same (burned) draw.
        assert warm_keys[1] == warm_keys[0]
        assert cold_keys[1] != cold_keys[0]
        # Either way the RNG stream advances identically.
        assert warm_tail == cold_tail


# ---------------------------------------------------------------------------
# Hypervisor wiring fixes (satellites)
# ---------------------------------------------------------------------------


class TestWireIndex:
    @pytest.fixture
    def hv(self):
        timeline = Timeline(seed=4)
        return Hypervisor(timeline, Internet(timeline))

    def test_destroy_removes_only_own_wires(self, hv):
        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        anon1, comm1, wire1 = hv.flash_clone(template, "nym1")
        anon2, comm2, wire2 = hv.flash_clone(template, "nym2")
        hv.destroy_vm(anon1)
        hv.destroy_vm(comm1)
        assert wire1 not in hv._wires
        assert wire2 in hv._wires
        assert not wire1.up
        assert wire2.up

    def test_index_survives_interleaved_teardown(self, hv):
        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        pairs = [hv.flash_clone(template, f"nym{i}") for i in range(4)]
        for anon, comm, wire in (pairs[1], pairs[3], pairs[0], pairs[2]):
            hv.destroy_vm(anon)
            hv.destroy_vm(comm)
            assert wire not in hv._wires
        assert hv._wires == []
        assert hv._wire_slots == {} and hv._wires_by_nic == {}

    def test_foreign_wire_appended_directly_is_tolerated(self, hv):
        """Red-team tests append rogue wires straight to ``_wires``; the
        index must neither break nor tear them down on VM destroy."""
        from repro.net.link import VirtualWire
        from repro.net.nic import VirtualNic

        template = hv.nymbox_template(VmSpec.anonvm(), VmSpec.commvm(), "tor")
        anon, comm, wire = hv.flash_clone(template, "nym1")
        rogue = VirtualWire(
            hv.timeline,
            VirtualNic("a", "02:00:00:00:00:01"),
            VirtualNic("b", "02:00:00:00:00:02"),
            name="rogue",
        )
        hv._wires.append(rogue)
        hv.destroy_vm(anon)
        hv.destroy_vm(comm)
        assert rogue in hv._wires
        assert rogue.up


class TestLanWireReuse:
    @pytest.fixture
    def hv(self):
        timeline = Timeline(seed=6)
        return Hypervisor(timeline, Internet(timeline))

    def test_wire_and_client_reused_across_acquires(self, hv):
        first = hv.acquire_lan_address()
        wire = hv._lan_wire
        client = hv._lan_client
        second = hv.acquire_lan_address()
        assert hv._lan_wire is wire
        assert hv._lan_client is client
        assert first == second  # the lease table hands the same address back

    def test_wire_severed_after_each_acquire(self, hv):
        hv.acquire_lan_address()
        assert not hv._lan_wire.up
        hv.acquire_lan_address()
        assert not hv._lan_wire.up

    def test_reacquire_adds_no_journal_link_noise(self, hv):
        hv.acquire_lan_address()
        up_events = hv.timeline.obs.journal.count("net.link.up")
        hv.acquire_lan_address()
        assert hv.timeline.obs.journal.count("net.link.up") == up_events
