"""Circuit pools: MaxCircuitDirtiness and stream isolation."""

import pytest

from repro.anonymizers.tor.circuit import Circuit
from repro.anonymizers.tor.directory import DirectoryAuthority
from repro.anonymizers.tor.policy import (
    CircuitPool,
    IsolationPolicy,
    shared_exit_linkage,
)
from repro.sim import Timeline


@pytest.fixture
def timeline():
    return Timeline(seed=17)


@pytest.fixture
def directory(timeline):
    return DirectoryAuthority(timeline.fork_rng("dir"), relay_count=15)


@pytest.fixture
def build_circuit(timeline, directory):
    counter = {"n": 0}

    def factory():
        counter["n"] += 1
        circuit = Circuit(timeline, timeline.fork_rng(f"c{counter['n']}"))
        relays = directory.relays()
        start = counter["n"] % 5
        circuit.build([relays[start], relays[start + 5], relays[start + 10]])
        return circuit

    return factory


class TestCircuitReuse:
    def test_default_policy_reuses_one_circuit(self, timeline, build_circuit):
        pool = CircuitPool(timeline, build_circuit, IsolationPolicy())
        a = pool.circuit_for_stream("gmail.com")
        b = pool.circuit_for_stream("twitter.com")
        assert a is b
        assert pool.circuits_built == 1
        assert pool.reuses == 1

    def test_dirtiness_rotates_circuits(self, timeline, build_circuit):
        pool = CircuitPool(timeline, build_circuit, IsolationPolicy(max_dirtiness_s=600))
        first = pool.circuit_for_stream("gmail.com")
        timeline.sleep(700)
        second = pool.circuit_for_stream("gmail.com")
        assert first is not second
        assert pool.circuits_built == 2

    def test_retire_dirty(self, timeline, build_circuit):
        pool = CircuitPool(timeline, build_circuit, IsolationPolicy(max_dirtiness_s=600))
        circuit = pool.circuit_for_stream("gmail.com")
        timeline.sleep(700)
        assert pool.retire_dirty() == 1
        assert pool.active_circuits == 0
        assert not circuit.built  # destroyed


class TestDestinationIsolation:
    def test_distinct_destinations_distinct_circuits(self, timeline, build_circuit):
        policy = IsolationPolicy(isolate_destinations=True)
        pool = CircuitPool(timeline, build_circuit, policy)
        a = pool.circuit_for_stream("gmail.com")
        b = pool.circuit_for_stream("twitter.com")
        assert a is not b
        assert pool.circuits_built == 2

    def test_same_destination_reuses(self, timeline, build_circuit):
        policy = IsolationPolicy(isolate_destinations=True)
        pool = CircuitPool(timeline, build_circuit, policy)
        a = pool.circuit_for_stream("gmail.com")
        b = pool.circuit_for_stream("gmail.com")
        assert a is b

    def test_token_isolation(self, timeline, build_circuit):
        policy = IsolationPolicy(isolate_tokens=True)
        pool = CircuitPool(timeline, build_circuit, policy)
        a = pool.circuit_for_stream("gmail.com", token="nym-a")
        b = pool.circuit_for_stream("gmail.com", token="nym-b")
        assert a is not b

    def test_shared_pool_links_destinations(self, timeline, build_circuit):
        """The Whonix-style hazard: one shared Tor, colluding sites see
        the same exit."""
        pool = CircuitPool(timeline, build_circuit, IsolationPolicy())
        pool.circuit_for_stream("gmail.com")
        pool.circuit_for_stream("twitter.com")
        assert shared_exit_linkage(pool, "gmail.com", "twitter.com")

    def test_isolated_pool_unlinks_destinations(self, timeline, build_circuit):
        policy = IsolationPolicy(isolate_destinations=True)
        pool = CircuitPool(timeline, build_circuit, policy)
        pool.circuit_for_stream("gmail.com")
        pool.circuit_for_stream("twitter.com")
        assert not shared_exit_linkage(pool, "gmail.com", "twitter.com")


class TestClientIntegration:
    def test_socks_connect_honors_isolation(self, manager):
        nymbox = manager.create_nym(name="iso")
        tor = nymbox.anonymizer
        pool = tor.enable_stream_isolation(IsolationPolicy(isolate_destinations=True))
        tor.socks_connect("gmail.com")
        tor.socks_connect("twitter.com")
        tor.socks_connect("gmail.com")
        assert pool.circuits_built == 2
        assert pool.reuses == 1
