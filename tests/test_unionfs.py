"""Union file system: layers, copy-on-write, whiteouts, tmpfs limits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FileSystemError, ReadOnlyError
from repro.unionfs import Layer, TmpfsLayer, UnionMount
from repro.unionfs.layer import normalize_path


class TestNormalizePath:
    def test_absolute(self):
        assert normalize_path("/a/b") == "/a/b"

    def test_relative_becomes_absolute(self):
        assert normalize_path("a/b") == "/a/b"

    def test_collapses_dots_and_slashes(self):
        assert normalize_path("/a//./b/../c") == "/a/c"

    def test_root(self):
        assert normalize_path("/") == "/"

    def test_escape_rejected(self):
        with pytest.raises(FileSystemError):
            normalize_path("/../etc/passwd")

    def test_empty_rejected(self):
        with pytest.raises(FileSystemError):
            normalize_path("")


class TestLayer:
    def test_write_read(self):
        layer = Layer("rw")
        layer.write("/etc/hosts", b"hosts")
        assert layer.read("/etc/hosts") == b"hosts"

    def test_read_only_rejects_write(self):
        layer = Layer("ro", read_only=True)
        with pytest.raises(ReadOnlyError):
            layer.write("/x", b"data")

    def test_missing_file(self):
        with pytest.raises(FileSystemError):
            Layer("rw").read("/missing")

    def test_whiteout_clears_file(self):
        layer = Layer("rw")
        layer.write("/x", b"1")
        layer.add_whiteout("/x")
        assert not layer.has_file("/x")
        assert layer.is_whited_out("/x")

    def test_write_clears_whiteout(self):
        layer = Layer("rw")
        layer.add_whiteout("/x")
        layer.write("/x", b"back")
        assert not layer.is_whited_out("/x")

    def test_used_bytes(self):
        layer = Layer("rw")
        layer.write("/a", b"12345")
        layer.write("/b", b"123")
        assert layer.used_bytes == 8

    def test_clear(self):
        layer = Layer("rw")
        layer.write("/a", b"12345")
        assert layer.clear() == 5
        assert layer.file_count == 0


class TestTmpfsLayer:
    def test_capacity_enforced(self):
        tmpfs = TmpfsLayer("t", capacity_bytes=10)
        tmpfs.write("/a", b"12345")
        with pytest.raises(FileSystemError):
            tmpfs.write("/b", b"123456")

    def test_overwrite_reuses_space(self):
        tmpfs = TmpfsLayer("t", capacity_bytes=10)
        tmpfs.write("/a", b"1234567890")
        tmpfs.write("/a", b"abcde")  # shrinking rewrite is fine
        assert tmpfs.read("/a") == b"abcde"

    def test_zero_capacity_rejected(self):
        with pytest.raises(FileSystemError):
            TmpfsLayer("t", capacity_bytes=0)


def _stack():
    base = Layer(
        "base",
        files={"/etc/hosts": b"base-hosts", "/usr/bin/tor": b"tor-bin", "/etc/motd": b"hi"},
        read_only=True,
    )
    config = Layer("config", files={"/etc/hosts": b"config-hosts"}, read_only=True)
    tmpfs = TmpfsLayer("tmpfs", capacity_bytes=1024 * 1024)
    return UnionMount([tmpfs, config, base]), tmpfs, config, base


class TestUnionMount:
    def test_top_layer_wins(self):
        mount, tmpfs, _, _ = _stack()
        assert mount.read("/etc/hosts") == b"config-hosts"
        tmpfs.write("/etc/hosts", b"tmpfs-hosts")
        assert mount.read("/etc/hosts") == b"tmpfs-hosts"

    def test_fallthrough_to_base(self):
        mount, _, _, _ = _stack()
        assert mount.read("/usr/bin/tor") == b"tor-bin"

    def test_writes_land_in_top(self):
        mount, tmpfs, _, base = _stack()
        mount.write("/home/user/file", b"data")
        assert tmpfs.has_file("/home/user/file")
        assert not base.has_file("/home/user/file")

    def test_cow_overwrite_of_base_file(self):
        mount, tmpfs, _, base = _stack()
        mount.write("/usr/bin/tor", b"patched")
        assert mount.read("/usr/bin/tor") == b"patched"
        assert base.read("/usr/bin/tor") == b"tor-bin"

    def test_source_layer(self):
        mount, _, _, _ = _stack()
        assert mount.source_layer("/etc/hosts") == "config"
        assert mount.source_layer("/usr/bin/tor") == "base"
        assert mount.source_layer("/nope") is None

    def test_remove_base_file_uses_whiteout(self):
        mount, tmpfs, _, base = _stack()
        mount.remove("/etc/motd")
        assert not mount.exists("/etc/motd")
        assert base.has_file("/etc/motd")  # base untouched
        assert tmpfs.is_whited_out("/etc/motd")

    def test_remove_top_only_file(self):
        mount, _, _, _ = _stack()
        mount.write("/tmp/x", b"1")
        mount.remove("/tmp/x")
        assert not mount.exists("/tmp/x")

    def test_remove_missing_rejected(self):
        mount, _, _, _ = _stack()
        with pytest.raises(FileSystemError):
            mount.remove("/missing")

    def test_rewrite_after_remove(self):
        mount, _, _, _ = _stack()
        mount.remove("/etc/motd")
        mount.write("/etc/motd", b"new")
        assert mount.read("/etc/motd") == b"new"

    def test_walk_shows_visible_files(self):
        mount, _, _, _ = _stack()
        mount.write("/new", b"x")
        files = mount.walk()
        assert "/new" in files
        assert "/etc/hosts" in files
        assert files.count("/etc/hosts") == 1

    def test_walk_hides_whiteouts(self):
        mount, _, _, _ = _stack()
        mount.remove("/etc/motd")
        assert "/etc/motd" not in mount.walk()

    def test_listdir(self):
        mount, _, _, _ = _stack()
        assert mount.listdir("/etc") == ["hosts", "motd"]
        assert mount.listdir("/") == ["etc", "usr"]

    def test_ram_bytes_tracks_top_layer(self):
        mount, _, _, _ = _stack()
        assert mount.ram_bytes == 0
        mount.write("/x", b"12345")
        assert mount.ram_bytes == 5

    def test_discard_changes(self):
        mount, _, _, _ = _stack()
        mount.write("/x", b"12345")
        mount.remove("/etc/motd")
        mount.discard_changes()
        assert not mount.exists("/x")
        assert mount.read("/etc/motd") == b"hi"  # whiteout gone too

    def test_lower_layers_must_be_read_only(self):
        with pytest.raises(FileSystemError):
            UnionMount([Layer("top"), Layer("lower")])

    def test_empty_stack_rejected(self):
        with pytest.raises(FileSystemError):
            UnionMount([])

    def test_read_only_mount_rejects_writes(self):
        mount = UnionMount([Layer("only", files={"/a": b"1"}, read_only=True)])
        with pytest.raises(ReadOnlyError):
            mount.write("/a", b"2")

    @given(
        st.dictionaries(
            st.from_regex(r"/[a-z]{1,8}(/[a-z]{1,8}){0,2}", fullmatch=True),
            st.binary(max_size=64),
            max_size=12,
        )
    )
    @settings(max_examples=30)
    def test_write_read_roundtrip_property(self, files):
        mount, _, _, _ = _stack()
        for path, data in files.items():
            mount.write(path, data)
        for path, data in files.items():
            assert mount.read(path) == data
