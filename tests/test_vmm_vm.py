"""VM lifecycle, specs, fingerprint homogenization, union-FS roots."""

import pytest

from repro.errors import VmStateError
from repro.memory import GuestMemory
from repro.sim import Timeline
from repro.unionfs.layer import TmpfsLayer
from repro.unionfs.mount import UnionMount
from repro.vmm import VmRole, VmSpec, VmState, VirtualMachine
from repro.vmm.baseimage import build_base_layer, build_config_layer, build_vm_mount
from repro.vmm.vm import HOMOGENIZED_CPU, HOMOGENIZED_RESOLUTION, MIB


def _vm(timeline=None, spec=None):
    timeline = timeline or Timeline()
    spec = spec or VmSpec.anonvm()
    memory = GuestMemory("vm-test", spec.ram_bytes)
    fs = build_vm_mount(spec.role, spec.writable_fs_bytes, build_base_layer())
    return VirtualMachine(timeline, "vm-test", spec, memory, fs, "nymix-base"), timeline


class TestVmSpecs:
    def test_anonvm_defaults_match_paper(self):
        spec = VmSpec.anonvm()
        assert spec.ram_bytes == 384 * MIB
        assert spec.writable_fs_bytes == 128 * MIB
        assert spec.role is VmRole.ANONVM

    def test_commvm_defaults_match_paper(self):
        spec = VmSpec.commvm()
        assert spec.ram_bytes == 128 * MIB
        assert spec.writable_fs_bytes == 16 * MIB

    def test_custom_sizes(self):
        spec = VmSpec.anonvm(ram_bytes=1024 * MIB)
        assert spec.ram_bytes == 1024 * MIB


class TestVmLifecycle:
    def test_boot_advances_time_and_fills_memory(self):
        vm, timeline = _vm()
        before = timeline.now
        duration = vm.boot()
        assert timeline.now - before == pytest.approx(duration)
        assert vm.state is VmState.RUNNING
        stats = vm.memory.stats()
        assert stats.image_pages > 0 and stats.unique_pages > 0

    def test_boot_without_advance(self):
        vm, timeline = _vm()
        vm.boot(advance=False)
        assert timeline.now == 0.0
        assert vm.running

    def test_double_boot_rejected(self):
        vm, _ = _vm()
        vm.boot()
        with pytest.raises(VmStateError):
            vm.boot()

    def test_pause_resume(self):
        vm, _ = _vm()
        vm.boot()
        vm.pause()
        assert vm.state is VmState.PAUSED
        vm.resume()
        assert vm.state is VmState.RUNNING

    def test_pause_requires_running(self):
        vm, _ = _vm()
        with pytest.raises(VmStateError):
            vm.pause()

    def test_shutdown(self):
        vm, _ = _vm()
        vm.boot()
        vm.shutdown()
        assert vm.state is VmState.SHUTDOWN

    def test_touch_memory_requires_running(self):
        vm, _ = _vm()
        with pytest.raises(VmStateError):
            vm.touch_memory(1024)

    def test_primary_nic_requires_attachment(self):
        vm, _ = _vm()
        with pytest.raises(VmStateError):
            vm.primary_nic


class TestHomogenization:
    def test_fingerprints_identical_across_vms(self):
        vm_a, _ = _vm()
        vm_b, _ = _vm()
        assert vm_a.fingerprint().as_dict() == vm_b.fingerprint().as_dict()

    def test_fixed_resolution_and_cpu(self):
        vm, _ = _vm()
        fp = vm.fingerprint()
        assert fp.resolution == HOMOGENIZED_RESOLUTION == (1024, 768)
        assert fp.cpu_model == HOMOGENIZED_CPU
        assert fp.cpu_count == 1


class TestRoleMounts:
    def test_anonvm_config_masks_network(self):
        mount = build_vm_mount(VmRole.ANONVM, 1 * MIB, build_base_layer())
        text = mount.read("/etc/network/interfaces").decode()
        assert "10.0.2.15" in text
        assert mount.source_layer("/etc/network/interfaces").startswith("config")

    def test_anonvm_resolver_points_at_commvm(self):
        mount = build_vm_mount(VmRole.ANONVM, 1 * MIB, build_base_layer())
        assert "10.0.2.3" in mount.read("/etc/resolv.conf").decode()

    def test_commvm_config_carries_anonymizer(self):
        mount = build_vm_mount(VmRole.COMMVM, 1 * MIB, build_base_layer(), anonymizer="dissent")
        assert "dissent" in mount.read("/etc/rc.local").decode()

    def test_sanivm_has_loopback_only(self):
        mount = build_vm_mount(VmRole.SANIVM, 1 * MIB, build_base_layer())
        text = mount.read("/etc/network/interfaces").decode()
        assert "eth0" not in text

    def test_base_binaries_shared_by_all_roles(self):
        base = build_base_layer()
        anon = build_vm_mount(VmRole.ANONVM, 1 * MIB, base)
        comm = build_vm_mount(VmRole.COMMVM, 1 * MIB, base)
        assert anon.read("/usr/bin/chromium") == comm.read("/usr/bin/chromium")

    def test_config_layer_is_read_only(self):
        layer = build_config_layer(VmRole.ANONVM)
        assert layer.read_only

    def test_writes_never_reach_base(self):
        base = build_base_layer()
        mount = build_vm_mount(VmRole.ANONVM, 1 * MIB, base)
        mount.write("/etc/hostname", b"stained")
        assert base.read("/etc/hostname") == b"nymix\n"
