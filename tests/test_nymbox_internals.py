"""NymBox internals: the fetcher path, inbox, and phase accounting."""

import pytest

from repro.core.nymbox import StartupPhases
from repro.guest.browser import Browser

MIB = 1024 * 1024


class TestAnonymizedFetcher:
    def test_every_request_crosses_the_wire(self, manager):
        nymbox = manager.create_nym(name="a")
        before_tx = nymbox.anonvm.primary_nic.tx_frames
        manager.timed_browse(nymbox, "bbc.co.uk")
        manager.timed_browse(nymbox, "espn.com")
        assert nymbox.fetcher.requests == 2
        assert nymbox.anonvm.primary_nic.tx_frames == before_tx + 2

    def test_commvm_receives_socks_frames(self, manager):
        nymbox = manager.create_nym(name="a")
        manager.timed_browse(nymbox, "bbc.co.uk")
        assert nymbox.commvm.primary_nic.rx_frames >= 1

    def test_wire_traffic_never_reaches_host_capture(self, manager):
        """The AnonVM->CommVM hop is hypervisor-internal (§4.2): the host
        uplink capture must see only NAT'd anonymizer flows."""
        nymbox = manager.create_nym(name="a")
        manager.hypervisor.host_capture.clear()
        manager.timed_browse(nymbox, "bbc.co.uk")
        senders = {e.sender for e in manager.hypervisor.host_capture.entries}
        assert nymbox.anonvm.primary_nic.name not in senders

    def test_dns_goes_through_anonymizer(self, manager):
        nymbox = manager.create_nym(name="a")
        # Resolution happens inside fetch; the anonymizer path advances
        # the clock by the circuit round trip.
        t0 = manager.timeline.now
        manager.timed_browse(nymbox, "bbc.co.uk")
        assert manager.timeline.now > t0


class TestInbox:
    def test_inbox_is_per_nym(self, manager):
        a = manager.create_nym(name="a")
        b = manager.create_nym(name="b")
        a.inbox.write("/file", b"for-a")
        assert not b.inbox.exists("/file")

    def test_inbox_mounted_in_anonvm(self, manager):
        nymbox = manager.create_nym(name="a")
        assert nymbox.inbox.name in nymbox.anonvm.shared_folders


class TestStartupPhases:
    def test_total_sums_phases(self):
        phases = StartupPhases(
            boot_vm_s=10.0, start_anonymizer_s=5.0, load_page_s=3.0, ephemeral_nym_s=20.0
        )
        assert phases.total_s == 38.0

    def test_as_dict_keys_match_figure7(self):
        assert list(StartupPhases().as_dict()) == [
            "Boot VM", "Start Tor", "Load webpage", "Ephemeral Nym",
        ]


class TestStateAccounting:
    def test_state_bytes_tracks_browsing(self, manager):
        nymbox = manager.create_nym(name="a")
        before = nymbox.state_bytes()
        manager.timed_browse(nymbox, "facebook.com")
        assert nymbox.state_bytes() > before + 5 * MIB

    def test_memory_bytes_includes_ram_and_state(self, manager):
        nymbox = manager.create_nym(name="a")
        assert nymbox.memory_bytes() >= (384 + 128) * MIB


class TestBrowserEviction:
    def test_cache_never_exceeds_cap_under_pressure(self, manager):
        nymbox = manager.create_nym(name="a")
        browser = Browser(
            vm=nymbox.anonvm,
            fetcher=nymbox.fetcher,
            rng=nymbox.rng.fork("b2"),
            profile_token="t",
            cache_limit_bytes=15 * MIB,
        )
        for _ in range(5):
            browser.visit("youtube.com")  # 22 MB first visit, 6 MB revisits
        assert browser.cache_bytes <= 15 * MIB

    def test_eviction_removes_files_from_fs(self, manager):
        nymbox = manager.create_nym(name="a")
        browser = Browser(
            vm=nymbox.anonvm,
            fetcher=nymbox.fetcher,
            rng=nymbox.rng.fork("b2"),
            profile_token="t",
            cache_limit_bytes=8 * MIB,
        )
        browser.visit("youtube.com")
        cache_files = [p for p in nymbox.anonvm.fs.walk() if "/Cache/" in p]
        total = sum(len(nymbox.anonvm.fs.read(p)) for p in cache_files)
        assert total <= 8 * MIB
