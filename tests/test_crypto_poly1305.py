"""Poly1305 against RFC 8439 plus tag properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import poly1305_mac
from repro.crypto.poly1305 import constant_time_equal
from repro.errors import CryptoError


class TestPoly1305:
    def test_rfc8439_vector(self):
        """RFC 8439 section 2.5.2."""
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
        )
        tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
        assert tag == bytes.fromhex("a8061dc1305136c6c22b8baf0c0127a9")

    def test_tag_is_16_bytes(self):
        assert len(poly1305_mac(b"\x01" * 32, b"hello")) == 16

    def test_empty_message(self):
        assert len(poly1305_mac(b"\x01" * 32, b"")) == 16

    def test_different_messages_different_tags(self):
        key = b"\x07" * 32
        assert poly1305_mac(key, b"message-a") != poly1305_mac(key, b"message-b")

    def test_different_keys_different_tags(self):
        assert poly1305_mac(b"\x01" * 32, b"msg") != poly1305_mac(b"\x02" * 32, b"msg")

    def test_bad_key_size(self):
        with pytest.raises(CryptoError):
            poly1305_mac(b"short", b"msg")

    @given(st.binary(max_size=200))
    def test_deterministic(self, message):
        key = b"\x0a" * 32
        assert poly1305_mac(key, message) == poly1305_mac(key, message)

    @given(st.binary(min_size=1, max_size=100))
    def test_single_bit_flip_changes_tag(self, message):
        key = b"\x0b" * 32
        flipped = bytes([message[0] ^ 0x01]) + message[1:]
        assert poly1305_mac(key, message) != poly1305_mac(key, flipped)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_content(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_equal(b"", b"")
