"""NymixConfig knobs exercised through whole deployments."""

import pytest

from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.vmm.hypervisor import HostSpec

MIB = 1024 * 1024
GIB = 1024 * MIB


def _manager(**kwargs) -> NymManager:
    manager = NymManager(NymixConfig(seed=13, **kwargs))
    manager.add_cloud_provider(make_dropbox())
    return manager


class TestHostSpecKnobs:
    def test_uplink_rate_changes_download_times(self):
        slow = _manager(host=HostSpec(uplink_bps=5_000_000.0))
        fast = _manager(host=HostSpec(uplink_bps=50_000_000.0))
        slow_nym = slow.create_nym(name="n")
        fast_nym = fast.create_nym(name="n")
        slow_load = slow.timed_browse(slow_nym, "youtube.com")
        fast_load = fast.timed_browse(fast_nym, "youtube.com")
        assert slow_load.duration_s > fast_load.duration_s * 2

    def test_core_count_changes_contention(self):
        from repro.workloads import PeacekeeperBenchmark

        two = PeacekeeperBenchmark(_manager(host=HostSpec(cores=2)).hypervisor.cpu)
        eight = PeacekeeperBenchmark(_manager(host=HostSpec(cores=8)).hypervisor.cpu)
        assert two.run_in_nyms(8).mean_score < eight.run_in_nyms(8).mean_score

    def test_custom_public_ip(self):
        manager = _manager(host=HostSpec(public_ip="198.18.0.42"))
        assert str(manager.hypervisor.public_ip) == "198.18.0.42"


class TestAnonymityKnobs:
    def test_relay_count_scales_directory(self):
        small = _manager(tor_relay_count=10)
        large = _manager(tor_relay_count=80)
        assert len(small.directory) == 10
        assert len(large.directory) == 80
        large_nym = large.create_nym(name="n")
        assert large_nym.anonymizer.started

    def test_dissent_population(self):
        manager = _manager(dissent_clients=12, dissent_servers=5)
        assert manager.dcnet.num_clients == 12
        assert manager.dcnet.num_servers == 5
        nymbox = manager.create_nym(name="d", anonymizer="dissent")
        assert nymbox.anonymizer.transmit_anonymously(b"x") == b"x"

    def test_default_anonymizer(self):
        manager = _manager(default_anonymizer="incognito")
        assert manager.create_nym(name="n").anonymizer.kind == "incognito"

    def test_deterministic_guards_config(self):
        """Within one Tor network, the restored guard set depends only on
        (storage location, password) — not on how much other activity
        (RNG consumption) the deployment saw before the load."""

        def guards_for(extra_nyms):
            manager = NymManager(NymixConfig(seed=13, deterministic_guards=True))
            manager.add_cloud_provider(make_dropbox())
            manager.create_cloud_account("dropbox.com", "u", "p")
            nymbox = manager.create_nym(name="alice")
            manager.store_nym(
                nymbox, password="pw", provider_host="dropbox.com", account_username="u"
            )
            manager.discard_nym(nymbox)
            # Perturb the deployment's RNG/time history before loading.
            for index in range(extra_nyms):
                manager.discard_nym(manager.create_nym(name=f"noise-{index}"))
            restored = manager.load_nym("alice", "pw")
            return list(restored.anonymizer.guard_manager.guards)

        assert guards_for(0) == guards_for(3)


class TestIntegrityKnobs:
    def test_verified_base_image_full_stack(self):
        """A whole manager with §3.4 verification on: everything still works."""
        manager = _manager(verify_base_image=True)
        nymbox = manager.create_nym(name="v")
        load = manager.timed_browse(nymbox, "bbc.co.uk")
        assert load.payload_bytes > 0
        assert not manager.hypervisor.emergency_halted

    def test_ksm_disabled_config(self):
        manager = _manager(ksm_enabled=False)
        manager.create_nym(name="a")
        manager.create_nym(name="b")
        manager.hypervisor.ksm.run_to_completion()
        assert manager.hypervisor.memory_snapshot().ksm_pages_saved == 0
