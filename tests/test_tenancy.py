"""repro.tenancy: policy objects, rate limiters, and the tenant registry.

The load-bearing properties: policies are frozen declarative values with
all validation at construction; the limiter primitives are pure functions
of (state, now, cost); and registry mutations reconcile at deterministic
sim-time boundaries so same-seed runs stay byte-identical.
"""

import math

import pytest

from repro.api import NymixSession, TenantControl
from repro.core.config import NymixConfig
from repro.errors import TenancyError
from repro.sim.clock import Timeline
from repro.tenancy.limiter import PriorityLink, TokenBucket
from repro.tenancy.policy import (
    BRONZE,
    GOLD,
    QOS_CLASSES,
    SILVER,
    UNLIMITED,
    AutoscalePolicy,
    FleetPolicies,
    QosClass,
    QuotaPolicy,
    RateLimitPolicy,
    TenantPolicy,
    load_tenant_config,
    policies_from_dict,
    tenant_from_dict,
)
from repro.tenancy.registry import (
    NULL_TENANCY,
    REASON_QUOTA,
    REASON_RATE,
    TenantRegistry,
)

MIB = 1024 * 1024


class TestPolicyObjects:
    def test_builtin_qos_classes_are_strictly_ordered(self):
        assert GOLD.priority < SILVER.priority < BRONZE.priority
        assert set(QOS_CLASSES) == {"gold", "silver", "bronze"}

    def test_qos_validation(self):
        with pytest.raises(TenancyError):
            QosClass("", 0)
        with pytest.raises(TenancyError):
            QosClass("sub-zero", -1)

    def test_quota_validation_and_unlimited(self):
        assert QuotaPolicy().unlimited
        assert not QuotaPolicy(max_nyms=3).unlimited
        assert not QuotaPolicy(max_ram_bytes=MIB).unlimited
        with pytest.raises(TenancyError):
            QuotaPolicy(max_nyms=-1)
        with pytest.raises(TenancyError):
            QuotaPolicy(max_ram_bytes=-1)

    def test_rate_validation_and_unlimited(self):
        assert RateLimitPolicy().unlimited
        assert not RateLimitPolicy(launch_rate_per_s=1.0).unlimited
        assert not RateLimitPolicy(ingress_bytes_per_s=1.0).unlimited
        with pytest.raises(TenancyError):
            RateLimitPolicy(launch_rate_per_s=-1.0)
        # A launch rate with a sub-token burst could never admit anything.
        with pytest.raises(TenancyError):
            RateLimitPolicy(launch_rate_per_s=1.0, launch_burst=0.5)

    def test_unlimited_sentinel(self):
        assert UNLIMITED.name == ""
        assert UNLIMITED.unlimited
        assert not TenantPolicy("t", quota=QuotaPolicy(max_nyms=1)).unlimited

    def test_fleet_policies_reject_bad_tenant_sets(self):
        with pytest.raises(TenancyError, match="non-empty"):
            FleetPolicies(tenants=(UNLIMITED,))
        with pytest.raises(TenancyError, match="duplicate"):
            FleetPolicies(tenants=(TenantPolicy("a"), TenantPolicy("a")))

    def test_with_placement_replaces_only_placement(self):
        base = FleetPolicies(
            high_watermark=0.95, tenants=(TenantPolicy("a"),)
        )
        swapped = base.with_placement("ksm-aware")
        assert swapped.placement == "ksm-aware"
        assert swapped.high_watermark == 0.95
        assert swapped.tenants == base.tenants

    def test_autoscale_validation(self):
        AutoscalePolicy()  # defaults are self-consistent
        with pytest.raises(TenancyError):
            AutoscalePolicy(min_hosts=5, max_hosts=2)
        with pytest.raises(TenancyError):
            AutoscalePolicy(scale_up_pressure=0.3, scale_down_pressure=0.5)
        with pytest.raises(TenancyError):
            AutoscalePolicy(step=0)
        with pytest.raises(TenancyError):
            AutoscalePolicy(interval_s=0.0)


class TestJsonLoading:
    def test_tenant_from_dict_round_trip(self):
        policy = tenant_from_dict(
            {
                "name": "acme",
                "quota": {"max_nyms": 4, "max_ram_bytes": 64 * MIB},
                "rate": {"launch_rate_per_s": 0.5, "ingress_bytes_per_s": MIB},
                "qos": "gold",
            }
        )
        assert policy.name == "acme"
        assert policy.quota.max_nyms == 4
        assert policy.rate.launch_rate_per_s == 0.5
        assert policy.qos is GOLD

    def test_tenant_from_dict_rejects_nameless_and_unknown_qos(self):
        with pytest.raises(TenancyError, match="'name'"):
            tenant_from_dict({"quota": {"max_nyms": 1}})
        with pytest.raises(TenancyError, match="unknown qos"):
            tenant_from_dict({"name": "a", "qos": "platinum"})

    def test_policies_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TenancyError, match="unknown tenant-config keys"):
            policies_from_dict({"tenants": [], "watermark": 0.9})

    def test_load_tenant_config(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            '{"placement": "least-loaded", "high_watermark": 0.85,'
            ' "tenants": [{"name": "acme", "qos": "bronze"}],'
            ' "autoscale": {"min_hosts": 2, "max_hosts": 8}}'
        )
        policies = load_tenant_config(str(path))
        assert policies.placement == "least-loaded"
        assert policies.high_watermark == 0.85
        assert policies.tenants[0].qos is BRONZE
        assert policies.autoscale.max_hosts == 8

    def test_load_tenant_config_failure_modes(self, tmp_path):
        with pytest.raises(TenancyError, match="cannot read"):
            load_tenant_config(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(TenancyError, match="JSON object"):
            load_tenant_config(str(bad))


class TestTokenBucket:
    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0, now=0.0)
        assert bucket.try_consume(0.0, 4.0)
        assert bucket.available(1.0) == 2.0
        assert bucket.available(100.0) == 4.0  # never above capacity

    def test_try_consume_rejects_when_dry(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0, now=0.0)
        assert bucket.try_consume(0.0)
        assert not bucket.try_consume(0.0)
        assert bucket.try_consume(1.0)  # one second refilled one token

    def test_charge_goes_into_debt_and_deficit_wait_prices_it(self):
        bucket = TokenBucket(rate=10.0, capacity=10.0, now=0.0)
        bucket.charge(0.0, 30.0)  # 20 tokens of debt
        assert bucket.available(0.0) == -20.0
        assert bucket.deficit_wait(0.0) == pytest.approx(2.0)
        assert bucket.deficit_wait(2.0) == 0.0

    def test_answers_are_pure_functions_of_state_and_now(self):
        a = TokenBucket(rate=3.0, capacity=6.0, now=0.0)
        b = TokenBucket(rate=3.0, capacity=6.0, now=0.0)
        for t in (0.5, 1.25, 7.0):
            a.charge(t, 4.0)
            b.charge(t, 4.0)
            assert a.available(t) == b.available(t)
            assert a.deficit_wait(t) == b.deficit_wait(t)


class TestPriorityLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityLink(0.0)
        with pytest.raises(ValueError):
            PriorityLink(1.0, classes=0)

    def test_strict_priority_never_delays_better_classes(self):
        link = PriorityLink(capacity_bps=100.0, classes=3)
        link.charge(0.0, 2, 500)  # bronze queues 5 s of backlog
        assert link.queue_delay(0.0, 0) == 0.0  # gold sails through
        assert link.queue_delay(0.0, 1) == 0.0
        assert link.queue_delay(0.0, 2) == pytest.approx(5.0)

    def test_worse_classes_wait_for_better_backlog(self):
        link = PriorityLink(capacity_bps=100.0, classes=2)
        link.charge(0.0, 0, 300)  # gold holds the link 3 s
        assert link.queue_delay(0.0, 1) == pytest.approx(3.0)
        assert link.queue_delay(3.0, 1) == 0.0

    def test_charge_returns_service_time_and_extends_backlog(self):
        link = PriorityLink(capacity_bps=100.0, classes=1)
        assert link.charge(0.0, 0, 100) == pytest.approx(1.0)
        assert link.charge(0.0, 0, 100) == pytest.approx(1.0)
        assert link.queue_delay(0.0, 0) == pytest.approx(2.0)


class TestRegistryLifecycle:
    def test_timeline_defaults_to_inactive_null_registry(self):
        timeline = Timeline(seed=1)
        assert timeline.tenancy is NULL_TENANCY
        assert not timeline.tenancy.active
        assert NULL_TENANCY.admission_reason("anyone", MIB) is None
        assert NULL_TENANCY.shape("anyone") == 0.0
        assert NULL_TENANCY.policy_for("anyone") is UNLIMITED
        assert NULL_TENANCY.admission_snapshot("anyone") == (0, 0, math.inf)

    def test_attach_installs_on_timeline(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline).attach()
        assert timeline.tenancy is registry
        assert registry.active

    def test_apply_initial_takes_effect_immediately(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline)
        registry.apply_initial([TenantPolicy("a", quota=QuotaPolicy(max_nyms=1))])
        assert registry.policy_for("a").quota.max_nyms == 1
        assert registry.reconciled
        assert [e["action"] for e in registry.audit] == ["apply"]

    def test_commit_waits_for_the_boundary(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline, boundary_s=5.0)
        timeline.sleep(3.7)
        registry.commit(TenantPolicy("a", quota=QuotaPolicy(max_nyms=1)))
        # Staged, not applied: traffic before the boundary sees no policy.
        assert registry.policy_for("a") is UNLIMITED
        assert not registry.reconciled
        assert registry.next_boundary() == 5.0
        registry.wait_reconciled()
        assert timeline.now == 5.0
        assert registry.policy_for("a").quota.max_nyms == 1
        assert registry.reconciled

    def test_boundary_is_strictly_after_now(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline, boundary_s=5.0)
        timeline.sleep(5.0)
        registry.commit(TenantPolicy("a"))
        assert registry.next_boundary() == 10.0

    def test_reconcile_is_last_wins_per_tenant(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline, boundary_s=5.0)
        registry.commit(TenantPolicy("a", quota=QuotaPolicy(max_nyms=1)))
        registry.commit(TenantPolicy("a", quota=QuotaPolicy(max_nyms=9)))
        registry.commit(TenantPolicy("b"))
        registry.delete("b")
        registry.wait_reconciled()
        assert registry.policy_for("a").quota.max_nyms == 9
        assert "b" not in registry.policies
        # One boundary applied the whole batch.
        assert timeline.obs.metrics.counter("tenancy.reconciles").value == 1

    def test_reconcile_journals_one_event_with_counts(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline, boundary_s=2.0)
        registry.apply_initial([TenantPolicy("old")])
        registry.commit(TenantPolicy("new"))
        registry.delete("old")
        registry.wait_reconciled()
        events = [
            e for e in timeline.obs.journal.events if e.name == "tenancy.reconciled"
        ]
        assert len(events) == 1
        assert dict(events[0].fields) == {"applied": 1, "deleted": 1}

    def test_mutations_audit_but_never_journal(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline, boundary_s=5.0)
        baseline = timeline.obs.journal.export_jsonl()
        registry.commit(TenantPolicy("a"))
        # Staging is control-plane-only: the journal is untouched until
        # the boundary tick itself fires.
        assert timeline.obs.journal.export_jsonl() == baseline
        registry.wait_reconciled()
        assert [(e["action"], e["tenant"]) for e in registry.audit] == [
            ("commit", "a")
        ]

    def test_commit_rejects_non_policy(self):
        registry = TenantRegistry(Timeline(seed=1))
        with pytest.raises(TenancyError):
            registry.commit({"name": "a"})

    def test_invalid_boundary_rejected(self):
        with pytest.raises(TenancyError):
            TenantRegistry(Timeline(seed=1), boundary_s=0.0)

    def test_update_resets_the_tenants_buckets(self):
        timeline = Timeline(seed=1)
        registry = TenantRegistry(timeline, boundary_s=5.0)
        rate = RateLimitPolicy(launch_rate_per_s=0.1, launch_burst=1.0)
        registry.apply_initial([TenantPolicy("a", rate=rate)])
        registry.consume_launch("a")
        assert registry.admission_reason("a", 0) == REASON_RATE
        registry.commit(TenantPolicy("a", rate=rate))
        registry.wait_reconciled()
        # Fresh bucket at the boundary: the new policy starts with a full burst.
        assert registry.admission_reason("a", 0) is None


class TestRegistryEnforcement:
    def _registry(self, **kw):
        timeline = Timeline(seed=1)
        return timeline, TenantRegistry(timeline, **kw).attach()

    def test_untenanted_is_never_limited(self):
        _, registry = self._registry()
        assert registry.admission_reason("", MIB) is None
        registry.note_placed("", MIB)
        registry.note_rejected("", "capacity")
        assert registry.report() == []

    def test_admission_checks_quota_before_rate(self):
        _, registry = self._registry()
        registry.apply_initial([
            TenantPolicy(
                "a",
                quota=QuotaPolicy(max_nyms=0),
                rate=RateLimitPolicy(launch_rate_per_s=0.001, launch_burst=1.0),
            )
        ])
        registry.consume_launch("a")  # bucket dry too
        assert registry.admission_reason("a", MIB) == REASON_QUOTA

    def test_ram_quota_counts_resident_bytes(self):
        _, registry = self._registry()
        registry.apply_initial(
            [TenantPolicy("a", quota=QuotaPolicy(max_ram_bytes=10 * MIB))]
        )
        registry.note_placed("a", 8 * MIB)
        assert registry.admission_reason("a", MIB) is None
        assert registry.admission_reason("a", 4 * MIB) == REASON_QUOTA
        registry.note_removed("a", 8 * MIB)
        assert registry.admission_reason("a", 4 * MIB) is None

    def test_launch_bucket_refills_with_sim_time(self):
        timeline, registry = self._registry()
        registry.apply_initial([
            TenantPolicy(
                "a",
                rate=RateLimitPolicy(launch_rate_per_s=0.5, launch_burst=1.0),
            )
        ])
        assert registry.admission_reason("a", 0) is None
        registry.consume_launch("a")
        assert registry.admission_reason("a", 0) == REASON_RATE
        timeline.sleep(2.0)  # 0.5/s * 2 s = one fresh token
        assert registry.admission_reason("a", 0) is None

    def test_shape_is_silent_until_there_is_debt(self):
        timeline, registry = self._registry()
        registry.apply_initial([
            TenantPolicy(
                "a",
                rate=RateLimitPolicy(
                    ingress_bytes_per_s=MIB, ingress_burst_bytes=2 * MIB
                ),
            )
        ])
        assert registry.shape("a") == 0.0
        assert timeline.obs.journal.count("tenancy.throttle") == 0
        registry.record_sent("a", 4 * MIB)  # 2 MiB of debt past the burst
        delay = registry.shape("a")
        assert delay == pytest.approx(2.0)
        assert timeline.obs.journal.count("tenancy.throttle") == 1
        acct = registry.account("a")
        assert acct.throttled == 1
        assert acct.throttle_seconds == pytest.approx(delay)

    def test_shared_link_serves_strict_priority_across_tenants(self):
        _, registry = self._registry(ingress_capacity_bps=100.0)
        registry.apply_initial([
            TenantPolicy("gold", qos=GOLD),
            TenantPolicy("bronze", qos=BRONZE),
        ])
        registry.record_sent("bronze", 500)  # 5 s of bronze backlog
        assert registry.shape("gold") == 0.0
        assert registry.shape("bronze") == pytest.approx(5.0)

    def test_burst_needs_an_ingress_rate(self):
        timeline, registry = self._registry()
        registry.apply_initial([
            TenantPolicy("flat"),
            TenantPolicy(
                "metered", rate=RateLimitPolicy(ingress_bytes_per_s=MIB)
            ),
        ])
        assert not registry.burst("flat", 8 * MIB)
        assert timeline.obs.journal.count("tenancy.burst") == 0
        assert registry.burst("metered", 8 * MIB)
        assert timeline.obs.journal.count("tenancy.burst") == 1
        assert registry.shape("metered") > 0.0

    def test_report_rows_sorted_and_complete(self):
        _, registry = self._registry()
        registry.apply_initial([TenantPolicy("zeta"), TenantPolicy("alpha")])
        registry.note_admitted("zeta")
        registry.note_rejected("alpha", REASON_QUOTA)
        registry.note_rejected("alpha", REASON_RATE)
        rows = registry.report()
        assert [row["tenant"] for row in rows] == ["alpha", "zeta"]
        assert rows[0]["rejected_quota"] == 1
        assert rows[0]["rejected_rate"] == 1
        assert rows[1]["admitted"] == 1


class TestSessionFacade:
    def test_tenants_property_attaches_once(self):
        with NymixSession(NymixConfig(seed=3), cloud_providers=False) as nx:
            assert not nx.timeline.tenancy.active
            control = nx.tenants
            assert isinstance(control, TenantControl)
            assert nx.timeline.tenancy.active
            assert nx.tenants.registry is control.registry

    def test_register_and_delete_through_the_facade(self):
        with NymixSession(NymixConfig(seed=3), cloud_providers=False) as nx:
            nx.tenants.register(TenantPolicy("acme", quota=QuotaPolicy(max_nyms=2)))
            nx.tenants.wait_reconciled()
            assert "acme" in nx.tenants
            assert nx.tenants.policy_for("acme").quota.max_nyms == 2
            nx.tenants.delete("acme")
            nx.tenants.wait_reconciled()
            assert "acme" not in nx.tenants

    def test_create_nym_binds_tenant_to_the_ingress_path(self):
        with NymixSession(NymixConfig(seed=3), cloud_providers=False) as nx:
            nx.tenants.register(
                TenantPolicy(
                    "acme",
                    rate=RateLimitPolicy(
                        ingress_bytes_per_s=64 * 1024, ingress_burst_bytes=64 * 1024
                    ),
                )
            )
            nx.tenants.wait_reconciled()
            box = nx.create_nym(name="worker", tenant="acme")
            assert box.tenant == "acme"
            assert box.anonymizer.tenant == "acme"
            box.browse("bbc.co.uk")
            acct = nx.tenants.registry.account("acme")
            assert acct.sends == 1
            assert acct.bytes_sent > 0
            # The first send left debt; the next one pays it as throttle.
            box.browse("bbc.co.uk")
            assert acct.throttled >= 1
            assert acct.throttle_seconds > 0.0

    def test_untenanted_session_journal_unchanged_by_facade_access(self):
        def run(touch_facade: bool) -> str:
            with NymixSession(NymixConfig(seed=9), cloud_providers=False) as nx:
                if touch_facade:
                    nx.tenants  # attaches a live (empty) registry
                box = nx.create_nym(name="n")
                box.browse("bbc.co.uk")
                return nx.obs.journal.export_jsonl()

        assert run(touch_facade=False) == run(touch_facade=True)
