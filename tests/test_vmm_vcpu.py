"""CPU model: virtualization overhead and parallel scaling (Figure 4 substrate)."""

import pytest

from repro.errors import HypervisorError
from repro.vmm import CpuModel


class TestCpuModel:
    def test_native_speed(self):
        cpu = CpuModel(cores=4, core_speed=2.0)
        assert cpu.run_native(10.0) == 5.0

    def test_virtualization_overhead(self):
        cpu = CpuModel(cores=4, virtualization_overhead=0.20)
        native = cpu.run_native(10.0)
        guest = cpu.run_guests_parallel([10.0])[0].duration_s
        assert guest == pytest.approx(native * 1.20)

    def test_up_to_cores_no_contention(self):
        cpu = CpuModel(cores=4)
        results = cpu.run_guests_parallel([10.0] * 4)
        single = cpu.run_guests_parallel([10.0])[0].duration_s
        for result in results:
            assert result.duration_s == pytest.approx(single)

    def test_beyond_cores_contention(self):
        cpu = CpuModel(cores=4)
        four = cpu.run_guests_parallel([10.0] * 4)[0].duration_s
        eight = cpu.run_guests_parallel([10.0] * 8)[0].duration_s
        assert eight > four

    def test_actual_beats_expected_under_contention(self):
        """The Figure 4 observation: parallel actual > perfect-sharing expected."""
        cpu = CpuModel(cores=4, interleave_bonus=0.12)
        actual = cpu.run_guests_parallel([10.0] * 8)[0].duration_s
        expected = cpu.expected_parallel_duration(10.0, 8)
        assert actual < expected

    def test_expected_matches_actual_without_contention(self):
        cpu = CpuModel(cores=4)
        actual = cpu.run_guests_parallel([10.0] * 2)[0].duration_s
        assert actual == pytest.approx(cpu.expected_parallel_duration(10.0, 2))

    def test_single_vcpu_cannot_exceed_one_core(self):
        cpu = CpuModel(cores=4, virtualization_overhead=0.0)
        lone = cpu.run_guests_parallel([10.0])[0]
        assert lone.duration_s == pytest.approx(10.0)  # not 10/4

    def test_invalid_configs_rejected(self):
        with pytest.raises(HypervisorError):
            CpuModel(cores=0)
        with pytest.raises(HypervisorError):
            CpuModel(virtualization_overhead=1.0)
        with pytest.raises(HypervisorError):
            CpuModel(interleave_bonus=-0.1)

    def test_negative_work_rejected(self):
        with pytest.raises(HypervisorError):
            CpuModel().run_native(-1.0)

    def test_expected_needs_positive_guests(self):
        with pytest.raises(HypervisorError):
            CpuModel().expected_parallel_duration(10.0, 0)

    def test_throughput(self):
        result = CpuModel(cores=1, virtualization_overhead=0.0).run_guests_parallel([10.0])[0]
        assert result.throughput == pytest.approx(1.0)
