"""UDP-to-TCP DNS conversion (§4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.net.addresses import Ipv4Address
from repro.net.dns_shim import (
    TcpDnsShim,
    decode_answer,
    decode_query,
    encode_answer,
    encode_query,
    tcp_frame,
    tcp_unframe,
)


class TestDnsEncoding:
    def test_query_roundtrip(self):
        message = encode_query(0x1234, "blog.torproject.org")
        transaction_id, hostname = decode_query(message)
        assert transaction_id == 0x1234
        assert hostname == "blog.torproject.org"

    def test_answer_roundtrip(self):
        address = Ipv4Address.parse("198.51.100.13")
        message = encode_answer(7, "blog.torproject.org", address)
        transaction_id, parsed = decode_answer(message)
        assert transaction_id == 7
        assert parsed == address

    def test_bad_transaction_id(self):
        with pytest.raises(NetworkError):
            encode_query(1 << 16, "a.example")

    def test_bad_label(self):
        with pytest.raises(NetworkError):
            encode_query(1, "a..example")
        with pytest.raises(NetworkError):
            encode_query(1, "x" * 64 + ".example")

    def test_truncated_query(self):
        with pytest.raises(NetworkError):
            decode_query(b"\x00\x01")

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.from_regex(r"[a-z]{1,10}(\.[a-z]{1,10}){0,3}", fullmatch=True),
    )
    def test_roundtrip_property(self, transaction_id, hostname):
        tid, name = decode_query(encode_query(transaction_id, hostname))
        assert (tid, name) == (transaction_id, hostname)


class TestTcpFraming:
    def test_roundtrip(self):
        assert tcp_unframe(tcp_frame(b"payload")) == b"payload"

    def test_length_prefix(self):
        framed = tcp_frame(b"abc")
        assert framed[:2] == b"\x00\x03"

    def test_truncated_frame(self):
        with pytest.raises(NetworkError):
            tcp_unframe(b"\x00\x10abc")

    def test_oversized_rejected(self):
        with pytest.raises(NetworkError):
            tcp_frame(b"x" * 70000)


class TestTcpDnsShim:
    def test_converts_udp_query_over_tcp_transport(self):
        zone = {"gmail.com": Ipv4Address.parse("198.51.100.10")}
        shim = TcpDnsShim.over_resolver(lambda host: zone[host])
        udp_query = encode_query(42, "gmail.com")
        udp_response = shim.resolve_udp_payload(udp_query)
        transaction_id, address = decode_answer(udp_response)
        assert transaction_id == 42
        assert str(address) == "198.51.100.10"
        assert shim.queries_converted == 1

    def test_transaction_id_mismatch_detected(self):
        def evil_exchange(framed):
            return tcp_frame(encode_answer(999, "x.example", Ipv4Address.parse("1.2.3.4")))

        shim = TcpDnsShim(evil_exchange)
        with pytest.raises(NetworkError):
            shim.resolve_udp_payload(encode_query(42, "x.example"))

    def test_works_against_anonymizer_resolver(self, manager):
        """The actual §4.1 use: DNS over a TCP-only anonymizer."""
        nymbox = manager.create_nym(name="shimmed")
        shim = TcpDnsShim.over_resolver(nymbox.anonymizer.resolve)
        response = shim.resolve_udp_payload(encode_query(7, "twitter.com"))
        _, address = decode_answer(response)
        assert str(address) == "198.51.100.11"
