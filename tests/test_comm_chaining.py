"""Serial CommVM chaining (§3.3: "connecting CommVMs in serial")."""

import pytest

from repro.core.validation import probe_isolation, validate_system


@pytest.fixture
def chained(manager):
    return manager.create_nym(name="chained", anonymizer="tor+dissent", chain_commvms=True)


class TestChainConstruction:
    def test_one_commvm_per_stage(self, chained):
        assert chained.commvm.vm_id == "chained-comm"
        assert [vm.vm_id for vm in chained.extra_commvms] == ["chained-comm2"]
        assert chained.anonymizer.kind == "tor+dissent"

    def test_all_vms_running(self, chained):
        assert all(vm.running for vm in chained.all_vms)

    def test_nat_hangs_off_last_hop(self, manager, chained):
        nat = manager.hypervisor.nat_for("chained-comm2")
        assert nat is chained.nat

    def test_memory_counts_all_vms(self, chained):
        # AnonVM (384) + two CommVMs (128 each).
        assert chained.memory_bytes() >= (384 + 128 + 128) * 1024 * 1024

    def test_unchained_composition_uses_one_commvm(self, manager):
        nymbox = manager.create_nym(name="stacked", anonymizer="tor+dissent")
        assert nymbox.extra_commvms == []


class TestChainIsolation:
    def test_adjacent_hops_reachable(self, manager, chained):
        hv = manager.hypervisor
        assert hv.probe_cross_vm(chained.anonvm, chained.commvm)
        assert hv.probe_cross_vm(chained.commvm, chained.extra_commvms[0])

    def test_anon_cannot_skip_to_last_hop(self, manager, chained):
        hv = manager.hypervisor
        assert not hv.probe_cross_vm(chained.anonvm, chained.extra_commvms[0])

    def test_validation_accepts_chain(self, manager, chained):
        result = validate_system(manager)
        assert result.passed, result.summary()
        matrix = result.isolation
        assert ("chained-comm", "chained-comm2") in matrix.allowed_pairs

    def test_chain_isolated_from_other_nyms(self, manager, chained):
        other = manager.create_nym(name="plain")
        hv = manager.hypervisor
        assert not hv.probe_cross_vm(chained.extra_commvms[0], other.commvm)
        assert probe_isolation(manager).clean


class TestChainLifecycle:
    def test_browsing_works_through_chain(self, manager, chained):
        load = manager.timed_browse(chained, "twitter.com")
        assert load.payload_bytes > 0
        server = manager.internet.server_named("twitter.com")
        # The last stage (Dissent) fronts the traffic.
        assert str(server.seen_client_ips[-1]) == "198.51.102.1"

    def test_discard_tears_down_whole_chain(self, manager, chained):
        vms = chained.all_vms
        manager.discard_nym(chained)
        for vm in vms:
            assert vm.memory.erased
        assert manager.live_nyms() == []

    def test_pause_resume_covers_chain(self, chained):
        chained.pause()
        assert all(vm.state.value == "paused" for vm in chained.all_vms)
        chained.resume()
        assert all(vm.running for vm in chained.all_vms)
