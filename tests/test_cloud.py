"""Cloud storage providers: accounts, quotas, blobs, the observer's log."""

import pytest

from repro.cloud import CloudProvider, make_dropbox, make_google_drive
from repro.errors import CloudError, QuotaExceededError
from repro.net.addresses import Ipv4Address

EXIT = Ipv4Address.parse("198.51.101.5")


@pytest.fixture
def provider():
    return CloudProvider("box.example", "198.51.100.99", free_quota_bytes=1000)


@pytest.fixture
def account(provider):
    return provider.create_account("anon123", "pw")


class TestAccounts:
    def test_create_and_login(self, provider, account):
        logged_in = provider.login("anon123", "pw", now=1.0, src_ip=EXIT)
        assert logged_in is account

    def test_duplicate_username_rejected(self, provider, account):
        with pytest.raises(CloudError):
            provider.create_account("anon123", "other")

    def test_wrong_password_rejected(self, provider, account):
        with pytest.raises(CloudError):
            provider.login("anon123", "wrong", now=1.0, src_ip=EXIT)

    def test_unknown_user_rejected(self, provider):
        with pytest.raises(CloudError):
            provider.login("ghost", "pw", now=1.0, src_ip=EXIT)


class TestBlobs:
    def test_put_get_roundtrip(self, provider, account):
        provider.put(account, "nym.bin", b"sealed", now=1.0, src_ip=EXIT)
        blob = provider.get(account, "nym.bin", now=2.0, src_ip=EXIT)
        assert blob.data == b"sealed"

    def test_overwrite_replaces(self, provider, account):
        provider.put(account, "nym.bin", b"v1", now=1.0, src_ip=EXIT)
        provider.put(account, "nym.bin", b"v2-longer", now=2.0, src_ip=EXIT)
        assert provider.get(account, "nym.bin", 3.0, EXIT).data == b"v2-longer"
        assert account.used_bytes == 9

    def test_quota_enforced(self, provider, account):
        provider.put(account, "a", b"x" * 900, now=1.0, src_ip=EXIT)
        with pytest.raises(QuotaExceededError):
            provider.put(account, "b", b"x" * 200, now=2.0, src_ip=EXIT)

    def test_quota_counts_replacement_correctly(self, provider, account):
        provider.put(account, "a", b"x" * 900, now=1.0, src_ip=EXIT)
        provider.put(account, "a", b"x" * 950, now=2.0, src_ip=EXIT)  # replaces

    def test_delete(self, provider, account):
        provider.put(account, "a", b"x", now=1.0, src_ip=EXIT)
        provider.delete(account, "a", now=2.0, src_ip=EXIT)
        with pytest.raises(CloudError):
            provider.get(account, "a", 3.0, EXIT)

    def test_missing_blob(self, provider, account):
        with pytest.raises(CloudError):
            provider.get(account, "nope", 1.0, EXIT)
        with pytest.raises(CloudError):
            provider.delete(account, "nope", 1.0, EXIT)

    def test_list_blobs(self, provider, account):
        provider.put(account, "b", b"2", now=1.0, src_ip=EXIT)
        provider.put(account, "a", b"1", now=1.0, src_ip=EXIT)
        assert provider.list_blobs(account, 2.0, EXIT) == ["a", "b"]


class TestObserverView:
    def test_access_log_records_ips(self, provider, account):
        provider.login("anon123", "pw", now=1.0, src_ip=EXIT)
        provider.put(account, "a", b"x", now=2.0, src_ip=EXIT)
        ips = provider.observed_ips_for("anon123")
        assert ips == [EXIT, EXIT]

    def test_provider_sees_only_ciphertext_sizes(self, provider, account):
        provider.put(account, "a", b"ciphertext-blob", now=1.0, src_ip=EXIT)
        blob = account.blobs["a"]
        assert blob.size == len(b"ciphertext-blob")


class TestPresets:
    def test_dropbox_quota(self):
        assert make_dropbox().free_quota_bytes == 2 * 1024**3

    def test_google_drive_quota(self):
        assert make_google_drive().free_quota_bytes == 15 * 1024**3

    def test_distinct_addresses(self):
        assert make_dropbox().ip != make_google_drive().ip
