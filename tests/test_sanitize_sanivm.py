"""The SaniVM workflow: air-gapped mounts, scrubbing, VirtFS hand-off."""

import pytest

from repro.errors import SanitizeError
from repro.memory import GuestMemory
from repro.sanitize import ParanoiaLevel, SaniVm, SimDocument, SimImage
from repro.sim import Timeline
from repro.unionfs.layer import Layer
from repro.vmm.baseimage import build_base_layer, build_vm_mount
from repro.vmm.vm import VmSpec, VirtualMachine


def _sanivm():
    timeline = Timeline(seed=4)
    spec = VmSpec.sanivm()
    vm = VirtualMachine(
        timeline, "sanivm", spec, GuestMemory("sanivm", spec.ram_bytes),
        build_vm_mount(spec.role, spec.writable_fs_bytes, build_base_layer()),
        "nymix-base",
    )
    vm.boot()
    return SaniVm(timeline, vm), timeline


def _host_layer():
    return Layer(
        "installed-os-home",
        files={
            "/home/bob/protest.jpg": SimImage.camera_photo(faces=2).to_bytes(),
            "/home/bob/report.doc": SimDocument.office_document().to_bytes(),
        },
        read_only=True,
    )


class TestSaniVmSetup:
    def test_rejects_non_sanivm_role(self):
        timeline = Timeline()
        spec = VmSpec.anonvm()
        vm = VirtualMachine(
            timeline, "anon", spec, GuestMemory("anon", spec.ram_bytes),
            build_vm_mount(spec.role, spec.writable_fs_bytes, build_base_layer()),
            "nymix-base",
        )
        with pytest.raises(SanitizeError):
            SaniVm(timeline, vm)

    def test_rejects_networked_vm(self):
        from repro.net.addresses import MacAddress
        from repro.net.nic import VirtualNic

        timeline = Timeline()
        spec = VmSpec.sanivm()
        vm = VirtualMachine(
            timeline, "sanivm", spec, GuestMemory("sanivm", spec.ram_bytes),
            build_vm_mount(spec.role, spec.writable_fs_bytes, build_base_layer()),
            "nymix-base",
        )
        vm.attach_nic(VirtualNic("eth0", MacAddress(1)))
        with pytest.raises(SanitizeError):
            SaniVm(timeline, vm)

    def test_host_mount_must_be_read_only(self):
        sanivm, _ = _sanivm()
        with pytest.raises(SanitizeError):
            sanivm.mount_host_filesystem("rw", Layer("rw"))

    def test_list_and_read_host_files(self):
        sanivm, _ = _sanivm()
        sanivm.mount_host_filesystem("home", _host_layer())
        assert "/home/bob/protest.jpg" in sanivm.list_host_files("home")
        assert sanivm.read_host_file("home", "/home/bob/protest.jpg")

    def test_unknown_mount(self):
        sanivm, _ = _sanivm()
        with pytest.raises(SanitizeError):
            sanivm.list_host_files("nope")


class TestTransferWorkflow:
    def test_analyze_reports_risks(self):
        sanivm, _ = _sanivm()
        sanivm.mount_host_filesystem("home", _host_layer())
        report = sanivm.analyze("home", "/home/bob/protest.jpg")
        assert "exif-gps" in report.kinds()
        assert "face" in report.kinds()

    def test_transfer_scrubs_and_delivers(self):
        sanivm, _ = _sanivm()
        sanivm.mount_host_filesystem("home", _host_layer())
        record = sanivm.transfer(
            "home", "/home/bob/protest.jpg", "bob-twitter", ParanoiaLevel.MEDIUM
        )
        assert not record.residual_report.kinds() or "face" not in record.residual_report.kinds()
        outbox = sanivm.outbox_for("bob-twitter")
        assert outbox.exists("/protest.jpg")
        scrubbed = SimImage.from_bytes(outbox.read("/protest.jpg"))
        assert scrubbed.exif == {}
        assert scrubbed.unblurred_faces == 0

    def test_transfer_advances_time(self):
        sanivm, timeline = _sanivm()
        sanivm.mount_host_filesystem("home", _host_layer())
        before = timeline.now
        sanivm.transfer("home", "/home/bob/report.doc", "nym1")
        assert timeline.now > before

    def test_per_nym_outboxes_isolated(self):
        sanivm, _ = _sanivm()
        sanivm.mount_host_filesystem("home", _host_layer())
        sanivm.transfer("home", "/home/bob/protest.jpg", "nym-a")
        assert sanivm.outbox_for("nym-a").exists("/protest.jpg")
        assert not sanivm.outbox_for("nym-b").exists("/protest.jpg")

    def test_transfer_log_records_everything(self):
        sanivm, _ = _sanivm()
        sanivm.mount_host_filesystem("home", _host_layer())
        sanivm.transfer("home", "/home/bob/protest.jpg", "nym-a", ParanoiaLevel.HIGH)
        assert len(sanivm.transfer_log) == 1
        record = sanivm.transfer_log[0]
        assert record.level is ParanoiaLevel.HIGH
        assert record.report.risks
        assert record.residual_report.clean

    def test_source_file_untouched(self):
        sanivm, _ = _sanivm()
        layer = _host_layer()
        original = layer.read("/home/bob/protest.jpg")
        sanivm.mount_host_filesystem("home", layer)
        sanivm.transfer("home", "/home/bob/protest.jpg", "nym-a", ParanoiaLevel.HIGH)
        assert layer.read("/home/bob/protest.jpg") == original
