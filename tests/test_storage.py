"""Block devices, base images, COW overlays, and disk snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReadOnlyError, StorageError
from repro.storage import BLOCK_SIZE, BaseImage, CowOverlay, DiskSnapshot, RamDisk


def _block(byte):
    return bytes([byte]) * BLOCK_SIZE


class TestRamDisk:
    def test_unwritten_blocks_read_zero(self):
        disk = RamDisk(16)
        assert disk.read_block(0) == b"\x00" * BLOCK_SIZE

    def test_write_read_roundtrip(self):
        disk = RamDisk(16)
        disk.write_block(3, _block(0xAB))
        assert disk.read_block(3) == _block(0xAB)

    def test_zero_write_stays_sparse(self):
        disk = RamDisk(16)
        disk.write_block(3, _block(0xAB))
        disk.write_block(3, b"\x00" * BLOCK_SIZE)
        assert disk.allocated_blocks == 0

    def test_out_of_range_rejected(self):
        disk = RamDisk(16)
        with pytest.raises(StorageError):
            disk.read_block(16)

    def test_partial_block_rejected(self):
        disk = RamDisk(16)
        with pytest.raises(StorageError):
            disk.write_block(0, b"short")

    def test_read_only_rejected(self):
        disk = RamDisk(16, read_only=True)
        with pytest.raises(ReadOnlyError):
            disk.write_block(0, _block(1))

    def test_wipe(self):
        disk = RamDisk(16)
        disk.write_block(0, _block(1))
        disk.write_block(1, _block(2))
        assert disk.wipe() == 2
        assert disk.used_bytes == 0

    def test_used_bytes(self):
        disk = RamDisk(16)
        disk.write_block(0, _block(1))
        assert disk.used_bytes == BLOCK_SIZE

    def test_zero_block_count_rejected(self):
        with pytest.raises(StorageError):
            RamDisk(0)


class TestBaseImage:
    def test_deterministic_content(self):
        a = BaseImage("nymix", 32)
        b = BaseImage("nymix", 32)
        assert a.read_block(7) == b.read_block(7)

    def test_different_images_differ(self):
        assert BaseImage("a", 8).read_block(0) != BaseImage("b", 8).read_block(0)

    def test_different_blocks_differ(self):
        image = BaseImage("nymix", 8)
        assert image.read_block(0) != image.read_block(1)

    def test_block_size(self):
        assert len(BaseImage("nymix", 8).read_block(0)) == BLOCK_SIZE

    def test_immutable(self):
        with pytest.raises(ReadOnlyError):
            BaseImage("nymix", 8).write_block(0, _block(1))

    def test_empty_id_rejected(self):
        with pytest.raises(StorageError):
            BaseImage("", 8)

    def test_merkle_tree_covers_all_blocks(self):
        image = BaseImage("nymix", 8)
        tree = image.merkle_tree()
        assert tree.leaf_count == 8
        from repro.crypto import MerkleTree

        assert MerkleTree.verify(tree.root, image.read_block(5), tree.proof(5))


class TestCowOverlay:
    def test_reads_fall_through(self):
        base = BaseImage("nymix", 16)
        overlay = CowOverlay(base)
        assert overlay.read_block(2) == base.read_block(2)

    def test_writes_stay_local(self):
        base = BaseImage("nymix", 16)
        overlay = CowOverlay(base)
        overlay.write_block(2, _block(0xCD))
        assert overlay.read_block(2) == _block(0xCD)
        assert base.read_block(2) != _block(0xCD)

    def test_dirty_accounting(self):
        overlay = CowOverlay(BaseImage("nymix", 16))
        overlay.write_block(1, _block(1))
        overlay.write_block(2, _block(2))
        overlay.write_block(1, _block(3))  # rewrite: still one dirty block
        assert overlay.dirty_blocks == 2
        assert overlay.used_bytes == 2 * BLOCK_SIZE

    def test_discard_changes_reverts(self):
        base = BaseImage("nymix", 16)
        overlay = CowOverlay(base)
        overlay.write_block(2, _block(0xCD))
        dropped = overlay.discard_changes()
        assert dropped == 1
        assert overlay.read_block(2) == base.read_block(2)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(StorageError):
            CowOverlay(BaseImage("nymix", 16), RamDisk(8))

    def test_explicit_zero_write_shadows_base(self):
        """Writing zeros must hide the base content, not fall through."""
        base = BaseImage("nymix", 16)
        overlay = CowOverlay(base)
        overlay.write_block(2, b"\x00" * BLOCK_SIZE)
        assert overlay.read_block(2) == b"\x00" * BLOCK_SIZE


class TestDiskSnapshot:
    def test_capture_and_apply(self):
        overlay = CowOverlay(BaseImage("nymix", 16))
        overlay.write_block(1, _block(0x11))
        overlay.write_block(5, _block(0x55))
        snapshot = DiskSnapshot.capture(overlay)
        fresh = CowOverlay(BaseImage("nymix", 16))
        snapshot.apply_to(fresh)
        assert fresh.read_block(1) == _block(0x11)
        assert fresh.read_block(5) == _block(0x55)
        assert fresh.dirty_blocks == 2

    def test_wire_roundtrip(self):
        overlay = CowOverlay(BaseImage("nymix", 16))
        overlay.write_block(3, _block(0x33))
        snapshot = DiskSnapshot.capture(overlay)
        parsed = DiskSnapshot.from_bytes(snapshot.to_bytes())
        assert parsed.blocks == snapshot.blocks
        assert parsed.block_count == snapshot.block_count

    def test_uncompressed_roundtrip(self):
        overlay = CowOverlay(BaseImage("nymix", 8))
        overlay.write_block(0, _block(0x77))
        snapshot = DiskSnapshot.capture(overlay)
        parsed = DiskSnapshot.from_bytes(snapshot.to_bytes(compress=False))
        assert parsed.blocks == snapshot.blocks

    def test_geometry_mismatch_rejected(self):
        overlay = CowOverlay(BaseImage("nymix", 16))
        snapshot = DiskSnapshot.capture(overlay)
        with pytest.raises(StorageError):
            snapshot.apply_to(CowOverlay(BaseImage("nymix", 8)))

    def test_garbage_rejected(self):
        with pytest.raises(StorageError):
            DiskSnapshot.from_bytes(b"garbage")

    @given(st.dictionaries(st.integers(min_value=0, max_value=63), st.integers(0, 255), max_size=10))
    @settings(max_examples=25)
    def test_roundtrip_property(self, writes):
        overlay = CowOverlay(BaseImage("nymix", 64))
        for index, byte in writes.items():
            overlay.write_block(index, _block(byte))
        snapshot = DiskSnapshot.from_bytes(DiskSnapshot.capture(overlay).to_bytes())
        fresh = CowOverlay(BaseImage("nymix", 64))
        snapshot.apply_to(fresh)
        for index, byte in writes.items():
            assert fresh.read_block(index) == _block(byte)
