"""Shape checks for every paper experiment (cheap versions of the benches).

Each test reproduces a scaled-down version of a figure or table and
asserts the qualitative claim the paper makes about it.  The full-size
runs live in benchmarks/.
"""

import pytest

from repro.core import NymManager, NymixConfig
from repro.vmm import CpuModel
from repro.workloads import ParallelDownloadExperiment, PeacekeeperBenchmark
from repro.workloads.browsing import run_memory_experiment_step

MIB = 1024 * 1024


@pytest.fixture
def manager():
    from repro.cloud import make_dropbox

    m = NymManager(NymixConfig(seed=11))
    m.add_cloud_provider(make_dropbox())
    return m


class TestFigure3Shape:
    """RAM grows ~linearly per nymbox; KSM sharing grows with nym count."""

    def test_memory_growth_and_ksm(self, manager):
        steps = [run_memory_experiment_step(manager, index) for index in range(3)]
        used = [s.after.used_bytes for s in steps]
        assert used[0] < used[1] < used[2]

        # Increments are in the right ballpark (~600 MB/nymbox, §1).
        increments = [b - a for a, b in zip(used, used[1:])]
        for increment in increments:
            assert 450 * MIB <= increment <= 800 * MIB

        # KSM shared pages increase as nyms accumulate.
        sharing = [s.after.ksm_pages_sharing for s in steps]
        assert sharing[-1] > sharing[0]

    def test_memory_obtained_at_init_not_runtime(self, manager):
        """§5.2: 'KVM obtains most of the requested memory ... at VM
        initialization and not during run time.'"""
        step = run_memory_experiment_step(manager, 0)
        allocated_delta = step.after.guest_ram_bytes - step.before.guest_ram_bytes
        assert allocated_delta == 0  # browsing allocates nothing new


class TestFigure4Shape:
    def test_virtualization_and_parallel_scaling(self):
        bench = PeacekeeperBenchmark(CpuModel(cores=4))
        sweep = bench.sweep(max_nyms=8)
        native = sweep[0].mean_score
        one = sweep[1].mean_score
        assert one == pytest.approx(native / 1.2, rel=0.02)  # ~20% overhead
        contended = sweep[8]
        assert contended.mean_score < one
        assert contended.mean_score > contended.expected_score  # actual > expected


class TestFigure5Shape:
    def test_linear_with_fixed_tor_overhead(self):
        experiment = ParallelDownloadExperiment()
        sweep = experiment.sweep(max_nyms=8)
        overheads = [r.overhead_fraction for r in sweep]
        for overhead in overheads:
            assert overhead == pytest.approx(0.117, abs=0.02)
        times = [r.slowest_actual for r in sweep]
        # Linearity: t(n)/n roughly constant.
        per_nym = [t / (i + 1) for i, t in enumerate(times)]
        assert max(per_nym) / min(per_nym) < 1.05


class TestFigure6Shape:
    def test_persistent_nym_growth_ordering(self, manager):
        """Sizes grow across save cycles; AnonVM dominates; Facebook
        accumulates fastest of the four and the Tor Blog slowest."""
        manager.create_cloud_account("dropbox.com", "u6", "p")
        sizes = {}
        for host in ("facebook.com", "blog.torproject.org"):
            name = f"nym-{host.split('.')[0]}"
            nymbox = manager.create_nym(name=name)
            manager.timed_browse(nymbox, host)
            receipts = [
                manager.store_nym(
                    nymbox, password="pw", provider_host="dropbox.com",
                    account_username="u6", blob_name=f"{name}.bin",
                )
            ]
            for _ in range(2):
                manager.timed_browse(nymbox, host)
                receipts.append(
                    manager.store_nym(
                        nymbox, password="pw", provider_host="dropbox.com",
                        account_username="u6", blob_name=f"{name}.bin",
                    )
                )
            manager.discard_nym(nymbox)
            sizes[host] = [r.encrypted_bytes for r in receipts]

        for series in sizes.values():
            assert series == sorted(series)  # monotone growth
        assert sizes["facebook.com"][-1] > sizes["blog.torproject.org"][-1]

    def test_single_save_is_small(self, manager):
        """'a single save cycle ... tends to be small, in the order of
        megabytes' (§5.3, the pre-configured case)."""
        manager.create_cloud_account("dropbox.com", "u7", "p")
        nymbox = manager.create_nym(name="tiny")
        receipt = manager.store_nym(
            nymbox, password="pw", provider_host="dropbox.com", account_username="u7"
        )
        assert receipt.encrypted_bytes < 8 * MIB


class TestFigure7Shape:
    def test_phase_ordering_across_usage_models(self, manager):
        manager.create_cloud_account("dropbox.com", "u8", "p")

        fresh = manager.create_nym(name="fresh")
        manager.timed_browse(fresh, "twitter.com")
        fresh_phases = fresh.startup

        manager.store_nym(fresh, password="pw", provider_host="dropbox.com", account_username="u8")
        manager.discard_nym(fresh)
        persisted = manager.load_nym("fresh", "pw")
        manager.timed_browse(persisted, "twitter.com")
        persisted_phases = persisted.startup

        # Quasi-persistent nyms beat fresh ones on Tor start (stored guards).
        assert persisted_phases.start_anonymizer_s < fresh_phases.start_anonymizer_s
        # But they pay the one-shot ephemeral download nym.
        assert persisted_phases.ephemeral_nym_s > 0
        assert fresh_phases.ephemeral_nym_s == 0
        assert persisted_phases.total_s > fresh_phases.total_s

    def test_fresh_nym_within_paper_budget(self, manager):
        """§1: a nymbox loads within 15-25 seconds."""
        nymbox = manager.create_nym(name="quick")
        manager.timed_browse(nymbox, "twitter.com")
        assert 12.0 <= nymbox.startup.total_s <= 27.0


class TestTable1Shape:
    def test_windows_ordering(self, manager):
        reports = {
            name: manager.boot_installed_os_nym(name)[0]
            for name in ("Windows Vista", "Windows 7", "Windows 8")
        }
        # Windows 8 is slowest to repair and boot, and largest.
        assert reports["Windows 8"].repair_seconds == max(
            r.repair_seconds for r in reports.values()
        )
        assert reports["Windows 8"].boot_seconds == max(
            r.boot_seconds for r in reports.values()
        )
        assert reports["Windows 8"].cow_bytes == max(
            r.cow_bytes for r in reports.values()
        )
        # Absolute values near Table 1.
        assert reports["Windows Vista"].repair_seconds == pytest.approx(133.7, rel=0.08)
        assert reports["Windows 7"].boot_seconds == pytest.approx(34.3, rel=0.08)
        assert reports["Windows 8"].cow_bytes == pytest.approx(14 * MIB, rel=0.2)
