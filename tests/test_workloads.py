"""Workload drivers: Peacekeeper, parallel downloads, browsing sessions."""

import pytest

from repro.vmm import CpuModel
from repro.workloads import (
    ParallelDownloadExperiment,
    PeacekeeperBenchmark,
)
from repro.workloads.peacekeeper import REQUIRED_VM_RAM


class TestPeacekeeper:
    @pytest.fixture
    def bench(self):
        return PeacekeeperBenchmark(CpuModel(cores=4))

    def test_native_score_calibration(self, bench):
        assert bench.run_native().mean_score == pytest.approx(4800.0)

    def test_single_nym_about_20_percent_down(self, bench):
        result = bench.run_in_nyms(1)
        assert result.mean_score == pytest.approx(4800.0 / 1.2, rel=0.01)

    def test_scores_flat_up_to_core_count(self, bench):
        one = bench.run_in_nyms(1).mean_score
        four = bench.run_in_nyms(4).mean_score
        assert four == pytest.approx(one, rel=0.01)

    def test_scores_degrade_beyond_cores(self, bench):
        four = bench.run_in_nyms(4).mean_score
        eight = bench.run_in_nyms(8).mean_score
        assert eight < four

    def test_actual_beats_expected_when_contended(self, bench):
        """The Figure 4 gap."""
        result = bench.run_in_nyms(8)
        assert result.mean_score > result.expected_score

    def test_sweep_shape(self, bench):
        sweep = bench.sweep(max_nyms=8)
        assert len(sweep) == 9
        assert sweep[0].nyms == 0
        assert sweep[0].mean_score == max(r.mean_score for r in sweep)

    def test_ram_requirement_noted(self):
        assert REQUIRED_VM_RAM == 1024 * 1024 * 1024

    def test_invalid_nym_count(self, bench):
        with pytest.raises(ValueError):
            bench.run_in_nyms(0)


class TestParallelDownload:
    @pytest.fixture
    def experiment(self):
        return ParallelDownloadExperiment()

    def test_single_download_time(self, experiment):
        result = experiment.run(1)
        # 76 MiB at 10 Mbit/s is ~64 s ideal; Tor adds ~12%.
        assert result.ideal_seconds == pytest.approx(63.8, rel=0.02)
        assert result.slowest_actual == pytest.approx(63.8 * 1.117, rel=0.02)

    def test_overhead_fixed_across_scale(self, experiment):
        """§5.2: 'Tor ... has a fixed cost, approximately 12% overhead.'"""
        for nyms in (1, 4, 8):
            result = experiment.run(nyms)
            assert result.overhead_fraction == pytest.approx(0.117, abs=0.02)

    def test_linear_scaling(self, experiment):
        one = experiment.run(1).slowest_actual
        eight = experiment.run(8).slowest_actual
        assert eight == pytest.approx(8 * one - 7 * experiment.rtt_s, rel=0.02)

    def test_sweep(self, experiment):
        sweep = experiment.sweep(max_nyms=4)
        times = [r.slowest_actual for r in sweep]
        assert times == sorted(times)

    def test_custom_overhead(self, experiment):
        result = experiment.run(2, overhead_factor=1.0)
        assert result.overhead_fraction == pytest.approx(0.0, abs=1e-6)

    def test_invalid_nym_count(self, experiment):
        with pytest.raises(ValueError):
            experiment.run(0)


class TestBrowsingSessions:
    def test_memory_step(self, manager):
        from repro.workloads.browsing import run_memory_experiment_step

        step = run_memory_experiment_step(manager, 0)
        assert step.hostname == "gmail.com"
        assert step.after.used_bytes >= step.before.used_bytes
        assert "memexp-0" in manager.live_nyms()

    def test_session_signs_in_where_required(self, manager):
        from repro.workloads.browsing import BrowsingSession

        nymbox = manager.create_nym(name="s")
        BrowsingSession(hostname="gmail.com", sign_in=True).run(manager, nymbox)
        assert nymbox.browser.has_credentials_for("gmail.com")

    def test_session_skips_login_free_sites(self, manager):
        from repro.workloads.browsing import BrowsingSession

        nymbox = manager.create_nym(name="s")
        BrowsingSession(hostname="bbc.co.uk", sign_in=True).run(manager, nymbox)
        assert not nymbox.browser.has_credentials_for("bbc.co.uk")
