"""Interface conformance for every pluggable transport.

Parametrized over every kind in ``ANONYMIZER_REGISTRY`` (tor, dissent,
sweet, incognito, mixnet) plus the manager-level composite spellings
(``stegotorus``, ``stegotorus:mixnet``, ``tor+dissent``) that wrap
registered transports.  Plain ``socks`` is request framing inside the
CommVM, not a registered transport, so it has no row here.

Each kind boots a real nym through the manager and must honour the
:class:`repro.anonymizers.base.Anonymizer` contract end to end: start,
plan, exit addressing, fetch, state export/import, stop.
"""

import pytest

from repro.anonymizers.base import ANONYMIZER_REGISTRY, TransferPlan
from repro.core import NymManager, NymixConfig
from repro.net.addresses import Ipv4Address

COMPOSITE_KINDS = ("stegotorus", "stegotorus:mixnet", "tor+dissent")
ALL_KINDS = tuple(sorted(ANONYMIZER_REGISTRY)) + COMPOSITE_KINDS


def test_every_expected_transport_is_registered():
    assert set(ANONYMIZER_REGISTRY) == {
        "tor",
        "dissent",
        "sweet",
        "incognito",
        "mixnet",
    }


@pytest.fixture(params=ALL_KINDS)
def kind(request):
    return request.param


@pytest.fixture
def nymbox(kind):
    manager = NymManager(NymixConfig(seed=13))
    box = manager.create_nym(name="conform", anonymizer=kind)
    yield manager, box
    if not box.destroyed:
        manager.discard_nym(box)


class TestAnonymizerConformance:
    def test_started_with_recorded_startup_time(self, nymbox):
        _, box = nymbox
        assert box.anonymizer.started
        assert box.anonymizer.startup_seconds is not None
        assert box.anonymizer.startup_seconds >= 0.0

    def test_plan_is_a_sane_transfer_plan(self, nymbox):
        _, box = nymbox
        plan = box.anonymizer.plan(4096)
        assert isinstance(plan, TransferPlan)
        assert plan.overhead_factor >= 1.0
        assert plan.path_latency_s >= 0.0
        assert plan.handshake_rtts >= 0.0
        assert plan.per_flow_ceiling_bps > 0.0

    def test_exit_address_matches_identity_claim(self, nymbox):
        _, box = nymbox
        anonymizer = box.anonymizer
        exit_ip = anonymizer.exit_address()
        assert isinstance(exit_ip, Ipv4Address)
        if anonymizer.protects_network_identity:
            assert exit_ip != anonymizer.nat.public_ip
        else:
            assert exit_ip == anonymizer.nat.public_ip

    def test_fetch_carries_a_page(self, nymbox):
        manager, box = nymbox
        load = manager.timed_browse(box, "bbc.co.uk")
        assert load.payload_bytes > 0
        assert load.duration_s > 0.0
        assert box.anonymizer.bytes_carried > 0

    def test_resolve_returns_the_site_address(self, nymbox):
        manager, box = nymbox
        resolved = box.anonymizer.resolve("bbc.co.uk")
        assert resolved == manager.internet.resolve("bbc.co.uk")

    def test_state_round_trips_into_a_fresh_instance(self, nymbox, kind):
        manager, box = nymbox
        state = box.anonymizer.export_state()
        assert state.kind == box.anonymizer.kind
        clone = manager._make_anonymizer(
            kind, box.nat, manager.timeline.fork_rng("conform-clone")
        )
        clone.import_state(state)

    def test_stop_is_idempotent_and_blocks_traffic(self, nymbox):
        _, box = nymbox
        anonymizer = box.anonymizer
        anonymizer.stop()
        anonymizer.stop()
        assert not anonymizer.started
        from repro.errors import AnonymizerError

        with pytest.raises(AnonymizerError):
            anonymizer.resolve("bbc.co.uk")
