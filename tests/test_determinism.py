"""Whole-system determinism: same seed, bit-identical run.

Reproducibility is a design invariant of the substrate: every experiment
in EXPERIMENTS.md must regenerate exactly.  These tests run complete
workflows twice from the same seed and compare everything observable,
then flip the seed and verify the runs actually diverge (i.e. the
determinism isn't the degenerate kind).
"""

import pytest

from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig


def _run_workflow(seed: int):
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    manager.create_cloud_account("dropbox.com", "d-user", "pw")
    nymbox = manager.create_nym(name="det")
    manager.timed_browse(nymbox, "facebook.com")
    nymbox.sign_in("facebook.com", "pseudo", "pw")
    receipt = manager.store_nym(
        nymbox, password="nym-pw", provider_host="dropbox.com", account_username="d-user"
    )
    trace = {
        "startup": nymbox.startup.as_dict(),
        "guards": list(nymbox.anonymizer.guard_manager.guards),
        "circuit_path": list(nymbox.anonymizer.current_circuit.path_nicknames),
        "exit": str(nymbox.anonymizer.exit_address()),
        "cache_bytes": nymbox.browser.cache_bytes,
        "raw_bytes": receipt.raw_bytes,
        "encrypted_bytes": receipt.encrypted_bytes,
        "pack_seconds": receipt.pack_seconds,
        "now": manager.timeline.now,
        "mem_used": manager.hypervisor.memory_snapshot().used_bytes,
    }
    manager.discard_nym(nymbox)
    return trace


class TestDeterminism:
    def test_same_seed_identical_runs(self):
        assert _run_workflow(seed=77) == _run_workflow(seed=77)

    def test_different_seeds_diverge(self):
        a = _run_workflow(seed=77)
        b = _run_workflow(seed=78)
        assert a != b
        # Specifically the randomized parts:
        assert (
            a["guards"] != b["guards"]
            or a["circuit_path"] != b["circuit_path"]
            or a["startup"] != b["startup"]
        )

    def test_sealed_blob_bytes_reproducible(self):
        """Even ciphertext is identical: salts and nonces are seeded."""

        def blob_bytes(seed):
            manager = NymManager(NymixConfig(seed=seed))
            manager.add_cloud_provider(make_dropbox())
            account = manager.create_cloud_account("dropbox.com", "u", "p")
            nymbox = manager.create_nym(name="det")
            manager.timed_browse(nymbox, "twitter.com")
            manager.store_nym(
                nymbox, password="pw", provider_host="dropbox.com", account_username="u"
            )
            return account.blobs["det.nymbox"].data

        assert blob_bytes(5) == blob_bytes(5)

    def test_benchmark_sweeps_reproducible(self):
        from repro.workloads import ParallelDownloadExperiment
        from repro.vmm import CpuModel
        from repro.workloads import PeacekeeperBenchmark

        d1 = [r.slowest_actual for r in ParallelDownloadExperiment().sweep(4)]
        d2 = [r.slowest_actual for r in ParallelDownloadExperiment().sweep(4)]
        assert d1 == d2
        p1 = [r.mean_score for r in PeacekeeperBenchmark(CpuModel()).sweep(4)]
        p2 = [r.mean_score for r in PeacekeeperBenchmark(CpuModel()).sweep(4)]
        assert p1 == p2
