"""Cross-VM side channels: the §3.2 residual risk, quantified."""

import pytest

from repro.attacks.sidechannel import (
    CacheCovertChannel,
    link_nyms_via_side_channel,
)
from repro.errors import NymixError
from repro.sim import SeededRng


@pytest.fixture
def rng():
    return SeededRng(23)


class TestCovertChannel:
    def test_co_resident_channel_works(self, rng):
        channel = CacheCovertChannel(rng, co_resident=True, noise=0.05)
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 8
        result = channel.transmit(bits)
        assert result.succeeded
        assert result.error_rate < 0.05

    def test_cross_host_channel_reads_nothing(self, rng):
        channel = CacheCovertChannel(rng, co_resident=False, noise=0.05)
        result = channel.transmit([1] * 64)
        # Without shared cache, "1" bits never arrive.
        assert result.received_bits.count(1) < 8

    def test_noise_degrades_capacity(self, rng):
        quiet = CacheCovertChannel(rng.fork("q"), noise=0.02)
        loud = CacheCovertChannel(rng.fork("l"), noise=0.45)
        assert quiet.capacity_bps() > loud.capacity_bps()

    def test_extreme_noise_kills_channel(self, rng):
        channel = CacheCovertChannel(rng, noise=0.9)
        assert channel.capacity_bps() == 0.0

    def test_invalid_bits_rejected(self, rng):
        with pytest.raises(NymixError):
            CacheCovertChannel(rng).transmit([2])

    def test_invalid_noise_rejected(self, rng):
        with pytest.raises(NymixError):
            CacheCovertChannel(rng, noise=1.5)


class TestLinkageContainment:
    def test_both_vms_compromised_links(self, rng):
        """The paper's conceded attack surface."""
        assert link_nyms_via_side_channel(rng, both_compromised=True)

    def test_single_compromise_cannot_link(self, rng):
        """One rooted AnonVM alone has nobody to talk to."""
        assert not link_nyms_via_side_channel(rng, both_compromised=False)

    def test_different_hosts_cannot_link(self, rng):
        assert not link_nyms_via_side_channel(
            rng, both_compromised=True, co_resident=False
        )
