"""Property tests on the nym-snapshot wire format."""

from hypothesis import given, settings, strategies as st

from repro.anonymizers.base import AnonymizerState
from repro.core.persistence import FsSnapshot

_PATHS = st.from_regex(r"/[a-z]{1,6}(/[a-z0-9._ -]{1,10}){0,3}", fullmatch=True)


class TestFsSnapshotProperties:
    @given(
        st.dictionaries(_PATHS, st.binary(max_size=256), max_size=10),
        st.dictionaries(_PATHS, st.binary(max_size=64), max_size=4),
    )
    @settings(max_examples=40)
    def test_wire_roundtrip_property(self, anon_files, comm_files):
        snapshot = FsSnapshot(
            anon_files=anon_files,
            comm_files=comm_files,
            anonymizer_state=AnonymizerState(kind="tor", payload={"k": [1, 2]}),
        )
        parsed = FsSnapshot.from_bytes(snapshot.to_bytes())
        assert parsed.anon_files == anon_files
        assert parsed.comm_files == comm_files
        assert parsed.anonymizer_state.kind == "tor"
        assert parsed.anonymizer_state.payload == {"k": [1, 2]}

    @given(st.dictionaries(_PATHS, st.binary(min_size=1, max_size=128), max_size=8))
    @settings(max_examples=30)
    def test_raw_bytes_accounting_property(self, files):
        snapshot = FsSnapshot(
            anon_files=files, comm_files={}, anonymizer_state=AnonymizerState(kind="x")
        )
        assert snapshot.raw_bytes == sum(len(v) for v in files.values())
        if files:
            assert snapshot.anonvm_fraction == 1.0
