"""Streamed journals: spool bytes, equivalence, offsets, pickle resume."""

import pickle

import pytest

from repro.errors import ObservabilityError
from repro.obs import EventJournal
from repro.sim import Clock


def _fill(journal, n, clock=None):
    for index in range(n):
        if clock is not None:
            clock.advance(0.25)
        journal.record("scale.tick", i=index, batch=index // 7)


class TestStreamedJournal:
    def test_spool_bytes_match_in_memory_write(self, tmp_path):
        clock_a, clock_b = Clock(), Clock()
        memory = EventJournal(clock_a)
        streamed = EventJournal(clock_b)
        streamed.stream_to(tmp_path / "spool.jsonl", window=3)
        _fill(memory, 25, clock_a)
        _fill(streamed, 25, clock_b)
        streamed.close_spool()
        memory.write_jsonl(tmp_path / "memory.jsonl")
        assert (tmp_path / "spool.jsonl").read_bytes() == (
            tmp_path / "memory.jsonl"
        ).read_bytes()

    def test_export_jsonl_identical_between_modes(self, tmp_path):
        clock_a, clock_b = Clock(), Clock()
        memory = EventJournal(clock_a)
        streamed = EventJournal(clock_b)
        streamed.stream_to(tmp_path / "spool.jsonl", window=4)
        _fill(memory, 11, clock_a)
        _fill(streamed, 11, clock_b)
        assert streamed.export_jsonl() == memory.export_jsonl()

    def test_pre_stream_events_carry_into_the_spool(self, tmp_path):
        clock = Clock()
        journal = EventJournal(clock)
        _fill(journal, 5, clock)
        journal.stream_to(tmp_path / "spool.jsonl", window=2)
        _fill(journal, 5, clock)
        journal.close_spool()
        lines = (tmp_path / "spool.jsonl").read_text().splitlines()
        assert len(lines) == 10

    def test_flush_timing_never_changes_bytes(self, tmp_path):
        outputs = []
        for window in (1, 2, 1000):
            clock = Clock()
            journal = EventJournal(clock)
            journal.stream_to(tmp_path / f"w{window}.jsonl", window=window)
            _fill(journal, 17, clock)
            journal.flush()
            journal.record("scale.tail")
            journal.close_spool()
            outputs.append((tmp_path / f"w{window}.jsonl").read_bytes())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_window_bounds_memory(self, tmp_path):
        journal = EventJournal(Clock())
        journal.stream_to(tmp_path / "spool.jsonl", window=8)
        _fill(journal, 100)
        assert len(journal.events) < 8
        assert len(journal) == 100

    def test_count_stays_exact_across_flushes(self, tmp_path):
        clock = Clock()
        journal = EventJournal(clock)
        journal.stream_to(tmp_path / "spool.jsonl", window=2)
        _fill(journal, 9, clock)
        journal.record("other.kind")
        assert journal.count() == 10
        assert journal.count("scale") == 9
        assert journal.count("scale.tick") == 9
        assert journal.count("other") == 1

    def test_double_stream_to_rejected(self, tmp_path):
        journal = EventJournal(Clock())
        journal.stream_to(tmp_path / "a.jsonl")
        with pytest.raises(ObservabilityError):
            journal.stream_to(tmp_path / "b.jsonl")

    def test_write_jsonl_to_spool_path_is_a_flush(self, tmp_path):
        clock = Clock()
        journal = EventJournal(clock)
        spool = tmp_path / "spool.jsonl"
        journal.stream_to(spool, window=100)
        _fill(journal, 6, clock)
        assert journal.write_jsonl(spool) == 6
        assert len(spool.read_text().splitlines()) == 6


class TestJournalResume:
    def test_pickle_roundtrip_resumes_at_recorded_offset(self, tmp_path):
        spool = tmp_path / "spool.jsonl"
        clock = Clock()
        journal = EventJournal(clock)
        journal.stream_to(spool, window=4)
        _fill(journal, 12, clock)
        journal.flush()
        frozen = pickle.dumps(journal)
        offset = journal.spool_offset

        # The "killed" run writes more events past the checkpoint...
        _fill(journal, 9, clock)
        journal.close_spool()
        assert spool.stat().st_size > offset

        # ...and the resumed journal truncates them before appending.
        resumed = pickle.loads(frozen)
        resumed_clock = resumed._clock
        for index in range(12, 21):
            resumed_clock.advance(0.25)
            resumed.record("scale.tick", i=index, batch=index // 7)
        resumed.close_spool()

        clock_c = Clock()
        uninterrupted = EventJournal(clock_c)
        uninterrupted.stream_to(tmp_path / "full.jsonl", window=4)
        _fill(uninterrupted, 21, clock_c)
        uninterrupted.close_spool()
        assert spool.read_bytes() == (tmp_path / "full.jsonl").read_bytes()

    def test_pickle_preserves_counts_and_seq(self, tmp_path):
        clock = Clock()
        journal = EventJournal(clock)
        journal.stream_to(tmp_path / "spool.jsonl", window=2)
        _fill(journal, 7, clock)
        journal.flush()
        resumed = pickle.loads(pickle.dumps(journal))
        assert len(resumed) == 7
        assert resumed.count("scale.tick") == 7
        record = resumed.record("scale.tick", i=7, batch=1)
        assert record.seq == 7
