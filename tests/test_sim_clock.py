"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Clock, EventQueue, Timeline


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=100.0).now == 100.0

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_returns_new_time(self):
        assert Clock().advance(3.0) == 3.0

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            Clock().advance(-0.1)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_advance_to_past_rejected(self):
        clock = Clock(start=5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.9)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule_in(2.0, lambda: fired.append("b"))
        queue.schedule_in(1.0, lambda: fired.append("a"))
        queue.schedule_in(3.0, lambda: fired.append("c"))
        queue.run_all()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        for label in ("first", "second", "third"):
            queue.schedule_in(1.0, lambda lab=label: fired.append(lab))
        queue.run_all()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_times(self):
        clock = Clock()
        queue = EventQueue(clock)
        seen = []
        queue.schedule_in(2.5, lambda: seen.append(clock.now))
        queue.run_all()
        assert seen == [2.5]
        assert clock.now == 2.5

    def test_run_until_partial(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule_in(1.0, lambda: fired.append(1))
        queue.schedule_in(5.0, lambda: fired.append(5))
        count = queue.run_until(2.0)
        assert count == 1
        assert fired == [1]
        assert clock.now == 2.0
        assert len(queue) == 1

    def test_cancelled_events_skip(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        event = queue.schedule_in(1.0, lambda: fired.append("x"))
        event.cancel()
        queue.run_all()
        assert fired == []

    def test_schedule_in_past_rejected(self):
        clock = Clock(start=10.0)
        queue = EventQueue(clock)
        with pytest.raises(SimulationError):
            queue.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        queue = EventQueue(Clock())
        with pytest.raises(SimulationError):
            queue.schedule_in(-1.0, lambda: None)

    def test_events_can_reschedule(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []

        def recurring():
            fired.append(clock.now)
            if len(fired) < 3:
                queue.schedule_in(1.0, recurring)

        queue.schedule_in(1.0, recurring)
        queue.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_runaway_loop_guard(self):
        clock = Clock()
        queue = EventQueue(clock)

        def forever():
            queue.schedule_in(0.001, forever)

        queue.schedule_in(0.001, forever)
        with pytest.raises(SimulationError):
            queue.run_all(limit=100)

    def test_next_event_time(self):
        clock = Clock()
        queue = EventQueue(clock)
        assert queue.next_event_time() is None
        queue.schedule_in(4.0, lambda: None)
        assert queue.next_event_time() == 4.0

    def test_next_event_time_skips_cancelled_head(self):
        clock = Clock()
        queue = EventQueue(clock)
        head = queue.schedule_in(1.0, lambda: None)
        queue.schedule_in(2.0, lambda: None)
        head.cancel()
        assert queue.next_event_time() == 2.0

    def test_len_ignores_cancelled(self):
        queue = EventQueue(Clock())
        kept = queue.schedule_in(1.0, lambda: None)
        gone = queue.schedule_in(2.0, lambda: None)
        assert len(queue) == 2
        gone.cancel()
        assert len(queue) == 1
        kept.cancel()
        assert len(queue) == 0

    def test_event_can_cancel_a_later_event(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        victim = queue.schedule_in(2.0, lambda: fired.append("victim"))
        queue.schedule_in(1.0, lambda: victim.cancel())
        queue.run_all()
        assert fired == []
        assert clock.now == 1.0

    def test_cancelled_events_not_counted_by_run_until(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        doomed = queue.schedule_in(1.0, lambda: fired.append("doomed"))
        queue.schedule_in(2.0, lambda: fired.append("kept"))
        doomed.cancel()
        assert queue.run_until(3.0) == 1
        assert fired == ["kept"]

    def test_same_timestamp_fifo_across_schedule_styles(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule_at(1.0, lambda: fired.append("at-first"))
        queue.schedule_in(1.0, lambda: fired.append("in-second"))
        queue.schedule_at(1.0, lambda: fired.append("at-third"))
        queue.run_all()
        assert fired == ["at-first", "in-second", "at-third"]

    def test_run_until_past_rejected(self):
        clock = Clock(start=5.0)
        queue = EventQueue(clock)
        with pytest.raises(SimulationError):
            queue.run_until(4.0)

    def test_cancel_after_fire_is_harmless(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        event = queue.schedule_in(1.0, lambda: fired.append("x"))
        queue.run_all()
        event.cancel()  # late cancel of an already-fired event: no effect
        assert fired == ["x"]
        assert len(queue) == 0

    def test_double_cancel_counts_once(self):
        clock = Clock()
        queue = EventQueue(clock)
        event = queue.schedule_in(1.0, lambda: None)
        queue.schedule_in(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1
        assert queue.run_all() == 1

    def test_mass_cancellation_compacts_the_heap(self):
        clock = Clock()
        queue = EventQueue(clock)
        events = [queue.schedule_in(float(i + 1), lambda: None) for i in range(100)]
        for event in events[10:]:
            event.cancel()
        # Compaction keeps tombstones below half the heap, so the 90
        # cancelled events cannot pin the heap at its high-water mark.
        assert queue._tombstones * 2 <= len(queue._heap)
        assert len(queue._heap) < 30
        assert len(queue) == 10
        assert queue.run_all() == 10

    def test_len_stays_consistent_through_churn(self):
        clock = Clock()
        queue = EventQueue(clock)
        live = 0
        events = []
        for i in range(200):
            events.append(queue.schedule_in(float(i + 1), lambda: None))
            live += 1
            if i % 3 == 0:
                events[i // 2].cancel()
        expected = sum(1 for event in events if not event.cancelled)
        assert len(queue) == expected
        assert queue.run_all() == expected
        assert len(queue) == 0

    def test_compaction_preserves_fire_order(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        keep = []
        for i in range(50):
            event = queue.schedule_in(
                float(50 - i), lambda t=50 - i: fired.append(t)
            )
            if i % 5 == 0:
                keep.append(event)
        for event in queue._heap:
            if event not in keep:
                event.cancel()
        queue.run_all()
        assert fired == sorted(fired)
        assert len(fired) == len(keep)

    def test_cancel_inside_callback_during_drain(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        victims = [
            queue.schedule_in(2.0 + i, lambda i=i: fired.append(i)) for i in range(20)
        ]
        queue.schedule_in(1.0, lambda: [v.cancel() for v in victims])
        assert queue.run_all() == 1
        assert fired == []
        assert len(queue) == 0


class TestTimeline:
    def test_sleep_advances_and_fires(self):
        timeline = Timeline()
        fired = []
        timeline.after(1.0, lambda: fired.append(timeline.now))
        timeline.sleep(2.0)
        assert fired == [1.0]
        assert timeline.now == 2.0

    def test_fork_rng_streams_differ(self):
        timeline = Timeline(seed=1)
        a = timeline.fork_rng("a")
        b = timeline.fork_rng("b")
        assert a.token_bytes(8) != b.token_bytes(8)

    def test_fork_rng_is_stable(self):
        assert (
            Timeline(seed=1).fork_rng("x").token_bytes(8)
            == Timeline(seed=1).fork_rng("x").token_bytes(8)
        )

    def test_same_seed_same_behaviour(self):
        values = []
        for _ in range(2):
            timeline = Timeline(seed=9)
            values.append(timeline.rng.random())
        assert values[0] == values[1]
