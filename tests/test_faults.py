"""repro.faults: retry/backoff machinery, fault plans, and the injector."""

import pytest

from repro.errors import (
    CircuitError,
    NetworkError,
    RetryExhaustedError,
    SimulationError,
    TransientCloudError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NULL_FAULTS,
    RetryPolicy,
    retry_call,
)
from repro.sim import Timeline


@pytest.fixture
def timeline():
    return Timeline(seed=42)


class TestRetryPolicy:
    def test_capped_exponential_sequence(self):
        policy = RetryPolicy(base_backoff_s=0.5, backoff_factor=2.0, max_backoff_s=30.0)
        assert [policy.backoff_s(n) for n in range(1, 9)] == [
            0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0
        ]

    def test_rejects_bad_shapes(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(SimulationError):
            RetryPolicy().backoff_s(0)


class TestRetryCall:
    def test_success_first_try_no_metrics(self, timeline):
        result = retry_call(
            timeline, lambda: 7, policy=RetryPolicy(),
            retryable=NetworkError, site="test.op",
        )
        assert result == 7
        assert "retry.attempts" not in timeline.obs.metrics.snapshot()
        assert timeline.now == 0.0

    def test_retries_sleep_backoff_and_recover(self, timeline):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise NetworkError("transient")
            return "done"

        result = retry_call(
            timeline, flaky,
            policy=RetryPolicy(base_backoff_s=1.0, backoff_factor=2.0),
            retryable=NetworkError, site="test.op",
        )
        assert result == "done"
        assert calls["n"] == 3
        assert timeline.now == pytest.approx(1.0 + 2.0)  # two backoffs
        snapshot = timeline.obs.metrics.snapshot()
        assert snapshot["retry.attempts"] == 2
        assert snapshot["retry.backoff_s"]["count"] == 2
        names = [e.name for e in timeline.obs.journal]
        assert names.count("retry.backoff") == 2
        assert "retry.recovered" in names

    def test_exhaustion_raises_retry_exhausted(self, timeline):
        def always_fails():
            raise NetworkError("permanent")

        with pytest.raises(RetryExhaustedError):
            retry_call(
                timeline, always_fails,
                policy=RetryPolicy(max_attempts=3, base_backoff_s=0.1),
                retryable=NetworkError, site="test.op",
            )
        snapshot = timeline.obs.metrics.snapshot()
        assert snapshot["retry.exhausted"] == 1
        assert snapshot["retry.attempts"] == 3

    def test_reraise_preserves_original_type(self, timeline):
        def always_fails():
            raise CircuitError("relay gone")

        with pytest.raises(CircuitError):
            retry_call(
                timeline, always_fails,
                policy=RetryPolicy(max_attempts=2, base_backoff_s=0.1),
                retryable=CircuitError, site="test.op", reraise=True,
            )

    def test_non_retryable_propagates_immediately(self, timeline):
        calls = {"n": 0}

        def wrong_error():
            calls["n"] += 1
            raise ValueError("not ours")

        with pytest.raises(ValueError):
            retry_call(
                timeline, wrong_error, policy=RetryPolicy(),
                retryable=NetworkError, site="test.op",
            )
        assert calls["n"] == 1

    def test_on_retry_runs_after_backoff(self, timeline):
        seen = []

        def flaky():
            if not seen:
                raise NetworkError("once")
            return "ok"

        def hook(failures, exc):
            seen.append((failures, timeline.now))

        retry_call(
            timeline, flaky, policy=RetryPolicy(base_backoff_s=2.0),
            retryable=NetworkError, site="test.op", on_retry=hook,
        )
        assert seen == [(1, 2.0)]


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan([
            FaultSpec(at_s=50.0, kind="vmm.crash"),
            FaultSpec(at_s=5.0, kind="net.link_flap", param=3.0),
        ])
        assert [e.kind for e in plan] == ["net.link_flap", "vmm.crash"]

    def test_rejects_unknown_kind_and_negative_time(self):
        with pytest.raises(SimulationError):
            FaultSpec(at_s=1.0, kind="bogus.kind")
        with pytest.raises(SimulationError):
            FaultSpec(at_s=-1.0, kind="vmm.crash")

    def test_seeded_plan_is_deterministic(self, timeline):
        a = FaultPlan.seeded(timeline.fork_rng("plan"), 300.0)
        b = FaultPlan.seeded(timeline.fork_rng("plan"), 300.0)
        assert [e.export() for e in a] == [e.export() for e in b]
        other = FaultPlan.seeded(timeline.fork_rng("other"), 300.0)
        assert [e.export() for e in a] != [e.export() for e in other]

    def test_seeded_counts_and_window(self, timeline):
        plan = FaultPlan.seeded(
            timeline.fork_rng("plan"), 100.0,
            relay_churns=2, link_flaps=3, vm_crashes=1,
            upload_failures=1, download_failures=1,
        )
        kinds = [e.kind for e in plan]
        assert kinds.count("tor.relay_churn") == 2
        assert kinds.count("net.link_flap") == 3
        assert kinds.count("vmm.crash") == 1
        assert all(0 <= e.at_s <= 100.0 for e in plan)
        # inline faults arm early
        for e in plan.by_kind("cloud.upload") + plan.by_kind("cloud.download"):
            assert e.at_s <= 10.0


class TestInjector:
    def test_null_faults_is_default_and_inert(self, timeline):
        assert timeline.faults is NULL_FAULTS
        assert not timeline.faults.active
        assert timeline.faults.take("cloud.upload") is None
        timeline.faults.maybe_fail("cloud.upload")  # no-op

    def test_inline_fault_armed_then_consumed(self, timeline):
        plan = FaultPlan([FaultSpec(at_s=10.0, kind="cloud.upload", param=0.4)])
        injector = FaultInjector(timeline, plan).arm()
        assert timeline.faults is injector
        assert injector.take("cloud.upload") is None  # not yet fired
        timeline.sleep(11.0)
        spec = injector.take("cloud.upload")
        assert spec is not None and spec.param == 0.4
        assert injector.take("cloud.upload") is None  # consumed

    def test_maybe_fail_raises_site_error(self, timeline):
        plan = FaultPlan([
            FaultSpec(at_s=0.0, kind="cloud.upload"),
            FaultSpec(at_s=0.0, kind="tor.circuit_build"),
        ])
        injector = FaultInjector(timeline, plan).arm()
        timeline.sleep(1.0)
        with pytest.raises(TransientCloudError):
            injector.maybe_fail("cloud.upload")
        with pytest.raises(CircuitError):
            injector.maybe_fail("tor.circuit_build")
        injector.maybe_fail("cloud.upload")  # queue drained: no-op

    def test_injection_is_observable(self, timeline):
        plan = FaultPlan([FaultSpec(at_s=5.0, kind="cloud.upload")])
        FaultInjector(timeline, plan).arm()
        timeline.sleep(6.0)
        assert timeline.obs.metrics.snapshot()["faults.injected"] == 1
        names = [e.name for e in timeline.obs.journal]
        assert "faults.armed" in names
        assert "faults.injected" in names

    def test_double_arm_rejected(self, timeline):
        injector = FaultInjector(timeline, FaultPlan([]))
        injector.arm()
        with pytest.raises(SimulationError):
            injector.arm()

    def test_disarm_restores_null(self, timeline):
        injector = FaultInjector(timeline, FaultPlan([])).arm()
        injector.disarm()
        assert timeline.faults is NULL_FAULTS


class TestTimedFaultsAgainstManager:
    def test_vm_crash_and_link_flap_hit_named_nymbox(self, manager):
        nymbox = manager.create_nym(name="victim")
        plan = FaultPlan([
            FaultSpec(at_s=1.0, kind="net.link_flap", target="victim", param=4.0),
            FaultSpec(at_s=2.0, kind="vmm.crash", target="victim"),
        ])
        manager.timeline.faults  # default NULL before arming
        FaultInjector(manager.timeline, plan).arm(manager)
        manager.timeline.sleep(1.5)
        assert not nymbox.wire.up
        manager.timeline.sleep(1.0)
        assert nymbox.crashed
        # the flap recovery still fires on schedule
        manager.timeline.sleep(3.0)
        assert nymbox.wire.up

    def test_relay_churn_removes_current_exit(self, manager):
        nymbox = manager.create_nym(name="churned")
        tor = nymbox.anonymizer
        exit_nick = tor.current_circuit.exit.descriptor.nickname
        plan = FaultPlan([FaultSpec(at_s=1.0, kind="tor.relay_churn")])
        injector = FaultInjector(manager.timeline, plan).arm(manager)
        manager.timeline.sleep(2.0)
        assert injector.injected[0]["outcome"] == "churned"
        assert injector.injected[0]["target"] == exit_nick
        consensus = manager.directory.consensus(manager.timeline.now)
        assert exit_nick not in [d.nickname for d in consensus.descriptors]
        assert not tor._current.usable
