"""Kernel samepage merging behaviour (the Figure 3 mechanism)."""

from repro.memory import GuestMemory, Ksm

MIB = 1024 * 1024
PAGES_PER_MIB = 256


def _guest_with_image(name, ram_mib=64, image_mib=16):
    guest = GuestMemory(name, ram_mib * MIB)
    guest.map_image("nymix-base", image_mib * MIB)
    return guest


class TestKsmMerging:
    def test_no_sharing_with_one_guest(self):
        ksm = Ksm()
        ksm.register(_guest_with_image("vm1"))
        stats = ksm.run_to_completion()
        assert stats.pages_sharing == 0

    def test_identical_images_share(self):
        ksm = Ksm()
        for name in ("vm1", "vm2"):
            ksm.register(_guest_with_image(name))
        stats = ksm.run_to_completion()
        assert stats.pages_sharing == 2 * 16 * PAGES_PER_MIB
        assert stats.pages_shared == 16 * PAGES_PER_MIB
        assert stats.pages_saved == 16 * PAGES_PER_MIB

    def test_savings_scale_with_guests(self):
        ksm = Ksm()
        for index in range(8):
            ksm.register(_guest_with_image(f"vm{index}"))
        stats = ksm.run_to_completion()
        # 8 copies of the same 16 MiB: 7/8 of the duplicated pages reclaimed.
        assert stats.pages_saved == 7 * 16 * PAGES_PER_MIB

    def test_unique_pages_never_merge(self):
        ksm = Ksm()
        for name in ("vm1", "vm2"):
            guest = GuestMemory(name, 64 * MIB)
            guest.dirty(16 * MIB)
            ksm.register(guest)
        assert ksm.run_to_completion().pages_sharing == 0

    def test_zero_pages_skipped_by_default(self):
        ksm = Ksm()
        for name in ("vm1", "vm2"):
            ksm.register(GuestMemory(name, 64 * MIB))  # all-zero guests
        assert ksm.run_to_completion().pages_saved == 0

    def test_zero_page_merging_opt_in(self):
        ksm = Ksm(merge_zero_pages=True)
        for name in ("vm1", "vm2"):
            ksm.register(GuestMemory(name, 64 * MIB))
        assert ksm.run_to_completion().pages_saved > 0

    def test_disabled_ksm_reports_nothing(self):
        ksm = Ksm(enabled=False)
        for name in ("vm1", "vm2"):
            ksm.register(_guest_with_image(name))
        assert ksm.run_to_completion().pages_saved == 0

    def test_unregister_removes_contribution(self):
        ksm = Ksm()
        a = _guest_with_image("vm1")
        b = _guest_with_image("vm2")
        ksm.register(a)
        ksm.register(b)
        ksm.run_to_completion()
        ksm.unregister(b)
        assert ksm.stats().pages_sharing == 0

    def test_double_register_is_idempotent(self):
        ksm = Ksm()
        guest = _guest_with_image("vm1")
        ksm.register(guest)
        ksm.register(guest)
        assert ksm.run_to_completion().pages_sharing == 0


class TestKsmRateLimiting:
    def test_sharing_ramps_with_scan_passes(self):
        ksm = Ksm(pages_per_scan=1000)
        for name in ("vm1", "vm2"):
            ksm.register(_guest_with_image(name, ram_mib=64, image_mib=32))
        early = ksm.scan(passes=1)
        later = ksm.scan(passes=10)
        assert early.pages_saved < later.pages_saved

    def test_coverage_caps_at_one(self):
        ksm = Ksm(pages_per_scan=10**9)
        ksm.register(_guest_with_image("vm1"))
        ksm.scan()
        assert ksm.coverage == 1.0

    def test_reset_coverage(self):
        ksm = Ksm()
        for name in ("vm1", "vm2"):
            ksm.register(_guest_with_image(name))
        ksm.run_to_completion()
        ksm.reset_coverage()
        assert ksm.stats().pages_saved == 0

    def test_coverage_with_no_guests(self):
        assert Ksm().coverage == 1.0

    def test_bytes_saved(self):
        ksm = Ksm()
        for name in ("vm1", "vm2"):
            ksm.register(_guest_with_image(name, image_mib=4))
        assert ksm.run_to_completion().bytes_saved == 4 * MIB
