"""The automated red-team sweep (§5.1's two-year adversarial review)."""

import pytest

from repro.attacks.redteam import run_red_team


class TestRedTeam:
    def test_all_attacks_contained(self, manager):
        report = run_red_team(manager, nyms=3)
        assert report.all_contained, report.summary()
        assert len(report.outcomes) == 6

    def test_report_names_every_exercise(self, manager):
        report = run_red_team(manager, nyms=2)
        names = {outcome.name for outcome in report.outcomes}
        assert names == {
            "anonvm-exploit",
            "commvm-exploit",
            "fingerprint-linkage",
            "evercookie-stain",
            "network-probes",
            "isolation-matrix",
        }

    def test_cleans_up_after_itself(self, manager):
        before = set(manager.live_nyms())
        run_red_team(manager, nyms=2)
        assert set(manager.live_nyms()) == before

    def test_summary_readable(self, manager):
        report = run_red_team(manager, nyms=2)
        text = report.summary()
        assert "ALL CONTAINED" in text
        assert "anonvm-exploit" in text

    def test_detects_seeded_breach(self, manager):
        """If isolation were broken, the sweep must say so: seed a fake
        cross-nym wire and watch the matrix exercise fail."""
        a = manager.create_nym(name="breach-a")
        b = manager.create_nym(name="breach-b")
        # Sabotage: wire a's AnonVM to b's AnonVM directly.
        from repro.net.link import VirtualWire

        rogue = VirtualWire(
            manager.timeline, a.anonvm.primary_nic, b.anonvm.primary_nic,
            name="rogue-bridge",
        )
        manager.hypervisor._wires.append(rogue)
        report = run_red_team(manager, nyms=1)
        assert not report.all_contained
        assert any(o.name == "isolation-matrix" for o in report.failures())


class TestWifiCredentialReuse:
    def test_installed_os_exposes_wifi_store(self, manager):
        _, _, ios = manager.boot_installed_os_nym("Windows 7")
        credentials = ios.network_credentials()
        assert any(c.ssid == "HomeNet-5G" for c in credentials)

    def test_wifi_store_needs_boot(self, manager):
        from repro.errors import VmStateError
        from repro.guest.installed_os import INSTALLED_OS_CATALOG, InstalledOs
        from repro.sim import SeededRng

        ios = InstalledOs(INSTALLED_OS_CATALOG["Windows 7"], SeededRng(1))
        with pytest.raises(VmStateError):
            ios.network_credentials()
