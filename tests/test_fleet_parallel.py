"""Process-pool shard execution: the serial/parallel byte-identity gate.

``procs`` is an executor choice, never a semantic one.  These tests pin
the hard guarantees the parallel path makes:

* a ``--procs N`` run produces byte-identical combined journals *and*
  metrics spools to a ``--procs 1`` run at the same seed, including
  injected host crashes;
* checkpoints cross execution modes freely — a run checkpointed under
  one executor resumes under the other, byte for byte;
* a worker process dying mid-run surfaces as a typed
  :class:`~repro.errors.ShardWorkerError` naming the shard and the last
  completed barrier, and the run resumes from its checkpoint to the
  exact bytes of an uninterrupted run.

Spawned workers cost ~1 s of startup each, so the configs here stay
small; the scale-smoke CI job runs the same gate at scenario size.
"""

import json
import os
import signal
import time

import pytest

from repro.cli import main
from repro.errors import FleetError, ShardWorkerError
from repro.fleet.parallel import WorkerPool, default_procs
from repro.fleet.shard import (
    ShardConfig,
    ShardedFleet,
    combined_spool_bytes,
    load_scale_metrics,
    resume_sharded_fleet,
    run_sharded_fleet,
)

CFG = dict(
    seed=7, shards=3, hosts_per_shard=4, nyms=90, host_crashes=2, epoch_s=15.0
)


def run_combined(tmp_path, name, procs, **overrides):
    """Run to completion; return (config, spool_dir, result, journal bytes)."""
    config = ShardConfig(**{**CFG, **overrides})
    spool_dir = str(tmp_path / name)
    result = run_sharded_fleet(config, spool_dir, procs=procs)
    return config, spool_dir, result, combined_spool_bytes(result.spool_paths)


def metrics_bytes(spool_dir, shards):
    paths = [f"{spool_dir}/metrics.metrics.jsonl"] + [
        f"{spool_dir}/shard-{i:02d}.metrics.jsonl" for i in range(shards)
    ]
    return combined_spool_bytes(paths)


class TestByteIdentity:
    def test_parallel_journals_match_serial(self, tmp_path):
        config, dir_s, result_s, bytes_s = run_combined(tmp_path, "serial", 1)
        _, dir_p, result_p, bytes_p = run_combined(tmp_path, "parallel", 2)
        assert bytes_s
        assert bytes_s == bytes_p
        assert result_s.export() == result_p.export()
        assert metrics_bytes(dir_s, config.shards) == metrics_bytes(
            dir_p, config.shards
        )

    def test_procs_beyond_shards_is_capped(self, tmp_path):
        sharded = ShardedFleet(ShardConfig(**CFG), str(tmp_path / "cap"), procs=99)
        try:
            assert sharded.procs == ShardConfig(**CFG).shards
            assert sharded._pool.procs == ShardConfig(**CFG).shards
        finally:
            sharded.shutdown()

    def test_worker_handles_expose_worker_pids(self, tmp_path):
        sharded = ShardedFleet(ShardConfig(**CFG), str(tmp_path / "pids"), procs=2)
        try:
            pids = [handle.pid for handle in sharded.handles]
            assert all(isinstance(pid, int) for pid in pids)
            # 3 shards on 2 workers round-robin: shard 0 and 2 share one.
            assert pids[0] == pids[2] != pids[1]
        finally:
            sharded.shutdown()

    def test_shards_property_guarded_under_parallel(self, tmp_path):
        sharded = ShardedFleet(ShardConfig(**CFG), str(tmp_path / "g"), procs=2)
        try:
            with pytest.raises(FleetError, match="worker processes"):
                sharded.shards
        finally:
            sharded.shutdown()

    def test_default_procs_positive(self):
        assert default_procs() >= 1


class TestCrossModeResume:
    """Checkpoints are executor-agnostic: any mode resumes any mode."""

    @pytest.mark.parametrize(
        "first_procs,second_procs", [(1, 2), (2, 1), (2, 2)]
    )
    def test_resume_across_modes_is_byte_identical(
        self, tmp_path, first_procs, second_procs
    ):
        config, _, _, baseline = run_combined(tmp_path, "base", 1)
        dir_b = str(tmp_path / f"cut-{first_procs}-{second_procs}")
        ck = str(tmp_path / f"ck-{first_procs}-{second_procs}")
        partial = run_sharded_fleet(
            config, dir_b, checkpoint_dir=ck, stop_after_epoch=1,
            procs=first_procs,
        )
        assert not partial.completed
        _, resumed = resume_sharded_fleet(ck, procs=second_procs)
        assert resumed.completed
        assert combined_spool_bytes(resumed.spool_paths) == baseline
        assert metrics_bytes(dir_b, config.shards) == metrics_bytes(
            str(tmp_path / "base"), config.shards
        )


class TestWorkerDeath:
    def wait_for_exit(self, pid):
        for _ in range(100):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return
            time.sleep(0.05)

    def test_killed_worker_raises_typed_error_and_run_resumes(self, tmp_path):
        config, _, _, baseline = run_combined(tmp_path, "base", 1)
        dir_b = str(tmp_path / "killed")
        ck = str(tmp_path / "ck")
        sharded = ShardedFleet(
            config, dir_b, checkpoint_dir=ck, procs=2
        )
        try:
            partial = sharded.run(stop_after_epoch=1)
            assert not partial.completed
            victim = sharded.handles[0].pid
            os.kill(victim, signal.SIGKILL)
            self.wait_for_exit(victim)
            with pytest.raises(ShardWorkerError) as excinfo:
                sharded.run()
        finally:
            sharded.shutdown()
        error = excinfo.value
        assert error.shard_id in (0, 2)  # the shards the dead worker hosted
        assert error.last_barrier == 1
        assert "barrier 1" in str(error)
        # The checkpoint at barrier 1 survives the crash: resume (in
        # either mode) finishes with the uninterrupted run's exact bytes.
        _, resumed = resume_sharded_fleet(ck, procs=2)
        assert resumed.completed
        assert combined_spool_bytes(resumed.spool_paths) == baseline

    def test_error_carries_shard_and_barrier_fields(self):
        error = ShardWorkerError("boom", shard_id=3, last_barrier=7)
        assert error.shard_id == 3
        assert error.last_barrier == 7
        assert isinstance(error, FleetError)


class TestWorkerPoolProtocol:
    def test_pool_caps_procs_to_shard_count(self, tmp_path):
        config = ShardConfig(**{**CFG, "shards": 2, "nyms": 8})
        pool = WorkerPool(
            config,
            procs=8,
            spool_paths=[str(tmp_path / f"s{i}.jsonl") for i in range(2)],
            metrics_paths=[
                str(tmp_path / f"s{i}.metrics.jsonl") for i in range(2)
            ],
        )
        try:
            assert pool.procs == 2
            assert len(pool.handles) == 2
        finally:
            pool.shutdown()

    def test_worker_error_reply_names_last_barrier(self, tmp_path):
        config = ShardConfig(**{**CFG, "shards": 1, "nyms": 8})
        pool = WorkerPool(
            config,
            procs=1,
            spool_paths=[str(tmp_path / "s0.jsonl")],
            metrics_paths=[str(tmp_path / "s0.metrics.jsonl")],
        )
        pool.last_barrier = 4
        try:
            # An in-worker exception (resuming a nonexistent pickle) comes
            # back as a typed error, not a dead worker.
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.request(
                    pool.handles[0],
                    ("resume", 0, str(tmp_path / "missing.pkl")),
                )
            assert excinfo.value.shard_id == 0
            assert excinfo.value.last_barrier == 4
            # The worker survived the bad directive and still answers.
            assert pool.request(pool.handles[0], ("report", 0, None)).cursor == 0
        finally:
            pool.shutdown()


class TestScaleMetrics:
    def test_metrics_spools_load_and_agree_across_modes(self, tmp_path):
        config, dir_s, result_s, _ = run_combined(tmp_path, "serial", 1)
        _, dir_p, _, _ = run_combined(tmp_path, "parallel", 2)
        serial = load_scale_metrics(dir_s)
        parallel = load_scale_metrics(dir_p)
        assert serial["merged"] == parallel["merged"]
        assert serial["shards"] == parallel["shards"]
        assert len(serial["merged"]) == result_s.epochs
        assert set(serial["shards"]) == {
            f"shard-{i:02d}" for i in range(config.shards)
        }
        for records in serial["shards"].values():
            assert [r["epoch"] for r in records] == list(
                range(1, result_s.epochs + 1)
            )
            assert all(r["event"] == "shard.metrics" for r in records)

    def test_merged_stream_tracks_residency(self, tmp_path):
        _, dir_s, result, _ = run_combined(tmp_path, "m", 1)
        merged = load_scale_metrics(dir_s)["merged"]
        assert merged[-1]["nyms_resident"] == result.merged["nyms_resident"]
        assert merged[-1]["host_crashes"] == CFG["host_crashes"]

    def test_load_scale_metrics_rejects_non_spool_dir(self, tmp_path):
        with pytest.raises(FleetError, match="merged metrics spool"):
            load_scale_metrics(str(tmp_path))


class TestCli:
    FLEET_ARGS = [
        "fleet", "--seed", "7", "--shards", "2", "--hosts", "8",
        "--nyms", "24", "--epoch-s", "15", "--host-crashes", "0",
    ]

    def test_fleet_procs_journal_matches_serial(self, tmp_path, capsys):
        spools = {}
        for procs in (1, 2):
            spool = str(tmp_path / f"spool-{procs}")
            code = main(
                self.FLEET_ARGS
                + ["--procs", str(procs), "--spool-dir", spool, "--json",
                   "--out", str(tmp_path / f"out-{procs}.json")]
            )
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["procs"] == procs
            assert payload["environment"]["procs"] == procs
            assert payload["environment"]["cpu_count"] == (os.cpu_count() or 1)
            paths = [f"{spool}/coordinator.jsonl"] + [
                f"{spool}/shard-{i:02d}.jsonl" for i in range(2)
            ]
            spools[procs] = combined_spool_bytes(paths)
        assert spools[1] == spools[2]

    def test_stats_scale_reads_spool_dir(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(self.FLEET_ARGS + ["--spool-dir", spool, "--json"]) == 0
        capsys.readouterr()
        assert main(["stats", "--scale", spool]) == 0
        out = capsys.readouterr().out
        assert "sharded metrics" in out
        assert "shard-00" in out

    def test_stats_scale_json_roundtrips(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(self.FLEET_ARGS + ["--spool-dir", spool, "--json"]) == 0
        capsys.readouterr()
        assert main(["stats", "--scale", spool, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["merged"]
        assert "shard-01" in payload["shards"]

    def test_stats_scale_fails_cleanly_on_bad_dir(self, tmp_path, capsys):
        assert main(["stats", "--scale", str(tmp_path)]) == 1
        assert "merged metrics spool" in capsys.readouterr().err
