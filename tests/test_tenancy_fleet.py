"""Tenancy enforced through the fleet: admission verdicts, journal
byte-equality, rolling drains, autoscaling, and the `repro tenants`
scenario.

The correctness oracle throughout is the event journal: tenancy that is
enabled but unlimited must be byte-invisible, and every enforcement
decision (quota, rate, reconciliation boundary, chaos drain) must land
identically on same-seed reruns.
"""

import filecmp
import json

import pytest

from repro.cli import main
from repro.errors import (
    FleetCapacityError,
    TenantQuotaError,
    TenantRateLimitError,
)
from repro.fleet import Fleet, PlacementRejection
from repro.sim.clock import Timeline
from repro.tenancy.autoscale import Autoscaler
from repro.tenancy.policy import (
    AutoscalePolicy,
    FleetPolicies,
    QuotaPolicy,
    RateLimitPolicy,
    TenantPolicy,
)
from repro.tenancy.registry import TenantRegistry
from repro.tenancy.scenario import run_tenants
from repro.vmm.hypervisor import HostSpec
from repro.vmm.vm import MIB
from repro.workloads.fleet import tenant_workload

GIB = 1024 * MIB

#: Small hosts: RAM admits ~6 nymboxes, the 0.9 watermark ~4.
SMALL_HOST = HostSpec(ram_bytes=4 * GIB, host_base_ram_bytes=1 * GIB)


def make_fleet(hosts=3, tenants=(), seed=11, **kw):
    timeline = Timeline(seed=seed)
    policies = FleetPolicies(tenants=tuple(tenants), **kw.pop("policy_kw", {}))
    fleet = Fleet(timeline, hosts=hosts, policies=policies,
                  host_spec=SMALL_HOST, **kw)
    return timeline, fleet


class TestTenantAdmission:
    def test_quota_rejection_is_typed_and_counted(self):
        _, fleet = make_fleet(
            tenants=[TenantPolicy("acme", quota=QuotaPolicy(max_nyms=1))]
        )
        fleet.place("a0", "img", tenant="acme")
        with pytest.raises(TenantQuotaError, match="acme"):
            fleet.place("a1", "img", tenant="acme")
        assert fleet.tenancy.account("acme").rejected_quota == 1
        # Other tenants and untenanted arrivals are unaffected.
        fleet.place("b0", "img", tenant="beta")
        fleet.place("free", "img")

    def test_rate_rejection_recovers_with_sim_time(self):
        timeline, fleet = make_fleet(
            tenants=[
                TenantPolicy(
                    "acme",
                    rate=RateLimitPolicy(launch_rate_per_s=0.1, launch_burst=1.0),
                )
            ]
        )
        fleet.place("a0", "img", tenant="acme")
        with pytest.raises(TenantRateLimitError, match="acme"):
            fleet.place("a1", "img", tenant="acme")
        timeline.sleep(10.0)  # one fresh launch token
        fleet.place("a1", "img", tenant="acme")
        assert fleet.tenancy.account("acme").rejected_rate == 1

    def test_removal_returns_quota_headroom(self):
        _, fleet = make_fleet(
            tenants=[TenantPolicy("acme", quota=QuotaPolicy(max_nyms=1))]
        )
        fleet.place("a0", "img", tenant="acme")
        fleet.remove("a0")
        fleet.place("a1", "img", tenant="acme")  # quota slot came back
        assert fleet.tenancy.account("acme").nyms == 1


class TestPlaceManyRejectionReasons:
    def test_skip_mode_reports_quota_vs_rate_vs_capacity(self):
        _, fleet = make_fleet(
            hosts=1,
            tenants=[
                TenantPolicy("q", quota=QuotaPolicy(max_nyms=1)),
                TenantPolicy(
                    "r",
                    rate=RateLimitPolicy(launch_rate_per_s=0.001, launch_burst=1.0),
                ),
            ],
            policy_kw=dict(high_watermark=1.0, low_watermark=0.99),
        )
        wave = (
            [("q0", "img", "q"), ("q1", "img", "q")]
            + [("r0", "img", "r"), ("r1", "img", "r")]
            + [(f"f{i}", "img", "") for i in range(8)]
        )
        results = fleet.place_many(wave, on_reject="skip")
        by_name = {
            (r.name if isinstance(r, PlacementRejection) else r.name): r
            for r in results
        }
        assert by_name["q0"]
        rej = by_name["q1"]
        assert isinstance(rej, PlacementRejection) and not rej
        assert (rej.reason, rej.tenant) == ("quota", "q")
        assert by_name["r0"]
        assert by_name["r1"].reason == "rate"
        capacity = [
            r for r in results
            if isinstance(r, PlacementRejection) and r.reason == "capacity"
        ]
        assert capacity  # the single small host fills up
        assert all(not r.tenant for r in capacity)

    def test_wave_matches_sequential_with_tenants(self):
        tenants = [
            TenantPolicy("q", quota=QuotaPolicy(max_nyms=2)),
            TenantPolicy(
                "r", rate=RateLimitPolicy(launch_rate_per_s=0.05, launch_burst=2.0)
            ),
        ]
        wave = [
            (f"n{i:02d}", f"img-{i % 2}", ["q", "r", ""][i % 3])
            for i in range(18)
        ]

        def sequential():
            timeline, fleet = make_fleet(hosts=2, tenants=tenants)
            for name, image_id, tenant in wave:
                try:
                    fleet.place(name, image_id, tenant=tenant)
                except FleetCapacityError:
                    pass
            return timeline, fleet

        def batched():
            timeline, fleet = make_fleet(hosts=2, tenants=tenants)
            fleet.place_many(wave, on_reject="skip")
            return timeline, fleet

        tl_a, fleet_a = sequential()
        tl_b, fleet_b = batched()
        assert tl_a.obs.journal.export_jsonl() == tl_b.obs.journal.export_jsonl()
        assert fleet_a.tenancy.report() == fleet_b.tenancy.report()
        assert sorted(fleet_a.nymboxes) == sorted(fleet_b.nymboxes)

    def test_quota_exhaustion_mid_wave_spares_other_tenants(self):
        _, fleet = make_fleet(
            hosts=2,
            tenants=[TenantPolicy("q", quota=QuotaPolicy(max_nyms=2))],
        )
        wave = [(f"n{i}", "img", "q" if i % 2 == 0 else "other") for i in range(8)]
        results = fleet.place_many(wave, on_reject="skip")
        admitted = [r.name for r in results if r]
        rejected = [r for r in results if not r]
        # q fills its two slots, then every further q arrival bounces;
        # the interleaved other-tenant arrivals all land.
        assert admitted == ["n0", "n1", "n2", "n3", "n5", "n7"]
        assert [(r.name, r.reason) for r in rejected] == [
            ("n4", "quota"), ("n6", "quota"),
        ]
        assert fleet.tenancy.account("q").rejected_quota == 2
        assert fleet.tenancy.account("other").admitted == 4


class TestJournalNeutrality:
    def test_enabled_but_unlimited_equals_disabled(self):
        def run(with_registry: bool) -> str:
            timeline = Timeline(seed=21)
            if with_registry:
                registry = TenantRegistry(timeline).attach()
                registry.apply_initial([TenantPolicy("ghost")])
            fleet = Fleet(timeline, hosts=2, policies=FleetPolicies(),
                          host_spec=SMALL_HOST)
            for i in range(6):
                fleet.place(
                    f"n{i}", f"img-{i % 2}",
                    tenant="ghost" if with_registry else "",
                )
            fleet.touch("n0", 8 * MIB)
            fleet.drain_host("host-0")
            fleet.settle_ksm()
            return timeline.obs.journal.export_jsonl()

        assert run(with_registry=False) == run(with_registry=True)

    def test_reconciliation_boundary_is_deterministic(self):
        def run() -> str:
            timeline, fleet = make_fleet(
                hosts=2,
                tenants=[TenantPolicy("q", quota=QuotaPolicy(max_nyms=1))],
            )
            registry = fleet.tenancy
            fleet.place("q0", "img", tenant="q")
            timeline.sleep(3.3)
            registry.commit(
                TenantPolicy("q", quota=QuotaPolicy(max_nyms=3))
            )
            with pytest.raises(TenantQuotaError):
                fleet.place("early", "img", tenant="q")  # old ceiling
            registry.wait_reconciled()
            fleet.place("late", "img", tenant="q")  # new ceiling
            return timeline.obs.journal.export_jsonl()

        assert run() == run()


class TestRollingDrain:
    def _loaded_fleet(self, hosts=4, nyms=10):
        timeline, fleet = make_fleet(hosts=hosts, tenants=[TenantPolicy("t")])
        for i in range(nyms):
            fleet.place(f"n{i}", f"img-{i % 2}", tenant="t")
        return timeline, fleet

    def test_drain_and_undrain_cycle(self):
        _, fleet = self._loaded_fleet()
        drained = fleet.drain_host("host-0")
        assert drained == "host-0"
        host = fleet.hosts["host-0"]
        assert host.draining and not host.residents
        assert fleet.stats().hosts_draining == 1
        # Nobody placed on a draining host.
        fleet.place("fresh", "img-0", tenant="t")
        assert fleet.nymboxes["fresh"].host_id != "host-0"
        fleet.undrain_host("host-0")
        assert not fleet.hosts["host-0"].draining
        assert fleet.stats().hosts_draining == 0

    def test_rolling_drain_loses_zero_nyms(self):
        timeline, fleet = self._loaded_fleet(hosts=4, nyms=10)
        before = sorted(fleet.nymboxes)
        report = fleet.rolling_drain(count=3, upgrade_s=5.0)
        assert report.lost == 0
        assert report.parked == 0
        assert report.evacuated == report.relaunched
        assert sorted(fleet.nymboxes) == before
        assert len(report.hosts) == 3
        # return_to_service=True: every drained host is serving again.
        assert fleet.stats().hosts_draining == 0
        assert fleet.stats().host_drains == 3
        assert fleet.tenancy.account("t").evacuations == report.evacuated

    def test_rolling_drain_without_return_keeps_hosts_out(self):
        _, fleet = self._loaded_fleet(hosts=4, nyms=6)
        report = fleet.rolling_drain(
            host_ids=["host-1", "host-2"], return_to_service=False
        )
        assert report.hosts == ("host-1", "host-2")
        assert report.lost == 0
        assert fleet.stats().hosts_draining == 2

    def test_rolling_drain_is_deterministic(self):
        def run() -> str:
            timeline, fleet = self._loaded_fleet(hosts=4, nyms=10)
            fleet.rolling_drain(count=3, upgrade_s=5.0)
            return timeline.obs.journal.export_jsonl()

        assert run() == run()


class TestAutoscaler:
    # Thresholds sit between measured utilization plateaus for SMALL_HOST:
    # one empty host idles at 0.25, three nyms push it to 0.625, and two
    # hosts holding one nym sit at 0.3125.
    POLICY = AutoscalePolicy(
        min_hosts=1, max_hosts=2, scale_up_pressure=0.6,
        scale_down_pressure=0.32, interval_s=10.0,
    )

    def _fleet(self):
        timeline = Timeline(seed=13)
        fleet = Fleet(
            timeline, hosts=1,
            policies=FleetPolicies(autoscale=self.POLICY),
            host_spec=SMALL_HOST,
        )
        return timeline, fleet

    def test_scale_up_then_down(self):
        timeline, fleet = self._fleet()
        assert isinstance(fleet.autoscaler, Autoscaler)
        # Drive decisions by hand: placements advance sim time past the
        # tick interval, so the periodic tick would otherwise act first.
        fleet.autoscaler.stop()
        for i in range(3):
            fleet.place(f"n{i}", "img")
        assert fleet.autoscaler.evaluate() == "up"
        assert len(fleet.serving_hosts()) == 2
        assert timeline.obs.journal.count("tenancy.scale_up") == 1
        for i in range(3):
            fleet.remove(f"n{i}")
        assert fleet.autoscaler.evaluate() == "down"
        assert len(fleet.serving_hosts()) == 1
        assert timeline.obs.journal.count("tenancy.scale_down") == 1
        assert (fleet.autoscaler.scale_ups, fleet.autoscaler.scale_downs) == (1, 1)

    def test_periodic_tick_scales_without_manual_calls(self):
        timeline, fleet = self._fleet()
        for i in range(3):
            fleet.place(f"n{i}", "img")
        timeline.sleep(self.POLICY.interval_s + 1.0)
        assert len(fleet.serving_hosts()) == 2
        fleet.autoscaler.stop()

    def test_scale_down_prefers_the_empty_host(self):
        timeline, fleet = self._fleet()
        fleet.autoscaler.stop()
        fleet.place("keeper", "img")
        fleet.add_hosts(1)
        assert fleet.autoscaler.evaluate() == "down"
        # The emptiest host went away; the resident never had to move.
        assert len(fleet.serving_hosts()) == 1
        assert fleet.nymboxes["keeper"].host_id == "host-0"

    def test_no_autoscale_policy_means_no_scaler_no_events(self):
        timeline, fleet = make_fleet(hosts=1)
        assert fleet.autoscaler is None
        timeline.sleep(60.0)
        assert timeline.obs.journal.count("tenancy.scale_up") == 0


class TestTenantWorkload:
    def test_attribution_is_deterministic_and_weighted(self):
        a = tenant_workload(Timeline(seed=4).fork_rng("w"), 60, ["x", "y"])
        b = tenant_workload(Timeline(seed=4).fork_rng("w"), 60, ["x", "y"])
        assert a == b
        tenants = {arrival.tenant for arrival in a}
        assert tenants == {"x", "y"}


class TestRunTenantsScenario:
    QUICK = dict(hosts=8, nyms=48, drain_hosts=2)

    def test_report_covers_the_acceptance_story(self, tmp_path):
        report = run_tenants(
            seed=3, out_path=str(tmp_path / "bench.json"), **self.QUICK
        )
        alpha = report.tenant("alpha")
        beta = report.tenant("beta")
        assert alpha["rejected_quota"] > 0  # over its nym ceiling
        assert beta["rejected_rate"] > 0  # launch bucket ran dry
        assert beta["throttled"] > 0  # ingress debt became delay
        assert report.zero_lost
        assert report.drain.lost == 0
        assert len(report.drain.hosts) == 2
        assert report.reconciles == 1  # the mid-run quota doubling
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["bench"] == "tenants"
        assert payload["zero_lost"] is True
        assert {row["tenant"] for row in payload["tenants"]} == {"alpha", "beta"}

    def test_mid_run_update_doubles_the_quota(self, tmp_path):
        report = run_tenants(
            seed=3, out_path=str(tmp_path / "bench.json"), **self.QUICK
        )
        # Default alpha ceiling for 48 nyms is 4; the boundary doubled it,
        # so more than 4 alpha nyms were ultimately admitted.
        assert report.tenant("alpha")["admitted"] > 4

    @pytest.mark.parametrize("chaos", [False, True])
    def test_same_seed_journals_byte_identical(self, tmp_path, chaos):
        paths = []
        for tag in ("a", "b"):
            path = tmp_path / f"{tag}.jsonl"
            report = run_tenants(
                seed=7, chaos=chaos, journal_path=str(path),
                out_path=str(tmp_path / f"{tag}.json"), **self.QUICK
            )
            assert report.zero_lost
            paths.append(path)
        assert filecmp.cmp(*map(str, paths), shallow=False)

    def test_chaos_delivers_drain_during_crash(self, tmp_path):
        report = run_tenants(
            seed=7, chaos=True, out_path=str(tmp_path / "bench.json"),
            **self.QUICK
        )
        outcomes = {f["kind"]: f["outcome"] for f in report.faults}
        assert outcomes["tenancy.tenant_burst"] == "burst"
        assert outcomes["fleet.host_drain"] == "host_drained"
        assert outcomes["fleet.host_crash"] == "host_crashed"
        assert report.zero_lost


class TestTenantsCli:
    def test_tenants_quick_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["--seed", "3", "tenants", "--quick", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "tenants"
        assert payload["zero_lost"] is True

    def test_tenant_config_drives_the_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = tmp_path / "tenants.json"
        config.write_text(json.dumps({
            "tenants": [
                {"name": "acme", "quota": {"max_nyms": 2}, "qos": "bronze"},
                {"name": "globex", "qos": "gold"},
            ]
        }))
        code = main([
            "--seed", "3", "tenants", "--quick", "--json",
            "--tenant-config", str(config),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["tenant"] for row in payload["tenants"]} == {"acme", "globex"}

    def test_bad_tenant_config_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "tenants", "--quick",
                "--tenant-config", str(tmp_path / "missing.json"),
            ])
        assert excinfo.value.code == 2
