"""Buddies: anonymity metrics and the posting safeguard (§7 / [77])."""

import math

import pytest

from repro.anonymizers.buddies import BuddiesMonitor, PostingPolicy
from repro.errors import AnonymizerError


def _population(n=16):
    return {f"user{i:02d}" for i in range(n)}


class TestBuddyMetrics:
    def test_fresh_nym_has_full_population(self):
        monitor = BuddiesMonitor(_population())
        assert monitor.buddy_set_size("nym") == 16
        assert monitor.anonymity_bits("nym") == pytest.approx(4.0)

    def test_posting_shrinks_buddy_set(self):
        monitor = BuddiesMonitor(_population())
        online = {f"user{i:02d}" for i in range(8)}
        decision = monitor.attempt_post("nym", online)
        assert decision.allowed
        assert monitor.buddy_set("nym") == online

    def test_intersection_accumulates(self):
        monitor = BuddiesMonitor(_population())
        monitor.attempt_post("nym", {f"user{i:02d}" for i in range(8)})
        monitor.attempt_post("nym", {f"user{i:02d}" for i in range(4, 12)})
        assert monitor.buddy_set("nym") == {f"user{i:02d}" for i in range(4, 8)}

    def test_anonymity_bits_track_log2(self):
        monitor = BuddiesMonitor(_population())
        monitor.attempt_post("nym", {f"user{i:02d}" for i in range(4)})
        assert monitor.anonymity_bits("nym") == pytest.approx(2.0)


class TestPostingSafeguard:
    def test_block_policy_refuses_fatal_post(self):
        monitor = BuddiesMonitor(_population(), threshold=4, policy=PostingPolicy.BLOCK)
        monitor.attempt_post("nym", {f"user{i:02d}" for i in range(5)})
        decision = monitor.attempt_post("nym", {"user00", "user01"})
        assert not decision.allowed
        assert decision.warning
        # The buddy set is unchanged because the post never happened.
        assert monitor.buddy_set_size("nym") == 5

    def test_warn_policy_posts_anyway(self):
        monitor = BuddiesMonitor(_population(), threshold=4, policy=PostingPolicy.WARN)
        monitor.attempt_post("nym", {f"user{i:02d}" for i in range(5)})
        decision = monitor.attempt_post("nym", {"user00", "user01"})
        assert decision.allowed
        assert decision.warning
        assert monitor.buddy_set_size("nym") == 2

    def test_threshold_one_never_blocks(self):
        monitor = BuddiesMonitor(_population(), threshold=1)
        decision = monitor.attempt_post("nym", {"user00"})
        assert decision.allowed

    def test_stats(self):
        monitor = BuddiesMonitor(_population(), threshold=8)
        monitor.attempt_post("nym", _population())
        monitor.attempt_post("nym", {"user00"})
        stats = monitor.stats("nym")
        assert stats == {"posts": 1, "blocked_posts": 1, "buddy_set_size": 16}

    def test_independent_nyms(self):
        monitor = BuddiesMonitor(_population())
        monitor.attempt_post("a", {"user00", "user01"})
        assert monitor.buddy_set_size("b") == 16

    def test_reset_restores_full_anonymity(self):
        """Discarding a nym and starting fresh denies the adversary its
        accumulated intersections — the ephemeral-nym defense."""
        monitor = BuddiesMonitor(_population())
        monitor.attempt_post("nym", {"user00", "user01"})
        monitor.reset_nym("nym")
        assert monitor.buddy_set_size("nym") == 16

    def test_invalid_construction(self):
        with pytest.raises(AnonymizerError):
            BuddiesMonitor(_population(), threshold=0)
        with pytest.raises(AnonymizerError):
            BuddiesMonitor(set())


class TestLongTermProtection:
    def test_safeguard_bounds_deanonymization(self):
        """Without Buddies, repeated posts drive the candidate set to 1;
        with a BLOCK threshold, it never goes below the floor."""
        import random

        population = _population(32)
        unguarded = BuddiesMonitor(population, threshold=1)
        guarded = BuddiesMonitor(population, threshold=4, policy=PostingPolicy.BLOCK)
        rng = random.Random(5)
        for _ in range(40):
            online = {u for u in population if rng.random() < 0.5} | {"user00"}
            unguarded.attempt_post("nym", online)
            guarded.attempt_post("nym", online)
        assert unguarded.buddy_set_size("nym") <= 2
        assert guarded.buddy_set_size("nym") >= 4
