"""The adversary suite: fingerprinting, staining, exploits, intersection."""

import pytest

from repro.attacks import (
    AnonVmCompromise,
    CommVmCompromise,
    EvercookieStain,
    GuardExposureModel,
    IntersectionAttack,
    distinguishing_bits,
    fingerprints_distinguishable,
)
from repro.attacks.fingerprinting import cpu_timing_fingerprint
from repro.attacks.intersection import candidate_count_after_epochs, linkable_by_exit
from repro.sim import SeededRng


class TestFingerprinting:
    def test_identical_fingerprints_zero_bits(self, manager):
        nyms = [manager.create_nym(name=f"n{i}") for i in range(3)]
        vm_fps = [n.anonvm.fingerprint() for n in nyms]
        browser_fps = [n.browser.fingerprint for n in nyms]
        assert distinguishing_bits(vm_fps) == 0.0
        assert distinguishing_bits(browser_fps) == 0.0
        assert not fingerprints_distinguishable(vm_fps)

    def test_heterogeneous_population_leaks_bits(self):
        fps = [{"ua": "chrome"}, {"ua": "firefox"}, {"ua": "chrome"}, {"ua": "safari"}]
        assert fingerprints_distinguishable(fps)
        assert distinguishing_bits(fps) > 1.0

    def test_entropy_of_uniform_population(self):
        fps = [{"id": i} for i in range(8)]
        assert distinguishing_bits(fps) == pytest.approx(3.0)

    def test_empty_population(self):
        assert distinguishing_bits([]) == 0.0

    def test_cpu_timing_clusters(self):
        labels = cpu_timing_fingerprint([1.00, 1.01, 2.00, 0.99, 2.02])
        assert labels[0] == labels[1] == labels[3]
        assert labels[2] == labels[4]
        assert labels[0] != labels[2]

    def test_cpu_timing_homogeneous(self):
        labels = cpu_timing_fingerprint([1.0, 1.001, 0.999])
        assert len(set(labels)) == 1


class TestStaining:
    def test_stain_detected_while_nym_lives(self, manager):
        nymbox = manager.create_nym(name="victim")
        stain = EvercookieStain("track-123")
        planted = stain.plant(nymbox)
        assert planted == 5
        assert stain.detected(nymbox)

    def test_ephemeral_nym_sheds_stain(self, manager):
        """§3.3: 'trackable stains disappear immediately when the nym does.'"""
        nymbox = manager.create_nym(name="victim")
        stain = EvercookieStain("track-123")
        stain.plant(nymbox)
        manager.discard_nym(nymbox)
        fresh = manager.create_nym(name="victim")
        assert not stain.detected(fresh)

    def test_persistent_nym_carries_stain(self, manager):
        """The §3.5 trade-off: persistent mode preserves stains too."""
        manager.create_cloud_account("dropbox.com", "u", "p")
        nymbox = manager.create_nym(name="victim")
        stain = EvercookieStain("track-123")
        stain.plant(nymbox)
        manager.store_nym(nymbox, password="pw", provider_host="dropbox.com", account_username="u")
        manager.discard_nym(nymbox)
        restored = manager.load_nym("victim", "pw")
        assert stain.detected(restored)

    def test_preconfigured_nym_sheds_stain_at_restore(self, manager):
        manager.create_cloud_account("dropbox.com", "u", "p")
        nymbox = manager.create_nym(name="victim")
        manager.snapshot_nym(nymbox, password="pw", provider_host="dropbox.com", account_username="u")
        stain = EvercookieStain("track-123")
        stain.plant(nymbox)  # infection AFTER the snapshot
        manager.close_session(nymbox)
        restored = manager.load_nym("victim", "pw")
        assert not stain.detected(restored)


class TestExploits:
    def test_anonvm_compromise_learns_nothing_real(self, manager):
        nymbox = manager.create_nym(name="victim")
        findings = AnonVmCompromise(nymbox).run()
        assert findings.observed_ips == ["10.0.2.15"]
        assert findings.observed_macs == ["52:54:00:12:34:56"]
        assert not findings.knows_real_network_identity(manager.hypervisor.public_ip)

    def test_anonvm_probe_reaches_only_own_commvm(self, manager):
        nymbox = manager.create_nym(name="victim")
        manager.create_nym(name="other")
        findings = AnonVmCompromise(nymbox).run()
        assert findings.reachable_hosts == ["10.0.2.2"]

    def test_exfiltration_reveals_exit_only(self, manager):
        nymbox = manager.create_nym(name="victim")
        findings = AnonVmCompromise(nymbox).run()
        assert len(findings.exfiltration_paths) == 1
        assert "via-anonymizer" in findings.exfiltration_paths[0]
        assert str(manager.hypervisor.public_ip) not in findings.exfiltration_paths[0]

    def test_identical_findings_across_nyms(self, manager):
        """A compromised AnonVM cannot even tell *which* nym it is in."""
        a = AnonVmCompromise(manager.create_nym(name="a")).run()
        b = AnonVmCompromise(manager.create_nym(name="b")).run()
        assert a.observed_ips == b.observed_ips
        assert a.observed_macs == b.observed_macs
        assert a.hardware == b.hardware

    def test_commvm_compromise_leaks_public_ip_but_no_browser_state(self, manager):
        """§3.2: a compromised CommVM learns the public IP — and only that."""
        nymbox = manager.create_nym(name="victim")
        manager.timed_browse(nymbox, "twitter.com")
        nymbox.sign_in("twitter.com", "user", "pw")
        findings = CommVmCompromise(nymbox, manager.hypervisor.public_ip).run()
        assert findings.knows_real_network_identity(manager.hypervisor.public_ip)
        assert findings.stolen_files == []


class TestIntersection:
    def test_linkable_messages_converge(self):
        attack = IntersectionAttack(
            population=100, online_probability=0.5, rng=SeededRng(1)
        )
        epochs = attack.epochs_to_deanonymize()
        assert epochs is not None
        assert epochs <= 30

    def test_larger_population_takes_longer(self):
        small = IntersectionAttack(50, 0.5, SeededRng(2)).epochs_to_deanonymize()
        large = IntersectionAttack(5000, 0.5, SeededRng(2)).epochs_to_deanonymize()
        assert large >= small

    def test_unlinkable_nyms_never_converge(self):
        attack = IntersectionAttack(100, 0.5, SeededRng(3))
        assert attack.epochs_with_unlinkable_nyms() is None

    def test_analytic_candidate_decay(self):
        assert candidate_count_after_epochs(1000, 0.5, 10) == pytest.approx(0.9765625)

    def test_exit_linkage_heuristic(self):
        assert linkable_by_exit(["1.1.1.1"], ["1.1.1.1", "2.2.2.2"])
        assert not linkable_by_exit(["1.1.1.1"], ["3.3.3.3"])


class TestGuardExposure:
    def test_rotation_much_worse_than_persistence(self):
        """§3.5: frequent guard churn accelerates compromise."""
        model = GuardExposureModel(SeededRng(4), total_guards=40, adversary_guards=4)
        rotate = model.compromise_rate(sessions=30, rotate_every_session=True, trials=100)
        persist = model.compromise_rate(sessions=30, rotate_every_session=False, trials=100)
        assert rotate > persist * 1.5

    def test_persistent_guards_stay_small(self):
        model = GuardExposureModel(SeededRng(5))
        trace = model.simulate(sessions=50, rotate_every_session=False)
        assert len(trace.distinct_guards) == 3

    def test_rotation_accumulates_guards(self):
        model = GuardExposureModel(SeededRng(6))
        trace = model.simulate(sessions=50, rotate_every_session=True)
        assert len(trace.distinct_guards) > 10

    def test_no_adversary_no_compromise(self):
        model = GuardExposureModel(SeededRng(7), adversary_guards=0)
        trace = model.simulate(sessions=100, rotate_every_session=True)
        assert not trace.ever_compromised

    def test_bad_adversary_count(self):
        with pytest.raises(ValueError):
            GuardExposureModel(SeededRng(8), total_guards=10, adversary_guards=11)
