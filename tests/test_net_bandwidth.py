"""Flow-level bandwidth pool (Figure 5's substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.net import BandwidthPool

MIB = 1024 * 1024


class TestBandwidthPool:
    def test_single_flow_duration(self):
        pool = BandwidthPool(capacity_bps=8_000_000)  # 1 MB/s
        flow = pool.transfer(1_000_000)
        assert flow.duration_s == pytest.approx(1.0)

    def test_rtt_added(self):
        pool = BandwidthPool(capacity_bps=8_000_000, rtt_s=0.080)
        flow = pool.transfer(1_000_000)
        assert flow.duration_s == pytest.approx(1.080)

    def test_overhead_factor_inflates_wire_bytes(self):
        pool = BandwidthPool(capacity_bps=8_000_000)
        flow = pool.transfer(1_000_000, overhead_factor=1.12)
        assert flow.wire_bytes == 1_120_000
        assert flow.duration_s == pytest.approx(1.12)

    def test_parallel_flows_share_fairly(self):
        pool = BandwidthPool(capacity_bps=8_000_000)
        flows = pool.transfer_batch([1_000_000] * 4)
        for flow in flows:
            assert flow.duration_s == pytest.approx(4.0)

    def test_per_flow_ceiling(self):
        pool = BandwidthPool(capacity_bps=80_000_000)
        flow = pool.transfer(1_000_000, per_flow_ceiling_bps=8_000_000)
        assert flow.duration_s == pytest.approx(1.0)

    def test_overhead_below_one_rejected(self):
        pool = BandwidthPool(capacity_bps=1000)
        with pytest.raises(NetworkError):
            pool.transfer(1000, overhead_factor=0.9)

    def test_bad_capacity_rejected(self):
        with pytest.raises(NetworkError):
            BandwidthPool(capacity_bps=0)

    def test_negative_rtt_rejected(self):
        with pytest.raises(NetworkError):
            BandwidthPool(capacity_bps=1000, rtt_s=-1)

    def test_factor_length_mismatch_rejected(self):
        pool = BandwidthPool(capacity_bps=1000)
        with pytest.raises(NetworkError):
            pool.transfer_batch([100, 200], [1.0])

    def test_empty_batch(self):
        assert BandwidthPool(capacity_bps=1000).transfer_batch([]) == []

    def test_total_wire_bytes_accumulates(self):
        pool = BandwidthPool(capacity_bps=8_000_000)
        pool.transfer(500_000)
        pool.transfer(500_000, overhead_factor=2.0)
        assert pool.total_wire_bytes == 500_000 + 1_000_000

    def test_goodput(self):
        pool = BandwidthPool(capacity_bps=8_000_000)
        flow = pool.transfer(1_000_000)
        assert flow.goodput_bps == pytest.approx(8_000_000)

    @given(
        st.lists(st.integers(min_value=1, max_value=10 * MIB), min_size=1, max_size=8),
        st.floats(min_value=1.0, max_value=2.0),
    )
    @settings(max_examples=30)
    def test_makespan_equals_total_wire_time_property(self, sizes, factor):
        """With equal factors, the slowest flow finishes exactly when the
        pool has pushed every wire byte."""
        pool = BandwidthPool(capacity_bps=10_000_000)
        flows = pool.transfer_batch(sizes, [factor] * len(sizes))
        makespan = max(f.duration_s for f in flows)
        total_bits = sum(s * 8 * factor for s in sizes)
        assert makespan == pytest.approx(total_bits / 10_000_000, rel=1e-6)
