"""Lazy (access-time) scrubbing via user-driven grants (§6 UDAC variant)."""

import pytest

from repro.errors import SanitizeError
from repro.memory import GuestMemory
from repro.sanitize import ParanoiaLevel, SaniVm, SimDocument, SimImage, parse_file
from repro.sanitize.lazy import LazyGrant
from repro.sim import Timeline
from repro.unionfs.layer import Layer
from repro.vmm.baseimage import build_base_layer, build_vm_mount
from repro.vmm.vm import VmSpec, VirtualMachine


@pytest.fixture
def sanivm():
    timeline = Timeline(seed=8)
    spec = VmSpec.sanivm()
    vm = VirtualMachine(
        timeline, "sanivm", spec, GuestMemory("sanivm", spec.ram_bytes),
        build_vm_mount(spec.role, spec.writable_fs_bytes, build_base_layer()),
        "nymix-base",
    )
    vm.boot()
    sanivm = SaniVm(timeline, vm)
    sanivm.mount_host_filesystem(
        "home",
        Layer(
            "home",
            files={
                "/photos/a.jpg": SimImage.camera_photo(faces=1).to_bytes(),
                "/photos/b.jpg": SimImage.camera_photo(pixel_seed=2).to_bytes(),
                "/docs/report.doc": SimDocument.office_document().to_bytes(),
            },
            read_only=True,
        ),
    )
    return sanivm


@pytest.fixture
def lazy(sanivm):
    return LazyGrant(sanivm)


class TestGranting:
    def test_grant_records_paths(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg", "/photos/b.jpg"])
        assert lazy.granted_paths("nym-a", "home") == {"/photos/a.jpg", "/photos/b.jpg"}

    def test_grant_unknown_path_rejected(self, lazy):
        with pytest.raises(SanitizeError):
            lazy.grant("nym-a", "home", ["/photos/missing.jpg"])

    def test_grant_costs_no_scrubbing(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg"])
        assert lazy.scrubs_performed == 0

    def test_revoke(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg"])
        lazy.revoke("nym-a", "home")
        with pytest.raises(SanitizeError):
            lazy.access("nym-a", "home", "/photos/a.jpg")


class TestAccessTimeScrubbing:
    def test_first_access_scrubs(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg"], ParanoiaLevel.MEDIUM)
        data = lazy.access("nym-a", "home", "/photos/a.jpg")
        image = parse_file(data)
        assert image.exif == {}
        assert image.unblurred_faces == 0
        assert lazy.scrubs_performed == 1

    def test_repeat_access_hits_cache(self, lazy, sanivm):
        lazy.grant("nym-a", "home", ["/photos/a.jpg"])
        lazy.access("nym-a", "home", "/photos/a.jpg")
        t = sanivm.timeline.now
        lazy.access("nym-a", "home", "/photos/a.jpg")
        assert lazy.scrubs_performed == 1
        assert sanivm.timeline.now == t  # cached: no transform time

    def test_access_outside_grant_rejected(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg"])
        with pytest.raises(SanitizeError):
            lazy.access("nym-a", "home", "/photos/b.jpg")

    def test_other_nym_needs_own_grant(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg"])
        with pytest.raises(SanitizeError):
            lazy.access("nym-b", "home", "/photos/a.jpg")

    def test_accesses_logged(self, lazy):
        lazy.grant("nym-a", "home", ["/photos/a.jpg", "/photos/b.jpg"])
        lazy.access("nym-a", "home", "/photos/a.jpg")
        lazy.access("nym-a", "home", "/photos/a.jpg")
        assert lazy.access_count("nym-a", "home") == 2

    def test_level_applied_per_grant(self, lazy):
        lazy.grant("nym-a", "home", ["/docs/report.doc"], ParanoiaLevel.HIGH)
        data = lazy.access("nym-a", "home", "/docs/report.doc")
        document = parse_file(data)
        assert document.metadata == {}
        assert document.revision_history == []
