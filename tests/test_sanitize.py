"""File formats, risk analysis, MAT, transforms (§3.6/§4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SanitizeError
from repro.sanitize import (
    MatScrubber,
    ParanoiaLevel,
    RiskAnalyzer,
    SimDocument,
    SimImage,
    add_noise,
    blur_faces,
    parse_file,
    rasterize_document,
    strip_metadata,
)
from repro.sanitize.transforms import apply_level


class TestFileFormats:
    def test_image_roundtrip(self):
        image = SimImage.camera_photo(faces=2, watermark_id="wm")
        parsed = SimImage.from_bytes(image.to_bytes())
        assert parsed.exif == image.exif
        assert len(parsed.faces) == 2
        assert parsed.watermark_id == "wm"

    def test_document_roundtrip(self):
        doc = SimDocument.office_document(hidden_text=["redacted name"])
        parsed = SimDocument.from_bytes(doc.to_bytes())
        assert parsed.metadata == doc.metadata
        assert parsed.hidden_text == ["redacted name"]

    def test_parse_dispatches_on_magic(self):
        assert isinstance(parse_file(SimImage.camera_photo().to_bytes()), SimImage)
        assert isinstance(parse_file(SimDocument.office_document().to_bytes()), SimDocument)

    def test_parse_rejects_garbage(self):
        with pytest.raises(SanitizeError):
            parse_file(b"random bytes")

    def test_camera_photo_has_gps_and_serial(self):
        image = SimImage.camera_photo()
        assert image.has_gps
        assert "SerialNumber" in image.exif

    def test_watermark_detectability_threshold(self):
        image = SimImage.camera_photo(watermark_id="wm")
        assert image.watermark_detectable
        noisy = add_noise(add_noise(image, 0.15), 0.15)
        assert not noisy.watermark_detectable

    @given(st.dictionaries(st.from_regex(r"[A-Za-z]{1,12}", fullmatch=True), st.text(max_size=20), max_size=6))
    @settings(max_examples=25)
    def test_exif_roundtrip_property(self, exif):
        image = SimImage(width=100, height=100, pixel_seed=1, exif=exif)
        assert SimImage.from_bytes(image.to_bytes()).exif == exif


class TestRiskAnalyzer:
    def test_camera_photo_risks(self):
        report = RiskAnalyzer().analyze("p.jpg", SimImage.camera_photo(faces=1))
        kinds = report.kinds()
        assert "exif-gps" in kinds
        assert "exif-serial" in kinds
        assert "face" in kinds
        assert report.high_risks

    def test_clean_image(self):
        image = SimImage(width=10, height=10, pixel_seed=1)
        report = RiskAnalyzer().analyze("p.jpg", image)
        assert report.clean
        assert "no identified risks" in report.summary()

    def test_office_document_risks(self):
        report = RiskAnalyzer().analyze("d.doc", SimDocument.office_document())
        assert "doc-author" in report.kinds()
        assert "doc-revisions" in report.kinds()

    def test_hidden_text_flagged_high(self):
        doc = SimDocument.office_document(hidden_text=["x"])
        report = RiskAnalyzer().analyze("d.doc", doc)
        assert any(r.kind == "doc-hidden-text" and r.severity == "high" for r in report.risks)

    def test_analyze_bytes(self):
        report = RiskAnalyzer().analyze_bytes("p.jpg", SimImage.camera_photo().to_bytes())
        assert not report.clean


class TestMat:
    def test_strips_image_exif(self):
        scrubbed = MatScrubber().scrub_image(SimImage.camera_photo())
        assert scrubbed.exif == {}
        assert not scrubbed.has_gps

    def test_preserves_pixels(self):
        image = SimImage.camera_photo(pixel_seed=77)
        assert MatScrubber().scrub_image(image).pixel_seed == 77

    def test_cannot_remove_faces_or_watermarks(self):
        """MAT's documented limitation (§4.3)."""
        image = SimImage.camera_photo(faces=1, watermark_id="wm")
        scrubbed = MatScrubber().scrub_image(image)
        assert scrubbed.unblurred_faces == 1
        assert scrubbed.watermark_detectable

    def test_strips_document_metadata_but_not_hidden_text(self):
        doc = SimDocument.office_document(hidden_text=["x"])
        scrubbed = MatScrubber().scrub_document(doc)
        assert scrubbed.metadata == {}
        assert scrubbed.revision_history == []
        assert scrubbed.hidden_text == ["x"]

    def test_scrub_bytes(self):
        data = MatScrubber().scrub_bytes(SimImage.camera_photo().to_bytes())
        assert SimImage.from_bytes(data).exif == {}


class TestTransforms:
    def test_blur_faces(self):
        image = SimImage.camera_photo(faces=3)
        assert blur_faces(image).unblurred_faces == 0

    def test_blur_preserves_exif(self):
        image = SimImage.camera_photo(faces=1)
        assert blur_faces(image).exif == image.exif

    def test_add_noise_downscales(self):
        image = SimImage.camera_photo()
        noisy = add_noise(image, downscale=0.5)
        assert noisy.width == image.width // 2

    def test_add_noise_bad_downscale(self):
        with pytest.raises(SanitizeError):
            add_noise(SimImage.camera_photo(), downscale=0.0)

    def test_rasterize_destroys_hidden_structure(self):
        doc = SimDocument.office_document(hidden_text=["x"], revisions=["r1"])
        raster = rasterize_document(doc)
        assert raster.hidden_text == []
        assert raster.revision_history == []
        assert raster.metadata == {}
        assert len(raster.pages) == len(doc.pages)

    def test_rasterize_keeps_visible_text(self):
        doc = SimDocument.office_document(pages=["visible content"])
        assert "visible content" in rasterize_document(doc).pages[0]

    def test_transforms_pass_through_wrong_types(self):
        doc = SimDocument.office_document()
        assert blur_faces(doc) is doc
        image = SimImage.camera_photo()
        assert rasterize_document(image) is image


class TestParanoiaLevels:
    def test_low_strips_metadata_only(self):
        image = SimImage.camera_photo(faces=1, watermark_id="wm")
        result = apply_level(image, ParanoiaLevel.LOW)
        report = RiskAnalyzer().analyze("p", result)
        assert "exif-gps" not in report.kinds()
        assert "face" in report.kinds()

    def test_medium_also_blurs_faces(self):
        image = SimImage.camera_photo(faces=1)
        result = apply_level(image, ParanoiaLevel.MEDIUM)
        assert "face" not in RiskAnalyzer().analyze("p", result).kinds()

    def test_high_clears_everything_on_images(self):
        image = SimImage.camera_photo(faces=2, watermark_id="wm")
        result = apply_level(image, ParanoiaLevel.HIGH)
        assert RiskAnalyzer().analyze("p", result).clean

    def test_high_clears_everything_on_documents(self):
        doc = SimDocument.office_document(hidden_text=["x"])
        result = apply_level(doc, ParanoiaLevel.HIGH)
        assert RiskAnalyzer().analyze("d", result).clean

    def test_strip_metadata_rejects_unknown_type(self):
        with pytest.raises(SanitizeError):
            strip_metadata(object())
