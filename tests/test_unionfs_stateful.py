"""Stateful property test: a union mount must behave like a plain dict.

Hypothesis drives random sequences of writes, reads, deletes and listings
against both a three-layer union mount and a reference dict model seeded
with the lower layers' initial contents; any divergence is a COW or
whiteout bug.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.errors import FileSystemError
from repro.unionfs import Layer, TmpfsLayer, UnionMount

_PATHS = st.sampled_from(
    [
        "/etc/hosts",
        "/etc/motd",
        "/usr/bin/tor",
        "/home/user/a",
        "/home/user/b",
        "/home/user/cache/one",
        "/tmp/x",
    ]
)
_DATA = st.binary(min_size=0, max_size=32)


class UnionMountMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        base = Layer(
            "base",
            files={"/etc/hosts": b"base-hosts", "/etc/motd": b"hello", "/usr/bin/tor": b"elf"},
            read_only=True,
        )
        config = Layer("config", files={"/etc/hosts": b"config-hosts"}, read_only=True)
        self.mount = UnionMount([TmpfsLayer("tmpfs", 1 << 20), config, base])
        # The reference model: what a plain directory tree would hold.
        self.model = {
            "/etc/hosts": b"config-hosts",
            "/etc/motd": b"hello",
            "/usr/bin/tor": b"elf",
        }

    @rule(path=_PATHS, data=_DATA)
    def write(self, path, data):
        self.mount.write(path, data)
        self.model[path] = data

    @rule(path=_PATHS)
    def remove(self, path):
        if path in self.model:
            self.mount.remove(path)
            del self.model[path]
        else:
            with pytest.raises(FileSystemError):
                self.mount.remove(path)

    @rule(path=_PATHS)
    def read(self, path):
        if path in self.model:
            assert self.mount.read(path) == self.model[path]
        else:
            assert not self.mount.exists(path)
            with pytest.raises(FileSystemError):
                self.mount.read(path)

    @invariant()
    def walk_matches_model(self):
        assert self.mount.walk() == sorted(self.model)

    @invariant()
    def base_layers_untouched(self):
        base = self.mount.layers[-1]
        assert base.read("/etc/motd") == b"hello"
        assert base.read("/usr/bin/tor") == b"elf"


TestUnionMountStateful = UnionMountMachine.TestCase
TestUnionMountStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
