"""Guest memory, host admission, and secure erase."""

import pytest

from repro.errors import MemoryError_, OutOfMemoryError
from repro.memory import PAGE_SIZE, GuestMemory, HostMemory, bytes_to_pages, pages_to_bytes
from repro.memory.pages import image_tag, is_mergeable, unique_tag, ZERO_TAG

MIB = 1024 * 1024


class TestPageMath:
    def test_bytes_to_pages_rounds_up(self):
        assert bytes_to_pages(1) == 1
        assert bytes_to_pages(PAGE_SIZE) == 1
        assert bytes_to_pages(PAGE_SIZE + 1) == 2

    def test_zero_bytes(self):
        assert bytes_to_pages(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(MemoryError_):
            bytes_to_pages(-1)

    def test_roundtrip(self):
        assert pages_to_bytes(bytes_to_pages(10 * MIB)) == 10 * MIB


class TestMergePolicy:
    def test_zero_is_mergeable_class(self):
        assert is_mergeable(ZERO_TAG)

    def test_image_is_mergeable(self):
        assert is_mergeable(image_tag("base", 3))

    def test_unique_is_not(self):
        assert not is_mergeable(unique_tag("vm1", 0))


class TestGuestMemory:
    def test_all_pages_zero_at_allocation(self):
        guest = GuestMemory("vm1", 16 * MIB)
        stats = guest.stats()
        assert stats.zero_pages == stats.total_pages
        assert stats.total_bytes == 16 * MIB

    def test_rejects_zero_size(self):
        with pytest.raises(MemoryError_):
            GuestMemory("vm1", 0)

    def test_map_image_converts_zero_pages(self):
        guest = GuestMemory("vm1", 16 * MIB)
        guest.map_image("base", 4 * MIB)
        stats = guest.stats()
        assert stats.image_pages == bytes_to_pages(4 * MIB)
        assert stats.zero_pages == bytes_to_pages(12 * MIB)

    def test_dirty_creates_unique_pages(self):
        guest = GuestMemory("vm1", 16 * MIB)
        guest.dirty(2 * MIB)
        assert guest.stats().unique_pages == bytes_to_pages(2 * MIB)

    def test_total_pages_conserved(self):
        guest = GuestMemory("vm1", 16 * MIB)
        guest.map_image("base", 4 * MIB)
        guest.dirty(2 * MIB)
        assert guest.total_pages == bytes_to_pages(16 * MIB)

    def test_dirty_beyond_capacity_rejected(self):
        guest = GuestMemory("vm1", 4 * MIB)
        guest.dirty(4 * MIB)
        with pytest.raises(MemoryError_):
            guest.dirty(1)

    def test_clean_bytes_shrinks_with_dirtying(self):
        guest = GuestMemory("vm1", 8 * MIB)
        assert guest.clean_bytes == 8 * MIB
        guest.dirty(3 * MIB)
        assert guest.clean_bytes == 5 * MIB

    def test_same_image_same_tags_across_guests(self):
        a = GuestMemory("vm1", 8 * MIB)
        b = GuestMemory("vm2", 8 * MIB)
        a.map_image("base", 2 * MIB)
        b.map_image("base", 2 * MIB)
        tags_a = {t for t, _ in a.page_groups() if t[0] == "image"}
        tags_b = {t for t, _ in b.page_groups() if t[0] == "image"}
        assert tags_a == tags_b

    def test_unique_tags_never_collide_across_guests(self):
        a = GuestMemory("vm1", 8 * MIB)
        b = GuestMemory("vm2", 8 * MIB)
        a.dirty(1 * MIB)
        b.dirty(1 * MIB)
        tags_a = {t for t, _ in a.page_groups() if t[0] == "unique"}
        tags_b = {t for t, _ in b.page_groups() if t[0] == "unique"}
        assert not tags_a & tags_b

    def test_secure_erase_zeroes_everything(self):
        guest = GuestMemory("vm1", 8 * MIB)
        guest.map_image("base", 2 * MIB)
        guest.dirty(2 * MIB)
        wiped = guest.secure_erase()
        assert wiped == bytes_to_pages(8 * MIB)
        assert guest.erased
        stats = guest.stats()
        assert stats.zero_pages == stats.total_pages


class TestHostMemory:
    def test_admission_and_accounting(self):
        host = HostMemory(total_bytes=2048 * MIB, base_used_bytes=512 * MIB)
        host.allocate_guest("vm1", 384 * MIB)
        stats = host.stats()
        assert stats.guest_allocated_bytes == 384 * MIB
        assert stats.used_bytes == (512 + 384) * MIB

    def test_admission_denied_when_full(self):
        host = HostMemory(total_bytes=1024 * MIB, base_used_bytes=512 * MIB)
        with pytest.raises(OutOfMemoryError):
            host.allocate_guest("vm1", 768 * MIB)

    def test_duplicate_owner_rejected(self):
        host = HostMemory(total_bytes=2048 * MIB, base_used_bytes=128 * MIB)
        host.allocate_guest("vm1", 128 * MIB)
        with pytest.raises(OutOfMemoryError):
            host.allocate_guest("vm1", 128 * MIB)

    def test_release_frees_and_erases(self):
        host = HostMemory(total_bytes=2048 * MIB, base_used_bytes=128 * MIB)
        guest = host.allocate_guest("vm1", 128 * MIB)
        guest.dirty(10 * MIB)
        host.release_guest("vm1")
        assert guest.erased
        assert host.stats().guest_allocated_bytes == 0

    def test_release_unknown_is_noop(self):
        host = HostMemory(total_bytes=1024 * MIB, base_used_bytes=128 * MIB)
        host.release_guest("ghost")  # must not raise

    def test_base_usage_must_fit(self):
        with pytest.raises(OutOfMemoryError):
            HostMemory(total_bytes=1 * MIB, base_used_bytes=2 * MIB)

    def test_free_bytes(self):
        host = HostMemory(total_bytes=1024 * MIB, base_used_bytes=256 * MIB)
        assert host.stats().free_bytes == 768 * MIB
