"""The observability subsystem: metrics, sim-time tracing, event journal."""

import json

import pytest

from repro.core import NymManager, NymixConfig
from repro.errors import JournalOverflowError, ObservabilityError
from repro.obs import (
    NULL_OBS,
    Counter,
    EventJournal,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullObservability,
    Observability,
    Tracer,
    diff_snapshots,
    validate_metric_name,
)
from repro.sim import Clock, Timeline


class TestMetricNames:
    def test_valid_names_pass_through(self):
        for name in ("x", "tor.circuit.build_s", "ksm.pages_merged", "a1.b2"):
            assert validate_metric_name(name) == name

    def test_invalid_names_rejected(self):
        for name in ("", "Tor.circuit", "a..b", ".a", "a.", "a-b", "a b"):
            with pytest.raises(ObservabilityError):
                validate_metric_name(name)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_summary(self):
        hist = Histogram("h")
        for value in (2.0, 8.0, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 15.0
        assert hist.min == 2.0
        assert hist.max == 8.0
        assert hist.last == 5.0
        assert hist.mean == 5.0

    def test_empty_histogram_exports_zeros(self):
        assert Histogram("h").export() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "last": 0.0,
        }


class TestMetricsRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ObservabilityError):
            registry.gauge("a.b")

    def test_names_prefix_respects_dot_boundaries(self):
        registry = MetricsRegistry()
        registry.counter("tor.circuits")
        registry.counter("tor.cells")
        registry.counter("torrent.peers")
        assert registry.names("tor") == ["tor.cells", "tor.circuits"]

    def test_snapshot_mixes_scalars_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["h"]["count"] == 1

    def test_export_json_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        assert registry.export_json() == '{"a":1,"b":1}'

    def test_diff_reports_movement_only(self):
        registry = MetricsRegistry()
        counter = registry.counter("moved")
        registry.counter("still").inc(3)
        before = registry.snapshot()
        counter.inc(2)
        registry.histogram("h").observe(4.0)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta == {
            "moved": 2,
            "h": {"count": 1, "sum": 4.0, "min": 4.0, "max": 4.0, "mean": 4.0, "last": 4.0},
        }


class TestTracer:
    def test_spans_read_sim_clock(self):
        clock = Clock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            clock.advance(3.0)
        (span,) = tracer.finished
        assert (span.start_s, span.end_s, span.duration_s) == (0.0, 3.0, 3.0)

    def test_nesting_records_depth_and_parent(self):
        tracer = Tracer(Clock())
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        child, parent = tracer.finished
        assert child.depth == 1 and parent.depth == 0
        assert child.parent == 1 and parent.parent is None

    def test_out_of_order_close_raises(self):
        tracer = Tracer(Clock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError):
            tracer._pop(outer)

    def test_attrs_are_sorted(self):
        tracer = Tracer(Clock())
        with tracer.span("s", zeta=1, alpha=2):
            pass
        assert tracer.finished[0].attrs == (("alpha", 2), ("zeta", 1))

    def test_render_tree_indents_children(self):
        clock = Clock()
        tracer = Tracer(clock)
        with tracer.span("root"):
            with tracer.span("leaf", vm="x"):
                clock.advance(1.0)
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  leaf [vm=x]")

    def test_span_survives_exceptions(self):
        tracer = Tracer(Clock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.active_depth == 0
        assert tracer.finished[0].name == "doomed"


class TestEventJournal:
    def test_records_carry_sim_time_and_sequence(self):
        clock = Clock()
        journal = EventJournal(clock)
        journal.record("a.b", x=1)
        clock.advance(2.0)
        journal.record("a.c")
        first, second = journal.events
        assert (first.seq, first.t, first.name) == (0, 0.0, "a.b")
        assert (second.seq, second.t) == (1, 2.0)

    def test_invalid_event_name_rejected(self):
        with pytest.raises(ObservabilityError):
            EventJournal(Clock()).record("Not.Valid")

    def test_select_and_count_by_prefix(self):
        journal = EventJournal(Clock())
        journal.record("nym.created")
        journal.record("nym.discarded")
        journal.record("nymbox.page_load")
        assert journal.count("nym") == 2
        assert journal.count() == 3
        assert [e.name for e in journal.select("nymbox")] == ["nymbox.page_load"]

    def test_cap_raises_by_default(self):
        journal = EventJournal(Clock(), max_events=2)
        journal.record("e", i=0)
        journal.record("e", i=1)
        with pytest.raises(JournalOverflowError):
            journal.record("e", i=2)
        assert len(journal) == 2

    def test_cap_drops_new_events_when_opted_in(self):
        journal = EventJournal(Clock(), max_events=2, on_overflow="drop")
        for index in range(5):
            journal.record("e", i=index)
        assert len(journal) == 2
        assert journal.dropped == 3

    def test_unknown_overflow_mode_rejected(self):
        with pytest.raises(ObservabilityError):
            EventJournal(Clock(), on_overflow="whatever")

    def test_streaming_lifts_the_cap(self, tmp_path):
        journal = EventJournal(Clock(), max_events=2)
        journal.stream_to(tmp_path / "spool.jsonl", window=2)
        for index in range(10):
            journal.record("e", i=index)
        assert len(journal) == 10
        assert journal.dropped == 0

    def test_jsonl_round_trips(self, tmp_path):
        journal = EventJournal(Clock())
        journal.record("a.b", n=2, label="x")
        path = tmp_path / "j.jsonl"
        assert journal.write_jsonl(path) == 1
        (line,) = path.read_text().splitlines()
        assert json.loads(line) == {"seq": 0, "t": 0.0, "event": "a.b", "n": 2, "label": "x"}


class TestNullObservability:
    def test_null_obs_is_disabled_and_inert(self):
        assert NULL_OBS.enabled is False
        NULL_OBS.metrics.counter("any.name").inc(5)
        NULL_OBS.metrics.gauge("g").set(9)
        NULL_OBS.metrics.histogram("h").observe(1.0)
        NULL_OBS.event("e", k=1)
        with NULL_OBS.span("s", a=1):
            pass
        assert NULL_OBS.snapshot() == {}
        assert len(NULL_OBS.journal) == 0
        assert NULL_OBS.tracer.export() == []

    def test_null_instruments_are_shared_singletons(self):
        assert NULL_OBS.metrics.counter("a") is NULL_OBS.metrics.counter("b")
        assert NULL_OBS.span("x") is NULL_OBS.span("y")

    def test_fresh_null_observability_matches_singleton_shape(self):
        null = NullObservability()
        assert null.export() == {"metrics": {}, "spans": [], "events": []}


class TestTimelineIntegration:
    def test_timeline_carries_live_obs_by_default(self):
        timeline = Timeline(seed=1)
        assert timeline.obs.enabled
        assert timeline.obs.clock is timeline.clock

    def test_timeline_observability_false_uses_null_obs(self):
        timeline = Timeline(seed=1, observability=False)
        assert timeline.obs is NULL_OBS

    def test_spans_follow_timeline_sleep(self):
        timeline = Timeline()
        with timeline.obs.span("work"):
            timeline.sleep(5.0)
        assert timeline.obs.tracer.finished[0].duration_s == 5.0


def _run_scenario(seed: int, observability: bool = True) -> NymManager:
    manager = NymManager(NymixConfig(seed=seed, observability=observability))
    nymbox = manager.create_nym(name="obs-test")
    manager.timed_browse(nymbox, "bbc.co.uk")
    manager.discard_nym(nymbox)
    return manager


class TestManagerIntegration:
    def test_lifecycle_counters(self):
        manager = _run_scenario(seed=11)
        snapshot = manager.obs.snapshot()
        assert snapshot["nym.created"] == 1
        assert snapshot["nym.discarded"] == 1
        assert snapshot["nym.live"] == 0
        assert snapshot["vmm.vm.boots"] == 2
        assert snapshot["tor.circuit.built"] >= 1
        assert snapshot["nymbox.page_loads"] == 1

    def test_span_tree_covers_launch_phases(self):
        manager = _run_scenario(seed=11)
        names = {span.name for span in manager.obs.tracer.finished}
        assert {"nymbox.launch", "vm.boot", "tor.start", "nymbox.browse",
                "nymbox.discard"} <= names

    def test_journal_records_lifecycle(self):
        manager = _run_scenario(seed=11)
        assert manager.obs.journal.count("nym.created") == 1
        assert manager.obs.journal.count("nym.discarded") == 1

    def test_journal_byte_identical_across_same_seed_runs(self):
        first = _run_scenario(seed=42).obs.journal.export_jsonl()
        second = _run_scenario(seed=42).obs.journal.export_jsonl()
        assert first == second
        assert first  # non-empty: the scenario really did record events

    def test_full_export_deterministic_across_same_seed_runs(self):
        assert (
            _run_scenario(seed=7).obs.export_json()
            == _run_scenario(seed=7).obs.export_json()
        )

    def test_different_seeds_diverge(self):
        assert (
            _run_scenario(seed=1).obs.journal.export_jsonl()
            != _run_scenario(seed=2).obs.journal.export_jsonl()
        )

    def test_disabled_observability_records_nothing(self):
        manager = _run_scenario(seed=11, observability=False)
        assert manager.obs is NULL_OBS
        assert manager.obs.snapshot() == {}
        assert len(manager.obs.journal) == 0

    def test_disabled_observability_same_simulation_results(self):
        on = _run_scenario(seed=13)
        off = _run_scenario(seed=13, observability=False)
        assert on.timeline.now == off.timeline.now
