"""Circuit/guard lifecycle regressions: leaks, stale state, churn recovery."""

import pytest

from repro.anonymizers.tor.directory import DirectoryAuthority
from repro.anonymizers.tor.guard import GuardManager
from repro.anonymizers.tor.policy import CircuitPool, IsolationPolicy
from repro.errors import AnonymizerError, CircuitError, NymStateError, PersistenceError
from repro.sim import Timeline


@pytest.fixture
def tor_nymbox(manager):
    return manager.create_nym(name="lifecycle")


class TestNewnymLifecycle:
    def test_newnym_loop_keeps_circuit_list_bounded(self, tor_nymbox):
        """Destroyed circuits must be pruned, not accumulated forever."""
        tor = tor_nymbox.anonymizer
        for _ in range(10):
            tor.new_identity()
        assert len(tor.circuits) == 1
        assert all(c.built for c in tor.circuits)

    def test_newnym_flushes_installed_pool(self, tor_nymbox):
        """NEWNYM semantics: no pre-rotation circuit may serve new streams."""
        tor = tor_nymbox.anonymizer
        pool = tor.enable_stream_isolation(IsolationPolicy())
        before = pool.circuit_for_stream("gmail.com")
        tor.new_identity()
        assert pool.active_circuits == 0
        assert not before.built  # destroyed, not just forgotten
        after = pool.circuit_for_stream("gmail.com")
        assert after is not before

    def test_stop_after_newnym_loop_is_clean(self, tor_nymbox):
        """Pruning means stop() never double-destroys stale handles."""
        tor = tor_nymbox.anonymizer
        for _ in range(5):
            tor.new_identity()
        tor.stop()
        assert tor.circuits == []

    def test_circuit_rng_labels_never_repeat_after_prune(self, tor_nymbox):
        tor = tor_nymbox.anonymizer
        seen = set()
        for _ in range(5):
            circuit = tor.new_identity()
            key = tuple(circuit.path_nicknames)
            seen.add((circuit.circ_id, key))
        assert len({cid for cid, _ in seen}) == 5


class TestPoolRetirement:
    def _build_factory(self, timeline):
        directory = DirectoryAuthority(timeline.fork_rng("dir"), relay_count=15)
        counter = {"n": 0}

        def factory():
            from repro.anonymizers.tor.circuit import Circuit

            counter["n"] += 1
            circuit = Circuit(timeline, timeline.fork_rng(f"c{counter['n']}"))
            relays = directory.relays()
            start = counter["n"] % 5
            circuit.build([relays[start], relays[start + 5], relays[start + 10]])
            return circuit

        return factory

    def test_dirty_circuits_retired_on_lookup(self):
        """The leak: dirty circuits used to stay tracked forever."""
        timeline = Timeline(seed=23)
        pool = CircuitPool(
            timeline, self._build_factory(timeline),
            IsolationPolicy(max_dirtiness_s=600),
        )
        first = pool.circuit_for_stream("gmail.com")
        timeline.sleep(700)
        pool.circuit_for_stream("gmail.com")
        assert pool.active_circuits == 1  # the dirty one is gone, not ghosted
        assert pool.retired == 1
        assert not first.built  # actually destroyed

    def test_repeated_dirtiness_cycles_stay_bounded(self):
        timeline = Timeline(seed=23)
        pool = CircuitPool(
            timeline, self._build_factory(timeline),
            IsolationPolicy(max_dirtiness_s=600),
        )
        for _ in range(8):
            pool.circuit_for_stream("gmail.com")
            timeline.sleep(700)
        pool.circuit_for_stream("gmail.com")
        assert pool.active_circuits == 1
        assert pool.retired == 8

    def test_broken_circuit_swept_on_lookup(self):
        timeline = Timeline(seed=23)
        pool = CircuitPool(
            timeline, self._build_factory(timeline), IsolationPolicy()
        )
        circuit = pool.circuit_for_stream("gmail.com")
        circuit.destroy()  # torn down externally (churn, teardown fault)
        replacement = pool.circuit_for_stream("gmail.com")
        assert replacement is not circuit
        assert pool.active_circuits == 1


class TestGuardRestore:
    def test_import_restores_num_guards(self):
        exporter = GuardManager(Timeline(seed=5).fork_rng("g"), num_guards=5)
        importer = GuardManager(Timeline(seed=6).fork_rng("g"))
        importer.import_state(exporter.export_state())
        assert importer.num_guards == 5

    def test_restored_guards_revalidated_against_rotated_consensus(self):
        """A restored guard that churned out of the consensus must be
        dropped and replaced, not handed to directory.relay() to blow up."""
        timeline = Timeline(seed=9)
        directory = DirectoryAuthority(timeline.fork_rng("dir"), relay_count=20)
        manager = GuardManager(timeline.fork_rng("guards"))
        consensus = directory.consensus(0.0)
        guards = manager.ensure_guards(consensus, 0.0)
        directory.churn_relay(guards[0])
        rotated = directory.consensus(10.0)
        refreshed = manager.ensure_guards(rotated, 10.0)
        assert guards[0] not in refreshed
        assert len(refreshed) == manager.num_guards
        available = {d.nickname for d in rotated.guards()}
        assert set(refreshed) <= available

    def test_restored_unknown_guards_fully_replaced(self):
        timeline = Timeline(seed=9)
        directory = DirectoryAuthority(timeline.fork_rng("dir"), relay_count=20)
        manager = GuardManager(timeline.fork_rng("guards"))
        manager.import_state(
            {"guards": ["ghost1", "ghost2", "ghost3"], "selected_at": 0.0,
             "num_guards": 3}
        )
        refreshed = manager.ensure_guards(directory.consensus(0.0), 0.0)
        assert len(refreshed) == 3
        assert not {"ghost1", "ghost2", "ghost3"} & set(refreshed)

    def test_empty_consensus_guards_still_raise(self):
        timeline = Timeline(seed=9)
        manager = GuardManager(timeline.fork_rng("guards"))

        class NoGuards:
            def guards(self):
                return []

        with pytest.raises(AnonymizerError):
            manager.ensure_guards(NoGuards(), 0.0)


class TestOneHopPath:
    def test_one_hop_path_ends_at_exit_relay(self, manager):
        nymbox = manager.create_nym(
            name="onehop", anonymizer="tor",
        )
        # Build a dedicated 1-hop client against the shared directory.
        from repro.anonymizers.tor.client import TorClient

        tor = nymbox.anonymizer
        one_hop = TorClient(
            manager.timeline, manager.internet, nymbox.nat,
            tor.rng.fork("one-hop-test"), manager.directory, num_hops=1,
        )
        one_hop.start()
        path = one_hop.current_circuit.path_nicknames
        assert len(path) == 1
        descriptor = manager.directory.relay(path[0]).descriptor
        assert descriptor.is_exit
        # exit_address() now reports a relay actually eligible to exit
        assert one_hop.exit_address() == descriptor.ip
        one_hop.stop()


class TestChurnAndCrashRecovery:
    def test_relay_churn_forces_rebuild_and_browse_survives(self, manager):
        nymbox = manager.create_nym(name="churn-recover")
        tor = nymbox.anonymizer
        exit_nick = tor.current_circuit.exit.descriptor.nickname
        manager.directory.churn_relay(exit_nick)
        load = nymbox.browse("bbc.co.uk")
        assert load.payload_bytes > 0
        rebuilds = manager.obs.metrics.snapshot()["tor.circuit.rebuilds"]
        assert rebuilds >= 1
        assert tor.current_circuit.usable

    def test_crashed_nym_recovers_from_stored_state(self, manager):
        nymbox = manager.create_nym(name="phoenix")
        nymbox.browse("bbc.co.uk")
        manager.create_cloud_account("dropbox.com", "phx", "pw")
        manager.store_nym(
            nymbox, password="phx-pass", provider_host="dropbox.com", account_username="phx"
        )
        history_before = len(nymbox.browser.history)
        nymbox.crash()
        assert nymbox.crashed
        with pytest.raises(NymStateError):
            nymbox.browse("bbc.co.uk")
        restored = manager.recover_nym("phoenix", "phx-pass")
        assert restored.running and not restored.crashed
        assert len(restored.browser.history) == history_before
        assert restored.browse("bbc.co.uk").payload_bytes > 0
        snapshot = manager.obs.metrics.snapshot()
        assert snapshot["nym.recovered"] == 1
        assert snapshot["vmm.vm.crashes"] >= 2

    def test_recover_requires_crash_and_stored_state(self, manager):
        nymbox = manager.create_nym(name="unstored")
        with pytest.raises(NymStateError):
            manager.recover_nym("unstored", "pw")  # not crashed
        nymbox.crash()
        with pytest.raises(PersistenceError):
            manager.recover_nym("unstored", "pw")  # never stored

    def test_circuit_through_churned_relay_fails_loudly(self, manager):
        nymbox = manager.create_nym(name="loud")
        tor = nymbox.anonymizer
        circuit = tor.current_circuit
        manager.directory.churn_relay(circuit.exit.descriptor.nickname)
        assert not circuit.usable
        with pytest.raises(CircuitError):
            circuit.relay_forward(circuit.onion_encrypt(b"payload"))
