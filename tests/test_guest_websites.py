"""Website catalog and servers."""

import pytest

from repro.guest.websites import (
    FIGURE3_VISIT_ORDER,
    FIGURE6_SITES,
    WEBSITE_CATALOG,
    DownloadMirror,
    WebsiteServer,
    populate_internet,
)
from repro.net.internet import Internet
from repro.sim import Timeline

MIB = 1024 * 1024


class TestCatalog:
    def test_eight_sites_of_figure3(self):
        assert len(FIGURE3_VISIT_ORDER) == 8
        assert FIGURE3_VISIT_ORDER[0] == "gmail.com"
        assert FIGURE3_VISIT_ORDER[-1] == "espn.com"
        for hostname in FIGURE3_VISIT_ORDER:
            assert hostname in WEBSITE_CATALOG

    def test_four_sites_of_figure6(self):
        assert set(FIGURE6_SITES) == {
            "gmail.com", "facebook.com", "twitter.com", "blog.torproject.org",
        }

    def test_figure6_ordering_facebook_heaviest_torblog_lightest(self):
        """Figure 6's ordering comes from per-revisit cache growth."""
        growth = {h: WEBSITE_CATALOG[h].cacheable_revisit_bytes for h in FIGURE6_SITES}
        assert growth["facebook.com"] == max(growth.values())
        assert growth["blog.torproject.org"] == min(growth.values())

    def test_login_sites(self):
        assert WEBSITE_CATALOG["gmail.com"].requires_login
        assert not WEBSITE_CATALOG["bbc.co.uk"].requires_login

    def test_unique_addresses(self):
        ips = [site.ip for site in WEBSITE_CATALOG.values()]
        assert len(set(ips)) == len(ips)


class TestWebsiteServer:
    def test_first_visit_vs_revisit(self):
        server = WebsiteServer(WEBSITE_CATALOG["twitter.com"])
        first = server.handle("client-a")
        again = server.handle("client-a")
        assert first.body_bytes > again.body_bytes
        assert first.set_cookie_bytes > 0
        assert again.set_cookie_bytes == 0

    def test_visits_tracked_per_client(self):
        server = WebsiteServer(WEBSITE_CATALOG["twitter.com"])
        server.handle("client-a")
        fresh = server.handle("client-b")
        assert fresh.body_bytes == WEBSITE_CATALOG["twitter.com"].first_visit_bytes


class TestDownloadMirror:
    def test_kernel_size(self):
        assert DownloadMirror.KERNEL_BYTES == 76 * MIB

    def test_serves_kernel(self):
        mirror = DownloadMirror()
        assert mirror.handle("/linux-3.14.2.tar.xz").body_bytes == 76 * MIB


class TestPopulateInternet:
    def test_all_servers_registered(self):
        internet = Internet(Timeline())
        servers = populate_internet(internet)
        assert len(servers) == len(WEBSITE_CATALOG) + 1
        assert internet.server_named("gmail.com").hostname == "gmail.com"
        assert internet.server_named("mirror.deterlab.net")
