"""The redesigned public API: NymixSession facade, request objects, shims."""

import warnings

import pytest

from repro import NymixConfig, NymixSession, NymRequest, StoreNymRequest
from repro.core.nym import NymUsageModel
from repro.errors import NymStateError, PersistenceError


class TestNymixSession:
    def test_context_manager_wires_the_stack(self):
        with NymixSession(seed=7) as nx:
            assert nx.manager.timeline is nx.timeline
            assert nx.hypervisor is nx.manager.hypervisor
            assert nx.internet is nx.manager.internet
            assert nx.obs is nx.manager.obs
            assert "dropbox.com" in nx.manager.providers
            assert "drive.google.com" in nx.manager.providers

    def test_seed_reaches_the_timeline(self):
        with NymixSession(seed=123) as nx:
            assert nx.config.seed == 123
            nx.create_nym(name="a")  # the wired stack actually works

    def test_config_object_with_seed_override(self):
        config = NymixConfig(seed=1, deterministic_guards=True)
        with NymixSession(config, seed=9) as nx:
            assert nx.config.seed == 9
            assert nx.config.deterministic_guards is True

    def test_exit_tears_down_every_live_nym(self):
        session = NymixSession(seed=7)
        with session as nx:
            nx.create_nym(name="a")
            nx.create_nym(name="b")
            manager = nx.manager
            assert manager.live_nyms() == ["a", "b"]
        assert manager.live_nyms() == []
        assert session.closed

    def test_closed_session_refuses_reuse(self):
        session = NymixSession(seed=7)
        with session:
            pass
        with pytest.raises(NymStateError):
            session.open()
        # Post-mortem reads (journal, metrics) stay available.
        assert session.manager.live_nyms() == []

    def test_cloud_providers_optional(self):
        with NymixSession(seed=7, cloud_providers=False) as nx:
            assert nx.manager.providers == {}

    def test_store_and_load_through_facade(self):
        with NymixSession(seed=7) as nx:
            nx.create_cloud_account("dropbox.com", "u", "cloud-pw")
            box = nx.create_nym(name="keeper")
            nx.store_nym(
                box, password="pw",
                provider_host="dropbox.com", account_username="u",
            )
            nx.discard_nym(box)
            restored = nx.load_nym("keeper", "pw")
            assert restored.nym.name == "keeper"

    def test_same_seed_journals_are_byte_identical(self):
        def run() -> str:
            with NymixSession(seed=31) as nx:
                box = nx.create_nym(name="det")
                nx.timed_browse(box, "bbc.co.uk")
                nx.store_nym(box, password="pw")
            return nx.manager.obs.journal.export_jsonl()

        assert run() == run()

    def test_session_events_in_journal(self):
        with NymixSession(seed=7) as nx:
            manager = nx.manager
        names = [e.name for e in manager.obs.journal.events]
        assert "session.opened" in names
        assert "session.closed" in names


class TestNymRequest:
    def test_create_from_request_object(self, manager):
        request = NymRequest(name="req-nym", usage=NymUsageModel.PERSISTENT)
        box = manager.create_nym(request)
        assert box.nym.name == "req-nym"
        assert box.nym.usage_model is NymUsageModel.PERSISTENT

    def test_keywords_override_request_fields(self, manager):
        base = NymRequest(name="template", chain_commvms=False)
        box = manager.create_nym(base, name="alice")
        assert box.nym.name == "alice"

    def test_request_is_a_reusable_template(self, manager):
        base = NymRequest(usage=NymUsageModel.PERSISTENT)
        a = manager.create_nym(base, name="a")
        b = manager.create_nym(base, name="b")
        assert a.nym.usage_model is NymUsageModel.PERSISTENT
        assert b.nym.usage_model is NymUsageModel.PERSISTENT

    def test_two_request_objects_rejected(self, manager):
        with pytest.raises(TypeError):
            manager.create_nym(NymRequest(), request=NymRequest())

    def test_store_request_object(self, manager):
        manager.create_cloud_account("dropbox.com", "u", "cloud-pw")
        box = manager.create_nym(name="s")
        receipt = manager.store_nym(
            box,
            request=StoreNymRequest(
                password="pw", provider_host="dropbox.com", account_username="u"
            ),
        )
        assert receipt.encrypted_bytes > 0

    def test_store_without_password_fails(self, manager):
        box = manager.create_nym(name="nopw")
        with pytest.raises(PersistenceError):
            manager.store_nym(box)

    def test_merged_keeps_unset_fields(self):
        base = NymRequest(anonymizer="tor+dissent", chain_commvms=True)
        merged = base.merged({"name": "x", "anonymizer": None})
        assert merged.name == "x"
        assert merged.anonymizer == "tor+dissent"
        assert merged.chain_commvms is True


class TestDeprecationShims:
    def test_positional_create_nym_warns_and_works(self, manager):
        with pytest.warns(DeprecationWarning, match="create_nym"):
            box = manager.create_nym("legacy-name")
        assert box.nym.name == "legacy-name"

    def test_positional_create_nym_two_args(self, manager):
        with pytest.warns(DeprecationWarning):
            box = manager.create_nym("legacy2", "tor")
        assert box.nym.name == "legacy2"

    def test_positional_store_nym_warns_and_works(self, manager):
        box = manager.create_nym(name="legacy-store")
        with pytest.warns(DeprecationWarning, match="store_nym"):
            receipt = manager.store_nym(box, "pw")
        assert receipt.encrypted_bytes > 0

    def test_positional_and_keyword_conflict_rejected(self, manager):
        with pytest.raises(TypeError, match="multiple values"):
            with pytest.warns(DeprecationWarning):
                manager.create_nym("a", name="b")

    def test_too_many_positionals_rejected(self, manager):
        with pytest.raises(TypeError):
            manager.create_nym("a", "tor", NymUsageModel.EPHEMERAL, None, None,
                               None, False, "extra")

    def test_keyword_calls_do_not_warn(self, manager):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            box = manager.create_nym(name="clean")
            manager.store_nym(box, password="pw")
