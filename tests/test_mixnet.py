"""The layered mixnet: packet format, topology, client, faults, determinism."""

import pytest

from repro.core import NymManager, NymixConfig
from repro.errors import MixnetError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.mixnet import (
    LAYER_OVERHEAD_BYTES,
    MixTopology,
    PAYLOAD_BYTES,
    build_packet,
    build_reply_block,
    open_body,
    open_reply,
    packet_bytes,
)
from repro.mixnet.packet import BODY_BYTES, encode_body, peel_layer
from repro.sim.rng import SeededRng


@pytest.fixture
def topology(rng):
    return MixTopology(rng.fork("topo"), layers=3, nodes_per_layer=3)


def _pump(path, packet):
    """Walk a packet through every node on ``path``; returns the body."""
    for node in path:
        next_hop, packet = node.process(packet)
    assert next_hop is None  # the exit saw the terminal routing slot
    return packet


class TestPacketFormat:
    def test_round_trip_recovers_payload(self, topology, rng):
        path = topology.sample_path(rng)
        packet = build_packet(rng, path, b"hello mixnet")
        assert open_body(_pump(path, packet)) == b"hello mixnet"

    def test_packet_size_is_payload_independent(self, topology, rng):
        path = topology.sample_path(rng)
        sizes = {
            len(build_packet(rng, path, payload))
            for payload in (b"", b"x", b"y" * PAYLOAD_BYTES)
        }
        assert sizes == {packet_bytes(len(path))}
        assert packet_bytes(3) == BODY_BYTES + 3 * LAYER_OVERHEAD_BYTES

    def test_oversized_payload_rejected(self, topology, rng):
        path = topology.sample_path(rng)
        with pytest.raises(MixnetError):
            build_packet(rng, path, b"z" * (PAYLOAD_BYTES + 1))

    def test_replay_rejected_per_node(self, topology, rng):
        path = topology.sample_path(rng)
        packet = build_packet(rng, path, b"once only")
        _, inner = path[0].process(packet)
        with pytest.raises(MixnetError):
            path[0].process(packet)
        assert path[0].replays_rejected == 1
        # the peeled inner packet still flows through the rest of the path
        for node in path[1:]:
            _, inner = node.process(inner)
        assert open_body(inner) == b"once only"

    def test_tampered_packet_fails_authentication(self, topology, rng):
        path = topology.sample_path(rng)
        packet = build_packet(rng, path, b"intact")
        tampered = packet[:-1] + bytes([packet[-1] ^ 0xFF])
        with pytest.raises(MixnetError):
            path[0].process(tampered)

    def test_wrong_node_cannot_peel(self, topology, rng):
        path = topology.sample_path(rng)
        packet = build_packet(rng, path, b"strict onion")
        other = next(
            node for node in topology.layer(0) if node.name != path[0].name
        )
        with pytest.raises(MixnetError):
            peel_layer(other.private_key, packet)


class TestReplyBlocks:
    def test_reply_round_trip(self, topology, rng):
        path = topology.sample_path(rng)
        block = build_reply_block(rng, path)
        body = encode_body(b"echoed", rng.token_bytes(8))
        header = block.header
        for node in path:
            _, header, body = node.process_reply(header, body)
        assert open_reply(block, body) == b"echoed"

    def test_reply_block_is_single_use(self, topology, rng):
        path = topology.sample_path(rng)
        block = build_reply_block(rng, path)
        body = encode_body(b"first", rng.token_bytes(8))
        header = block.header
        for node in path:
            _, header, body = node.process_reply(header, body)
        assert open_reply(block, body) == b"first"
        with pytest.raises(MixnetError):
            open_reply(block, body)


class TestTopology:
    def test_paths_take_one_alive_node_per_layer(self, topology, rng):
        path = topology.sample_path(rng)
        assert [node.layer_index for node in path] == [0, 1, 2]
        assert all(node.alive for node in path)

    def test_crash_and_restore(self, topology):
        name = topology.crash_node("mix1-00")
        assert name == "mix1-00"
        assert not topology.node("mix1-00").alive
        assert topology.alive_nodes == topology.total_nodes - 1
        topology.node("mix1-00").restore()
        assert topology.node("mix1-00").alive

    def test_victim_picker_spares_single_survivor_layers(self, rng):
        topology = MixTopology(rng.fork("small"), layers=2, nodes_per_layer=2)
        first = topology.crash_node("")
        assert first is not None
        # Crash the other layer's busiest too; after that every layer has
        # exactly one survivor and the picker must refuse to finish a layer.
        second = topology.crash_node("")
        assert second is not None
        assert topology.crash_node("") is None
        for layer_index in range(2):
            assert len(topology.alive_in_layer(layer_index)) >= 1

    def test_exhausted_layer_fails_path_sampling(self, topology, rng):
        for node in topology.layer(1):
            node.crash()
        with pytest.raises(MixnetError):
            topology.sample_path(rng)


def _mixnet_manager(seed=7, **overrides):
    return NymManager(NymixConfig(seed=seed, **overrides))


class TestMixnetClient:
    def test_browse_and_send_through_the_mix(self):
        manager = _mixnet_manager()
        box = manager.create_nym(name="mixy", anonymizer="mixnet")
        load = manager.timed_browse(box, "bbc.co.uk")
        assert load.payload_bytes > 0
        assert box.anonymizer.send_payload(b"end to end") == b"end to end"
        plan = box.anonymizer.plan(0)
        assert plan.overhead_factor > 1.0
        assert plan.path_latency_s > 0.0

    def test_exit_address_is_gateway_not_client(self):
        manager = _mixnet_manager()
        box = manager.create_nym(name="mixy", anonymizer="mixnet")
        exit_ip = box.anonymizer.exit_address()
        assert exit_ip == manager.mixnet_topology().gateway_ip
        assert exit_ip != box.anonymizer.nat.public_ip

    def test_cover_traffic_flows_while_idle(self):
        manager = _mixnet_manager(mixnet_cover_rate_pps=2.0)
        box = manager.create_nym(name="mixy", anonymizer="mixnet")
        before = box.anonymizer.cover_packets_sent
        manager.timeline.sleep(20.0)
        sent = box.anonymizer.cover_packets_sent - before
        assert sent > 10  # ~40 expected at 2 pps
        snapshot = manager.obs.snapshot()
        delivered = snapshot.get("mixnet.cover.loop", 0) + snapshot.get(
            "mixnet.cover.drop", 0
        )
        assert delivered == box.anonymizer.cover_packets_sent

    def test_node_crash_forces_reroute(self):
        manager = _mixnet_manager()
        box = manager.create_nym(name="mixy", anonymizer="mixnet")
        client = box.anonymizer
        victim = client._path[1]
        manager.mixnet_topology().crash_node(victim.name)
        manager.timed_browse(box, "bbc.co.uk")
        assert client.reroutes == 1
        assert all(node.alive for node in client._path)

    def test_stop_cancels_cover(self):
        manager = _mixnet_manager()
        box = manager.create_nym(name="mixy", anonymizer="mixnet")
        client = box.anonymizer
        client.stop()
        sent = client.cover_packets_sent
        manager.timeline.sleep(10.0)
        assert client.cover_packets_sent == sent


class TestMixnetFaults:
    def test_node_crash_fault_hits_topology(self):
        manager = _mixnet_manager()
        manager.create_nym(name="mixy", anonymizer="mixnet")
        plan = FaultPlan([FaultSpec(at_s=1.0, kind="mixnet.node_crash")])
        FaultInjector(manager.timeline, plan).arm(manager)
        manager.timeline.sleep(2.0)
        topology = manager.mixnet_topology(create=False)
        assert topology.alive_nodes == topology.total_nodes - 1

    def test_fault_without_mixnet_records_no_mixnet(self):
        manager = _mixnet_manager()
        manager.create_nym(name="plain")  # default tor nym, no mixnet built
        plan = FaultPlan([FaultSpec(at_s=1.0, kind="mixnet.node_crash")])
        injector = FaultInjector(manager.timeline, plan).arm(manager)
        manager.timeline.sleep(2.0)
        assert injector.injected[0]["outcome"] == "no_mixnet"
        assert manager.mixnet_topology(create=False) is None

    def test_seeded_plan_appends_mixnet_crashes_without_moving_others(self):
        base = FaultPlan.seeded(SeededRng(3).fork("plan"), 100.0)
        extended = FaultPlan.seeded(
            SeededRng(3).fork("plan"), 100.0, mixnet_node_crashes=2
        )
        assert [e.export() for e in base] == [
            e.export()
            for e in extended
            if e.kind != "mixnet.node_crash"
        ]
        assert len(extended.by_kind("mixnet.node_crash")) == 2


class TestMixnetDeterminism:
    def _journal(self, seed):
        manager = _mixnet_manager(seed=seed)
        box = manager.create_nym(name="mixy", anonymizer="mixnet")
        manager.timed_browse(box, "bbc.co.uk")
        box.anonymizer.send_payload(b"same bytes every run")
        manager.timeline.sleep(15.0)
        return manager.obs.journal.export_jsonl()

    def test_same_seed_byte_identical_journals(self):
        assert self._journal(21) == self._journal(21)

    def test_warm_key_cache_does_not_change_the_journal(self):
        from repro.mixnet.packet import SENDER_KEY_CACHE

        cold_state = self._journal(22)
        # The process-global sender cache is now warm; a rerun must burn
        # the same RNG draws and produce the same bytes.
        warm_state = self._journal(22)
        SENDER_KEY_CACHE.enabled = False
        SENDER_KEY_CACHE.clear()
        try:
            disabled_state = self._journal(22)
        finally:
            SENDER_KEY_CACHE.enabled = True
            SENDER_KEY_CACHE.clear()
        assert cold_state == warm_state == disabled_state

    def test_different_seeds_diverge(self):
        assert self._journal(23) != self._journal(24)
