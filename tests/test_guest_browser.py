"""The Chromium model: cache, cookies, history, credentials, fingerprint."""

import pytest

from repro.guest.browser import Browser, BrowserFingerprint, FetchOutcome
from repro.guest.websites import WEBSITE_CATALOG
from repro.memory import GuestMemory
from repro.net.internet import HttpResponse
from repro.sim import SeededRng, Timeline
from repro.unionfs.layer import TmpfsLayer
from repro.unionfs.mount import UnionMount
from repro.vmm.baseimage import build_base_layer, build_vm_mount
from repro.vmm.vm import MIB, VmSpec, VirtualMachine


class FakeFetcher:
    """Deterministic fetcher standing in for the anonymizer path."""

    def __init__(self):
        self.visits = {}

    def fetch(self, hostname, client_token):
        count = self.visits.get(hostname, 0)
        self.visits[hostname] = count + 1
        site = WEBSITE_CATALOG[hostname]
        if count == 0:
            response = HttpResponse(
                200, site.first_visit_bytes, site.cacheable_first_bytes, site.cookie_bytes
            )
        else:
            response = HttpResponse(200, site.revisit_bytes, site.cacheable_revisit_bytes, 0)
        return FetchOutcome(response=response, duration_s=2.0)


def _browser(cache_limit=Browser.DEFAULT_CACHE_LIMIT):
    timeline = Timeline()
    spec = VmSpec.anonvm()
    vm = VirtualMachine(
        timeline,
        "anon-test",
        spec,
        GuestMemory("anon-test", spec.ram_bytes),
        build_vm_mount(spec.role, spec.writable_fs_bytes, build_base_layer()),
        "nymix-base",
    )
    vm.boot()
    return Browser(vm, FakeFetcher(), SeededRng(5), "profile:test", cache_limit), vm


class TestBrowsing:
    def test_visit_populates_cache_history_cookies(self):
        browser, vm = _browser()
        load = browser.visit("gmail.com")
        assert load.payload_bytes == WEBSITE_CATALOG["gmail.com"].first_visit_bytes
        assert browser.cache_bytes == WEBSITE_CATALOG["gmail.com"].cacheable_first_bytes
        assert browser.history[-1].endswith("gmail.com")
        assert "gmail.com" in browser.cookies

    def test_revisit_smaller_than_first(self):
        browser, _ = _browser()
        first = browser.visit("twitter.com")
        second = browser.visit("twitter.com")
        assert second.payload_bytes < first.payload_bytes
        assert second.cached_bytes_written < first.cached_bytes_written

    def test_cache_grows_across_revisits(self):
        browser, _ = _browser()
        browser.visit("facebook.com")
        size1 = browser.cache_bytes
        browser.visit("facebook.com")
        assert browser.cache_bytes > size1

    def test_cache_cap_enforced_with_eviction(self):
        browser, _ = _browser(cache_limit=10 * MIB)
        for _ in range(4):
            browser.visit("youtube.com")
        assert browser.cache_bytes <= 10 * MIB
        assert browser.cache_bytes > 0

    def test_visit_dirties_guest_memory(self):
        browser, vm = _browser()
        before = vm.memory.stats().unique_pages
        browser.visit("gmail.com")
        assert vm.memory.stats().unique_pages > before

    def test_memory_dirtying_respects_headroom(self):
        browser, vm = _browser()
        for hostname in WEBSITE_CATALOG:
            browser.visit(hostname)
        # Must never exhaust guest RAM entirely.
        assert vm.memory.clean_bytes >= 0

    def test_visit_requires_running_vm(self):
        browser, vm = _browser()
        vm.pause()
        with pytest.raises(Exception):
            browser.visit("gmail.com")

    def test_state_lives_in_vm_fs(self):
        browser, vm = _browser()
        browser.visit("gmail.com")
        assert vm.fs.exists("/home/user/.config/chromium/History")
        assert vm.fs.exists("/home/user/.config/chromium/Cookies")
        cache_files = [p for p in vm.fs.walk() if ".cache/chromium" in p]
        assert cache_files


class TestCredentials:
    def test_login_remembered(self):
        browser, vm = _browser()
        browser.login("twitter.com", "dissident", "secret-pw")
        assert browser.has_credentials_for("twitter.com")
        assert vm.fs.exists("/home/user/.config/chromium/Login Data")

    def test_login_not_remembered(self):
        browser, vm = _browser()
        browser.login("twitter.com", "dissident", "secret-pw", remember=False)
        assert not browser.has_credentials_for("twitter.com")

    def test_profile_restores_from_fs(self):
        """A new Browser over the same VM state sees the old profile —
        exactly what happens when a persistent nym is restored."""
        browser, vm = _browser()
        browser.visit("gmail.com")
        browser.login("gmail.com", "alice", "pw")
        rebuilt = Browser(vm, FakeFetcher(), SeededRng(6), "profile:test")
        assert rebuilt.has_credentials_for("gmail.com")
        assert rebuilt.history == browser.history
        assert rebuilt.cache_bytes == browser.cache_bytes


class TestFingerprint:
    def test_identical_across_browsers(self):
        a, _ = _browser()
        b, _ = _browser()
        assert a.fingerprint.as_tuple() == b.fingerprint.as_tuple()

    def test_fixed_surface(self):
        fp = BrowserFingerprint()
        assert fp.screen == (1024, 768)
        assert fp.plugins == ()

    def test_profile_summary(self):
        browser, _ = _browser()
        browser.visit("gmail.com")
        browser.login("gmail.com", "a", "b")
        summary = browser.profile_summary()
        assert summary["history_entries"] == 1
        assert summary["stored_credentials"] == 1
        assert summary["cache_bytes"] > 0
