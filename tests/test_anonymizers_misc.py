"""Incognito, SWEET, serial composition, and the registry."""

import pytest

from repro.anonymizers import (
    ANONYMIZER_REGISTRY,
    SerialComposition,
    create_anonymizer,
)
from repro.anonymizers.tor.directory import DirectoryAuthority
from repro.errors import AnonymizerError
from repro.net import Internet, MasqueradeNat, PacketCapture
from repro.net.addresses import Ipv4Address
from repro.sim import Timeline


@pytest.fixture
def env():
    timeline = Timeline(seed=8)
    internet = Internet(timeline)
    from repro.guest.websites import populate_internet

    populate_internet(internet)
    nat = MasqueradeNat(
        timeline, "nat(m)", Ipv4Address.parse("203.0.113.77"), internet,
        host_capture=PacketCapture(timeline),
    )
    return timeline, internet, nat


def _make(env, kind, **kwargs):
    timeline, internet, nat = env
    return create_anonymizer(kind, timeline, internet, nat, timeline.fork_rng(kind), **kwargs)


class TestRegistry:
    def test_known_kinds(self):
        for kind in ("tor", "dissent", "incognito", "sweet"):
            assert kind in ANONYMIZER_REGISTRY

    def test_unknown_kind(self, env):
        with pytest.raises(AnonymizerError):
            _make(env, "carrier-pigeon")


class TestIncognito:
    def test_fast_start(self, env):
        incognito = _make(env, "incognito")
        assert incognito.start() < 1.0

    def test_no_identity_protection(self, env):
        _, internet, nat = env
        incognito = _make(env, "incognito")
        incognito.start()
        assert not incognito.protects_network_identity
        incognito.fetch("bbc.co.uk", path="tok")
        server = internet.server_named("bbc.co.uk")
        assert server.seen_client_ips[-1] == nat.public_ip

    def test_minimal_overhead(self, env):
        incognito = _make(env, "incognito")
        assert incognito.plan(0).overhead_factor < 1.05


class TestSweet:
    def test_extreme_latency(self, env):
        sweet = _make(env, "sweet")
        plan = sweet.plan(0)
        assert plan.path_latency_s >= 1.0
        assert plan.per_flow_ceiling_bps <= 1_000_000

    def test_mime_overhead(self, env):
        sweet = _make(env, "sweet")
        assert sweet.plan(0).overhead_factor > 1.3

    def test_exit_is_mail_provider(self, env):
        sweet = _make(env, "sweet")
        sweet.start()
        assert str(sweet.exit_address()) == "198.51.103.1"


class TestSerialComposition:
    def _tor_dissent(self, env):
        timeline, internet, nat = env
        directory = DirectoryAuthority(timeline.fork_rng("dir"), relay_count=12)
        tor = _make(env, "tor", directory=directory)
        dissent = _make(env, "dissent")
        return SerialComposition([tor, dissent])

    def test_costs_compose(self, env):
        combo = self._tor_dissent(env)
        combo.start()
        plan = combo.plan(0)
        tor_plan = combo.stages[0].plan(0)
        dissent_plan = combo.stages[1].plan(0)
        assert plan.overhead_factor == pytest.approx(
            tor_plan.overhead_factor * dissent_plan.overhead_factor
        )
        assert plan.path_latency_s == pytest.approx(
            tor_plan.path_latency_s + dissent_plan.path_latency_s
        )
        assert plan.per_flow_ceiling_bps == dissent_plan.per_flow_ceiling_bps

    def test_exit_is_last_stage(self, env):
        combo = self._tor_dissent(env)
        combo.start()
        assert combo.exit_address() == combo.stages[-1].exit_address()

    def test_identity_protected_if_any_stage_protects(self, env):
        incognito = _make(env, "incognito")
        combo = SerialComposition([incognito])
        assert not combo.protects_network_identity
        timeline, internet, nat = env
        directory = DirectoryAuthority(timeline.fork_rng("dir2"), relay_count=12)
        tor = _make(env, "tor", directory=directory)
        assert SerialComposition([incognito, tor]).protects_network_identity

    def test_kind_names_stages(self, env):
        combo = self._tor_dissent(env)
        assert combo.kind == "tor+dissent"

    def test_state_roundtrip(self, env):
        combo = self._tor_dissent(env)
        combo.start()
        state = combo.export_state()
        timeline, internet, nat = env
        directory = combo.stages[0].directory
        tor2 = _make(env, "tor", directory=directory)
        dissent2 = _make(env, "dissent")
        combo2 = SerialComposition([tor2, dissent2])
        combo2.import_state(state)
        assert tor2.guard_manager.guards == combo.stages[0].guard_manager.guards

    def test_empty_composition_rejected(self):
        with pytest.raises(AnonymizerError):
            SerialComposition([])

    def test_mismatched_state_rejected(self, env):
        combo = self._tor_dissent(env)
        incognito = _make(env, "incognito")
        with pytest.raises(AnonymizerError):
            combo.import_state(incognito.export_state())
