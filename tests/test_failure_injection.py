"""Failure injection: the system must fail loudly, cleanly, and safely."""

import pytest

from repro.cloud.provider import CloudProvider, StoredBlob
from repro.errors import (
    OutOfMemoryError,
    PersistenceError,
    QuotaExceededError,
    UnreachableError,
)
from repro.core import NymManager, NymixConfig
from repro.vmm.hypervisor import HostSpec
from repro.vmm.vm import MIB, VmSpec


class TestCloudFailures:
    def test_quota_exhaustion_surfaces_and_nym_survives(self, manager):
        tiny = CloudProvider("tinybox.example", "198.51.100.90", free_quota_bytes=1024)
        manager.add_cloud_provider(tiny)
        manager.create_cloud_account("tinybox.example", "u", "p")
        nymbox = manager.create_nym(name="alice")
        manager.timed_browse(nymbox, "twitter.com")
        with pytest.raises(QuotaExceededError):
            manager.store_nym(
                nymbox, password="pw", provider_host="tinybox.example", account_username="u"
            )
        # The nym is still running and was resumed after the failed save.
        assert nymbox.running
        assert nymbox.nym.storage_provider is None
        # It can still be saved elsewhere.
        manager.create_cloud_account("dropbox.com", "u2", "p")
        receipt = manager.store_nym(
            nymbox, password="pw", provider_host="dropbox.com", account_username="u2"
        )
        assert receipt.encrypted_bytes > 0

    def test_tampered_cloud_blob_detected_at_load(self, manager):
        account = manager.create_cloud_account("dropbox.com", "u", "p")
        nymbox = manager.create_nym(name="alice")
        manager.store_nym(nymbox, password="pw", provider_host="dropbox.com", account_username="u")
        manager.discard_nym(nymbox)

        # The provider (or a MITM) flips one ciphertext byte.
        blob = account.blobs["alice.nymbox"]
        tampered = bytearray(blob.data)
        tampered[len(tampered) // 2] ^= 0x01
        account.blobs["alice.nymbox"] = StoredBlob(
            name=blob.name, data=bytes(tampered), stored_at=blob.stored_at
        )

        with pytest.raises(PersistenceError):
            manager.load_nym("alice", "pw")
        # Nothing half-restored is left running.
        assert manager.live_nyms() == []

    def test_wrong_password_at_load(self, manager):
        manager.create_cloud_account("dropbox.com", "u", "p")
        nymbox = manager.create_nym(name="alice")
        manager.store_nym(nymbox, password="pw", provider_host="dropbox.com", account_username="u")
        manager.discard_nym(nymbox)
        with pytest.raises(PersistenceError):
            manager.load_nym("alice", "not-the-password")
        assert manager.live_nyms() == []

    def test_missing_local_blob(self, manager):
        nymbox = manager.create_nym(name="alice")
        manager.store_nym(nymbox, password="pw")  # local
        manager.discard_nym(nymbox)
        manager._local_blobs.clear()  # the USB stick was lost
        with pytest.raises(PersistenceError):
            manager.load_nym("alice", "pw")


class TestNetworkFailures:
    def test_wire_down_breaks_browsing_loudly(self, manager):
        nymbox = manager.create_nym(name="alice")
        nymbox.wire.take_down()
        with pytest.raises(UnreachableError):
            nymbox.browse("twitter.com")

    def test_unknown_site_unreachable(self, manager):
        nymbox = manager.create_nym(name="alice")
        with pytest.raises(UnreachableError):
            nymbox.browse("no-such-site.example")


class TestResourceExhaustion:
    def test_host_ram_exhaustion_rejects_new_nyms_only(self):
        manager = NymManager(
            NymixConfig(seed=9, host=HostSpec(ram_bytes=3 * 1024 * MIB))
        )
        first = manager.create_nym(name="first")  # ~512 MiB + 1 GiB host base
        second = manager.create_nym(name="second")
        with pytest.raises(OutOfMemoryError):
            manager.create_nym(name="third", anon_spec=VmSpec.anonvm(ram_bytes=1024 * MIB))
        # Existing nyms keep working.
        assert first.running and second.running
        manager.timed_browse(first, "bbc.co.uk")

    def test_discard_frees_room_for_new_nyms(self):
        manager = NymManager(
            NymixConfig(seed=9, host=HostSpec(ram_bytes=3 * 1024 * MIB))
        )
        a = manager.create_nym(name="a")
        b = manager.create_nym(name="b")
        with pytest.raises(OutOfMemoryError):
            manager.create_nym(name="c", anon_spec=VmSpec.anonvm(ram_bytes=1024 * MIB))
        manager.discard_nym(a)
        manager.discard_nym(b)
        c = manager.create_nym(name="c", anon_spec=VmSpec.anonvm(ram_bytes=1024 * MIB))
        assert c.running

    def test_tmpfs_full_fails_writes_not_vm(self, manager):
        nymbox = manager.create_nym(
            name="tiny-disk", anon_spec=VmSpec.anonvm(disk_bytes=2 * MIB)
        )
        from repro.errors import FileSystemError

        with pytest.raises(FileSystemError):
            nymbox.anonvm.fs.write("/home/user/huge", b"x" * (3 * MIB))
        assert nymbox.anonvm.running


class TestStateMachineAbuse:
    def test_double_discard_is_safe(self, manager):
        nymbox = manager.create_nym(name="alice")
        manager.discard_nym(nymbox)
        manager.discard_nym(nymbox)  # second teardown must not raise

    def test_browse_after_discard_rejected(self, manager):
        from repro.errors import NymStateError

        nymbox = manager.create_nym(name="alice")
        manager.discard_nym(nymbox)
        with pytest.raises(NymStateError):
            nymbox.browse("twitter.com")

    def test_store_paused_nym_state_consistent(self, manager):
        """The §3.5 pause happens inside save; pausing first must fail
        cleanly rather than double-pause."""
        from repro.errors import VmStateError

        manager.create_cloud_account("dropbox.com", "u", "p")
        nymbox = manager.create_nym(name="alice")
        nymbox.pause()
        with pytest.raises(VmStateError):
            manager.store_nym(
                nymbox, password="pw", provider_host="dropbox.com", account_username="u"
            )
