"""repro.fleet: placement policies, watermarks, evacuation, determinism."""

import json

import pytest

from repro.errors import FleetCapacityError, FleetError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet import Fleet, make_policy, run_fleet
from repro.fleet.placement import PLACEMENT_POLICIES
from repro.sim.clock import Timeline
from repro.tenancy.policy import FleetPolicies
from repro.vmm.hypervisor import HostSpec
from repro.vmm.vm import MIB

GIB = 1024 * MIB

#: Small hosts: RAM admits ~6 nymboxes, the 0.9 watermark ~4.
SMALL_HOST = HostSpec(ram_bytes=4 * GIB, host_base_ram_bytes=1 * GIB)


def make_fleet(hosts=3, policy="first-fit", host_spec=SMALL_HOST, seed=11,
               policies=None, **kw):
    if policies is None:
        policies = FleetPolicies(placement=policy)
    return Fleet(Timeline(seed=seed), hosts=hosts, policies=policies,
                 host_spec=host_spec, **kw)


class TestPolicies:
    def test_registry_and_unknown_policy(self):
        assert set(PLACEMENT_POLICIES) == {"first-fit", "least-loaded", "ksm-aware"}
        with pytest.raises(FleetError, match="unknown placement policy"):
            make_policy("round-robin")

    def test_first_fit_packs_the_front(self):
        fleet = make_fleet(policy="first-fit")
        for i, image in enumerate(["img-a", "img-b", "img-a"]):
            fleet.place(f"n{i}", image)
        assert {b.host_id for b in fleet.nymboxes.values()} == {"host-0"}

    def test_least_loaded_spreads(self):
        fleet = make_fleet(policy="least-loaded")
        for i in range(3):
            fleet.place(f"n{i}", "img-a")
        assert sorted(b.host_id for b in fleet.nymboxes.values()) == [
            "host-0", "host-1", "host-2",
        ]

    def test_ksm_aware_builds_image_colonies(self):
        fleet = make_fleet(hosts=4, policy="ksm-aware")
        for i, image in enumerate(["img-a", "img-a", "img-b", "img-b"]):
            fleet.place(f"n{i}", image)
        by_image = {}
        for box in fleet.nymboxes.values():
            by_image.setdefault(box.image_id, set()).add(box.host_id)
        # Each image sits on exactly one host, and the two differ.
        assert all(len(hosts) == 1 for hosts in by_image.values())
        assert by_image["img-a"] != by_image["img-b"]
        assert fleet.host_image_pairs() == 2

    def test_ksm_aware_saves_more_than_first_fit(self):
        """The acceptance property on a crafted 3-image interleaved mix."""

        def run(policy):
            fleet = make_fleet(hosts=3, policy=policy, seed=5)
            images = ["img-a", "img-b", "img-c"]
            for i in range(12):
                fleet.place(f"n{i}", images[i % 3])
            fleet.settle_ksm()
            return fleet

        aware = run("ksm-aware")
        first = run("first-fit")
        assert aware.stats().nyms_resident == first.stats().nyms_resident == 12
        assert aware.host_image_pairs() < first.host_image_pairs()
        assert aware.stats().ksm_saved_bytes > first.stats().ksm_saved_bytes


class TestAdmissionAndWatermarks:
    def test_admission_control_rejects_when_no_host_admits(self):
        fleet = make_fleet(hosts=1)
        fleet.place("n0", "img-a")
        fleet.crash_host("host-0")
        with pytest.raises(FleetCapacityError):
            fleet.place("n1", "img-a")
        assert fleet.timeline.obs.metrics.counter("fleet.admission_rejected").export() >= 1

    def test_overfull_fleet_parks_rather_than_overcommits(self):
        # One small host: placements beyond the watermark keep parking
        # the newest nym, so residency never overcommits the host.
        fleet = make_fleet(hosts=1)
        for i in range(12):
            fleet.place(f"n{i}", "img-a")
        assert fleet.parked
        assert len(fleet.nymboxes) + len(fleet.parked) == 12

    def test_pressure_evacuation_fires_on_an_overfull_host(self):
        # One host: the watermark breach has nowhere to evacuate to, so
        # the nym parks in storage after retries — deterministically.
        fleet = make_fleet(hosts=1)
        for i in range(6):
            fleet.place(f"n{i}", "img-a")
        assert fleet.evacuations >= 1
        assert fleet.parked  # no second host: evacuees end up stored
        events = [e.name for e in fleet.timeline.obs.journal.events]
        assert "fleet.pressure" in events
        assert "fleet.evacuate" in events
        assert "fleet.parked" in events

    def test_watermark_aware_placement_avoids_hot_hosts(self):
        # With a second host available, placements spill over instead of
        # pushing host-0 past the high watermark.
        fleet = make_fleet(hosts=2, policy="first-fit")
        for i in range(8):
            fleet.place(f"n{i}", "img-a")
        assert fleet.evacuations == 0
        assert all(
            h.pressure <= fleet.high_watermark for h in fleet.host_list()
        )
        assert len({b.host_id for b in fleet.nymboxes.values()}) == 2

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(FleetError):
            make_fleet(policies=FleetPolicies(
                high_watermark=0.5, low_watermark=0.8))

    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="policies=FleetPolicies"):
            fleet = Fleet(Timeline(seed=2), hosts=2, policy="least-loaded",
                          high_watermark=0.95, low_watermark=0.85,
                          host_spec=SMALL_HOST)
        assert fleet.policy.name == "least-loaded"
        assert fleet.high_watermark == 0.95
        with pytest.raises(FleetError, match="not both"):
            Fleet(Timeline(seed=2), hosts=2, policy="first-fit",
                  policies=FleetPolicies(), host_spec=SMALL_HOST)


class TestHostCrash:
    def test_crash_relaunches_residents_elsewhere(self):
        fleet = make_fleet(hosts=3, policy="least-loaded")
        for i in range(6):
            fleet.place(f"n{i}", "img-a")
        victims = sorted(fleet.hosts["host-1"].residents)
        assert victims
        crashed = fleet.crash_host("host-1")
        assert crashed == "host-1"
        assert fleet.hosts["host-1"].crashed
        assert fleet.hosts["host-1"].residents == {}
        for name in victims:
            box = fleet.nymboxes[name]
            assert box.host_id != "host-1"
            assert box.moves == 1
        assert len(fleet.nymboxes) == 6  # nobody lost

    def test_crash_carries_churned_state(self):
        fleet = make_fleet(hosts=2, policy="least-loaded")
        fleet.place("busy", "img-a")
        fleet.touch("busy", 32 * MIB)
        source = fleet.nymboxes["busy"].host_id
        fleet.crash_host(source)
        box = fleet.nymboxes["busy"]
        assert box.host_id != source
        assert box.extra_dirty_bytes == 32 * MIB

    def test_crash_empty_target_picks_fullest_host(self):
        fleet = make_fleet(hosts=2, policy="first-fit")
        for i in range(3):
            fleet.place(f"n{i}", "img-a")
        assert fleet.crash_host() == "host-0"

    def test_crash_all_hosts_parks_nyms(self):
        fleet = make_fleet(hosts=1)
        fleet.place("doomed", "img-a")
        fleet.crash_host("host-0")
        assert fleet.nymboxes == {}
        assert fleet.parked == ["doomed"]

    def test_host_crash_fault_kind_fires_through_injector(self):
        timeline = Timeline(seed=3)
        fleet = Fleet(timeline, hosts=2,
                      policies=FleetPolicies(placement="least-loaded"),
                      host_spec=SMALL_HOST)
        plan = FaultPlan([FaultSpec(at_s=5.0, kind="fleet.host_crash")])
        injector = FaultInjector(timeline, plan).arm(manager=fleet)
        fleet.place("n0", "img-a")
        fleet.place("n1", "img-a")
        timeline.sleep(30.0)
        assert fleet.crashes == 1
        assert injector.injected[0]["outcome"] == "host_crashed"
        assert len(fleet.nymboxes) == 2  # both survived or relocated

    def test_seeded_plan_can_include_host_crashes(self, rng):
        plan = FaultPlan.seeded(rng, duration_s=100.0, host_crashes=3)
        assert len(plan.by_kind("fleet.host_crash")) == 3


class TestScenario:
    def test_run_fleet_writes_report_and_is_deterministic(self, tmp_path):
        out = tmp_path / "BENCH_fleet.json"
        journals = []
        for tag in ("a", "b"):
            path = tmp_path / f"{tag}.jsonl"
            run_fleet(seed=7, hosts=4, nyms=16, policy="ksm-aware",
                      host_crashes=1, compare=False,
                      journal_path=str(path), out_path=str(out))
            journals.append(path.read_bytes())
        assert journals[0] == journals[1]
        payload = json.loads(out.read_text())
        assert payload["hosts"] == 4
        assert payload["results"][0]["policy"] == "ksm-aware"
        assert payload["results"][0]["nyms_resident"] == 16

    def test_run_fleet_compares_all_policies(self, tmp_path):
        # Enough nyms that no single host can hold a whole image colony:
        # only then does placement change what KSM can merge.
        out = tmp_path / "bench.json"
        report = run_fleet(seed=7, hosts=4, nyms=96, out_path=str(out))
        assert [r.policy for r in report.results] == [
            "ksm-aware", "first-fit", "least-loaded",
        ]
        # Identical workloads: every policy placed the same nym count.
        placed = {r.stats.placements for r in report.results}
        assert len(placed) == 1
        assert report.ksm_aware_beats_first_fit
