"""HKDF against RFC 5869 vectors; PBKDF2 behaviour."""

import pytest

from repro.crypto import hkdf, hkdf_expand, hkdf_extract, pbkdf2_sha256
from repro.errors import CryptoError


class TestHkdfRfc5869:
    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, salt, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_2_long(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        okm = hkdf(ikm, salt, info, 82)
        assert okm.hex().startswith("b11e398dc80327a1c8e7f78c596a4934")
        assert okm.hex().endswith("cc30c58179ec3e87c14c01d5c1f3434f1d87")

    def test_case_3_empty_salt_info(self):
        okm = hkdf(bytes.fromhex("0b" * 22), b"", b"", 42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_extract_then_expand_equals_hkdf(self):
        prk = hkdf_extract(b"salt", b"ikm")
        assert hkdf_expand(prk, b"info", 32) == hkdf(b"ikm", b"salt", b"info", 32)

    def test_expand_rejects_oversized(self):
        with pytest.raises(CryptoError):
            hkdf_expand(b"\x00" * 32, b"", 256 * 32)

    def test_length_exact(self):
        for length in (1, 31, 32, 33, 64, 100):
            assert len(hkdf(b"ikm", b"salt", b"info", length)) == length

    def test_info_separates_streams(self):
        assert hkdf(b"k", b"s", b"guard-seed", 16) != hkdf(b"k", b"s", b"circuit-key", 16)


class TestPbkdf2:
    def test_deterministic(self):
        a = pbkdf2_sha256(b"password", b"salt", 1000, 32)
        b = pbkdf2_sha256(b"password", b"salt", 1000, 32)
        assert a == b

    def test_known_vector(self):
        # From RFC 7914's PBKDF2-HMAC-SHA-256 test vector (P="passwd", S="salt", c=1).
        out = pbkdf2_sha256(b"passwd", b"salt", 1, 64)
        assert out.hex().startswith("55ac046e56e3089fec1691c22544b605")

    def test_salt_matters(self):
        assert pbkdf2_sha256(b"pw", b"a", 10, 32) != pbkdf2_sha256(b"pw", b"b", 10, 32)

    def test_iterations_matter(self):
        assert pbkdf2_sha256(b"pw", b"s", 10, 32) != pbkdf2_sha256(b"pw", b"s", 11, 32)

    def test_rejects_zero_iterations(self):
        with pytest.raises(CryptoError):
            pbkdf2_sha256(b"pw", b"s", 0, 32)
