"""End-to-end scenarios: the paper's §2 motivating stories, executed."""

import pytest

from repro.attacks import AnonVmCompromise, distinguishing_bits
from repro.core.validation import validate_system
from repro.sanitize import ParanoiaLevel, SimImage, parse_file
from repro.unionfs.layer import Layer


class TestBobTheDissident:
    """Bob posts protest photos to a pseudonymous Twitter account from
    Tyrannistan, over Tor, with a persistent nym stored in the cloud."""

    def test_full_workflow(self, manager):
        # Bob opens a pseudonymous cloud account and a Twitter nym.
        manager.create_cloud_account("dropbox.com", "rand7781", "cloud-pw")
        nym = manager.create_nym(name="bob-twitter")
        manager.timed_browse(nym, "twitter.com")
        nym.sign_in("twitter.com", "tyrannistan_truth", "account-pw")

        # His installed OS holds today's protest photo, full of metadata.
        photo = SimImage.camera_photo(
            gps=(39.906, 116.397), camera_serial="PHONE-SN-991", faces=3
        )
        manager.mount_host_filesystem(
            "installed-os",
            Layer("installed", files={"/home/bob/protest.jpg": photo.to_bytes()}, read_only=True),
        )
        record = manager.transfer_file_to_nym(
            "installed-os", "/home/bob/protest.jpg", nym, ParanoiaLevel.HIGH
        )
        assert record.residual_report.clean

        # What reaches the nym's AnonVM carries no identifying material.
        delivered = parse_file(nym.inbox.read("/protest.jpg"))
        assert delivered.exif == {}
        assert delivered.unblurred_faces == 0
        assert not delivered.watermark_detectable

        # Twitter never sees Bob's address, only a Tor exit.
        twitter = manager.internet.server_named("twitter.com")
        assert all(
            ip != manager.hypervisor.public_ip for ip in twitter.seen_client_ips
        )

        # Bob stores the nym to the cloud and shuts down; nothing remains.
        manager.store_nym(
            nym, password="nym-pw", provider_host="dropbox.com", account_username="rand7781"
        )
        manager.discard_nym(nym)
        assert manager.live_nyms() == []

        # Next night: restore, credentials are already there — no retyping
        # into possibly-wrong windows (the Sabu failure mode [63]).
        restored = manager.load_nym("bob-twitter", "nym-pw")
        assert restored.browser.has_credentials_for("twitter.com")
        assert restored.nym.accounts == {}  # metadata rebuilt lazily; creds in browser

        # Even if police image the machine: the provider saw only Tor exits,
        # the blob is ciphertext.
        provider = manager.providers["dropbox.com"]
        for ip in provider.observed_ips_for("rand7781"):
            assert ip != manager.hypervisor.public_ip

    def test_browser_exploit_cannot_unmask_bob(self, manager):
        nym = manager.create_nym(name="bob-twitter")
        manager.timed_browse(nym, "twitter.com")
        findings = AnonVmCompromise(nym).run()
        assert not findings.knows_real_network_identity(manager.hypervisor.public_ip)


class TestAliceTheCompartmentalizer:
    """Alice runs work, family, and private-forum roles in parallel nyms."""

    def test_three_parallel_unlinkable_roles(self, manager):
        work = manager.create_nym(name="alice-work")
        family = manager.create_nym(name="alice-family")
        forum = manager.create_nym(name="alice-forum", anonymizer="tor")

        manager.timed_browse(work, "gmail.com")
        work.sign_in("gmail.com", "alice.pro", "pw1")
        manager.timed_browse(family, "facebook.com")
        family.sign_in("facebook.com", "alice.family", "pw2")
        manager.timed_browse(forum, "blog.torproject.org")

        # No browser state crosses nyms.
        assert not family.browser.has_credentials_for("gmail.com")
        assert "gmail.com" not in forum.browser.cookies
        assert "facebook.com" not in forum.browser.cookies

        # Fingerprints across her roles are indistinguishable.
        fps = [n.anonvm.fingerprint() for n in (work, family, forum)]
        assert distinguishing_bits(fps) == 0.0

        # The isolation matrix holds with all three live.
        result = validate_system(manager)
        assert result.passed, result.summary()

    def test_discarding_sensitive_role_leaves_others(self, manager):
        work = manager.create_nym(name="alice-work")
        forum = manager.create_nym(name="alice-forum")
        manager.timed_browse(forum, "blog.torproject.org")
        manager.discard_nym(forum)
        assert work.running
        manager.timed_browse(work, "gmail.com")  # unaffected

    def test_each_role_gets_own_circuits(self, manager):
        nyms = [manager.create_nym(name=f"alice-{i}") for i in range(3)]
        circuit_ids = {n.anonymizer.current_circuit.circ_id for n in nyms}
        assert len(circuit_ids) == 3


class TestHostOsDeniability:
    def test_usb_session_leaves_no_local_trace(self, manager):
        """Boot, browse, store to cloud, discard: local state is zero."""
        manager.create_cloud_account("drive.google.com", "anon5", "pw")
        nym = manager.create_nym(name="sensitive")
        manager.timed_browse(nym, "blog.torproject.org")
        manager.store_nym(
            nym, password="pw", provider_host="drive.google.com", account_username="anon5"
        )
        manager.discard_nym(nym)
        # No nymboxes, no writable-layer bytes, no local blobs.
        assert manager.live_nyms() == []
        assert manager.hypervisor.memory_snapshot().fs_bytes == 0
        assert manager._local_blobs == {}

    def test_installed_os_disk_untouched_after_nym_session(self, manager):
        report, vm, ios = manager.boot_installed_os_nym("Windows 8")
        assert ios.cow_bytes > 0
        ios.discard_session()
        assert ios.cow_bytes == 0
        assert not ios.physical_disk_modified
