"""The perf-regression harness: registry, measurement, CLI plumbing."""

import json

import pytest

from repro.cli import main
from repro.perfbench import (
    BENCHES,
    BenchResult,
    environment_metadata,
    format_results_table,
    measure,
    save_bench_results,
    select_benches,
)

EXPECTED_BENCHES = {
    "memory_churn",
    "ksm_stats",
    "onion_throughput",
    "poly1305",
    "chacha20_xor",
    "mixnet_packet",
    "event_queue_load",
    "fig3_scenario",
    "content_draw",
    "nym_lifecycle",
    "nym_launch",
    "fleet_arrival",
    "fleet_wave",
    "fleet_shard",
}


class TestRegistry:
    def test_expected_benches_registered(self):
        assert set(BENCHES) == EXPECTED_BENCHES

    def test_every_bench_is_described_and_tagged(self):
        for bench in BENCHES.values():
            assert bench.description
            assert bench.tags

    def test_select_all_by_default(self):
        assert {bench.name for bench in select_benches()} == EXPECTED_BENCHES

    def test_select_only(self):
        selected = select_benches(only=["poly1305", "ksm_stats"])
        assert [bench.name for bench in selected] == ["poly1305", "ksm_stats"]

    def test_select_by_tag(self):
        crypto = select_benches(tag="crypto")
        assert {bench.name for bench in crypto} == {
            "onion_throughput",
            "poly1305",
            "chacha20_xor",
            "mixnet_packet",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown bench"):
            select_benches(only=["nope"])

    def test_unknown_tag_rejected(self):
        with pytest.raises(KeyError, match="no bench has tag"):
            select_benches(tag="nope")


class TestHarness:
    def test_measure_respects_minimum_iterations(self):
        iterations, seconds = measure(lambda: None, budget_s=0.0, min_iterations=5)
        assert iterations >= 5
        assert seconds >= 0.0

    def test_result_rates_and_speedup(self):
        result = BenchResult(
            name="x",
            tags=["t"],
            iterations=10,
            seconds=1.0,
            work_per_iteration=100.0,
            baseline_iterations=10,
            baseline_seconds=4.0,
        )
        assert result.per_second == pytest.approx(1000.0)
        assert result.baseline_per_second == pytest.approx(250.0)
        assert result.speedup == pytest.approx(4.0)

    def test_result_without_baseline_has_no_speedup(self):
        result = BenchResult(name="x", tags=[], iterations=1, seconds=0.5)
        assert result.speedup is None
        payload = result.to_dict()
        assert "speedup" not in payload
        assert payload["per_second"] == pytest.approx(2.0)

    def test_environment_metadata_names_the_interpreter(self):
        meta = environment_metadata()
        assert meta["python"]
        assert meta["implementation"]
        assert "numpy" in meta

    def test_save_results_roundtrip(self, tmp_path):
        result = BenchResult(
            name="x",
            tags=["t"],
            iterations=3,
            seconds=0.3,
            baseline_iterations=3,
            baseline_seconds=0.9,
        )
        path = save_bench_results(str(tmp_path / "out.json"), [result], quick=True)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.perfbench/v1"
        assert payload["quick"] is True
        assert payload["results"][0]["name"] == "x"
        assert payload["results"][0]["speedup"] == pytest.approx(3.0)
        assert payload["environment"]["python"]

    def test_format_results_table_mentions_each_bench(self):
        result = BenchResult(name="some_bench", tags=[], iterations=1, seconds=0.1)
        table = format_results_table([result])
        assert "some_bench" in table
        assert "unit" in table.splitlines()[0]


class TestBenchExecution:
    def test_event_queue_bench_runs_quick(self):
        result = BENCHES["event_queue_load"].run(True)
        assert result.iterations >= 1
        assert result.seconds > 0

    def test_memory_churn_bench_reports_speedup(self):
        result = BENCHES["memory_churn"].run(True)
        assert result.speedup is not None
        assert result.speedup > 1.0


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_BENCHES:
            assert name in out

    def test_bench_only_writes_results(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--only", "event_queue_load", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert [entry["name"] for entry in payload["results"]] == ["event_queue_load"]
        assert "event_queue_load" in capsys.readouterr().out

    def test_bench_unknown_name_fails_cleanly(self, capsys):
        assert main(["bench", "--only", "bogus"]) == 2
        assert "unknown bench" in capsys.readouterr().err
