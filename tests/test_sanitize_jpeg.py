"""The byte-level JPEG/EXIF codec and scrubber."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SanitizeError
from repro.sanitize.jpeg import (
    APP1,
    EOI,
    SOI,
    ExifData,
    encode_jpeg,
    parse_jpeg,
    scrub_jpeg,
)


def _camera_exif():
    return ExifData(
        make="Nikon",
        model="D3100",
        datetime="2014:05:01 18:23:11",
        body_serial="NIKON-D3100-2041337",
        gps=(39.906, 116.397),
    )


class TestRoundtrip:
    def test_full_exif_roundtrip(self):
        data = encode_jpeg(_camera_exif(), scan_data=b"PIXELDATA" * 10)
        parsed = parse_jpeg(data)
        assert parsed.exif is not None
        assert parsed.exif.make == "Nikon"
        assert parsed.exif.model == "D3100"
        assert parsed.exif.body_serial == "NIKON-D3100-2041337"
        assert parsed.exif.gps[0] == pytest.approx(39.906, abs=1e-4)
        assert parsed.exif.gps[1] == pytest.approx(116.397, abs=1e-4)
        assert parsed.scan_data == b"PIXELDATA" * 10

    def test_southern_western_hemispheres(self):
        exif = ExifData(gps=(-33.8688, -151.2093))
        parsed = parse_jpeg(encode_jpeg(exif))
        assert parsed.exif.gps[0] == pytest.approx(-33.8688, abs=1e-4)
        assert parsed.exif.gps[1] == pytest.approx(-151.2093, abs=1e-4)

    def test_no_exif(self):
        data = encode_jpeg(None, scan_data=b"RAW")
        parsed = parse_jpeg(data)
        assert parsed.exif is None
        assert parsed.scan_data == b"RAW"

    def test_partial_exif(self):
        parsed = parse_jpeg(encode_jpeg(ExifData(make="Canon")))
        assert parsed.exif.make == "Canon"
        assert parsed.exif.gps is None
        assert parsed.exif.body_serial == ""

    def test_wire_structure(self):
        data = encode_jpeg(_camera_exif())
        assert data.startswith(SOI)
        assert data.endswith(EOI)
        assert b"Exif\x00\x00" in data
        assert b"II" in data  # little-endian TIFF

    def test_ff_byte_stuffing(self):
        """0xFF bytes in scan data must be stuffed and unstuffed."""
        scan = b"\xff\x01\xff\xff\x02"
        parsed = parse_jpeg(encode_jpeg(None, scan_data=scan))
        assert parsed.scan_data == scan

    @given(
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24),
        st.floats(min_value=-89.9, max_value=89.9),
        st.floats(min_value=-179.9, max_value=179.9),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, make, lat, lon):
        exif = ExifData(make=make, gps=(lat, lon))
        parsed = parse_jpeg(encode_jpeg(exif))
        assert parsed.exif.make == make
        assert parsed.exif.gps[0] == pytest.approx(lat, abs=2e-4)
        assert parsed.exif.gps[1] == pytest.approx(lon, abs=2e-4)


class TestParsing:
    def test_rejects_non_jpeg(self):
        with pytest.raises(SanitizeError):
            parse_jpeg(b"GIF89a")

    def test_rejects_truncated_segment(self):
        data = encode_jpeg(_camera_exif())
        with pytest.raises(SanitizeError):
            parse_jpeg(data[:20])

    def test_rejects_missing_eoi(self):
        data = encode_jpeg(None, scan_data=b"X")
        with pytest.raises(SanitizeError):
            parse_jpeg(data[:-2].replace(b"\xff\xd9", b""))


class TestScrubbing:
    def test_scrub_removes_exif_bytes(self):
        original = encode_jpeg(_camera_exif(), scan_data=b"PIXELS" * 8)
        scrubbed = scrub_jpeg(original)
        assert b"Exif\x00\x00" not in scrubbed
        assert b"NIKON-D3100-2041337" not in scrubbed
        assert parse_jpeg(scrubbed).exif is None

    def test_scrub_preserves_image_bits(self):
        scan = b"ENTROPY-CODED-IMAGE" * 16
        original = encode_jpeg(_camera_exif(), scan_data=scan)
        scrubbed = scrub_jpeg(original)
        assert parse_jpeg(scrubbed).scan_data == scan

    def test_scrub_is_idempotent(self):
        original = encode_jpeg(_camera_exif())
        once = scrub_jpeg(original)
        assert scrub_jpeg(once) == once

    def test_scrub_shrinks_file(self):
        original = encode_jpeg(_camera_exif())
        assert len(scrub_jpeg(original)) < len(original)

    def test_scrubbed_file_is_valid_jpeg(self):
        scrubbed = scrub_jpeg(encode_jpeg(_camera_exif()))
        assert scrubbed.startswith(SOI) and scrubbed.endswith(EOI)

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_scrub_preserves_arbitrary_scan_property(self, scan):
        original = encode_jpeg(_camera_exif(), scan_data=scan)
        assert parse_jpeg(scrub_jpeg(original)).scan_data == scan


class TestMatIntegration:
    def test_mat_scrubs_real_jpeg_bytes(self):
        from repro.sanitize import MatScrubber

        data = encode_jpeg(_camera_exif(), scan_data=b"IMG" * 10)
        scrubbed = MatScrubber().scrub_bytes(data)
        assert parse_jpeg(scrubbed).exif is None

    def test_risk_analyzer_reads_real_jpeg(self):
        from repro.sanitize import RiskAnalyzer

        report = RiskAnalyzer().analyze_bytes("p.jpg", encode_jpeg(_camera_exif()))
        assert "exif-gps" in report.kinds()
        assert "exif-serial" in report.kinds()

    def test_clean_jpeg_reports_clean(self):
        from repro.sanitize import RiskAnalyzer

        report = RiskAnalyzer().analyze_bytes("p.jpg", encode_jpeg(None))
        assert report.clean

    def test_scrubbed_jpeg_reports_clean(self):
        from repro.sanitize import MatScrubber, RiskAnalyzer

        data = MatScrubber().scrub_bytes(encode_jpeg(_camera_exif()))
        assert RiskAnalyzer().analyze_bytes("p.jpg", data).clean
