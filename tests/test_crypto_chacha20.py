"""ChaCha20 against the RFC 8439 test vectors plus behavioural properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import chacha20_block, chacha20_xor
from repro.errors import CryptoError

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")
SUNSCREEN = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)


class TestRfc8439Vectors:
    def test_block_function_vector(self):
        """RFC 8439 section 2.3.2."""
        block = chacha20_block(RFC_KEY, 1, RFC_NONCE)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_encryption_vector(self):
        """RFC 8439 section 2.4.2: the full sunscreen ciphertext."""
        nonce = bytes.fromhex("000000000000004a00000000")
        ciphertext = chacha20_xor(RFC_KEY, nonce, SUNSCREEN, counter=1)
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d"
        )
        assert ciphertext == expected


class TestChaCha20Behaviour:
    def test_roundtrip(self):
        nonce = b"\x01" * 12
        data = b"quasi-persistent nym state" * 10
        ct = chacha20_xor(RFC_KEY, nonce, data)
        assert chacha20_xor(RFC_KEY, nonce, ct) == data

    def test_ciphertext_differs_from_plaintext(self):
        nonce = b"\x02" * 12
        assert chacha20_xor(RFC_KEY, nonce, b"A" * 100) != b"A" * 100

    def test_different_nonces_differ(self):
        a = chacha20_xor(RFC_KEY, b"\x00" * 12, b"X" * 64)
        b = chacha20_xor(RFC_KEY, b"\x01" * 12, b"X" * 64)
        assert a != b

    def test_different_keys_differ(self):
        other_key = bytes(reversed(RFC_KEY))
        a = chacha20_xor(RFC_KEY, b"\x00" * 12, b"X" * 64)
        b = chacha20_xor(other_key, b"\x00" * 12, b"X" * 64)
        assert a != b

    def test_counter_offsets_keystream(self):
        # Encrypting block-by-block with manual counters must equal one call.
        nonce = b"\x05" * 12
        data = bytes(range(256)) * 2
        whole = chacha20_xor(RFC_KEY, nonce, data, counter=0)
        parts = b"".join(
            chacha20_xor(RFC_KEY, nonce, data[i : i + 64], counter=i // 64)
            for i in range(0, len(data), 64)
        )
        assert whole == parts

    def test_empty_payload(self):
        assert chacha20_xor(RFC_KEY, b"\x00" * 12, b"") == b""

    def test_bad_key_size(self):
        with pytest.raises(CryptoError):
            chacha20_block(b"short", 0, b"\x00" * 12)

    def test_bad_nonce_size(self):
        with pytest.raises(CryptoError):
            chacha20_block(RFC_KEY, 0, b"\x00" * 8)

    def test_counter_out_of_range(self):
        with pytest.raises(CryptoError):
            chacha20_block(RFC_KEY, 2**32, b"\x00" * 12)

    @given(st.binary(min_size=0, max_size=300))
    def test_roundtrip_property(self, data):
        nonce = b"\x09" * 12
        assert chacha20_xor(RFC_KEY, nonce, chacha20_xor(RFC_KEY, nonce, data)) == data
