"""X25519 against RFC 7748 vectors plus Diffie-Hellman properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import X25519_BASE_POINT, x25519, x25519_keypair
from repro.errors import CryptoError
from repro.sim import SeededRng


class TestRfc7748Vectors:
    def test_vector_1(self):
        scalar = bytes.fromhex(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"
        )
        point = bytes.fromhex(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"
        )
        assert x25519(scalar, point) == bytes.fromhex(
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        )

    def test_vector_2(self):
        scalar = bytes.fromhex(
            "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d"
        )
        point = bytes.fromhex(
            "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493"
        )
        assert x25519(scalar, point) == bytes.fromhex(
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        )

    def test_alice_bob_keypairs(self):
        """RFC 7748 section 6.1: the Diffie-Hellman example."""
        alice_private = bytes.fromhex(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a"
        )
        bob_private = bytes.fromhex(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb"
        )
        alice_public = x25519(alice_private, X25519_BASE_POINT)
        bob_public = x25519(bob_private, X25519_BASE_POINT)
        assert alice_public == bytes.fromhex(
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        )
        assert bob_public == bytes.fromhex(
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        )
        shared = bytes.fromhex(
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        )
        assert x25519(alice_private, bob_public) == shared
        assert x25519(bob_private, alice_public) == shared


class TestX25519Behaviour:
    def test_keypair_agreement(self):
        rng = SeededRng(11)
        a_priv, a_pub = x25519_keypair(rng.fork("a"))
        b_priv, b_pub = x25519_keypair(rng.fork("b"))
        assert x25519(a_priv, b_pub) == x25519(b_priv, a_pub)

    def test_distinct_keypairs_distinct_secrets(self):
        rng = SeededRng(12)
        a_priv, a_pub = x25519_keypair(rng.fork("a"))
        b_priv, b_pub = x25519_keypair(rng.fork("b"))
        c_priv, c_pub = x25519_keypair(rng.fork("c"))
        assert x25519(a_priv, b_pub) != x25519(a_priv, c_pub)

    def test_rejects_short_scalar(self):
        with pytest.raises(CryptoError):
            x25519(b"\x01" * 31, X25519_BASE_POINT)

    def test_rejects_short_point(self):
        with pytest.raises(CryptoError):
            x25519(b"\x01" * 32, b"\x09" * 31)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_dh_commutes_property(self, seed):
        rng = SeededRng(seed)
        a_priv, a_pub = x25519_keypair(rng.fork("a"))
        b_priv, b_pub = x25519_keypair(rng.fork("b"))
        assert x25519(a_priv, b_pub) == x25519(b_priv, a_pub)
