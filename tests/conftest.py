"""Shared fixtures for the Nymix reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cloud import make_dropbox, make_google_drive
from repro.core import NymManager, NymixConfig
from repro.net.internet import Internet
from repro.sim import SeededRng, Timeline
from repro.vmm import Hypervisor


@pytest.fixture
def timeline() -> Timeline:
    return Timeline(seed=42)


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(42)


@pytest.fixture
def internet(timeline) -> Internet:
    return Internet(timeline)


@pytest.fixture
def hypervisor(timeline, internet) -> Hypervisor:
    return Hypervisor(timeline, internet)


@pytest.fixture
def manager() -> NymManager:
    """A fully wired Nymix instance with both cloud providers registered."""
    m = NymManager(NymixConfig(seed=7))
    m.add_cloud_provider(make_dropbox())
    m.add_cloud_provider(make_google_drive())
    return m
