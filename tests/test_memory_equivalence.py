"""The run-length GuestMemory/Ksm must match the seed per-page semantics.

The seed implementation kept one dict entry per page; the live code keeps
run-length groups.  These tests expand the runs back to per-page multisets
and drive both implementations through identical operation sequences.
"""

import random

import pytest

from repro.errors import MemoryError_
from repro.memory.ksm import Ksm
from repro.memory.pages import (
    PAGE_SIZE,
    ZERO_TAG,
    GuestMemory,
    image_tag,
    unique_tag,
)
from repro.perfbench.legacy import LegacyGuestMemory, legacy_ksm_stats

MIB = 1024 * 1024


def expand_to_multiset(guest: GuestMemory):
    """Per-page content-tag counts, in the seed's representation."""
    pages = {}
    for tag, count in guest.page_groups():
        if tag[0] == "zero":
            pages[ZERO_TAG] = pages.get(ZERO_TAG, 0) + count
        elif tag[0] == "image":
            _, image_id, lo, hi = tag
            mult = count // (hi - lo)
            for block in range(lo, hi):
                key = image_tag(image_id, block)
                pages[key] = pages.get(key, 0) + mult
        else:
            _, owner, lo, hi = tag
            for serial in range(lo, hi):
                pages[unique_tag(owner, serial)] = 1
    return pages


def random_ops(rng, steps):
    """A reproducible operation script both implementations replay."""
    ops = []
    for _ in range(steps):
        kind = rng.choice(["map", "map", "dirty", "dirty", "dirty", "erase"])
        if kind == "map":
            image = rng.choice(["osA", "osB"])
            pages = rng.randint(0, 40)
            first = rng.randint(0, 30)
            ops.append(("map", image, pages * PAGE_SIZE, first))
        elif kind == "dirty":
            ops.append(("dirty", rng.randint(0, 50) * PAGE_SIZE))
        else:
            ops.append(("erase",))
    return ops


def apply_op(guest, op):
    if op[0] == "map":
        guest.map_image(op[1], op[2], first_block=op[3])
    elif op[0] == "dirty":
        guest.dirty(op[1])
    else:
        guest.secure_erase()


class TestGuestMemoryEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_op_sequences_match_seed_semantics(self, seed):
        rng = random.Random(seed)
        size = rng.randint(1, 200) * PAGE_SIZE
        new = GuestMemory("g", size)
        old = LegacyGuestMemory("g", size)
        for op in random_ops(rng, steps=30):
            new_err = old_err = None
            try:
                apply_op(new, op)
            except MemoryError_ as exc:
                new_err = str(exc)
            try:
                apply_op(old, op)
            except MemoryError_ as exc:
                old_err = str(exc)
            assert new_err == old_err, op
            if new_err is not None:
                # The seed implementation corrupts its own state on failure
                # (it consumes pages before raising); the live code is
                # atomic.  Equal errors are required, further comparison
                # of a corrupted multiset is not meaningful.
                return
            assert expand_to_multiset(new) == dict(old.page_groups()), op
            assert new.total_pages == old.total_pages
            assert new.clean_bytes == old.clean_bytes

    def test_failed_take_is_atomic(self):
        guest = GuestMemory("g", 10 * PAGE_SIZE)
        guest.dirty(8 * PAGE_SIZE)
        before = guest.stats()
        with pytest.raises(MemoryError_, match="1 short"):
            guest.dirty(3 * PAGE_SIZE)
        assert guest.stats() == before  # unlike the seed, nothing leaked

    def test_error_message_matches_seed_format(self):
        new = GuestMemory("g", 4 * PAGE_SIZE)
        old = LegacyGuestMemory("g", 4 * PAGE_SIZE)
        with pytest.raises(MemoryError_) as new_exc:
            new.dirty(9 * PAGE_SIZE)
        with pytest.raises(MemoryError_) as old_exc:
            old.dirty(9 * PAGE_SIZE)
        assert str(new_exc.value) == str(old_exc.value)


def _fig3_guest_set(cls):
    """The §5.2 guest mix: anon/comm/sani VMs page-caching one base image."""
    sizes = [("anon", 64 * MIB, 24 * MIB), ("comm", 32 * MIB, 8 * MIB),
             ("sani", 48 * MIB, 16 * MIB), ("anon2", 64 * MIB, 24 * MIB)]
    guests = []
    for name, ram, image in sizes:
        guest = cls(name, ram)
        guest.map_image("NYMIX_IMAGE_ID", image)
        guest.dirty(ram // 16)
        guests.append(guest)
    return guests


class TestKsmEquivalence:
    def test_fig3_scenario_matches_seed_accounting(self):
        guests = _fig3_guest_set(GuestMemory)
        legacy_guests = _fig3_guest_set(LegacyGuestMemory)
        ksm = Ksm(enabled=True)
        for guest in guests:
            ksm.register(guest)
        ksm.run_to_completion()
        stats = ksm.stats()
        shared, sharing, saved = legacy_ksm_stats(legacy_guests, coverage=1.0)
        assert (stats.pages_shared, stats.pages_sharing, stats.pages_saved) == (
            shared,
            sharing,
            saved,
        )
        # Pinned absolute numbers: the 8 MiB prefix is cached by all four
        # guests, 16 MiB by three, 24 MiB by the two anon VMs.
        assert stats.pages_shared == 6144  # 24 MiB of distinct duplicated blocks
        assert stats.pages_sharing == 18432
        assert stats.pages_saved == 12288

    @pytest.mark.parametrize("coverage", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_partial_coverage_matches_seed_truncation(self, coverage):
        guests = _fig3_guest_set(GuestMemory)
        legacy_guests = _fig3_guest_set(LegacyGuestMemory)
        ksm = Ksm(enabled=True, pages_per_scan=1)
        for guest in guests:
            ksm.register(guest)
        total = ksm.total_guest_pages
        ksm.scan(passes=int(total * coverage))
        stats = ksm.stats()
        shared, sharing, saved = legacy_ksm_stats(legacy_guests, ksm.coverage)
        if sharing and not shared:
            shared = 1  # the live code's truncation-bias fix
            saved = max(0, sharing - shared)
        assert (stats.pages_shared, stats.pages_sharing, stats.pages_saved) == (
            shared,
            sharing,
            saved,
        )

    def test_zero_page_merging_matches_seed(self):
        guests = _fig3_guest_set(GuestMemory)
        legacy_guests = _fig3_guest_set(LegacyGuestMemory)
        ksm = Ksm(enabled=True, merge_zero_pages=True)
        for guest in guests:
            ksm.register(guest)
        ksm.run_to_completion()
        stats = ksm.stats()
        expected = legacy_ksm_stats(legacy_guests, 1.0, merge_zero_pages=True)
        assert (stats.pages_shared, stats.pages_sharing, stats.pages_saved) == expected

    def test_incremental_index_tracks_mutations(self):
        """Cached stats must invalidate when any guest's memory changes."""
        guests = _fig3_guest_set(GuestMemory)
        ksm = Ksm(enabled=True)
        for guest in guests:
            ksm.register(guest)
        ksm.run_to_completion()
        before = ksm.stats()
        assert ksm.stats() == before  # cached, no change

        # Dirtying repurposes image pages -> fewer duplicates.
        guests[0].dirty(guests[0].clean_bytes)
        after_dirty = ksm.run_to_completion()
        assert after_dirty.pages_sharing < before.pages_sharing

        legacy_guests = _fig3_guest_set(LegacyGuestMemory)
        legacy_guests[0].dirty(legacy_guests[0].clean_bytes)
        assert (
            after_dirty.pages_shared,
            after_dirty.pages_sharing,
            after_dirty.pages_saved,
        ) == legacy_ksm_stats(legacy_guests, ksm.coverage)

    def test_unregister_invalidates_index(self):
        guests = _fig3_guest_set(GuestMemory)
        ksm = Ksm(enabled=True)
        for guest in guests:
            ksm.register(guest)
        ksm.run_to_completion()
        with_all = ksm.stats()
        ksm.unregister(guests[0])
        without_anon = ksm.run_to_completion()
        assert without_anon.pages_sharing < with_all.pages_sharing

    def test_scan_progress_clamped_to_guest_footprint(self):
        guest = GuestMemory("g", 4 * MIB)
        ksm = Ksm(enabled=True, pages_per_scan=10_000_000)
        ksm.register(guest)
        ksm.scan(passes=50)
        assert ksm._scanned_pages == guest.total_pages
        assert ksm.coverage == 1.0
        # Registering more memory later must require fresh coverage.
        late = GuestMemory("late", 4 * MIB)
        ksm.register(late)
        assert ksm.coverage == pytest.approx(0.5)


class TestGroupedSweepEquivalence:
    """The one-shot vectorized sweep must match per-group scalar sweeps."""

    def _scalar(self, group_ids, los, his, mults):
        from repro.memory.ksm import _sweep_duplicates

        per_group = {}
        for gid, lo, hi, mult in zip(group_ids, los, his, mults):
            per_group.setdefault(gid, []).append((lo, hi, mult))
        shared = sharing = 0
        for runs in per_group.values():
            s, m = _sweep_duplicates(runs)
            shared += s
            sharing += m
        return shared, sharing

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_run_sets_match_scalar(self, seed):
        from repro.memory.ksm import _sweep_duplicates_grouped

        rng = random.Random(seed)
        for trial in range(30):
            n = rng.randint(0, 120)  # spans both sides of the vector threshold
            group_ids, los, his, mults = [], [], [], []
            for _ in range(n):
                lo = rng.randint(0, 500)
                group_ids.append(rng.randint(0, 6))
                los.append(lo)
                his.append(lo + rng.randint(1, 80))
                mults.append(rng.randint(1, 5))
            assert _sweep_duplicates_grouped(group_ids, los, his, mults) == (
                self._scalar(group_ids, los, his, mults)
            ), (seed, trial)

    def test_identical_endpoints_across_groups_do_not_merge(self):
        from repro.memory.ksm import _sweep_duplicates_grouped

        # Same [0, 10) run in 30 different groups: no within-group overlap,
        # so nothing merges even though every point coincides globally.
        n = 30
        args = (list(range(n)), [0] * n, [10] * n, [1] * n)
        assert _sweep_duplicates_grouped(*args) == (0, 0)

    def test_zero_coverage_stats_gate_is_exact(self):
        guests = _fig3_guest_set(GuestMemory)
        ksm = Ksm(enabled=True, pages_per_scan=1)
        for guest in guests:
            ksm.register(guest)
        gated = ksm.stats()  # coverage 0.0: fast path, no index rebuild
        assert (gated.pages_shared, gated.pages_sharing, gated.pages_saved) == (
            0,
            0,
            0,
        )
        legacy_guests = _fig3_guest_set(LegacyGuestMemory)
        assert legacy_ksm_stats(legacy_guests, coverage=0.0) == (0, 0, 0)

    def test_version_tracks_accounting_changes(self):
        guest = GuestMemory("g", 4 * MIB)
        ksm = Ksm(enabled=True)
        before = ksm.version
        ksm.register(guest)
        assert ksm.version > before
        before = ksm.version
        guest.dirty(PAGE_SIZE)
        assert ksm.version > before
        before = ksm.version
        ksm.run_to_completion()
        assert ksm.version > before
        before = ksm.version
        ksm.run_to_completion()  # coverage already complete: no change
        assert ksm.version == before
