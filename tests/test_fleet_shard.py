"""Sharded fleet scale-out: determinism, epoch barriers, kill/resume.

The whole-run record of a sharded fleet is the canonical concatenation
of its streamed spools (coordinator first, shards in id order).  These
tests pin the three invariants the scale path promises:

* same-seed runs are byte-identical, spool by spool;
* flush timing (the streaming window) never changes a single byte;
* a run killed at (or past) an epoch-barrier checkpoint and resumed —
  even in a state pickled for a fresh process — finishes with exactly
  the bytes of an uninterrupted run.
"""

import pickle

import pytest

from repro.errors import FleetError
from repro.fleet.shard import (
    FleetShard,
    ShardConfig,
    ShardedFleet,
    combined_spool_bytes,
    partition_arrivals,
    resume_sharded_fleet,
    run_sharded_fleet,
)

CFG = dict(
    seed=7, shards=3, hosts_per_shard=4, nyms=90, host_crashes=2, epoch_s=15.0
)


def run_to_completion(tmp_path, name, **overrides):
    config = ShardConfig(**{**CFG, **overrides})
    spool_dir = str(tmp_path / name)
    result = run_sharded_fleet(config, spool_dir)
    return config, spool_dir, result


def combined(spool_dir, shards):
    paths = [f"{spool_dir}/coordinator.jsonl"] + [
        f"{spool_dir}/shard-{i:02d}.jsonl" for i in range(shards)
    ]
    return combined_spool_bytes(paths)


class TestShardConfig:
    def test_rejects_degenerate_configs(self):
        with pytest.raises(FleetError):
            ShardConfig(shards=0)
        with pytest.raises(FleetError):
            ShardConfig(epoch_s=0)

    def test_shard_seeds_are_stable_and_distinct(self):
        config = ShardConfig(**CFG)
        seeds = [config.shard_seed(i) for i in range(config.shards)]
        assert seeds == [ShardConfig(**CFG).shard_seed(i) for i in range(3)]
        assert len(set(seeds)) == len(seeds)

    def test_partition_is_round_robin_with_absolute_times(self):
        config = ShardConfig(**CFG)
        per_shard = partition_arrivals(config)
        assert sum(len(s) for s in per_shard) == config.nyms
        # Arrival i lands on shard i % shards; absolute times are the
        # cumulative interarrival sums, so each slice is increasing.
        assert per_shard[0][0][1].name == "nym-0000"
        assert per_shard[1][0][1].name == "nym-0001"
        for slice_ in per_shard:
            times = [t for t, _ in slice_]
            assert times == sorted(times)
        # The same nyms regardless of shard count, just redistributed.
        one = partition_arrivals(ShardConfig(**{**CFG, "shards": 1}))
        all_names = sorted(a.name for s in per_shard for _, a in s)
        assert all_names == sorted(a.name for _, a in one[0])

    def test_partition_is_a_pure_function_of_the_config(self):
        # Repeated partitioning must yield identical streams — arrival
        # names, times, churn, everything — or worker processes (which
        # re-derive nothing, receiving their slices over the pipe) and
        # local shards (which may re-partition) could diverge.
        config = ShardConfig(**CFG)
        assert partition_arrivals(config) == partition_arrivals(config)

    def test_shard_seed_ignores_execution_details(self):
        # shard_seed must depend on (seed, shard_id) only: the same
        # shard keeps its RNG stream whether the run uses 1 process or
        # 8, 3 shards or 30.
        base = ShardConfig(**CFG)
        reshaped = ShardConfig(**{**CFG, "shards": 30, "hosts_per_shard": 1})
        assert [base.shard_seed(i) for i in range(3)] == [
            reshaped.shard_seed(i) for i in range(3)
        ]
        assert base.shard_seed(0) != ShardConfig(**{**CFG, "seed": 8}).shard_seed(0)


class TestShardedDeterminism:
    def test_same_seed_runs_are_byte_identical(self, tmp_path):
        config, dir_a, result_a = run_to_completion(tmp_path, "a")
        _, dir_b, result_b = run_to_completion(tmp_path, "b")
        bytes_a = combined(dir_a, config.shards)
        assert bytes_a
        assert bytes_a == combined(dir_b, config.shards)
        assert result_a.export() == result_b.export()

    def test_flush_window_never_changes_bytes(self, tmp_path):
        config, dir_a, _ = run_to_completion(tmp_path, "w-default")
        _, dir_b, _ = run_to_completion(tmp_path, "w-tiny", journal_window=1)
        assert combined(dir_a, config.shards) == combined(dir_b, config.shards)

    def test_run_places_every_nym_and_merges_accounting(self, tmp_path):
        config, _, result = run_to_completion(tmp_path, "full")
        assert result.completed
        merged = result.merged
        assert merged["nyms_resident"] + merged["nyms_parked"] == config.nyms
        assert merged["host_crashes"] == config.host_crashes
        shard_events = sum(s["journal_events"] for s in result.shard_stats)
        coordinator_events = result.journal_events - shard_events
        # The coordinator records one creation record plus, per epoch,
        # one merged event and one per-shard event (and any crashes).
        assert coordinator_events >= 1 + result.epochs * (1 + config.shards)
        per_shard_resident = sum(s["nyms_resident"] for s in result.shard_stats)
        assert per_shard_resident == merged["nyms_resident"]

    def test_streamed_shard_journal_matches_in_memory_export(self, tmp_path):
        # The spool on disk and the journal's own export must agree —
        # the streamed journal IS the in-memory journal, just flushed.
        config = ShardConfig(**CFG)
        sharded = ShardedFleet(config, str(tmp_path / "x"))
        sharded.run()
        for shard in sharded.shards:
            exported = shard.journal.export_jsonl()
            with open(shard.journal.spool_path) as handle:
                assert handle.read() == exported + "\n"
        sharded.close()


class TestKillResume:
    def test_resume_from_checkpoint_is_byte_identical(self, tmp_path):
        config, dir_a, _ = run_to_completion(tmp_path, "uninterrupted")
        baseline = combined(dir_a, config.shards)

        dir_b = str(tmp_path / "killed")
        ck = str(tmp_path / "ck")
        partial = run_sharded_fleet(
            config, dir_b, checkpoint_dir=ck, stop_after_epoch=1
        )
        assert not partial.completed
        assert partial.epochs == 1
        _, resumed = resume_sharded_fleet(ck)
        assert resumed.completed
        assert combined(dir_b, config.shards) == baseline

    def test_resume_truncates_bytes_written_past_the_checkpoint(self, tmp_path):
        config, dir_a, _ = run_to_completion(tmp_path, "clean")
        baseline = combined(dir_a, config.shards)

        dir_b = str(tmp_path / "dirty")
        ck = str(tmp_path / "ck-dirty")
        sharded = ShardedFleet(config, dir_b, checkpoint_dir=ck)
        sharded.run(stop_after_epoch=1)
        # The "kill" lands mid-epoch-2: progress already flushed to the
        # spools, but no checkpoint taken.  Resume must cut those bytes.
        sharded.epoch += 1
        for shard in sharded.shards:
            shard.run_epoch(sharded.epoch * config.epoch_s)
            shard.journal.flush()
        _, resumed = resume_sharded_fleet(ck)
        assert resumed.completed
        assert combined(dir_b, config.shards) == baseline

    def test_resume_round_trips_through_pickled_state(self, tmp_path):
        # The checkpoint files must be self-contained: a shard unpickled
        # from bytes (as a fresh process would) carries its cursor, RNG
        # position, and journal counts.
        config = ShardConfig(**CFG)
        sharded = ShardedFleet(
            config, str(tmp_path / "p"), checkpoint_dir=str(tmp_path / "p-ck")
        )
        sharded.run(stop_after_epoch=1)
        shard = sharded.shards[0]
        clone = pickle.loads(pickle.dumps(shard))
        assert clone.cursor == shard.cursor
        assert clone.timeline.now == shard.timeline.now
        assert len(clone.journal) == len(shard.journal)
        assert clone.fleet.placements == shard.fleet.placements

    def test_checkpoint_requires_a_quiescent_barrier(self, tmp_path):
        config = ShardConfig(**CFG)
        sharded = ShardedFleet(
            config, str(tmp_path / "q"), checkpoint_dir=str(tmp_path / "q-ck")
        )
        sharded.run(stop_after_epoch=1)
        sharded.shards[0].timeline.after(1.0, lambda: None)
        with pytest.raises(FleetError):
            sharded.checkpoint()

    def test_checkpoint_without_dir_raises(self, tmp_path):
        sharded = ShardedFleet(ShardConfig(**CFG), str(tmp_path / "nd"))
        with pytest.raises(FleetError):
            sharded.checkpoint()


class TestStandaloneShard:
    def test_single_shard_processes_its_slice(self, tmp_path):
        config = ShardConfig(**{**CFG, "host_crashes": 0})
        shard = FleetShard(config, 1, str(tmp_path / "solo.jsonl"))
        placed = shard.run_epoch(config.epoch_s * 50)
        assert shard.done
        assert placed == len(shard.arrivals)
        assert shard.timeline.now >= config.epoch_s * 50
