"""NICs, virtual wires, frames, and captures."""

import pytest

from repro.errors import NetworkError, UnreachableError
from repro.net import EthernetFrame, Ipv4Packet, PacketCapture, UdpDatagram, VirtualNic, VirtualWire
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.frame import BROADCAST_MAC, IcmpMessage, Protocol
from repro.sim import Timeline


def _nic(name, mac_last, ip=None):
    return VirtualNic(
        name,
        MacAddress.parse(f"52:54:00:00:00:{mac_last:02x}"),
        Ipv4Address.parse(ip) if ip else None,
    )


def _packet(src="10.0.2.15", dst="10.0.2.2", label=""):
    return Ipv4Packet(
        src=Ipv4Address.parse(src),
        dst=Ipv4Address.parse(dst),
        transport=UdpDatagram(src_port=1234, dst_port=53, payload=b"x" * 10, label=label),
    )


class TestFrames:
    def test_protocol_dispatch(self):
        assert _packet().protocol is Protocol.UDP
        icmp = Ipv4Packet(
            src=Ipv4Address.parse("1.2.3.4"),
            dst=Ipv4Address.parse("5.6.7.8"),
            transport=IcmpMessage(),
        )
        assert icmp.protocol is Protocol.ICMP

    def test_sizes(self):
        packet = _packet()
        assert packet.size == 20 + 8 + 10
        frame = EthernetFrame(
            src_mac=MacAddress(1), dst_mac=MacAddress(2), packet=packet
        )
        assert frame.size == 14 + packet.size

    def test_describe_mentions_endpoints(self):
        text = _packet(label="dns").describe()
        assert "10.0.2.15" in text and "dns" in text

    def test_broadcast_detection(self):
        frame = EthernetFrame(src_mac=MacAddress(1), dst_mac=BROADCAST_MAC)
        assert frame.is_broadcast


class TestNicAndWire:
    def test_frame_crosses_wire(self):
        timeline = Timeline()
        a, b = _nic("a", 1, "10.0.2.15"), _nic("b", 2, "10.0.2.2")
        VirtualWire(timeline, a, b, latency_s=0.001)
        received = []
        b.on_receive(received.append)
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=b.mac, packet=_packet()))
        assert received == []  # in flight
        timeline.sleep(0.002)
        assert len(received) == 1

    def test_zero_latency_is_synchronous(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        VirtualWire(timeline, a, b, latency_s=0.0)
        received = []
        b.on_receive(received.append)
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=b.mac))
        assert len(received) == 1

    def test_unconnected_nic_drops_silently(self):
        nic = _nic("lonely", 1)
        ok = nic.send(EthernetFrame(src_mac=nic.mac, dst_mac=MacAddress(9)))
        assert not ok
        assert nic.dropped_frames == 1

    def test_unconnected_nic_strict_raises(self):
        nic = _nic("lonely", 1)
        with pytest.raises(UnreachableError):
            nic.send(EthernetFrame(src_mac=nic.mac, dst_mac=MacAddress(9)), strict=True)

    def test_wrong_destination_mac_filtered(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        VirtualWire(timeline, a, b, latency_s=0.0)
        received = []
        b.on_receive(received.append)
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=MacAddress(0x99)))
        assert received == []
        assert b.dropped_frames == 1

    def test_broadcast_accepted(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        VirtualWire(timeline, a, b, latency_s=0.0)
        received = []
        b.on_receive(received.append)
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=BROADCAST_MAC))
        assert len(received) == 1

    def test_wire_teardown_severs_path(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        wire = VirtualWire(timeline, a, b, latency_s=0.0)
        wire.take_down()
        assert not a.connected and not b.connected
        assert not a.send(EthernetFrame(src_mac=a.mac, dst_mac=b.mac))

    def test_wire_needs_two_endpoints(self):
        timeline = Timeline()
        nic = _nic("a", 1)
        with pytest.raises(NetworkError):
            VirtualWire(timeline, nic, nic)

    def test_foreign_sender_rejected(self):
        timeline = Timeline()
        a, b, c = _nic("a", 1), _nic("b", 2), _nic("c", 3)
        wire = VirtualWire(timeline, a, b, latency_s=0.0)
        with pytest.raises(NetworkError):
            wire.carry(c, EthernetFrame(src_mac=c.mac, dst_mac=a.mac))

    def test_counters(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        VirtualWire(timeline, a, b, latency_s=0.0)
        frame = EthernetFrame(src_mac=a.mac, dst_mac=b.mac, packet=_packet())
        a.send(frame)
        assert a.tx_frames == 1 and a.tx_bytes == frame.size
        assert b.rx_frames == 1 and b.rx_bytes == frame.size


class TestPacketCapture:
    def test_tap_observes_both_directions(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        wire = VirtualWire(timeline, a, b, latency_s=0.0)
        capture = PacketCapture(timeline)
        wire.add_tap(capture)
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=b.mac, packet=_packet(label="dns")))
        b.send(EthernetFrame(src_mac=b.mac, dst_mac=a.mac, packet=_packet(label="dns")))
        assert len(capture) == 2
        assert {e.sender for e in capture.entries} == {"a", "b"}

    def test_labels_recorded(self):
        timeline = Timeline()
        a, b = _nic("a", 1), _nic("b", 2)
        wire = VirtualWire(timeline, a, b, latency_s=0.0)
        capture = PacketCapture(timeline)
        wire.add_tap(capture)
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=b.mac, packet=_packet(label="dhcp")))
        a.send(EthernetFrame(src_mac=a.mac, dst_mac=b.mac, raw_payload=b"raw"))
        assert capture.by_label() == {"dhcp": 1, "raw-ethernet": 1}

    def test_flow_records(self):
        capture = PacketCapture(Timeline())
        capture.record_flow("uplink", "nat", "anonymizer", 1000)
        assert capture.entries[0].flow_bytes == 1000
