"""The §6 baselines: Tails-like, Whonix-like, and the comparison matrix."""

import pytest

from repro.baselines import (
    TailsLikeSystem,
    WhonixLikeSystem,
    compare_architectures,
)
from repro.sim import SeededRng


@pytest.fixture
def rng():
    return SeededRng(29)


class TestTailsLike:
    def test_amnesia_sheds_stains(self, rng):
        tails = TailsLikeSystem(rng, "203.0.113.77")
        tails.boot()
        tails.plant_stain("st-9")
        assert not tails.stain_survives_reboot("st-9")

    def test_exploit_reaches_real_ip(self, rng):
        """No CommVM between browser and NIC: the §6 gap Nymix closes."""
        tails = TailsLikeSystem(rng, "203.0.113.77")
        tails.boot()
        assert tails.exploit_learns_real_ip()

    def test_amnesia_churns_guards(self, rng):
        tails = TailsLikeSystem(rng, "203.0.113.77")
        distinct = tails.guards_across_sessions(10)
        assert distinct > 10  # fresh triple nearly every session

    def test_credentials_retyped_every_session(self, rng):
        tails = TailsLikeSystem(rng, "203.0.113.77")
        tails.boot()
        tails.login("twitter.com", "pseudo", "pw")
        tails.shutdown()
        session = tails.boot()
        assert session.typed_credentials == []  # must type again (the [63] hazard)

    def test_persistence_creates_usb_evidence(self, rng):
        tails = TailsLikeSystem(rng, "203.0.113.77")
        tails.persistence_enabled = True
        tails.boot()
        tails.plant_stain("st-9")
        tails.login("twitter.com", "pseudo", "pw")
        tails.shutdown()
        assert "encrypted-persistent-volume" in tails.usb_forensics()

    def test_persistence_also_preserves_stains(self, rng):
        tails = TailsLikeSystem(rng, "203.0.113.77")
        tails.persistence_enabled = True
        tails.boot()
        tails.plant_stain("st-9")
        assert tails.stain_survives_reboot("st-9")


class TestWhonixLike:
    def test_exploit_contained(self, rng):
        whonix = WhonixLikeSystem(rng, "203.0.113.77")
        assert not whonix.exploit_learns_real_ip()

    def test_stain_permanent_until_reinstall(self, rng):
        whonix = WhonixLikeSystem(rng, "203.0.113.77")
        whonix.plant_stain("st-9")
        assert whonix.stain_survives_reboot("st-9")
        whonix.reinstall()
        assert not whonix.stain_survives_reboot("st-9")
        assert whonix.reinstalls == 1

    def test_shared_tor_links_roles(self, rng):
        whonix = WhonixLikeSystem(rng, "203.0.113.77")
        whonix.do_activity("work", "gmail.com")
        whonix.do_activity("dissident", "twitter.com")
        assert whonix.activities_linkable_by_exit("work", "dissident")

    def test_rotating_circuits_between_roles_helps(self, rng):
        whonix = WhonixLikeSystem(rng, "203.0.113.77")
        whonix.do_activity("work", "gmail.com")
        whonix.rotate_circuit()
        whonix.do_activity("dissident", "twitter.com")
        # May still collide by chance from a small exit pool; assert only
        # that manual rotation changed the mechanism.
        assert len({a.exit_used for a in whonix.activities}) >= 1

    def test_installed_images_are_evidence(self, rng):
        whonix = WhonixLikeSystem(rng, "203.0.113.77")
        assert "whonix-vm-images" in whonix.host_forensics()


class TestComparisonMatrix:
    def test_nymix_dominates(self, manager):
        rows = {row.architecture: row for row in compare_architectures(manager)}
        nymix = rows["nymix"]
        assert all(nymix.scores.values()), nymix.scores
        assert nymix.protected_count >= rows["tails-like"].protected_count
        assert nymix.protected_count >= rows["whonix-like"].protected_count

    def test_baselines_fail_their_documented_exercises(self, manager):
        rows = {row.architecture: row for row in compare_architectures(manager)}
        assert not rows["tails-like"].scores["exploit_contained"]
        assert not rows["tails-like"].scores["guards_persist"]
        assert not rows["whonix-like"].scores["stain_shed_automatically"]
        assert not rows["whonix-like"].scores["roles_unlinkable"]

    def test_baselines_win_what_they_should(self, manager):
        rows = {row.architecture: row for row in compare_architectures(manager)}
        assert rows["tails-like"].scores["stain_shed_automatically"]
        assert rows["whonix-like"].scores["exploit_contained"]
