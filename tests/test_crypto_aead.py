"""ChaCha20-Poly1305 AEAD and the password SealedBox."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ChaCha20Poly1305
from repro.crypto.aead import SealedBlob, SealedBox
from repro.errors import AuthenticationError, CryptoError
from repro.sim import SeededRng

SUNSCREEN = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)


class TestAeadRfcVector:
    def test_rfc8439_seal(self):
        """RFC 8439 section 2.8.2: ciphertext and tag."""
        key = bytes(range(0x80, 0xA0))
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        sealed = ChaCha20Poly1305(key).encrypt(nonce, SUNSCREEN, aad)
        ciphertext, tag = sealed[:-16], sealed[-16:]
        assert ciphertext[:16] == bytes.fromhex("d31a8d34648e60db7b86afbc53ef7ec2")
        assert tag == bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")

    def test_rfc8439_open(self):
        key = bytes(range(0x80, 0xA0))
        nonce = bytes.fromhex("070000004041424344454647")
        aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
        aead = ChaCha20Poly1305(key)
        sealed = aead.encrypt(nonce, SUNSCREEN, aad)
        assert aead.decrypt(nonce, sealed, aad) == SUNSCREEN


class TestAeadBehaviour:
    KEY = b"\x11" * 32
    NONCE = b"\x22" * 12

    def test_tampered_ciphertext_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        sealed = bytearray(aead.encrypt(self.NONCE, b"secret nym state"))
        sealed[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            aead.decrypt(self.NONCE, bytes(sealed))

    def test_tampered_tag_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        sealed = bytearray(aead.encrypt(self.NONCE, b"secret"))
        sealed[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            aead.decrypt(self.NONCE, bytes(sealed))

    def test_wrong_aad_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        sealed = aead.encrypt(self.NONCE, b"secret", aad=b"nym-v1")
        with pytest.raises(AuthenticationError):
            aead.decrypt(self.NONCE, sealed, aad=b"nym-v2")

    def test_wrong_key_rejected(self):
        sealed = ChaCha20Poly1305(self.KEY).encrypt(self.NONCE, b"secret")
        with pytest.raises(AuthenticationError):
            ChaCha20Poly1305(b"\x12" * 32).decrypt(self.NONCE, sealed)

    def test_truncated_rejected(self):
        with pytest.raises(AuthenticationError):
            ChaCha20Poly1305(self.KEY).decrypt(self.NONCE, b"short")

    def test_bad_key_size(self):
        with pytest.raises(CryptoError):
            ChaCha20Poly1305(b"\x00" * 16)

    def test_bad_nonce_size(self):
        with pytest.raises(CryptoError):
            ChaCha20Poly1305(self.KEY).encrypt(b"\x00" * 8, b"x")

    @given(st.binary(max_size=500), st.binary(max_size=64))
    @settings(max_examples=30)
    def test_roundtrip_property(self, plaintext, aad):
        aead = ChaCha20Poly1305(self.KEY)
        assert aead.decrypt(self.NONCE, aead.encrypt(self.NONCE, plaintext, aad), aad) == plaintext


class TestSealedBox:
    def _box(self, password="hunter2"):
        return SealedBox(password, SeededRng(3))

    def test_roundtrip(self):
        box = self._box()
        blob = box.seal(b"compressed nym snapshot")
        assert box.open(blob) == b"compressed nym snapshot"

    def test_wrong_password_rejected(self):
        blob = self._box("right").seal(b"data")
        with pytest.raises(AuthenticationError):
            self._box("wrong").open(blob)

    def test_empty_password_rejected(self):
        with pytest.raises(CryptoError):
            SealedBox("", SeededRng(1))

    def test_blob_wire_roundtrip(self):
        blob = self._box().seal(b"x" * 100)
        parsed = SealedBlob.from_bytes(blob.to_bytes())
        assert parsed == blob

    def test_blob_rejects_garbage(self):
        with pytest.raises(CryptoError):
            SealedBlob.from_bytes(b"not a sealed blob")

    def test_distinct_salts_per_seal(self):
        box = self._box()
        assert box.seal(b"same").salt != box.seal(b"same").salt

    def test_ciphertext_hides_plaintext(self):
        blob = self._box().seal(b"SECRET-MARKER" * 10)
        assert b"SECRET-MARKER" not in blob.to_bytes()
