"""The per-layer-key stream cache must never change a single byte.

Layer keys are stable (sender key cache) and the AEAD nonce is fixed, so
`MIX_STREAM_CACHE` can serve each layer's ChaCha20 keystream and Poly1305
one-time key from memory.  These tests pin cold/warm/disabled builds and
peels against each other, the cached AEAD framing against the reference
`ChaCha20Poly1305`, and tampering detection through the cached path.
"""

import pytest

from repro.crypto.aead import ChaCha20Poly1305
from repro.errors import MixnetError
from repro.mixnet.packet import (
    _NONCE,
    MIX_STREAM_CACHE,
    _open,
    _seal,
    build_packet,
    build_reply_block,
    open_body,
    open_reply,
    peel_layer,
    set_stream_cache_enabled,
)
from repro.mixnet.topology import MixTopology
from repro.sim.rng import SeededRng


@pytest.fixture(autouse=True)
def fresh_cache():
    MIX_STREAM_CACHE.clear()
    yield
    set_stream_cache_enabled(True)
    MIX_STREAM_CACHE.clear()


def _path(seed=41):
    topology = MixTopology(SeededRng(seed), layers=3, nodes_per_layer=2)
    return topology, topology.sample_path(SeededRng(seed + 1))


class TestSealOpenFraming:
    KEY = bytes(range(32))

    @pytest.mark.parametrize("size", [0, 1, 15, 16, 17, 300, 1100])
    def test_seal_matches_reference_aead(self, size):
        plaintext = bytes((i * 13 + 5) & 0xFF for i in range(size))
        aad = b"associated-data"
        reference = ChaCha20Poly1305(self.KEY).encrypt(_NONCE, plaintext, aad)
        assert _seal(self.KEY, plaintext, aad) == reference  # cold
        assert _seal(self.KEY, plaintext, aad) == reference  # warm
        set_stream_cache_enabled(False)
        assert _seal(self.KEY, plaintext, aad) == reference  # disabled
        set_stream_cache_enabled(True)

    def test_open_round_trips_and_rejects_tampering(self):
        plaintext = b"the quick brown fox" * 20
        sealed = _seal(self.KEY, plaintext, b"aad")
        assert _open(self.KEY, sealed, b"aad") == plaintext
        from repro.errors import AuthenticationError

        tampered = sealed[:-1] + bytes([sealed[-1] ^ 1])
        with pytest.raises(AuthenticationError):
            _open(self.KEY, tampered, b"aad")
        with pytest.raises(AuthenticationError):
            _open(self.KEY, sealed, b"wrong-aad")

    def test_entry_regrows_for_longer_messages(self):
        short = _seal(self.KEY, b"x" * 32, b"")
        longer_plain = b"y" * 4096
        reference = ChaCha20Poly1305(self.KEY).encrypt(_NONCE, longer_plain, b"")
        assert _seal(self.KEY, longer_plain, b"") == reference
        assert _open(self.KEY, short, b"") == b"x" * 32


class TestPacketIdentity:
    def test_cold_warm_disabled_packets_identical(self):
        topology, path = _path()
        payload = b"hello mixnet" * 40

        def pump(seed):
            rng = SeededRng(seed)
            packet = build_packet(rng, path, payload)
            wire = packet
            # Peel directly (node.process would flag the same-seed packet
            # as a replay — the tags are identical by construction).
            for node in path:
                _next, wire, _tag = peel_layer(node.private_key, wire)
            return packet, open_body(wire)

        MIX_STREAM_CACHE.clear()
        cold_packet, cold_out = pump(7)
        warm_packet, warm_out = pump(7)
        set_stream_cache_enabled(False)
        off_packet, off_out = pump(7)
        assert cold_packet == warm_packet == off_packet
        assert cold_out == warm_out == off_out == payload

    def test_reply_block_identity_and_round_trip(self):
        topology, path = _path(seed=90)

        def build(seed):
            return build_reply_block(SeededRng(seed), path)

        MIX_STREAM_CACHE.clear()
        cold = build(3)
        warm = build(3)
        set_stream_cache_enabled(False)
        off = build(3)
        assert cold.header == warm.header == off.header
        assert cold.payload_keys == warm.payload_keys == off.payload_keys
        set_stream_cache_enabled(True)

        # Round-trip a reply through the nodes, then unwrap client-side.
        from repro.mixnet.packet import encode_body, peel_reply_layer

        body = encode_body(b"reply payload", b"\x07" * 8)
        header = cold.header
        by_name = {node.name: node for node in path}
        hop = cold.first_hop
        while hop is not None:
            node = by_name[hop]
            hop, header, body, _tag = peel_reply_layer(
                node.private_key, header, body
            )
        assert open_reply(cold, body) == b"reply payload"
        with pytest.raises(MixnetError):
            open_reply(cold, body)  # single-use

    def test_peel_rejects_corrupted_packet_via_cache(self):
        _, path = _path(seed=55)
        packet = build_packet(SeededRng(8), path, b"payload")
        corrupted = packet[:40] + bytes([packet[40] ^ 0xFF]) + packet[41:]
        with pytest.raises(MixnetError):
            peel_layer(path[0].private_key, corrupted)
