"""Tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SeededRng
from repro.sim.rng import (
    _NUMPY_CONTENT_MIN_BYTES,
    numpy_content_enabled,
    set_numpy_content_enabled,
)


class TestSeededRng:
    def test_deterministic_for_seed(self):
        assert SeededRng(5).random() == SeededRng(5).random()

    def test_different_seeds_differ(self):
        assert SeededRng(5).token_bytes(16) != SeededRng(6).token_bytes(16)

    def test_fork_independent_of_parent_consumption(self):
        parent_a = SeededRng(5)
        parent_b = SeededRng(5)
        parent_b.random()  # consume from one parent only
        assert parent_a.fork("x").token_bytes(8) == parent_b.fork("x").token_bytes(8)

    def test_fork_labels_differ(self):
        parent = SeededRng(5)
        assert parent.fork("a").token_bytes(8) != parent.fork("b").token_bytes(8)

    def test_token_bytes_length(self):
        assert len(SeededRng(1).token_bytes(33)) == 33

    def test_token_bytes_zero(self):
        assert SeededRng(1).token_bytes(0) == b""

    def test_content_bytes_incompressible(self):
        import zlib

        data = SeededRng(1).content_bytes(100_000)
        assert len(zlib.compress(data)) > 90_000

    def test_jitter_bounds(self):
        rng = SeededRng(1)
        for _ in range(100):
            value = rng.jitter(10.0, 0.05)
            assert 9.5 <= value <= 10.5

    def test_jitter_rejects_negative_base(self):
        with pytest.raises(ValueError):
            SeededRng(1).jitter(-1.0)

    def test_positive_gauss_floor(self):
        rng = SeededRng(1)
        for _ in range(200):
            assert rng.positive_gauss(0.0, 10.0, floor=0.5) >= 0.5

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1, max_value=64))
    def test_token_bytes_always_right_length(self, seed, n):
        assert len(SeededRng(seed).token_bytes(n)) == n

    def test_sample_returns_distinct(self):
        rng = SeededRng(2)
        picked = rng.sample(list(range(100)), 10)
        assert len(set(picked)) == 10


@pytest.fixture
def pure_python_content():
    """Force content_bytes onto the pure-python path for the test body."""
    was = numpy_content_enabled()
    set_numpy_content_enabled(False)
    try:
        yield
    finally:
        set_numpy_content_enabled(was)


@pytest.mark.skipif(
    not numpy_content_enabled(), reason="numpy unavailable or disabled"
)
class TestNumpyContentPath:
    """The vectorized content_bytes path must be invisible in the bytes.

    ``_numpy_randbytes`` mirrors the CPython MT19937 state into numpy,
    draws raw words vectorized, and mirrors the advanced state back —
    so for any size the bytes AND the stream position must match the
    pure-python ``randbytes`` exactly.  Anything less would make journal
    bytes depend on whether numpy is installed.
    """

    SIZES = [
        _NUMPY_CONTENT_MIN_BYTES,        # threshold: first numpy-routed size
        _NUMPY_CONTENT_MIN_BYTES + 1,    # odd tail byte within a word
        12_345,                          # non-word-aligned
        734_003,                         # the browser-cache chunk size
        (1 << 20) + 7,                   # past the persistent buffer
    ]

    @pytest.mark.parametrize("n", SIZES)
    def test_bytes_match_pure_python(self, n):
        fast, slow = SeededRng(11), SeededRng(11)
        set_numpy_content_enabled(False)
        try:
            expected = slow.content_bytes(n)
        finally:
            set_numpy_content_enabled(True)
        assert fast.content_bytes(n) == expected

    @pytest.mark.parametrize("n", SIZES)
    def test_stream_position_matches_pure_python(self, n):
        # The draw after a numpy-routed draw must continue exactly where
        # the pure-python stream would be: same 624-word state, same pos.
        fast, slow = SeededRng(13), SeededRng(13)
        set_numpy_content_enabled(False)
        try:
            slow.content_bytes(n)
            tail = slow.token_bytes(32), slow.random()
        finally:
            set_numpy_content_enabled(True)
        fast.content_bytes(n)
        assert (fast.token_bytes(32), fast.random()) == tail

    def test_small_draws_stay_on_python_path_and_agree(self):
        n = _NUMPY_CONTENT_MIN_BYTES - 1
        assert SeededRng(17).content_bytes(n) == SeededRng(17)._random.randbytes(n)

    def test_toggle_round_trips(self, pure_python_content):
        assert not numpy_content_enabled()
        set_numpy_content_enabled(True)
        assert numpy_content_enabled()
        set_numpy_content_enabled(False)
        assert not numpy_content_enabled()

    def test_perfbench_frozen_seed_mode_restores_the_flag(self):
        from repro.perfbench.legacy import seed_content_mode

        assert numpy_content_enabled()
        with seed_content_mode():
            assert not numpy_content_enabled()
        assert numpy_content_enabled()
