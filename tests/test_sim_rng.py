"""Tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SeededRng


class TestSeededRng:
    def test_deterministic_for_seed(self):
        assert SeededRng(5).random() == SeededRng(5).random()

    def test_different_seeds_differ(self):
        assert SeededRng(5).token_bytes(16) != SeededRng(6).token_bytes(16)

    def test_fork_independent_of_parent_consumption(self):
        parent_a = SeededRng(5)
        parent_b = SeededRng(5)
        parent_b.random()  # consume from one parent only
        assert parent_a.fork("x").token_bytes(8) == parent_b.fork("x").token_bytes(8)

    def test_fork_labels_differ(self):
        parent = SeededRng(5)
        assert parent.fork("a").token_bytes(8) != parent.fork("b").token_bytes(8)

    def test_token_bytes_length(self):
        assert len(SeededRng(1).token_bytes(33)) == 33

    def test_token_bytes_zero(self):
        assert SeededRng(1).token_bytes(0) == b""

    def test_content_bytes_incompressible(self):
        import zlib

        data = SeededRng(1).content_bytes(100_000)
        assert len(zlib.compress(data)) > 90_000

    def test_jitter_bounds(self):
        rng = SeededRng(1)
        for _ in range(100):
            value = rng.jitter(10.0, 0.05)
            assert 9.5 <= value <= 10.5

    def test_jitter_rejects_negative_base(self):
        with pytest.raises(ValueError):
            SeededRng(1).jitter(-1.0)

    def test_positive_gauss_floor(self):
        rng = SeededRng(1)
        for _ in range(200):
            assert rng.positive_gauss(0.0, 10.0, floor=0.5) >= 0.5

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1, max_value=64))
    def test_token_bytes_always_right_length(self, seed, n):
        assert len(SeededRng(seed).token_bytes(n)) == n

    def test_sample_returns_distinct(self):
        rng = SeededRng(2)
        picked = rng.sample(list(range(100)), 10)
        assert len(set(picked)) == 10
