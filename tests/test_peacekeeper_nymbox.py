"""Peacekeeper inside actual nymboxes, including the §5.2 OOM behaviour."""

import pytest

from repro.vmm.vm import VmSpec
from repro.workloads.peacekeeper import REQUIRED_VM_RAM, run_in_nymbox

MIB = 1024 * 1024


class TestNymboxRuns:
    def test_default_anonvm_crashes_chromium(self, manager):
        """§5.2: the suite OOMs Chrome in a default-sized AnonVM."""
        nymbox = manager.create_nym(name="small")
        result = run_in_nymbox(nymbox, manager.hypervisor.cpu)
        assert result.crashed
        assert "OOM" in result.reason

    def test_one_gib_anonvm_completes(self, manager):
        nymbox = manager.create_nym(
            name="big", anon_spec=VmSpec.anonvm(ram_bytes=REQUIRED_VM_RAM)
        )
        result = run_in_nymbox(nymbox, manager.hypervisor.cpu)
        assert not result.crashed
        assert result.score == pytest.approx(4000.0, rel=0.01)

    def test_run_advances_time(self, manager):
        nymbox = manager.create_nym(
            name="big", anon_spec=VmSpec.anonvm(ram_bytes=REQUIRED_VM_RAM)
        )
        before = manager.timeline.now
        run_in_nymbox(nymbox, manager.hypervisor.cpu)
        assert manager.timeline.now > before

    def test_run_dirties_guest_memory(self, manager):
        nymbox = manager.create_nym(
            name="big", anon_spec=VmSpec.anonvm(ram_bytes=REQUIRED_VM_RAM)
        )
        before = nymbox.anonvm.memory.stats().unique_pages
        run_in_nymbox(nymbox, manager.hypervisor.cpu)
        assert nymbox.anonvm.memory.stats().unique_pages > before

    def test_contended_run_scores_lower(self, manager):
        nymbox = manager.create_nym(
            name="big", anon_spec=VmSpec.anonvm(ram_bytes=REQUIRED_VM_RAM)
        )
        solo = run_in_nymbox(nymbox, manager.hypervisor.cpu, concurrent_nyms=1)
        nymbox2 = manager.create_nym(
            name="big2", anon_spec=VmSpec.anonvm(ram_bytes=REQUIRED_VM_RAM)
        )
        contended = run_in_nymbox(nymbox2, manager.hypervisor.cpu, concurrent_nyms=8)
        assert contended.score < solo.score
