"""Table 1: time and memory costs of using Windows as a nym (§5.5, §3.7)."""

from _harness import MIB, fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig

PAPER_TABLE1 = {
    "Windows Vista": {"repair_s": 133.7, "boot_s": 37.7, "size_mb": 4.9},
    "Windows 7": {"repair_s": 129.3, "boot_s": 34.3, "size_mb": 4.5},
    "Windows 8": {"repair_s": 157.0, "boot_s": 58.7, "size_mb": 14.0},
}


def run_table1(seed: int = 9):
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    rows = []
    for os_name in PAPER_TABLE1:
        report, _, _ = manager.boot_installed_os_nym(os_name)
        rows.append(
            {
                "os": os_name,
                "repair_s": report.repair_seconds,
                "boot_s": report.boot_seconds,
                "size_mb": report.cow_bytes / MIB,
                "disk_modified": report.physical_disk_modified,
            }
        )
    return rows


def test_table1_installed_os_nyms(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print_table(
        "Table 1: installed-OS nyms (measured vs paper)",
        ["OS", "Repair (s)", "Boot (s)", "Size (MB)", "paper repair/boot/size"],
        [
            (
                r["os"], fmt(r["repair_s"]), fmt(r["boot_s"]), fmt(r["size_mb"]),
                "{repair_s}/{boot_s}/{size_mb}".format(**PAPER_TABLE1[r["os"]]),
            )
            for r in rows
        ],
    )
    save_results("table1_installed_os", {"rows": rows})

    for row in rows:
        paper = PAPER_TABLE1[row["os"]]
        assert abs(row["repair_s"] - paper["repair_s"]) / paper["repair_s"] < 0.10
        assert abs(row["boot_s"] - paper["boot_s"]) / paper["boot_s"] < 0.10
        assert abs(row["size_mb"] - paper["size_mb"]) / paper["size_mb"] < 0.25
        assert not row["disk_modified"]
