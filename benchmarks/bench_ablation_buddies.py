"""Ablation: long-term intersection attacks with and without Buddies (§7).

The paper plans to integrate Buddies [77] so users see anonymity metrics
and are stopped before a post collapses their buddy set.  This bench runs
the statistical-disclosure adversary against (a) a long-lived pseudonym
with no safeguard, (b) the same pseudonym behind a Buddies BLOCK policy,
and (c) ephemeral unlinkable nyms.
"""

from _harness import print_table, save_results
from repro.anonymizers.buddies import BuddiesMonitor, PostingPolicy
from repro.attacks import IntersectionAttack
from repro.sim import SeededRng


def run_ablation(population: int = 64, epochs: int = 60, threshold: int = 8, seed: int = 31):
    rng = SeededRng(seed)
    users = {f"user{i:03d}" for i in range(population)}

    unguarded = BuddiesMonitor(users, threshold=1)
    guarded = BuddiesMonitor(users, threshold=threshold, policy=PostingPolicy.BLOCK)
    posts = {"unguarded": 0, "guarded": 0}
    blocked = 0
    for _ in range(epochs):
        online = {u for u in users if rng.random() < 0.5} | {"user000"}
        if unguarded.attempt_post("nym", online).allowed:
            posts["unguarded"] += 1
        decision = guarded.attempt_post("nym", online)
        if decision.allowed:
            posts["guarded"] += 1
        else:
            blocked += 1

    classic = IntersectionAttack(
        population=population, online_probability=0.5, rng=rng.fork("classic")
    )
    return {
        "population": population,
        "epochs": epochs,
        "unguarded_buddy_set": unguarded.buddy_set_size("nym"),
        "guarded_buddy_set": guarded.buddy_set_size("nym"),
        "guarded_posts": posts["guarded"],
        "guarded_blocked": blocked,
        "classic_epochs_to_deanonymize": classic.epochs_to_deanonymize(),
        "ephemeral_epochs_to_deanonymize": classic.epochs_with_unlinkable_nyms(),
    }


def test_ablation_buddies(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: intersection-attack exposure (population 64, p_online 0.5)",
        ["strategy", "final candidate set", "notes"],
        [
            ("long-lived pseudonym, no safeguard",
             result["unguarded_buddy_set"],
             f"deanonymized in ~{result['classic_epochs_to_deanonymize']} epochs"),
            ("long-lived pseudonym + Buddies(BLOCK)",
             result["guarded_buddy_set"],
             f"{result['guarded_posts']} posts allowed, {result['guarded_blocked']} blocked"),
            ("ephemeral unlinkable nyms",
             result["population"],
             "attack never converges (no linkable stream)"),
        ],
    )
    save_results("ablation_buddies", result)

    assert result["unguarded_buddy_set"] <= 2
    assert result["guarded_buddy_set"] >= 8
    assert result["classic_epochs_to_deanonymize"] is not None
    assert result["ephemeral_epochs_to_deanonymize"] is None
    assert result["guarded_blocked"] > 0
