"""Figure 3: RAM usage and KSM shared pages vs number of pseudonyms.

Reproduces §5.2's memory experiment: launch eight nyms in succession
(Gmail, Twitter, Youtube, Tor Blog, BBC, Facebook, Slashdot, ESPN),
measuring used memory and KSM shared pages before and after interacting
with each nym's site, against the expected-cost-per-nymbox dashed line.
"""

import pytest

from _harness import MIB, ascii_chart, fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.vmm.vm import VmSpec
from repro.workloads.browsing import run_memory_experiment_step


def run_figure3(nyms: int = 8, seed: int = 3):
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    expected_per_nymbox = manager.hypervisor.expected_bytes_per_nymbox(
        VmSpec.anonvm(), VmSpec.commvm()
    )
    baseline = manager.hypervisor.memory_snapshot().used_bytes
    rows = []
    for index in range(nyms):
        step = run_memory_experiment_step(manager, index)
        rows.append(
            {
                "nyms": index + 1,
                "site": step.hostname,
                "used_before_mb": (step.before.used_bytes - baseline) / MIB,
                "used_after_mb": (step.after.used_bytes - baseline) / MIB,
                "shared_pages_before": step.before.ksm_pages_sharing,
                "shared_pages_after": step.after.ksm_pages_sharing,
                "expected_mb": (index + 1) * expected_per_nymbox / MIB,
            }
        )
    return rows


def test_fig3_memory_and_ksm(benchmark):
    rows = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    print_table(
        "Figure 3: RAM usage and shared pages vs number of nyms",
        ["nyms", "site", "used before (MB)", "used after (MB)",
         "shared before (pages)", "shared after (pages)", "expected (MB)"],
        [
            (
                r["nyms"], r["site"], fmt(r["used_before_mb"]), fmt(r["used_after_mb"]),
                r["shared_pages_before"], r["shared_pages_after"], fmt(r["expected_mb"]),
            )
            for r in rows
        ],
    )
    ascii_chart(
        "Figure 3 (rendered)",
        {
            "used after": [(r["nyms"], r["used_after_mb"]) for r in rows],
            "expected": [(r["nyms"], r["expected_mb"]) for r in rows],
        },
        x_label="nyms",
        y_label="MB",
    )
    save_results("fig3_memory", {"rows": rows})

    # Shape assertions (the paper's claims):
    used = [r["used_after_mb"] for r in rows]
    assert all(b > a for a, b in zip(used, used[1:])), "memory must grow per nym"
    # Roughly the expected line: ~600 MB/nymbox.
    slope = (used[-1] - used[0]) / (len(used) - 1)
    assert 450 <= slope <= 750, f"per-nym cost {slope} MB outside expected band"
    # KSM savings reach ~5% of guest memory at 8 nyms.
    last = rows[-1]
    saving_mb = (last["shared_pages_after"] * 4096 / MIB) * (
        1 - 1 / max(1, len(rows))
    )
    assert saving_mb > 0.03 * last["used_after_mb"], "KSM savings should be >3%"
    assert last["shared_pages_after"] > rows[0]["shared_pages_after"]
