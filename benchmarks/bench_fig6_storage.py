"""Figure 6: sizes of quasi-persistent pseudonym data across save/restore cycles.

Reproduces §5.3: four persistent nyms (Gmail, Facebook, Twitter, Tor Blog)
are saved to cloud storage, restored, browsed (triggering fresh site
updates), and re-saved, for ten cycles; the encrypted archive size is
recorded at each upload.
"""

from _harness import MIB, ascii_chart, fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.guest.websites import FIGURE6_SITES


def run_figure6(cycles: int = 10, seed: int = 6):
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    manager.create_cloud_account("dropbox.com", "fig6", "pw")
    series = {}
    for host in FIGURE6_SITES:
        name = f"fig6-{host.split('.')[0]}"
        sizes = []
        nymbox = manager.create_nym(name)
        manager.timed_browse(nymbox, host)
        nymbox.sign_in(host, f"user-{name}", "pw")
        receipt = manager.store_nym(
            nymbox, "nym-pw", provider_host="dropbox.com",
            account_username="fig6", blob_name=f"{name}.bin",
        )
        sizes.append(receipt.encrypted_bytes)
        manager.discard_nym(nymbox)
        for _ in range(cycles - 1):
            nymbox = manager.load_nym(name, "nym-pw")
            manager.timed_browse(nymbox, host)  # fetch site updates
            receipt = manager.close_session(nymbox, password="nym-pw")
            sizes.append(receipt.encrypted_bytes)
        series[host] = sizes
    return series


def test_fig6_persistent_nym_growth(benchmark):
    series = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    cycles = len(next(iter(series.values())))
    print_table(
        "Figure 6: encrypted pseudonym size (MB) across save/restore cycles",
        ["cycle"] + [host.split(".")[0] for host in series],
        [
            tuple([cycle + 1] + [fmt(series[host][cycle] / MIB) for host in series])
            for cycle in range(cycles)
        ],
    )
    ascii_chart(
        "Figure 6 (rendered)",
        {
            host.split(".")[0]: [
                (cycle + 1, size / MIB) for cycle, size in enumerate(sizes)
            ]
            for host, sizes in series.items()
        },
        x_label="save/restore cycles",
        y_label="encrypted size, MB",
    )
    save_results("fig6_storage", {"series": series})

    # Growth is monotone (site updates accrete in the cache).
    for host, sizes in series.items():
        assert all(b >= a for a, b in zip(sizes, sizes[1:])), host
    # Figure 6 ordering: Facebook heaviest, the Tor Blog lightest.
    finals = {host: sizes[-1] for host, sizes in series.items()}
    assert finals["facebook.com"] == max(finals.values())
    assert finals["blog.torproject.org"] == min(finals.values())
    # Final sizes are tens of MB, bounded by the Chromium cache cap.
    assert finals["facebook.com"] < 83 * MIB
    assert finals["facebook.com"] > 20 * MIB
