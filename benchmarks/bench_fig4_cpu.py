"""Figure 4: parallel Peacekeeper scores in independent pseudonyms.

Reproduces §5.2's CPU experiment: the Peacekeeper JS benchmark run
natively (x = 0) and in 1..8 parallel nyms on a quad-core host, with the
"expected" curve derived from the single-nym run under perfect sharing.
"""

from _harness import ascii_chart, fmt, print_table, save_results
from repro.vmm import CpuModel
from repro.workloads import PeacekeeperBenchmark


def run_figure4(max_nyms: int = 8):
    bench = PeacekeeperBenchmark(CpuModel(cores=4))
    rows = []
    for result in bench.sweep(max_nyms=max_nyms):
        rows.append(
            {
                "nyms": result.nyms,
                "actual": result.mean_score,
                "expected": result.expected_score,
            }
        )
    return rows


def test_fig4_peacekeeper_scaling(benchmark):
    rows = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print_table(
        "Figure 4: average Peacekeeper score vs parallel nyms (0 = native)",
        ["nyms", "actual score", "expected score"],
        [(r["nyms"], fmt(r["actual"]), fmt(r["expected"])) for r in rows],
    )
    ascii_chart(
        "Figure 4 (rendered)",
        {
            "actual": [(r["nyms"], r["actual"]) for r in rows],
            "expected": [(r["nyms"], r["expected"]) for r in rows if r["nyms"] >= 1],
        },
        x_label="nyms (0 = native)",
        y_label="Peacekeeper score",
    )
    save_results("fig4_cpu", {"rows": rows})

    native = rows[0]["actual"]
    single = rows[1]["actual"]
    # ~20% virtualization overhead.
    overhead = native / single - 1.0
    assert 0.15 <= overhead <= 0.25, f"virtualization overhead {overhead:.2f}"
    # Flat through 4 nyms (quad core), degrading beyond.
    assert abs(rows[4]["actual"] - single) / single < 0.02
    assert rows[8]["actual"] < rows[4]["actual"]
    # Actual outperforms expected once contended.
    for row in rows[5:]:
        assert row["actual"] > row["expected"]
