"""Ablation: KSM on vs off on the Figure 3 workload.

The paper enables kernel samepage merging because every nymbox boots from
the same base image (§4.2).  This ablation quantifies what that design
choice buys: the same 8-nym launch sequence with the scanner disabled.
"""

from _harness import MIB, fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.workloads.browsing import run_memory_experiment_step


def _run(nyms: int, ksm_enabled: bool, seed: int = 3):
    manager = NymManager(NymixConfig(seed=seed, ksm_enabled=ksm_enabled))
    manager.add_cloud_provider(make_dropbox())
    baseline = manager.hypervisor.memory_snapshot().used_bytes
    used = []
    for index in range(nyms):
        step = run_memory_experiment_step(manager, index)
        used.append((step.after.used_bytes - baseline) / MIB)
    return used


def run_ablation(nyms: int = 8):
    return {"ksm_on": _run(nyms, True), "ksm_off": _run(nyms, False)}


def test_ablation_ksm(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    on, off = result["ksm_on"], result["ksm_off"]
    print_table(
        "Ablation: used memory (MB) with and without KSM",
        ["nyms", "KSM on", "KSM off", "saved"],
        [
            (i + 1, fmt(a), fmt(b), fmt(b - a))
            for i, (a, b) in enumerate(zip(on, off))
        ],
    )
    save_results("ablation_ksm", result)

    # KSM never costs memory and saves more as nyms accumulate.
    savings = [b - a for a, b in zip(on, off)]
    assert all(s >= 0 for s in savings)
    assert savings[-1] > savings[0]
    # At 8 nyms the savings are a few percent of total use (§5.2: >5%).
    assert savings[-1] / off[-1] > 0.03
