"""Ablation: the pluggable-anonymizer trade-off space (§3.3).

One fixed page fetch and one bulk download through each transport —
incognito, Tor, Dissent, SWEET, and the Tor+Dissent composition — showing
the security/performance spectrum the paper describes.
"""

from _harness import fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig

TRANSPORTS = ("incognito", "tor", "dissent", "sweet", "tor+dissent")

PAGE_HOST = "bbc.co.uk"


def run_ablation(seed: int = 15):
    rows = []
    for kind in TRANSPORTS:
        manager = NymManager(NymixConfig(seed=seed))
        manager.add_cloud_provider(make_dropbox())
        nymbox = manager.create_nym(f"abl-{kind.replace('+', '-')}", anonymizer=kind)
        load = manager.timed_browse(nymbox, PAGE_HOST)
        plan = nymbox.anonymizer.plan(0)
        rows.append(
            {
                "transport": kind,
                "startup_s": nymbox.startup.start_anonymizer_s,
                "page_load_s": load.duration_s,
                "overhead_factor": plan.overhead_factor,
                "protects_identity": nymbox.anonymizer.protects_network_identity,
                "throughput_cap_mbps": (
                    plan.per_flow_ceiling_bps / 1e6
                    if plan.per_flow_ceiling_bps != float("inf")
                    else None
                ),
            }
        )
    return rows


def test_ablation_anonymizer_choice(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: anonymizer trade-offs (one page fetch of bbc.co.uk)",
        ["transport", "startup (s)", "page load (s)", "wire overhead",
         "hides identity", "throughput cap (Mbit/s)"],
        [
            (
                r["transport"], fmt(r["startup_s"]), fmt(r["page_load_s"], 2),
                fmt(r["overhead_factor"], 3), r["protects_identity"],
                fmt(r["throughput_cap_mbps"], 2) if r["throughput_cap_mbps"] else "-",
            )
            for r in rows
        ],
    )
    save_results("ablation_anonymizers", {"rows": rows})

    by_kind = {r["transport"]: r for r in rows}
    # The §3.3 spectrum: incognito fastest but unprotected; Tor protected
    # and moderate; Dissent slower than Tor; SWEET slowest; the composition
    # costs at least its most expensive stage.
    assert not by_kind["incognito"]["protects_identity"]
    assert all(by_kind[k]["protects_identity"] for k in ("tor", "dissent", "sweet", "tor+dissent"))
    assert by_kind["incognito"]["page_load_s"] < by_kind["tor"]["page_load_s"]
    assert by_kind["tor"]["page_load_s"] < by_kind["dissent"]["page_load_s"]
    assert by_kind["dissent"]["page_load_s"] < by_kind["sweet"]["page_load_s"]
    assert (
        by_kind["tor+dissent"]["overhead_factor"]
        > max(by_kind["tor"]["overhead_factor"], by_kind["dissent"]["overhead_factor"])
    )
    assert by_kind["incognito"]["startup_s"] < by_kind["tor"]["startup_s"]
