"""§5.1 validation as a benchmark: the leak scan and isolation matrix.

Reproduces the paper's validation methodology: many simultaneous
pseudonyms, an idle-traffic capture at the host's vantage point, and the
all-pairs cross-VM probe.
"""

from _harness import print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.core.validation import validate_system


def run_validation(nyms: int = 6, seed: int = 12):
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    for index in range(nyms):
        nymbox = manager.create_nym(f"val{index}")
        manager.timed_browse(nymbox, "bbc.co.uk")
    result = validate_system(manager, idle_seconds=60.0)
    return {
        "nyms": nyms,
        "passed": result.passed,
        "uplink_entries": result.leak_report.total_entries,
        "leaks": len(result.leak_report.leaks),
        "allowed_pairs": len(result.isolation.allowed_pairs),
        "violations": len(result.isolation.violations),
        "anonvm_uplink_traffic": result.anonvm_emitted_uplink_traffic,
        "dns_leaks": result.dns_leaks,
    }


def test_validation_leaks_and_isolation(benchmark):
    summary = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    print_table(
        "Section 5.1 validation: idle-traffic scan + isolation probe",
        list(summary.keys()),
        [tuple(summary.values())],
    )
    save_results("validation", summary)

    assert summary["passed"]
    assert summary["leaks"] == 0
    assert summary["violations"] == 0
    assert not summary["anonvm_uplink_traffic"]
    assert summary["dns_leaks"] == 0
    # Exactly one AnonVM<->CommVM pair per nym, both directions.
    assert summary["allowed_pairs"] == summary["nyms"] * 2
