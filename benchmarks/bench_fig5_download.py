"""Figure 5: time to download the Linux kernel with many parallel nyms.

Reproduces §5.2's bandwidth experiment: N nyms each fetch linux-3.14.2
(~76 MiB) from the DeterLab mirror over their own Tor instance, sharing a
10 Mbit/s, 80 ms-RTT uplink, against the no-anonymizer ideal.
"""

from _harness import ascii_chart, fmt, print_table, save_results
from repro.workloads import ParallelDownloadExperiment


def run_figure5(max_nyms: int = 8):
    experiment = ParallelDownloadExperiment()
    rows = []
    for result in experiment.sweep(max_nyms=max_nyms):
        rows.append(
            {
                "nyms": result.nyms,
                "actual_s": result.slowest_actual,
                "ideal_s": result.ideal_seconds,
                "overhead": result.overhead_fraction,
            }
        )
    return rows


def test_fig5_parallel_downloads(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print_table(
        "Figure 5: kernel download time vs parallel nyms",
        ["nyms", "actual (s)", "ideal (s)", "overhead"],
        [
            (r["nyms"], fmt(r["actual_s"]), fmt(r["ideal_s"]), f"{r['overhead'] * 100:.1f}%")
            for r in rows
        ],
    )
    ascii_chart(
        "Figure 5 (rendered)",
        {
            "actual": [(r["nyms"], r["actual_s"]) for r in rows],
            "ideal": [(r["nyms"], r["ideal_s"]) for r in rows],
        },
        x_label="nyms",
        y_label="download time, s",
    )
    save_results("fig5_download", {"rows": rows})

    # Fixed ~12% anonymizer overhead at every scale.
    for row in rows:
        assert 0.09 <= row["overhead"] <= 0.14, row
    # Linear scaling: per-nym time roughly constant.
    per_nym = [r["actual_s"] / r["nyms"] for r in rows]
    assert max(per_nym) / min(per_nym) < 1.05
    # Single download lands near the paper's axis (~70 s actual).
    assert 60 <= rows[0]["actual_s"] <= 80
