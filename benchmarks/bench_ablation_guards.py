"""Ablation: Tor entry-guard persistence vs per-session rotation (§3.5).

Quantifies the security argument for quasi-persistent nyms: with guards
re-drawn every session (what a pure amnesiac system forces), a relay-level
adversary compromises clients far sooner, and the deterministic-seeding
mitigation gives even the ephemeral download nym the nym's own guards.
"""

from _harness import fmt, print_table, save_results
from repro.anonymizers.tor.guard import GuardManager
from repro.anonymizers.tor.directory import DirectoryAuthority
from repro.attacks import GuardExposureModel
from repro.sim import SeededRng


def run_ablation(sessions=(5, 15, 30, 60), trials: int = 300):
    model = GuardExposureModel(
        SeededRng(21), total_guards=40, adversary_guards=4, guards_per_client=3
    )
    rows = []
    for count in sessions:
        rows.append(
            {
                "sessions": count,
                "rotate_rate": model.compromise_rate(count, True, trials=trials),
                "persist_rate": model.compromise_rate(count, False, trials=trials),
            }
        )

    # Deterministic seeding: same (location, password) -> same guards, for
    # any loader, including the one-shot ephemeral download nym.
    directory = DirectoryAuthority(SeededRng(22), relay_count=40)
    consensus = directory.consensus()
    main = GuardManager.deterministic("dropbox.com/alice.nymbox", "pw")
    loader = GuardManager.deterministic("dropbox.com/alice.nymbox", "pw")
    deterministic_match = (
        main.ensure_guards(consensus, 0.0) == loader.ensure_guards(consensus, 0.0)
    )
    return {"rows": rows, "deterministic_match": deterministic_match}


def test_ablation_guard_persistence(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = result["rows"]
    print_table(
        "Ablation: guard-compromise rate (10% malicious guard capacity)",
        ["sessions", "rotate each session", "persistent guards"],
        [
            (r["sessions"], fmt(r["rotate_rate"], 2), fmt(r["persist_rate"], 2))
            for r in rows
        ],
    )
    save_results("ablation_guards", result)

    # Rotation is strictly worse at every horizon, and the gap widens.
    for row in rows:
        assert row["rotate_rate"] >= row["persist_rate"]
    gaps = [r["rotate_rate"] - r["persist_rate"] for r in rows]
    assert gaps[-1] > gaps[0]
    assert rows[-1]["rotate_rate"] > 0.8  # rotation is near-certain doom
    assert rows[-1]["persist_rate"] < 0.5
    # The §3.5 deterministic-seeding mitigation works.
    assert result["deterministic_match"]
