"""Architecture comparison: Tails-like vs Whonix-like vs Nymix (§6).

Makes the paper's related-work comparison executable: identical
adversarial exercises against all three architectures, one row each.
"""

from _harness import print_table, save_results
from repro.baselines import compare_architectures
from repro.baselines.comparison import EXERCISES
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig


def run_comparison(seed: int = 19):
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    return compare_architectures(manager, seed=seed)


def test_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "Architecture comparison (True = user protected)",
        ["exercise"] + [row.architecture for row in rows],
        [
            tuple([exercise] + [row.scores[exercise] for row in rows])
            for exercise in EXERCISES
        ],
    )
    save_results(
        "baseline_comparison",
        {row.architecture: row.scores for row in rows},
    )

    by_name = {row.architecture: row for row in rows}
    # The §6 narrative, asserted:
    assert all(by_name["nymix"].scores.values())
    assert not by_name["tails-like"].scores["exploit_contained"]
    assert not by_name["whonix-like"].scores["stain_shed_automatically"]
    assert not by_name["whonix-like"].scores["roles_unlinkable"]
    assert by_name["nymix"].protected_count == len(EXERCISES)
