"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures, prints the
same rows/series the paper reports, and saves them under
``benchmarks/results/`` for later inspection.  Absolute numbers come from
the simulated substrate, so the *shapes* (orderings, slopes, crossovers)
are the claims under test, not the raw values.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MIB = 1024 * 1024


def save_results(name: str, payload: Dict, metrics: Optional[Dict] = None) -> pathlib.Path:
    """Write one bench's payload (plus an optional metrics snapshot) to JSON.

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict; embedding
    it alongside the figures ties every saved result to the substrate
    counters (KSM merges, uplink bytes, circuit builds) that produced it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if metrics is not None:
        payload = dict(payload, metrics=metrics)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def print_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Render one experiment's output the way the paper's table/figure reads."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def fmt(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}"


def ascii_chart(
    title: str,
    series: Dict[str, List],
    width: int = 64,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> None:
    """Plot named series of (x, y) points as an ASCII chart.

    A low-fi stand-in for the paper's gnuplot figures: enough to eyeball
    slopes, orderings, and crossovers straight from the bench output.
    """
    points = [(x, y) for data in series.values() for x, y in data]
    if not points:
        return
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (name, data) in enumerate(series.items()):
        mark = markers[index % len(markers)]
        for x, y in data:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = mark

    print(f"\n--- {title} ---")
    if y_label:
        print(f"({y_label})")
    print(f"{y_max:>10.1f} |" + "".join(grid[0]))
    for row in grid[1:-1]:
        print(" " * 10 + " |" + "".join(row))
    print(f"{y_min:>10.1f} |" + "".join(grid[-1]))
    print(" " * 12 + "-" * width)
    left = f"{x_min:g}"
    right = f"{x_max:g}"
    pad = max(1, width - len(left) - len(right))
    print(" " * 12 + left + " " * pad + right + (f"  ({x_label})" if x_label else ""))
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    print(" " * 12 + legend)
