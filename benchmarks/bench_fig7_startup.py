"""Figure 7: average startup time by phase for each initial configuration.

Reproduces §5.4: a nym visits Twitter under the three usage models —
fresh (ephemeral), pre-configured, and persisted — timing the Boot VM,
Start Tor, Load webpage, and (for quasi-persistent nyms) Ephemeral Nym
phases, averaged over five executions each.
"""

from _harness import fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig


def _average(phase_dicts):
    keys = phase_dicts[0].keys()
    return {k: sum(d[k] for d in phase_dicts) / len(phase_dicts) for k in keys}


def run_figure7(runs: int = 5, seed: int = 7):
    """Returns (results, metrics): phase averages plus the last run's
    substrate metrics snapshot (boot/circuit/uplink counters)."""
    results = {}

    fresh_phases = []
    for run in range(runs):
        manager = NymManager(NymixConfig(seed=seed + run))
        manager.add_cloud_provider(make_dropbox())
        nymbox = manager.create_nym("fresh")
        manager.timed_browse(nymbox, "twitter.com")
        fresh_phases.append(nymbox.startup.as_dict())
    results["Fresh"] = _average(fresh_phases)

    preconfig_phases = []
    persisted_phases = []
    for run in range(runs):
        manager = NymManager(NymixConfig(seed=seed + 100 + run))
        manager.add_cloud_provider(make_dropbox())
        manager.create_cloud_account("dropbox.com", "fig7", "pw")

        # Set up once: visit, sign in, snapshot (pre-configured).
        setup = manager.create_nym("twitter-nym")
        manager.timed_browse(setup, "twitter.com")
        setup.sign_in("twitter.com", "pseudo", "pw")
        manager.snapshot_nym(
            setup, "nym-pw", provider_host="dropbox.com", account_username="fig7"
        )
        manager.discard_nym(setup)

        # Pre-configured: start from the snapshot.
        nymbox = manager.load_nym("twitter-nym", "nym-pw")
        manager.timed_browse(nymbox, "twitter.com")
        preconfig_phases.append(nymbox.startup.as_dict())
        # Convert to persistent and run one more save/load cycle.
        from repro.core.nym import NymUsageModel

        nymbox.nym.usage_model = NymUsageModel.PERSISTENT
        manager.stored_nyms["twitter-nym"].usage_model = NymUsageModel.PERSISTENT
        manager.close_session(nymbox, password="nym-pw")
        nymbox = manager.load_nym("twitter-nym", "nym-pw")
        manager.timed_browse(nymbox, "twitter.com")
        persisted_phases.append(nymbox.startup.as_dict())
    results["Pre-config."] = _average(preconfig_phases)
    results["Persisted"] = _average(persisted_phases)
    return results, manager.obs.snapshot()


def test_fig7_startup_phases(benchmark):
    results, metrics = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    phases = ["Boot VM", "Start Tor", "Load webpage", "Ephemeral Nym"]
    print_table(
        "Figure 7: average startup time (s) by phase",
        ["configuration"] + phases + ["total"],
        [
            tuple(
                [config]
                + [fmt(values[p]) for p in phases]
                + [fmt(sum(values.values()))]
            )
            for config, values in results.items()
        ],
    )
    save_results("fig7_startup", {"results": results}, metrics=metrics)

    fresh, preconfig, persisted = (
        results["Fresh"], results["Pre-config."], results["Persisted"],
    )
    # Quasi-persistent nyms beat fresh nyms on Tor start (stored guards).
    assert preconfig["Start Tor"] < fresh["Start Tor"]
    assert persisted["Start Tor"] < fresh["Start Tor"]
    # Only quasi-persistent configurations pay the ephemeral download nym.
    assert fresh["Ephemeral Nym"] == 0.0
    assert preconfig["Ephemeral Nym"] > 10.0
    assert persisted["Ephemeral Nym"] > 10.0
    # Fresh nym totals match the paper's 15-25 s claim.
    assert 12.0 <= sum(fresh.values()) <= 27.0
