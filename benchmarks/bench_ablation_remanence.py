"""Ablation: host-side memory remanence, with and without Dunn scrubbing.

§3.4 concedes that traces of dead nyms persist in host RAM until reboot
and points at Dunn's ephemeral channels [18] as the (costly) fix.  This
bench measures what a live-confiscation adversary could image after a
day of nym churn, under both configurations.
"""

from _harness import MIB, fmt, print_table, save_results
from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.memory.remanence import AdversaryAccess


def _run(ephemeral_channels: bool, nym_churn: int = 6, seed: int = 27):
    manager = NymManager(
        NymixConfig(seed=seed, ephemeral_channels=ephemeral_channels)
    )
    manager.add_cloud_provider(make_dropbox())
    for index in range(nym_churn):
        nymbox = manager.create_nym(f"day-{index}")
        manager.timed_browse(nymbox, "bbc.co.uk")
        manager.discard_nym(nymbox)
    tracker = manager.remanence
    return {
        "live_recoverable_mb": tracker.recoverable_bytes(AdversaryAccess.LIVE) / MIB,
        "poweroff_recoverable_mb": tracker.recoverable_bytes(
            AdversaryAccess.AFTER_SHUTDOWN
        )
        / MIB,
        "by_kind": {k: v / MIB for k, v in tracker.summary().items()},
    }


def run_ablation():
    return {
        "baseline": _run(ephemeral_channels=False),
        "ephemeral_channels": _run(ephemeral_channels=True),
    }


def test_ablation_remanence(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: residual host traces after 6 discarded nyms (MB)",
        ["configuration", "live confiscation", "after power-off"],
        [
            (
                name,
                fmt(values["live_recoverable_mb"]),
                fmt(values["poweroff_recoverable_mb"]),
            )
            for name, values in result.items()
        ],
    )
    save_results("ablation_remanence", result)

    baseline = result["baseline"]
    scrubbed = result["ephemeral_channels"]
    # Live confiscation recovers something from the baseline host...
    assert baseline["live_recoverable_mb"] > 10
    # ...but Dunn-style scrubbing reduces it by >95%...
    assert scrubbed["live_recoverable_mb"] < baseline["live_recoverable_mb"] * 0.05
    # ...and a powered-off machine yields nothing either way (§3.4).
    assert baseline["poweroff_recoverable_mb"] == 0
    assert scrubbed["poweroff_recoverable_mb"] == 0
