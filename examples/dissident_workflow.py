#!/usr/bin/env python3
"""Bob the dissident (§2): pseudonymous posting under a hostile ISP.

Bob organizes protests from Tyrannistan via a pseudonymous Twitter
account.  This example runs his whole operational routine and then runs
the attacks the paper worries about, showing what each adversary learns.

Run:  python examples/dissident_workflow.py
"""

from repro import NymixConfig, NymixSession
from repro.attacks import AnonVmCompromise, EvercookieStain
from repro.cloud import make_google_drive
from repro.sanitize import ParanoiaLevel, SimImage, parse_file
from repro.unionfs.layer import Layer


def main() -> None:
    # The session facade wires Timeline/Internet/Hypervisor/NymManager
    # and guarantees amnesia on exit; cloud_providers=False because Bob
    # only trusts the one provider he picked.
    session = NymixSession(
        NymixConfig(seed=2, deterministic_guards=True), cloud_providers=False
    )
    with session as nx:
        run_bob(nx)
    print("\nBob survives another day.")


def run_bob(nx: NymixSession) -> None:
    manager = nx.manager
    nx.add_cloud_provider(make_google_drive())
    nx.create_cloud_account("drive.google.com", "rnd-20481", "cloud-pw")

    print("== Night 1: set up the pseudonymous Twitter nym ==")
    nym = manager.create_nym(name="bob-protest")
    manager.timed_browse(nym, "twitter.com")
    nym.sign_in("twitter.com", "tyrannistan_truth", "account-pw")
    print(f"  nym up in {nym.startup.total_s:.0f} s; "
          f"exit relay {nym.anonymizer.exit_address()}")

    print("\n== Post a protest photo, safely ==")
    photo = SimImage.camera_photo(
        gps=(39.906, 116.397),       # Tyrannimen Square
        camera_serial="PHONE-SN-7731",
        faces=3,                      # fellow protesters
        watermark_id="sensor-wm",
    )
    manager.mount_host_filesystem(
        "installed-os",
        Layer("installed", files={"/home/bob/protest.jpg": photo.to_bytes()},
              read_only=True),
    )
    record = manager.transfer_file_to_nym(
        "installed-os", "/home/bob/protest.jpg", nym, ParanoiaLevel.HIGH
    )
    print(f"  SaniVM found: {', '.join(record.report.kinds())}")
    print(f"  after HIGH-paranoia scrub: "
          f"{record.residual_report.kinds() or 'nothing identifying left'}")
    delivered = parse_file(nym.inbox.read("/protest.jpg"))
    print(f"  delivered photo: exif={delivered.exif}, "
          f"unblurred faces={delivered.unblurred_faces}, "
          f"watermark readable={delivered.watermark_detectable}")

    print("\n== Store to the cloud, shut down before dawn ==")
    manager.store_nym(nym, password="nym-pw", provider_host="drive.google.com",
                      account_username="rnd-20481")
    manager.discard_nym(nym)
    print(f"  live nyms: {manager.live_nyms()}; "
          f"local blobs: {len(manager._local_blobs)} (deniability)")

    print("\n== The police try everything ==")
    provider = manager.providers["drive.google.com"]
    seen = {str(ip) for ip in provider.observed_ips_for("rnd-20481")}
    print(f"  subpoena the cloud provider -> it saw only: {sorted(seen)}")
    print(f"  (Bob's real address {manager.hypervisor.public_ip} never appears)")

    nym = manager.load_nym("bob-protest", "nym-pw")
    findings = AnonVmCompromise(nym).run()
    print(f"  0-day in the browser -> exploit sees IP {findings.observed_ips}, "
          f"MAC {findings.observed_macs}")
    print(f"  exploit phones home via {findings.exfiltration_paths[0]}")
    unmasked = findings.knows_real_network_identity(manager.hypervisor.public_ip)
    print(f"  Bob unmasked? {unmasked}")

    stain = EvercookieStain("gchq-stain-1")
    stain.plant(nym)
    print(f"  MULLENIZE-style stain planted ({len(stain.surviving_stashes(nym))} stashes)")
    manager.discard_nym(nym)  # pre-configured habits: discard, don't re-save
    nym = manager.load_nym("bob-protest", "nym-pw")
    print(f"  after discard + reload from snapshot, stain detected? "
          f"{stain.detected(nym)}")

    manager.discard_nym(nym)


if __name__ == "__main__":
    main()
