#!/usr/bin/env python3
"""The Nym Manager UI walkthrough (§3.5 "Workflow"), screen by screen.

Drives the explicit state machine through the exact steps the paper
narrates: main menu -> fresh nym -> browse -> store dialog -> cloud
login (through the nym's own anonymizer) -> background save -> notified
-> close -> main menu -> load existing nym.

Run:  python examples/nym_manager_workflow.py
"""

from repro import NymManager, NymixConfig
from repro.cloud import make_dropbox
from repro.core.workflow import NymManagerWorkflow


def main() -> None:
    manager = NymManager(NymixConfig(seed=8))
    manager.add_cloud_provider(make_dropbox())
    manager.create_cloud_account("dropbox.com", "wf-user", "cloud-pw")
    workflow = NymManagerWorkflow(manager)

    print("Nym Manager: [start a fresh nym]  [load an existing nym]\n")
    nymbox = workflow.start_fresh_nym("evening-reading")
    manager.timed_browse(nymbox, "blog.torproject.org")
    nymbox.sign_in("twitter.com", "night_owl", "account-pw")

    workflow.open_store_dialog()
    workflow.enter_store_details(
        name="evening-reading", password="nym-pw", provider_host="dropbox.com"
    )
    workflow.login_to_cloud("wf-user", "cloud-pw")
    receipt = workflow.complete_save()
    workflow.close_nym()

    print("Session transcript:")
    for line in workflow.transcript():
        print(f"  {line}")
    print(f"\nsaved blob: {receipt.encrypted_bytes / 2**20:.1f} MiB encrypted, "
          f"{receipt.total_seconds:.1f} s end to end")

    print("\nLater: [load an existing nym]")
    restored = workflow.load_existing_nym("evening-reading", "nym-pw")
    print(f"  phases: " + ", ".join(
        f"{k}={v:.1f}s" for k, v in restored.startup.as_dict().items() if v
    ))
    print(f"  credentials intact: "
          f"{restored.browser.has_credentials_for('twitter.com')}")
    workflow.close_nym()
    print("\nBack at the main menu; nothing remains on the machine.")


if __name__ == "__main__":
    main()
