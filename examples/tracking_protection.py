#!/usr/bin/env python3
"""Tracking protection: what the ad network knows, with and without nyms.

The §1/§2 motivation, executed: a third-party ad network embedded across
the web builds one dossier per cookie identity.  One browser for
everything hands it your whole life; per-role nyms hand it disconnected
stubs; discarding a nym resets the identity entirely.

Run:  python examples/tracking_protection.py
"""

from repro import NymManager, NymixConfig
from repro.guest.trackers import AdNetwork, browse_with_trackers
from repro.sim import SeededRng


def main() -> None:
    manager = NymManager(NymixConfig(seed=6))
    network = AdNetwork(
        "adsync",
        embedded_on={"facebook.com", "twitter.com", "bbc.co.uk", "espn.com"},
        rng=SeededRng(6),
    )

    print("== The pre-Nymix world: one browser for everything ==")
    everything = manager.create_nym(name="everything")
    for hostname in ("facebook.com", "twitter.com", "bbc.co.uk", "espn.com"):
        browse_with_trackers(manager, everything, hostname, [network])
    dossier = next(iter(network.profiles.values()))
    print(f"  adsync profiles: {len(network.profiles)}")
    print(f"  the single dossier spans: {sorted(set(dossier.visits))}")
    print(f"  inferred interests: {sorted(dossier.interests())}")
    print(f"  can link social life to sports habit: "
          f"{network.can_link('facebook.com', 'espn.com')}")
    manager.discard_nym(everything)

    print("\n== The Nymix world: one nym per role ==")
    fresh_network = AdNetwork(
        "adsync",
        embedded_on={"facebook.com", "twitter.com", "bbc.co.uk", "espn.com"},
        rng=SeededRng(7),
    )
    roles = {
        "social": ["facebook.com", "twitter.com"],
        "news": ["bbc.co.uk"],
        "sports": ["espn.com"],
    }
    for role, hostnames in roles.items():
        nymbox = manager.create_nym(name=role)
        for hostname in hostnames:
            browse_with_trackers(manager, nymbox, hostname, [fresh_network])
    print(f"  adsync profiles: {len(fresh_network.profiles)} (one stub per role)")
    print(f"  largest dossier: {fresh_network.largest_dossier()} site(s)")
    print(f"  can link social life to sports habit: "
          f"{fresh_network.can_link('facebook.com', 'espn.com')}")

    print("\n== And ephemeral nyms reset even the per-role identity ==")
    news = manager.nymboxes["news"]
    manager.discard_nym(news)
    reborn = manager.create_nym(name="news")
    browse_with_trackers(manager, reborn, "bbc.co.uk", [fresh_network])
    print(f"  adsync profiles after the news nym was recycled: "
          f"{len(fresh_network.profiles)} (the old stub is orphaned)")


if __name__ == "__main__":
    main()
