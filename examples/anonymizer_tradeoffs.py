#!/usr/bin/env python3
"""The pluggable anonymizer spectrum (§3.3): pick your trade-off.

Starts one nym per transport - incognito, Tor, Dissent, SWEET, and the
"best of both worlds" Tor+Dissent composition - and fetches the same page
through each, printing the cost/protection matrix.  Also demonstrates
the transports' protocol cores: real onion peeling and a real DC-net
round.

Run:  python examples/anonymizer_tradeoffs.py
"""

from repro import NymManager, NymixConfig

TRANSPORTS = ["incognito", "tor", "dissent", "sweet", "tor+dissent"]


def main() -> None:
    manager = NymManager(NymixConfig(seed=5))

    print(f"{'transport':<13} {'start (s)':>9} {'page load (s)':>13} "
          f"{'overhead':>9} {'destination sees':<18} protected?")
    print("-" * 78)
    for kind in TRANSPORTS:
        nym = manager.create_nym(name=f"demo-{kind.replace('+', '-')}", anonymizer=kind)
        load = manager.timed_browse(nym, "bbc.co.uk")
        plan = nym.anonymizer.plan(0)
        print(f"{kind:<13} {nym.startup.start_anonymizer_s:>9.1f} "
              f"{load.duration_s:>13.2f} {plan.overhead_factor:>9.3f} "
              f"{str(nym.anonymizer.exit_address()):<18} "
              f"{nym.anonymizer.protects_network_identity}")

    print("\nProtocol cores are real, not stubs:")
    tor_nym = manager.nymboxes["demo-tor"]
    roundtrip = tor_nym.anonymizer.send_payload(b"onion-wrapped request")
    path = " -> ".join(tor_nym.anonymizer.current_circuit.path_nicknames)
    print(f"  Tor: payload onion-encrypted through [{path}], "
          f"round-tripped intact: {roundtrip == b'onion-wrapped request'}")

    dissent_nym = manager.nymboxes["demo-dissent"]
    out = dissent_nym.anonymizer.transmit_anonymously(b"dc-net slot message")
    print(f"  Dissent: XOR pads of "
          f"{dissent_nym.anonymizer.deployment.num_clients} clients and "
          f"{dissent_nym.anonymizer.deployment.num_servers} anytrust servers "
          f"cancelled to reveal: {out!r}")

    print("\nIncognito is nearly free but the site sees *you*; Tor is the")
    print("balanced default; Dissent trades throughput for provable traffic-")
    print("analysis resistance; SWEET is the circumvention fallback; serial")
    print("composition stacks protections at summed cost.")


if __name__ == "__main__":
    main()
