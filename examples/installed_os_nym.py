#!/usr/bin/env python3
"""Installed OS as a nym (§3.7): boot your real Windows inside a nymbox.

Reproduces Table 1's workflow for each catalogued OS: attach the physical
disk read-only behind a copy-on-write overlay, run the hardware repair
pass Windows demands, boot, and show that the real disk was never touched.

Run:  python examples/installed_os_nym.py
"""

from repro import NymManager, NymixConfig
from repro.guest.installed_os import INSTALLED_OS_CATALOG


def main() -> None:
    manager = NymManager(NymixConfig(seed=4))

    print(f"{'OS':<16} {'Repair (s)':>10} {'Boot (s)':>9} {'COW (MB)':>9}  disk touched?")
    print("-" * 62)
    for os_name in INSTALLED_OS_CATALOG:
        report, vm, ios = manager.boot_installed_os_nym(os_name)
        print(f"{os_name:<16} {report.repair_seconds:>10.1f} "
              f"{report.boot_seconds:>9.1f} "
              f"{report.cow_bytes / 2**20:>9.1f}  {report.physical_disk_modified}")
        # End of session: by default nothing persists (§3.7).
        discarded = ios.discard_session()
        vm.shutdown()
        assert not ios.physical_disk_modified

    print("\nEvery session's writes lived only in the RAM overlay and were")
    print("discarded at shutdown - no trace of Nymix use on the local disk,")
    print("and no repair needed when booting back on the bare metal.")


if __name__ == "__main__":
    main()
