#!/usr/bin/env python3
"""Alice the compartmentalizer (§2): parallel, unlinkable roles.

Alice keeps work, family, and a personal forum strictly separated.  This
example runs all three roles at once, then takes the adversary's view:
can the sites, or a network observer, link them?

Run:  python examples/multi_role_browsing.py
"""

from repro import NymManager, NymixConfig
from repro.attacks import distinguishing_bits
from repro.core.validation import validate_system


def main() -> None:
    manager = NymManager(NymixConfig(seed=3))

    print("Alice opens three nyms, one per role:")
    roles = {
        "work": ("gmail.com", "alice.professional"),
        "family": ("facebook.com", "alice.family"),
        "private-forum": ("blog.torproject.org", None),
    }
    nyms = {}
    for role, (site, username) in roles.items():
        nym = manager.create_nym(name=f"alice-{role}")
        load = manager.timed_browse(nym, site)
        if username:
            nym.sign_in(site, username, f"pw-{role}")
        nyms[role] = nym
        print(f"  {role:<14} -> {site:<22} "
              f"(startup {nym.startup.total_s:5.1f} s, "
              f"exit {nym.anonymizer.exit_address()})")

    print("\nWhat each destination sees:")
    for role, (site, _) in roles.items():
        server = manager.internet.server_named(site)
        ips = {str(ip) for ip in server.seen_client_ips}
        print(f"  {site:<22} saw {sorted(ips)}")
    print(f"  Alice's real address {manager.hypervisor.public_ip} appears nowhere.")

    print("\nCan an observer tell the roles apart by fingerprint?")
    fps = [nym.anonvm.fingerprint() for nym in nyms.values()]
    bits = distinguishing_bits(fps)
    print(f"  fingerprint entropy across roles: {bits} bits "
          f"({'indistinguishable' if bits == 0 else 'LINKABLE!'})")

    print("\nIs any state shared between roles?")
    work, family = nyms["work"], nyms["family"]
    print(f"  family nym has work credentials: "
          f"{family.browser.has_credentials_for('gmail.com')}")
    print(f"  circuits: " + ", ".join(
        f"{role}={nym.anonymizer.current_circuit.circ_id:#x}"
        for role, nym in nyms.items()
    ))

    print("\nRun the paper's §5.1 validation with all three roles live:")
    result = validate_system(manager)
    print(f"  {result.summary()}")

    print("\nThe sensitive role is done for today — discard it, keep the rest:")
    manager.discard_nym(nyms["private-forum"])
    print(f"  live nyms: {manager.live_nyms()}")
    manager.timed_browse(work, "gmail.com")
    print("  work nym keeps browsing, unaffected.")


if __name__ == "__main__":
    main()
