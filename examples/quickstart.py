#!/usr/bin/env python3
"""Quickstart: create, use, store, restore, and discard nyms.

Walks the basic Nymix workflow from §3.5 of the paper:

1. boot Nymix (a :class:`NymixSession` — the supported entry point),
2. start a fresh ephemeral nym and browse through Tor,
3. store the nym, encrypted, to anonymous cloud storage,
4. discard it (amnesia), then load it back — credentials intact.

Run:  python examples/quickstart.py
"""

from repro import NymixSession


def main() -> None:
    print("Booting Nymix (simulated i7 quad-core, 16 GB RAM, 10 Mbit/s uplink)")
    with NymixSession(seed=1) as nx:
        nx.create_cloud_account("dropbox.com", "anon-8041", "cloud-pw")

        print("\n-- start a fresh nym --")
        nym = nx.create_nym(name="my-first-nym")
        for phase, seconds in nym.startup.as_dict().items():
            if seconds:
                print(f"  {phase:<14} {seconds:5.1f} s")

        print("\n-- browse through Tor --")
        load = nx.timed_browse(nym, "twitter.com")
        print(f"  twitter.com loaded in {load.duration_s:.1f} s "
              f"({load.payload_bytes / 2**20:.1f} MiB)")
        nym.sign_in("twitter.com", "my_pseudonym", "account-password")
        print(f"  signed in; credentials now bound to nym {nym.nym.name!r}")
        exit_ip = nym.anonymizer.exit_address()
        print(f"  twitter.com saw exit relay {exit_ip}, "
              f"not our address {nx.hypervisor.public_ip}")

        print("\n-- store the nym to the cloud --")
        receipt = nx.store_nym(
            nym, password="nym-password",
            provider_host="dropbox.com", account_username="anon-8041",
        )
        print(f"  raw {receipt.raw_bytes / 2**20:.1f} MiB -> "
              f"encrypted {receipt.encrypted_bytes / 2**20:.1f} MiB, "
              f"uploaded in {receipt.upload_seconds:.1f} s")

        print("\n-- discard: amnesia --")
        nx.discard_nym(nym)
        print(f"  live nyms: {nx.live_nyms()}  (nothing remains on the host)")

        print("\n-- load it back --")
        restored = nx.load_nym("my-first-nym", "nym-password")
        print(f"  ephemeral download nym took {restored.startup.ephemeral_nym_s:.1f} s")
        print(f"  Tor restarted warm in {restored.startup.start_anonymizer_s:.1f} s "
              f"(guards preserved: {restored.anonymizer.guard_manager.guards})")
        print(f"  twitter credentials restored: "
              f"{restored.browser.has_credentials_for('twitter.com')}")
    # Session exit discards every live nym.
    print("\nDone.")


if __name__ == "__main__":
    main()
