"""Sweep grids: which transport configurations a sweep visits.

A :class:`SweepPoint` freezes one transport configuration.  The two
baseline points (Tor, Dissent) have no knobs; mixnet points span the
cross product of cover rate, mean hop delay, and layer count.  Grids
are plain tuples so a caller can slice, filter, or extend them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence, Tuple

from repro.errors import SimulationError

#: the quick (CI-sized) mixnet grid: 2 cover rates x 2 hop delays
QUICK_COVER_RATES = (0.5, 4.0)
QUICK_HOP_DELAYS = (0.02, 0.2)
#: the full grid adds a middle setting on each axis and a 5-layer column
FULL_COVER_RATES = (0.5, 2.0, 8.0)
FULL_HOP_DELAYS = (0.02, 0.05, 0.2)
FULL_LAYER_COUNTS = (3, 5)


@dataclass(frozen=True)
class SweepPoint:
    """One transport configuration a sweep measures.

    ``layers``/``cover_rate_pps``/``mean_hop_delay_s`` only shape mixnet
    points; the baselines carry their defaults and ignore them.
    """

    anonymizer: str
    layers: int = 3
    cover_rate_pps: float = 1.0
    mean_hop_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.anonymizer not in ("tor", "dissent", "mixnet"):
            raise SimulationError(
                f"unsweepable transport {self.anonymizer!r} "
                "(known: tor, dissent, mixnet)"
            )
        if self.layers < 1:
            raise SimulationError(f"need at least one layer: {self.layers!r}")
        if self.cover_rate_pps < 0 or self.mean_hop_delay_s < 0:
            raise SimulationError("mixnet knobs must be non-negative")

    @property
    def label(self) -> str:
        if self.anonymizer != "mixnet":
            return self.anonymizer
        return (
            f"mixnet/L{self.layers}"
            f"/c{self.cover_rate_pps:g}"
            f"/d{self.mean_hop_delay_s:g}"
        )

    def export(self) -> dict:
        return {
            "label": self.label,
            "anonymizer": self.anonymizer,
            "layers": self.layers,
            "cover_rate_pps": self.cover_rate_pps,
            "mean_hop_delay_s": self.mean_hop_delay_s,
        }


#: the paper's two deployed transports, measured as-is
BASELINE_POINTS: Tuple[SweepPoint, ...] = (
    SweepPoint("tor"),
    SweepPoint("dissent"),
)


def mixnet_grid(
    cover_rates: Sequence[float],
    hop_delays: Sequence[float],
    layer_counts: Sequence[int] = (3,),
) -> Tuple[SweepPoint, ...]:
    """The cross product of the mixnet knobs, in deterministic order."""
    return tuple(
        SweepPoint(
            "mixnet",
            layers=layers,
            cover_rate_pps=cover,
            mean_hop_delay_s=delay,
        )
        for layers, cover, delay in product(layer_counts, cover_rates, hop_delays)
    )


def build_grid(quick: bool = False) -> Tuple[SweepPoint, ...]:
    """Baselines plus the mixnet grid: 6 points quick, 20 full."""
    if quick:
        return BASELINE_POINTS + mixnet_grid(QUICK_COVER_RATES, QUICK_HOP_DELAYS)
    return BASELINE_POINTS + mixnet_grid(
        FULL_COVER_RATES, FULL_HOP_DELAYS, FULL_LAYER_COUNTS
    )
