"""Sweep results: one row per grid point, and the rendered tradeoff table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class PointResult:
    """Everything one sweep point measured."""

    label: str
    anonymizer: str
    layers: int
    cover_rate_pps: float
    mean_hop_delay_s: float
    startup_s: float
    mean_page_load_s: float
    bytes_carried: int
    cover_bytes: int
    bandwidth_overhead: float
    anonymity_set_size: int
    mean_candidates: float
    confirmed: bool
    intersection_epochs: Optional[int]
    journal_events: int

    def export(self) -> dict:
        return {
            "label": self.label,
            "anonymizer": self.anonymizer,
            "layers": self.layers,
            "cover_rate_pps": self.cover_rate_pps,
            "mean_hop_delay_s": self.mean_hop_delay_s,
            "startup_s": round(self.startup_s, 6),
            "mean_page_load_s": round(self.mean_page_load_s, 6),
            "bytes_carried": self.bytes_carried,
            "cover_bytes": self.cover_bytes,
            "bandwidth_overhead": round(self.bandwidth_overhead, 6),
            "anonymity_set_size": self.anonymity_set_size,
            "mean_candidates": round(self.mean_candidates, 3),
            "confirmed": self.confirmed,
            "intersection_epochs": self.intersection_epochs,
            "journal_events": self.journal_events,
        }


@dataclass
class SweepReport:
    """One full sweep: the workload, the grid, and each point's scores."""

    seed: int
    quick: bool
    sites: List[str]
    idle_s: float
    points: List[PointResult] = field(default_factory=list)

    def export(self) -> dict:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "workload_sites": list(self.sites),
            "idle_s": self.idle_s,
            "points": [point.export() for point in self.points],
        }

    def best_anonymity(self) -> Optional[PointResult]:
        """The point the confirmation adversary resolved least."""
        if not self.points:
            return None
        return max(
            self.points,
            key=lambda p: (p.anonymity_set_size, p.mean_candidates, p.label),
        )

    def fastest_unconfirmed(self) -> Optional[PointResult]:
        """The lowest-latency point that still defeated confirmation."""
        survivors = [p for p in self.points if not p.confirmed]
        if not survivors:
            return None
        return min(survivors, key=lambda p: (p.mean_page_load_s, p.label))

    def summary(self) -> str:
        lines = [
            f"sweep: seed={self.seed} quick={self.quick} "
            f"({len(self.points)} points, "
            f"workload: {', '.join(self.sites)}, idle {self.idle_s:g}s)",
            f"  {'point':<24} {'load_s':>8} {'overhead':>9} "
            f"{'anonset':>8} {'confirmed':>10}",
        ]
        for point in self.points:
            lines.append(
                f"  {point.label:<24} {point.mean_page_load_s:>8.2f} "
                f"{point.bandwidth_overhead:>8.2f}x "
                f"{point.anonymity_set_size:>8d} "
                f"{'yes' if point.confirmed else 'no':>10}"
            )
        best = self.best_anonymity()
        if best is not None:
            lines.append(
                f"largest anonymity set: {best.label} "
                f"({best.anonymity_set_size} candidates, "
                f"{best.bandwidth_overhead:.2f}x overhead)"
            )
        fastest = self.fastest_unconfirmed()
        if fastest is None:
            lines.append("no point defeated traffic confirmation")
        else:
            lines.append(
                f"cheapest unconfirmed point: {fastest.label} "
                f"({fastest.mean_page_load_s:.2f}s mean load)"
            )
        return "\n".join(lines)
