"""The anonymity/latency/overhead sweep harness behind ``repro sweep``.

One sweep runs the *same* seeded browsing workload through every point
of a transport grid — Tor and Dissent as the paper's two baselines plus
a grid of mixnet configurations (cover-traffic rate × mean hop delay ×
layer count) — and scores each point three ways:

* **latency** — mean page-load seconds over the fixed site list;
* **bandwidth overhead** — carried bytes vs. what the transport actually
  put on the wire (padding, batching, and cover traffic);
* **anonymity** — the surviving candidate set under the
  :mod:`repro.attacks.traffic_confirmation` global passive adversary,
  plus the long-term intersection attack's convergence time.

The output is the tradeoff surface the mixnet knobs buy: more cover and
longer mixing delays grow the anonymity set and the overhead together.
Every point runs in its own fresh :class:`repro.api.NymixSession` on the
same seed, so the whole sweep — including each point's event journal —
is byte-identical across same-seed runs.
"""

from repro.sweeps.grid import BASELINE_POINTS, SweepPoint, build_grid, mixnet_grid
from repro.sweeps.harness import run_sweep
from repro.sweeps.report import PointResult, SweepReport

__all__ = [
    "BASELINE_POINTS",
    "SweepPoint",
    "build_grid",
    "mixnet_grid",
    "run_sweep",
    "PointResult",
    "SweepReport",
]
