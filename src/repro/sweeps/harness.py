"""Run the sweep: one fresh same-seed session per grid point.

Every point gets an identical world — same seed, same site list, same
probe order — differing only in the transport configuration under test,
so the measured deltas are the transport's and nothing else's.  The
harness never reuses a session across points: state carried from one
transport to the next (warm caches, consumed RNG) would contaminate the
comparison and break the per-point journal determinism that the CI
sweep-smoke job ``cmp``s.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.api import NymixSession
from repro.attacks import IntersectionAttack, TrafficConfirmationAttack
from repro.core.config import NymixConfig
from repro.sweeps.grid import SweepPoint, build_grid
from repro.sweeps.report import PointResult, SweepReport

#: the fixed browsing workload every point replays
WORKLOAD_SITES = ("bbc.co.uk", "slashdot.org", "espn.com")
#: users sharing the transport in the attack models
_POPULATION = 20
#: P(user online per epoch) for the intersection baseline
_ONLINE_PROBABILITY = 0.5


def _measure_point(
    point: SweepPoint, seed: int, sites: Sequence[str], idle_s: float,
    policies=None,
) -> tuple:
    """Run the workload at one grid point; returns (result, journal_str)."""
    config = NymixConfig(
        seed=seed,
        mixnet_layers=point.layers,
        mixnet_cover_rate_pps=point.cover_rate_pps,
        mixnet_mean_hop_delay_s=point.mean_hop_delay_s,
    )
    with NymixSession(config, cloud_providers=False) as nx:
        tenant = ""
        if policies is not None and policies.tenants:
            # Each point gets its own fresh registry, like everything else
            # in its world: the sweep nym runs as the first configured
            # tenant, so its page loads pay that tenant's ingress shaping.
            from repro.tenancy.registry import TenantRegistry

            registry = TenantRegistry(nx.timeline).attach()
            registry.apply_initial(policies.tenants)
            tenant = policies.tenants[0].name
        box = nx.create_nym(
            name="sweep", anonymizer=point.anonymizer, tenant=tenant
        )
        loads = []
        elapsed = []
        for site in sites:
            before = nx.timeline.now
            loads.append(nx.timed_browse(box, site))
            # Wall sim-time, not PageLoad.duration_s: the transfer-only
            # duration omits the relay-path latency the transport sleeps,
            # which is precisely the latency axis this sweep charts.
            elapsed.append(nx.timeline.now - before)
        if idle_s > 0:
            # Idle tail: cover traffic keeps flowing while the user reads,
            # which is exactly the overhead the sweep is pricing.
            nx.timeline.sleep(idle_s)

        plan = box.anonymizer.plan(0)
        carried = sum(load.payload_bytes for load in loads)
        cover_bytes = int(getattr(box.anonymizer, "cover_bytes_sent", 0))
        overhead = plan.overhead_factor
        if carried:
            overhead += cover_bytes / carried

        attack = TrafficConfirmationAttack(
            nx.timeline.fork_rng("sweep-confirm"),
            obs=nx.obs,
            senders=_POPULATION,
        )
        confirmation = attack.run(
            point.anonymizer,
            layers=point.layers,
            mean_hop_delay_s=point.mean_hop_delay_s,
            cover_rate_pps=point.cover_rate_pps,
        )
        intersection = IntersectionAttack(
            population=_POPULATION,
            online_probability=_ONLINE_PROBABILITY,
            rng=nx.timeline.fork_rng("sweep-intersect"),
            obs=nx.obs,
        )
        epochs = intersection.epochs_to_deanonymize()

        result = PointResult(
            label=point.label,
            anonymizer=point.anonymizer,
            layers=point.layers,
            cover_rate_pps=point.cover_rate_pps,
            mean_hop_delay_s=point.mean_hop_delay_s,
            startup_s=float(getattr(box.anonymizer, "startup_seconds", 0.0)),
            mean_page_load_s=sum(elapsed) / len(elapsed),
            bytes_carried=carried,
            cover_bytes=cover_bytes,
            bandwidth_overhead=overhead,
            anonymity_set_size=confirmation.anonymity_set_size,
            mean_candidates=confirmation.mean_candidates,
            confirmed=confirmation.confirmed,
            intersection_epochs=epochs,
            journal_events=len(nx.obs.journal),
        )
        nx.obs.event(
            "sweep.point",
            label=point.label,
            mean_page_load_s=round(result.mean_page_load_s, 6),
            bandwidth_overhead=round(result.bandwidth_overhead, 6),
            anonymity_set=result.anonymity_set_size,
            confirmed=result.confirmed,
        )
        journal = nx.obs.journal.export_jsonl()
    return result, journal


def run_sweep(
    seed: int = 0,
    quick: bool = False,
    idle_s: Optional[float] = None,
    points: Optional[Sequence[SweepPoint]] = None,
    sites: Optional[Sequence[str]] = None,
    journal_path: Optional[str] = None,
    out_path: Optional[str] = None,
    policies=None,
) -> SweepReport:
    """Sweep the grid and score every point; returns the full report.

    ``journal_path`` concatenates each point's event journal (prefixed
    by a one-line point header) into one JSONL file — two same-seed
    sweeps produce byte-identical files.  ``out_path`` writes the
    machine-readable tradeoff report.  ``policies`` (e.g. from
    ``--tenant-config``) runs every point's nym as the first configured
    tenant, with ingress shaping applied.
    """
    if points is None:
        points = build_grid(quick=quick)
    if sites is None:
        sites = WORKLOAD_SITES
    if idle_s is None:
        idle_s = 10.0 if quick else 30.0

    report = SweepReport(
        seed=seed, quick=quick, sites=list(sites), idle_s=idle_s
    )
    journal_chunks: List[str] = []
    for point in points:
        result, journal = _measure_point(
            point, seed, sites, idle_s, policies=policies
        )
        report.points.append(result)
        header = json.dumps(
            {"sweep_point": point.label, "seed": seed}, sort_keys=True
        )
        chunk = header + "\n"
        if journal:  # export_jsonl carries no trailing newline
            chunk += journal + "\n"
        journal_chunks.append(chunk)

    if journal_path:
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.write("".join(journal_chunks))
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report.export(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report
