"""NymBoxes: the AnonVM + CommVM isolation container for one nym."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.anonymizers.base import Anonymizer
from repro.core.nym import Nym
from repro.errors import CircuitError, NymStateError, UnreachableError
from repro.faults.retry import RetryPolicy, retry_call
from repro.guest.browser import Browser, FetchOutcome, PageLoad
from repro.net.frame import Ipv4Packet, UdpDatagram
from repro.net.link import VirtualWire
from repro.net.nat import MasqueradeNat
from repro.sim.clock import Timeline
from repro.vmm.virtfs import SharedFolder
from repro.vmm.vm import VirtualMachine, VmState

#: Fetch retries under chaos: backoff long enough to outlast a link flap
#: (2-8 s injected outages) before the attempt budget runs out.
_CHAOS_FETCH_POLICY = RetryPolicy(
    max_attempts=6, base_backoff_s=1.0, backoff_factor=2.0, max_backoff_s=20.0
)


@dataclass
class StartupPhases:
    """Figure 7's phase breakdown for one nym startup."""

    boot_vm_s: float = 0.0
    start_anonymizer_s: float = 0.0
    load_page_s: float = 0.0
    ephemeral_nym_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.boot_vm_s
            + self.start_anonymizer_s
            + self.load_page_s
            + self.ephemeral_nym_s
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "Boot VM": self.boot_vm_s,
            "Start Tor": self.start_anonymizer_s,
            "Load webpage": self.load_page_s,
            "Ephemeral Nym": self.ephemeral_nym_s,
        }


class AnonymizedFetcher:
    """The browser's only network path: SOCKS into the CommVM's anonymizer.

    Every request first crosses the private AnonVM->CommVM wire (visible
    to wire taps as guest traffic) and then rides the anonymizer.  DNS is
    resolved by the anonymizer (§4.1), never by the AnonVM.
    """

    def __init__(
        self,
        timeline: Timeline,
        anonymizer: Anonymizer,
        anonvm: VirtualMachine,
        commvm: VirtualMachine,
    ) -> None:
        self.timeline = timeline
        self.anonymizer = anonymizer
        self.anonvm = anonvm
        self.commvm = commvm
        self.requests = 0

    def _cross_wire(self, hostname: str) -> None:
        """Send the request over the AnonVM->CommVM virtual wire."""
        packet = Ipv4Packet(
            src=self.anonvm.primary_nic.ip,
            dst=self.commvm.primary_nic.ip,
            transport=UdpDatagram(
                src_port=40000 + (self.requests % 20000),
                dst_port=9050,
                payload=f"SOCKS {hostname}".encode(),
                label="socks",
            ),
        )
        delivered = self.anonvm.primary_nic.send_packet(
            packet, dst_mac=self.commvm.primary_nic.mac
        )
        if not delivered:
            raise UnreachableError(
                f"{self.anonvm.vm_id}: wire to CommVM is down; no other path exists"
            )

    def fetch(self, hostname: str, client_token: str) -> FetchOutcome:
        self.requests += 1

        def attempt() -> FetchOutcome:
            self._cross_wire(hostname)
            self.anonymizer.resolve(hostname)
            result = self.anonymizer.fetch(hostname, path=client_token)
            return FetchOutcome(response=result.response, duration_s=result.duration_s)

        if not self.timeline.faults.active:
            # No injector armed: fail loudly and immediately, the seed
            # contract (a downed wire IS teardown outside of chaos).
            return attempt()
        return retry_call(
            self.timeline,
            attempt,
            policy=_CHAOS_FETCH_POLICY,
            retryable=(UnreachableError, CircuitError),
            site="net.fetch",
            reraise=True,
        )


class NymBox:
    """One nym's container: two VMs, a wire, a NAT, an anonymizer, a browser."""

    def __init__(
        self,
        timeline: Timeline,
        nym: Nym,
        anonvm: VirtualMachine,
        commvm: VirtualMachine,
        wire: VirtualWire,
        nat: MasqueradeNat,
        anonymizer: Anonymizer,
        rng,
        extra_commvms: Optional[List[VirtualMachine]] = None,
    ) -> None:
        self.timeline = timeline
        self.nym = nym
        self.anonvm = anonvm
        self.commvm = commvm
        # Further CommVMs in a §3.3 serial chain (closest-to-Internet last).
        self.extra_commvms: List[VirtualMachine] = list(extra_commvms or [])
        self.wire = wire
        self.nat = nat
        self.anonymizer = anonymizer
        self.rng = rng
        self.fetcher = AnonymizedFetcher(timeline, anonymizer, anonvm, commvm)
        self._browser: Optional[Browser] = None
        self.inbox = SharedFolder(f"{anonvm.vm_id}-incoming")
        anonvm.mount_shared(self.inbox)
        self.startup = StartupPhases()
        self.page_loads: List[PageLoad] = []
        self.destroyed = False

    # -- browser ------------------------------------------------------------------

    @property
    def browser(self) -> Browser:
        if self._browser is None:
            self._browser = Browser(
                vm=self.anonvm,
                fetcher=self.fetcher,
                rng=self.rng.fork("browser"),
                profile_token=f"profile:{self.nym.name}",
            )
        return self._browser

    def reset_browser_index(self) -> None:
        """Rebuild the browser's in-memory view from VM state (after restore)."""
        self._browser = None

    def browse(self, hostname: str) -> PageLoad:
        """Load a page as the user would (the Figure 7 "Load webpage" phase)."""
        self._require_alive()
        obs = self.timeline.obs
        with obs.span("nymbox.browse", nym=self.nym.name, host=hostname):
            load = self.browser.visit(hostname)
        self.page_loads.append(load)
        obs.metrics.counter("nymbox.page_loads").inc()
        obs.metrics.histogram("nymbox.page_load_s").observe(load.duration_s)
        obs.event(
            "nymbox.page_load",
            nym=self.nym.name,
            host=hostname,
            seconds=round(load.duration_s, 6),
        )
        return load

    def sign_in(self, hostname: str, username: str, password: str) -> None:
        """Log in to a pseudonymous account, binding it to this nym."""
        self._require_alive()
        self.browser.login(hostname, username, password, remember=True)
        self.nym.bind_account(hostname, username)

    # -- lifecycle helpers ---------------------------------------------------------

    def _require_alive(self) -> None:
        if self.destroyed:
            raise NymStateError(f"nymbox for {self.nym.name!r} has been destroyed")
        if not self.anonvm.running:
            raise NymStateError(f"AnonVM of {self.nym.name!r} is not running")

    @property
    def all_vms(self) -> List[VirtualMachine]:
        return [self.anonvm, self.commvm] + self.extra_commvms

    def pause(self) -> None:
        """Pause all VMs (the snapshot-consistency step of the §3.5 workflow)."""
        for vm in self.all_vms:
            vm.pause()

    def resume(self) -> None:
        for vm in self.all_vms:
            vm.resume()

    @property
    def running(self) -> bool:
        return not self.destroyed and self.anonvm.running and self.commvm.running

    @property
    def crashed(self) -> bool:
        return any(vm.state is VmState.CRASHED for vm in self.all_vms)

    def crash(self) -> None:
        """Fault injection: every live guest dies at once (host-level fault).

        The wreck stays registered with the manager until
        ``recover_nym``/``discard_nym`` clears it — crashing is not amnesia.
        """
        if self.destroyed:
            raise NymStateError(f"nymbox for {self.nym.name!r} has been destroyed")
        for vm in self.all_vms:
            if vm.state in (VmState.RUNNING, VmState.PAUSED):
                vm.crash()
        self.timeline.obs.event("nymbox.crashed", nym=self.nym.name)

    # -- accounting -----------------------------------------------------------------

    def state_bytes(self) -> int:
        """Writable-layer footprint of all VMs (what a snapshot captures)."""
        return sum(vm.fs_ram_bytes for vm in self.all_vms)

    def memory_bytes(self) -> int:
        return sum(vm.spec.ram_bytes for vm in self.all_vms) + self.state_bytes()

    def __repr__(self) -> str:
        return f"NymBox({self.nym.name!r}, {self.nym.anonymizer_kind}, running={self.running})"
