"""The Nymix core: nyms, nymboxes, the Nym Manager, quasi-persistence.

This is the paper's contribution proper.  A *nym* is a user-facing
pseudonym; a *nymbox* is its isolation container — one AnonVM for the
browser, one CommVM for the anonymizer, a private virtual wire between
them, and nothing else.  The :class:`NymManager` supervises creation,
longevity and destruction (§3.1), binds credentials and client state to
nyms, stores encrypted nym snapshots in the cloud (§3.5), mediates
sanitized file transfer (§3.6), boots the installed OS as a nym (§3.7),
and runs the §5.1 validation checks.
"""

from repro.core.config import NymixConfig
from repro.core.nym import Nym, NymUsageModel
from repro.core.nymbox import NymBox, StartupPhases
from repro.core.persistence import NymStore, StoreReceipt
from repro.core.manager import InstalledOsNymReport, NymManager
from repro.core.requests import NymRequest, StoreNymRequest
from repro.core.validation import IsolationMatrix, ValidationResult, validate_system

__all__ = [
    "NymixConfig",
    "Nym",
    "NymUsageModel",
    "NymBox",
    "StartupPhases",
    "NymStore",
    "StoreReceipt",
    "NymManager",
    "NymRequest",
    "StoreNymRequest",
    "InstalledOsNymReport",
    "IsolationMatrix",
    "ValidationResult",
    "validate_system",
]
