"""Nyms: pseudonym identities and their usage models (§3.5)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class NymUsageModel(enum.Enum):
    """The three usage models the paper defines.

    * ``EPHEMERAL`` — amnesiac: state lives only while the nym runs;
      teardown securely erases everything.  The default, and the safest
      against staining and long-term tracking.
    * ``PERSISTENT`` — state is re-saved after *every* session: familiar,
      convenient, but a stain acquired in one session persists for the
      nym's lifetime.
    * ``PRECONFIGURED`` — state was snapshotted once after setup; every
      session starts from that pristine snapshot and changes are discarded
      unless the user explicitly re-snapshots.  A malware infection is
      scrubbed at the next session.
    """

    EPHEMERAL = "ephemeral"
    PERSISTENT = "persistent"
    PRECONFIGURED = "preconfigured"

    @property
    def quasi_persistent(self) -> bool:
        return self is not NymUsageModel.EPHEMERAL

    @property
    def saves_after_each_session(self) -> bool:
        return self is NymUsageModel.PERSISTENT


@dataclass
class Nym:
    """A pseudonym: identity metadata bound to (at most) one live nymbox.

    Nymix "maintains and structurally enforces an explicit binding between
    each role a user plays online, the network login credentials related
    to that role, and all client-side state" (§1) — the binding lives here
    and in the nymbox's VM state, never in a shared password manager.
    """

    name: str
    usage_model: NymUsageModel
    anonymizer_kind: str
    created_at: float
    #: role-scoped account credentials (hostname -> username); passwords
    #: live only in the nym's browser state, not in manager metadata
    accounts: Dict[str, str] = field(default_factory=dict)
    #: where the encrypted snapshot lives, for quasi-persistent nyms
    storage_provider: Optional[str] = None
    storage_blob: Optional[str] = None
    save_cycles: int = 0

    @property
    def ephemeral(self) -> bool:
        return self.usage_model is NymUsageModel.EPHEMERAL

    def bind_account(self, hostname: str, username: str) -> None:
        self.accounts[hostname] = username

    def storage_location(self) -> str:
        """Identifier used for deterministic guard seeding (§3.5)."""
        return f"{self.storage_provider or 'local'}/{self.storage_blob or self.name}"

    def __repr__(self) -> str:
        return f"Nym({self.name!r}, {self.usage_model.value}, via {self.anonymizer_kind})"
