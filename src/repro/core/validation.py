"""System validation: the §5.1 methodology as executable checks.

The paper validates Nymix by (a) watching an idle client's uplink with
Wireshark — only DHCP and anonymizer traffic may appear, and the AnonVM
must emit nothing — and (b) probing every cross-VM path — an AnonVM may
talk only to its own CommVM, a CommVM only to the Internet, never to
local intranets or other VMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.net.pcap import LeakAnalyzer, LeakReport


@dataclass
class IsolationMatrix:
    """Outcome of the all-pairs cross-VM probe."""

    allowed_pairs: List[Tuple[str, str]] = field(default_factory=list)
    violations: List[Tuple[str, str]] = field(default_factory=list)
    local_network_reachable_from: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.local_network_reachable_from


@dataclass
class ValidationResult:
    """Everything §5.1 checks, in one report."""

    leak_report: LeakReport
    isolation: IsolationMatrix
    anonvm_emitted_uplink_traffic: bool
    dns_leaks: int

    @property
    def passed(self) -> bool:
        return (
            self.leak_report.clean
            and self.isolation.clean
            and not self.anonvm_emitted_uplink_traffic
            and self.dns_leaks == 0
        )

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"[{verdict}] uplink: {self.leak_report.summary()}; "
            f"isolation violations: {len(self.isolation.violations)}; "
            f"anonvm uplink traffic: {self.anonvm_emitted_uplink_traffic}; "
            f"dns leaks: {self.dns_leaks}"
        )


def _split_role(vm_id: str):
    """Split 'alice-comm2' -> ('alice', 'comm', 2); None role if neither."""
    stem, _, role = vm_id.rpartition("-")
    if role == "anon":
        return stem, "anon", 0
    if role.startswith("comm"):
        suffix = role[4:]
        if suffix == "":
            return stem, "comm", 1
        if suffix.isdigit():
            return stem, "comm", int(suffix)
    return vm_id, None, -1


def _expected_pair(src_id: str, dst_id: str) -> bool:
    """Same-nym adjacency only: AnonVM<->first CommVM, and consecutive
    CommVMs of a §3.3 serial chain."""
    src_stem, src_role, src_pos = _split_role(src_id)
    dst_stem, dst_role, dst_pos = _split_role(dst_id)
    if src_stem != dst_stem or src_id == dst_id:
        return False
    if src_role is None or dst_role is None:
        return False
    if {src_role, dst_role} == {"anon", "comm"}:
        return {src_pos, dst_pos} == {0, 1}
    if src_role == dst_role == "comm":
        return abs(src_pos - dst_pos) == 1
    return False


def probe_isolation(manager) -> IsolationMatrix:
    """All-pairs reachability probe across every VM on the hypervisor."""
    matrix = IsolationMatrix()
    vms = manager.hypervisor.vms()
    for src in vms:
        for dst in vms:
            if src is dst:
                continue
            reachable = manager.hypervisor.probe_cross_vm(src, dst)
            expected = _expected_pair(src.vm_id, dst.vm_id)
            if reachable and expected:
                matrix.allowed_pairs.append((src.vm_id, dst.vm_id))
            elif reachable and not expected:
                matrix.violations.append((src.vm_id, dst.vm_id))
    for nymbox in manager.nymboxes.values():
        if manager.hypervisor.probe_local_network(nymbox.commvm):
            matrix.local_network_reachable_from.append(nymbox.commvm.vm_id)
    return matrix


def count_dns_leaks(manager) -> int:
    """DNS queries answered outside an anonymizer across all live nyms."""
    leaks = 0
    for nymbox in manager.nymboxes.values():
        resolver = getattr(nymbox.anonymizer, "dns_resolver", None)
        if resolver is not None:
            leaks += len(resolver.direct_queries())
    return leaks


def validate_system(manager, idle_seconds: float = 30.0) -> ValidationResult:
    """Run the full §5.1 validation against a live manager.

    The capture is cleared, the system idles for ``idle_seconds``, and the
    accumulated uplink traffic is analyzed; then the isolation matrix is
    probed.  (Traffic generated *before* the call is not judged — the
    paper's methodology inspects an idle client.)
    """
    capture = manager.hypervisor.host_capture
    capture.clear()
    manager.timeline.sleep(idle_seconds)
    leak_report = LeakAnalyzer().analyze(capture)

    anon_nic_names = {
        nic.name
        for nymbox in manager.nymboxes.values()
        for nic in nymbox.anonvm.nics
    }
    anonvm_emitted = any(entry.sender in anon_nic_names for entry in capture.entries)

    return ValidationResult(
        leak_report=leak_report,
        isolation=probe_isolation(manager),
        anonvm_emitted_uplink_traffic=anonvm_emitted,
        dns_leaks=count_dns_leaks(manager),
    )
