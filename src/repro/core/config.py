"""Top-level configuration for a Nymix instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vmm.hypervisor import HostSpec


@dataclass(frozen=True)
class NymixConfig:
    """Everything tunable about a simulated Nymix deployment.

    Defaults reproduce the paper's evaluation setup: an i7 quad-core host
    with 16 GB RAM, a 10 Mbit/s / 80 ms path to a 40-relay test Tor
    deployment, Tor as the default anonymizer, and KSM enabled.
    """

    seed: int = 0
    host: HostSpec = field(default_factory=HostSpec)
    #: collect metrics, sim-time traces, and the event journal
    #: (``repro.obs``); disabling swaps in the zero-cost no-op recorder
    observability: bool = True
    default_anonymizer: str = "tor"
    tor_relay_count: int = 40
    dissent_clients: int = 8
    dissent_servers: int = 3
    #: stratified mixnet deployment shape (built lazily on first use)
    mixnet_layers: int = 3
    mixnet_nodes_per_layer: int = 3
    #: loop/drop cover packets per second each mixnet client emits
    mixnet_cover_rate_pps: float = 1.0
    #: mean of the exponential per-hop mixing delay
    mixnet_mean_hop_delay_s: float = 0.05
    ksm_enabled: bool = True
    #: launch nymboxes from the hypervisor's zygote cache (pre-booted
    #: memory templates + shared read-only mount layers, adopted
    #: copy-on-write).  Clones are semantically identical to cold boots;
    #: disabling this replays the full cold construction path per launch.
    flash_clone: bool = True
    #: verify every base-image read against the published Merkle root (§3.4)
    verify_base_image: bool = False
    #: derive Tor entry guards from (storage location, password) so even the
    #: ephemeral download nym uses the nym's own guards (§3.5 mitigation)
    deterministic_guards: bool = False
    #: Dunn-style ephemeral-channel scrubbing of host-side traces (§3.4);
    #: the paper defers this for its hardware/compute cost, so default off
    ephemeral_channels: bool = False
