"""Quasi-persistent nym state: capture, seal, upload, restore (§3.5).

The store workflow, exactly as the paper's §3.5 "Workflow" paragraph runs
it: pause the nym's VMs, sync their file systems, compress and encrypt the
writable (temporary) images, resume the VMs, and upload the ciphertext
through the nym's own CommVM.  The cloud provider receives one opaque
sealed blob from a Tor exit address.

Only writable layers travel: the base image is the public distribution.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.anonymizers.base import AnonymizerState
from repro.cloud.provider import CloudAccount, CloudProvider
from repro.core.nymbox import NymBox
from repro.crypto.aead import SealedBlob, SealedBox
from repro.errors import PersistenceError, TransientCloudError
from repro.faults.retry import RetryPolicy, retry_call
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng

_MAGIC = b"NYMFS1\n"

# Simulated processing rates for the pack/unpack pipeline (bytes/second).
_COMPRESS_BPS = 60 * 1024 * 1024
_CRYPTO_BPS = 150 * 1024 * 1024
_KDF_SECONDS = 0.3
_SYNC_SECONDS = 0.5


@dataclass(frozen=True)
class FsSnapshot:
    """The writable layers of both VMs plus anonymizer state, as one blob."""

    anon_files: Dict[str, bytes]
    comm_files: Dict[str, bytes]
    anonymizer_state: AnonymizerState

    @classmethod
    def capture(cls, nymbox: NymBox) -> "FsSnapshot":
        return cls(
            anon_files={p: nymbox.anonvm.fs.top.read(p) for p in nymbox.anonvm.fs.top.paths()},
            comm_files={p: nymbox.commvm.fs.top.read(p) for p in nymbox.commvm.fs.top.paths()},
            anonymizer_state=nymbox.anonymizer.export_state(),
        )

    @property
    def raw_bytes(self) -> int:
        return sum(len(d) for d in self.anon_files.values()) + sum(
            len(d) for d in self.comm_files.values()
        )

    @property
    def anonvm_fraction(self) -> float:
        """Share of snapshot bytes from the AnonVM (≈ 85% per §5.3)."""
        total = self.raw_bytes
        if total == 0:
            return 0.0
        return sum(len(d) for d in self.anon_files.values()) / total

    # -- wire format -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        blob_parts = []
        manifest: Dict[str, object] = {"anon": [], "comm": [], "state": None}
        offset = 0
        for section, files in (("anon", self.anon_files), ("comm", self.comm_files)):
            entries = []
            for path in sorted(files):
                data = files[path]
                entries.append([path, offset, len(data)])
                blob_parts.append(data)
                offset += len(data)
            manifest[section] = entries
        manifest["state"] = {
            "kind": self.anonymizer_state.kind,
            "payload": self.anonymizer_state.payload,
        }
        header = json.dumps(manifest, sort_keys=True).encode()
        return _MAGIC + len(header).to_bytes(4, "big") + header + b"".join(blob_parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FsSnapshot":
        if not data.startswith(_MAGIC):
            raise PersistenceError("not a Nymix file-system snapshot")
        header_len = int.from_bytes(data[len(_MAGIC) : len(_MAGIC) + 4], "big")
        body_start = len(_MAGIC) + 4 + header_len
        try:
            manifest = json.loads(data[len(_MAGIC) + 4 : body_start])
        except ValueError as exc:
            raise PersistenceError("corrupt snapshot manifest") from exc
        blob = data[body_start:]

        def section(name: str) -> Dict[str, bytes]:
            files = {}
            for path, offset, length in manifest[name]:
                chunk = blob[offset : offset + length]
                if len(chunk) != length:
                    raise PersistenceError(f"truncated snapshot body at {path!r}")
                files[path] = chunk
            return files

        state = manifest["state"]
        return cls(
            anon_files=section("anon"),
            comm_files=section("comm"),
            anonymizer_state=AnonymizerState(kind=state["kind"], payload=state["payload"]),
        )


@dataclass(frozen=True)
class StoreReceipt:
    """What one save cycle produced and cost."""

    nym_name: str
    blob_name: str
    raw_bytes: int
    compressed_bytes: int
    encrypted_bytes: int
    pack_seconds: float
    upload_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.pack_seconds + self.upload_seconds

    @property
    def compression_ratio(self) -> float:
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes


class NymStore:
    """Seals nym snapshots and moves them to/from cloud providers."""

    def __init__(
        self,
        timeline: Timeline,
        rng: SeededRng,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.timeline = timeline
        self.rng = rng
        self.retry_policy = retry_policy or RetryPolicy()

    # -- resumable transfer ------------------------------------------------------

    def _transfer_resumable(
        self,
        nat,
        dst_ip,
        total_bytes: int,
        overhead_factor: float,
        path_latency_s: float,
        site: str,
    ) -> None:
        """Move ``total_bytes`` through ``nat``, surviving injected faults.

        A transfer that dies mid-flight keeps the bytes already streamed
        (a range-request resume, as real cloud APIs offer): each retry
        picks up at the offset the failure left, so a nym snapshot survives
        an interrupted upload without re-sending the whole blob.  With no
        fault armed this is exactly one stream — the seed's happy path,
        timing included.
        """
        state = {"offset": 0}

        def attempt() -> None:
            remaining = total_bytes - state["offset"]
            fault = self.timeline.faults.take(site)
            if fault is not None:
                fraction = fault.param if 0.0 < fault.param < 1.0 else 0.5
                partial = int(remaining * fraction)
                if partial:
                    duration = nat.stream(
                        dst_ip, partial, label="anonymizer",
                        overhead_factor=overhead_factor,
                    )
                    self.timeline.sleep(duration)
                    state["offset"] += partial
                raise TransientCloudError(
                    f"{site} interrupted at {state['offset']}/{total_bytes} bytes"
                )
            duration = nat.stream(
                dst_ip, remaining, label="anonymizer",
                overhead_factor=overhead_factor,
            )
            self.timeline.sleep(duration + path_latency_s * 2)

        def resumed(failures: int, exc: BaseException) -> None:
            self.timeline.obs.metrics.counter(f"{site}.retries").inc()

        retry_call(
            self.timeline,
            attempt,
            policy=self.retry_policy,
            retryable=TransientCloudError,
            site=site,
            on_retry=resumed,
        )

    # -- packing ---------------------------------------------------------------

    def pack(self, snapshot: FsSnapshot, password: str) -> Tuple[bytes, StoreReceipt]:
        """Serialize -> compress -> encrypt.  Advances the timeline."""
        start = self.timeline.now
        raw = snapshot.to_bytes()
        self.timeline.sleep(len(raw) / _COMPRESS_BPS)
        compressed = zlib.compress(raw, level=6)
        self.timeline.sleep(_KDF_SECONDS + len(compressed) / _CRYPTO_BPS)
        box = SealedBox(password, self.rng)
        sealed = box.seal(compressed).to_bytes()
        receipt = StoreReceipt(
            nym_name="",
            blob_name="",
            raw_bytes=snapshot.raw_bytes,
            compressed_bytes=len(compressed),
            encrypted_bytes=len(sealed),
            pack_seconds=self.timeline.now - start,
            upload_seconds=0.0,
        )
        return sealed, receipt

    def unpack(self, sealed: bytes, password: str) -> FsSnapshot:
        """Decrypt -> decompress -> parse.  Advances the timeline."""
        self.timeline.sleep(_KDF_SECONDS + len(sealed) / _CRYPTO_BPS)
        box = SealedBox(password, self.rng)
        try:
            compressed = box.open(SealedBlob.from_bytes(sealed))
        except Exception as exc:
            raise PersistenceError(f"cannot open sealed nym state: {exc}") from exc
        self.timeline.sleep(len(compressed) / _COMPRESS_BPS)
        return FsSnapshot.from_bytes(zlib.decompress(compressed))

    # -- the full store workflow (§3.5) -----------------------------------------------

    def save(
        self,
        nymbox: NymBox,
        blob_name: str,
        password: str,
        provider: CloudProvider,
        account: CloudAccount,
    ) -> StoreReceipt:
        """Pause -> sync -> pack -> resume -> upload via the nym's CommVM."""
        anonymizer = nymbox.anonymizer
        # Navigate to the cloud service's login page through the anonymizer.
        anonymizer.fetch(provider.hostname, path="/login")
        provider.login(
            account.username, account.password, self.timeline.now, anonymizer.exit_address()
        )

        nymbox.pause()
        self.timeline.sleep(_SYNC_SECONDS)
        snapshot = FsSnapshot.capture(nymbox)
        sealed, receipt = self.pack(snapshot, password)
        nymbox.resume()

        plan = anonymizer.plan(len(sealed))
        upload_start = self.timeline.now
        self._transfer_resumable(
            nymbox.nat,
            provider.ip,
            len(sealed),
            overhead_factor=plan.overhead_factor,
            path_latency_s=plan.path_latency_s,
            site="cloud.upload",
        )
        provider.put(account, blob_name, sealed, self.timeline.now, anonymizer.exit_address())
        return StoreReceipt(
            nym_name=nymbox.nym.name,
            blob_name=blob_name,
            raw_bytes=receipt.raw_bytes,
            compressed_bytes=receipt.compressed_bytes,
            encrypted_bytes=receipt.encrypted_bytes,
            pack_seconds=receipt.pack_seconds,
            upload_seconds=self.timeline.now - upload_start,
        )

    # -- download (runs inside the ephemeral download nym) ------------------------------

    def download(
        self,
        via_nymbox: NymBox,
        blob_name: str,
        provider: CloudProvider,
        account: CloudAccount,
    ) -> bytes:
        """Fetch a sealed blob anonymously through ``via_nymbox``."""
        anonymizer = via_nymbox.anonymizer
        anonymizer.fetch(provider.hostname, path="/login")
        provider.login(
            account.username, account.password, self.timeline.now, anonymizer.exit_address()
        )
        blob = provider.get(account, blob_name, self.timeline.now, anonymizer.exit_address())
        plan = anonymizer.plan(blob.size)
        self._transfer_resumable(
            via_nymbox.nat,
            provider.ip,
            blob.size,
            overhead_factor=plan.overhead_factor,
            path_latency_s=plan.path_latency_s,
            site="cloud.download",
        )
        return blob.data

    # -- restore into a fresh nymbox --------------------------------------------------

    @staticmethod
    def restore_files(nymbox: NymBox, snapshot: FsSnapshot) -> None:
        """Write the snapshot's files into the fresh VMs' writable layers."""
        for path, data in snapshot.anon_files.items():
            nymbox.anonvm.fs.write(path, data)
        for path, data in snapshot.comm_files.items():
            nymbox.commvm.fs.write(path, data)
        nymbox.reset_browser_index()
