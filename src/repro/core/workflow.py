"""The Nym Manager's interactive workflow (§3.5 "Workflow"), as a state machine.

On boot the user faces the Nym Manager screen: *start a fresh nym* or
*load an existing nym*.  Storing walks through name, password, and cloud
service selection, the service's login page (fetched through the nym's
own anonymizer), the background pause/sync/pack/upload, and the "nym has
been saved" notification.  This module encodes those steps explicitly so
misuse (skipping login, storing before naming) is a state error — the
user-facing analogue of the structural protections below it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.manager import NymManager
from repro.core.nymbox import NymBox
from repro.core.persistence import StoreReceipt
from repro.errors import NymStateError


class Screen(enum.Enum):
    """Where the user is in the Nym Manager UI."""

    MAIN_MENU = "main-menu"
    NYM_RUNNING = "nym-running"
    STORE_DETAILS = "store-details"  # name, password, cloud service
    CLOUD_LOGIN = "cloud-login"
    SAVING = "saving"
    SAVED = "saved"


@dataclass
class WorkflowEvent:
    screen: Screen
    note: str
    at: float


class NymManagerWorkflow:
    """Drives one user session through the §3.5 screens."""

    def __init__(self, manager: NymManager) -> None:
        self.manager = manager
        self.screen = Screen.MAIN_MENU
        self.nymbox: Optional[NymBox] = None
        self.events: List[WorkflowEvent] = []
        self._store_name: Optional[str] = None
        self._store_password: Optional[str] = None
        self._provider_host: Optional[str] = None
        self._account_username: Optional[str] = None
        self._logged_in = False

    # -- helpers ----------------------------------------------------------------

    def _note(self, note: str) -> None:
        self.events.append(
            WorkflowEvent(screen=self.screen, note=note, at=self.manager.timeline.now)
        )

    def _require(self, *screens: Screen) -> None:
        if self.screen not in screens:
            allowed = ", ".join(s.value for s in screens)
            raise NymStateError(
                f"workflow is on {self.screen.value!r}; action requires {allowed}"
            )

    # -- main menu ------------------------------------------------------------------

    def start_fresh_nym(self, name: Optional[str] = None, anonymizer: Optional[str] = None) -> NymBox:
        """Main menu -> "start a fresh nym"."""
        self._require(Screen.MAIN_MENU)
        self.nymbox = self.manager.create_nym(name=name, anonymizer=anonymizer)
        self.screen = Screen.NYM_RUNNING
        self._note(f"fresh nym {self.nymbox.nym.name!r} started")
        return self.nymbox

    def load_existing_nym(self, name: str, password: str) -> NymBox:
        """Main menu -> "load an existing nym"."""
        self._require(Screen.MAIN_MENU)
        self.nymbox = self.manager.load_nym(name, password)
        self.screen = Screen.NYM_RUNNING
        self._note(f"nym {name!r} loaded from storage")
        return self.nymbox

    # -- the store flow ------------------------------------------------------------------

    def open_store_dialog(self) -> None:
        """Nym running -> "store nym"."""
        self._require(Screen.NYM_RUNNING)
        self.screen = Screen.STORE_DETAILS
        self._note("store-nym dialog opened")

    def enter_store_details(
        self, name: str, password: str, provider_host: str
    ) -> None:
        """Enter a name, an encryption password, and pick a cloud service."""
        self._require(Screen.STORE_DETAILS)
        if not name or not password:
            raise NymStateError("nym name and password are required")
        if provider_host not in self.manager.providers:
            raise NymStateError(f"unknown cloud service {provider_host!r}")
        self._store_name = name
        self._store_password = password
        self._provider_host = provider_host
        self.screen = Screen.CLOUD_LOGIN
        self._note(f"navigating to {provider_host} login via the nym's anonymizer")

    def login_to_cloud(self, username: str, password: str) -> None:
        """The user signs in on the provider's page (anonymized fetch)."""
        self._require(Screen.CLOUD_LOGIN)
        assert self.nymbox is not None and self._provider_host is not None
        provider = self.manager.providers[self._provider_host]
        self.nymbox.anonymizer.fetch(self._provider_host, path="/login")
        provider.login(
            username, password, self.manager.timeline.now,
            self.nymbox.anonymizer.exit_address(),
        )
        self._account_username = username
        self._logged_in = True
        self.screen = Screen.SAVING
        self._note("cloud login complete; saving in the background")

    def complete_save(self) -> StoreReceipt:
        """Background pause/sync/pack/resume/upload, then notify."""
        self._require(Screen.SAVING)
        assert self.nymbox is not None
        if not self._logged_in:
            raise NymStateError("cannot save before cloud login")
        receipt = self.manager.store_nym(
            self.nymbox,
            password=self._store_password,
            provider_host=self._provider_host,
            account_username=self._account_username,
            blob_name=f"{self._store_name}.nymbox",
        )
        self.screen = Screen.SAVED
        self._note(
            f"nym saved ({receipt.encrypted_bytes} bytes in "
            f"{receipt.total_seconds:.1f} s); user notified"
        )
        return receipt

    # -- session end -------------------------------------------------------------------

    def close_nym(self) -> None:
        """Turn the nym off (from the running or saved screens)."""
        self._require(Screen.NYM_RUNNING, Screen.SAVED)
        assert self.nymbox is not None
        self.manager.discard_nym(self.nymbox)
        self._note(f"nym {self.nymbox.nym.name!r} closed (amnesia)")
        self.nymbox = None
        self.screen = Screen.MAIN_MENU
        self._store_name = None
        self._store_password = None
        self._provider_host = None
        self._account_username = None
        self._logged_in = False

    def transcript(self) -> List[str]:
        return [f"[{e.at:8.1f}s] {e.screen.value}: {e.note}" for e in self.events]
