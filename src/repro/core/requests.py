"""Request objects for the redesigned :class:`NymManager` public API.

The manager's entry points take keyword-only parameters; callers that
build a nym configuration in one place and hand it around (the fleet
scheduler, scenario scripts, tests with shared fixtures) pass one of
these frozen request objects instead of re-threading six keywords.

Explicit keyword arguments always win over the request's fields, so a
request can serve as a template:

    base = NymRequest(anonymizer="tor+dissent", chain_commvms=True)
    manager.create_nym(base, name="alice")
    manager.create_nym(base, name="bob")
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.anonymizers.tor.guard import GuardManager
from repro.core.nym import NymUsageModel
from repro.vmm.vm import VmSpec


@dataclass(frozen=True)
class NymRequest:
    """Everything :meth:`NymManager.create_nym` needs to start one nym."""

    name: Optional[str] = None
    anonymizer: Optional[str] = None
    usage: NymUsageModel = NymUsageModel.EPHEMERAL
    anon_spec: Optional[VmSpec] = None
    comm_spec: Optional[VmSpec] = None
    guard_manager: Optional[GuardManager] = None
    chain_commvms: bool = False
    #: owning tenant (session-level binding; consulted by the ingress
    #: shaper via ``timeline.tenancy``).  None/"" = untenanted.
    tenant: Optional[str] = None

    def merged(self, overrides: dict) -> "NymRequest":
        """A copy with every non-``None`` override applied."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update({k: v for k, v in overrides.items() if v is not None})
        return NymRequest(**values)


@dataclass(frozen=True)
class StoreNymRequest:
    """Everything :meth:`NymManager.store_nym` needs to put a nym away.

    ``provider_host=None`` keeps the sealed blob on local media (the §3.5
    security-tradeoff alternative to anonymous cloud storage).
    """

    password: Optional[str] = None
    provider_host: Optional[str] = None
    account_username: Optional[str] = None
    blob_name: Optional[str] = None

    def merged(self, overrides: dict) -> "StoreNymRequest":
        """A copy with every non-``None`` override applied."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update({k: v for k, v in overrides.items() if v is not None})
        return StoreNymRequest(**values)
