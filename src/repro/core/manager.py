"""The Nym Manager: supervisory control over nym creation, longevity, destruction."""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.anonymizers.base import Anonymizer, create_anonymizer
from repro.anonymizers.compose import SerialComposition
from repro.anonymizers.dissent.dcnet import DcNetDeployment
from repro.anonymizers.tor.directory import DirectoryAuthority
from repro.anonymizers.tor.guard import GuardManager
from repro.cloud.provider import CloudAccount, CloudProvider
from repro.core.config import NymixConfig
from repro.core.nym import Nym, NymUsageModel
from repro.core.nymbox import NymBox, StartupPhases
from repro.core.persistence import FsSnapshot, NymStore, StoreReceipt
from repro.core.requests import NymRequest, StoreNymRequest
from repro.errors import NymError, NymStateError, PersistenceError
from repro.guest.browser import PageLoad
from repro.guest.installed_os import INSTALLED_OS_CATALOG, InstalledOs
from repro.guest.websites import populate_internet
from repro.memory.remanence import RemanenceTracker
from repro.net.internet import Internet
from repro.sanitize.sanivm import SaniVm, TransferRecord
from repro.sanitize.transforms import ParanoiaLevel
from repro.sim.clock import Timeline
from repro.unionfs.layer import Layer
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.vm import VirtualMachine, VmSpec


def _legacy_positional_shim(
    method: str, args: tuple, order: Tuple[str, ...], explicit: dict
) -> dict:
    """Map deprecated positional arguments onto their keyword names.

    Returns ``explicit`` with the positionals folded in, warning once per
    call site; a parameter given both ways is a ``TypeError`` exactly as
    a normal signature would raise.
    """
    if len(args) > len(order):
        raise TypeError(
            f"{method}() takes at most {len(order)} legacy positional "
            f"arguments ({len(args)} given)"
        )
    warnings.warn(
        f"positional arguments to NymManager.{method}() are deprecated; "
        f"pass keyword arguments or a request object instead",
        DeprecationWarning,
        stacklevel=3,
    )
    merged = dict(explicit)
    for param, value in zip(order, args):
        if merged.get(param) is not None:
            raise TypeError(f"{method}() got multiple values for argument {param!r}")
        merged[param] = value
    return merged


@dataclass
class StoredNymRecord:
    """Catalog entry for a quasi-persistent nym (no password is kept!)."""

    name: str
    usage_model: NymUsageModel
    anonymizer_kind: str
    provider_host: Optional[str]  # None = local storage
    account_username: Optional[str]
    blob_name: str
    save_cycles: int = 0
    receipts: List[StoreReceipt] = field(default_factory=list)


@dataclass(frozen=True)
class InstalledOsNymReport:
    """Table 1's row for one installed-OS nym session."""

    os_name: str
    repair_seconds: float
    boot_seconds: float
    cow_bytes: int
    physical_disk_modified: bool


class NymManager:
    """The user-facing supervisor (Figure 2's "Nym Manager").

    Owns the whole stack: timeline, simulated Internet, hypervisor, the
    shared Tor test deployment and Dissent deployment, cloud providers,
    the SaniVM, and every live nymbox.
    """

    def __init__(self, config: Optional[NymixConfig] = None) -> None:
        self.config = config or NymixConfig()
        self.timeline = Timeline(
            seed=self.config.seed, observability=self.config.observability
        )
        #: the shared per-simulation observability sink (metrics, tracer,
        #: event journal) — every component reaches it as ``timeline.obs``
        self.obs = self.timeline.obs
        host = self.config.host
        self.internet = Internet(
            self.timeline, uplink_bps=host.uplink_bps, rtt_s=host.uplink_rtt_s
        )
        self.web_servers = populate_internet(self.internet)
        self.hypervisor = Hypervisor(
            self.timeline,
            self.internet,
            host=host,
            verify_base_image=self.config.verify_base_image,
            ksm_enabled=self.config.ksm_enabled,
            zygote_cache=self.config.flash_clone,
        )
        self.directory = DirectoryAuthority(
            self.timeline.fork_rng("tor-directory"), relay_count=self.config.tor_relay_count
        )
        self.dcnet = DcNetDeployment(
            self.timeline.fork_rng("dcnet"),
            num_clients=self.config.dissent_clients,
            num_servers=self.config.dissent_servers,
        )
        # The mixnet deployment is lazy: topology keygen costs L*M X25519
        # operations, and most managers never launch a mixnet nym.
        self._mixnet: Optional["MixTopology"] = None
        self.store = NymStore(self.timeline, self.timeline.fork_rng("store"))
        self.providers: Dict[str, CloudProvider] = {}
        self._accounts: Dict[Tuple[str, str], CloudAccount] = {}
        self._local_blobs: Dict[str, bytes] = {}
        self.stored_nyms: Dict[str, StoredNymRecord] = {}
        self.nymboxes: Dict[str, NymBox] = {}
        self._sanivm: Optional[SaniVm] = None
        self._nym_counter = itertools.count(1)
        self._dissent_slot = itertools.count(0)
        # Host-side trace accounting (§3.4's Dunn discussion): guest pages
        # are erased at teardown, but host copies persist until reboot.
        self.remanence = RemanenceTracker(
            ephemeral_channels=self.config.ephemeral_channels, obs=self.obs
        )
        self.hypervisor.acquire_lan_address()

    # -- cloud providers -----------------------------------------------------------

    def add_cloud_provider(self, provider: CloudProvider) -> CloudProvider:
        self.internet.add_server(provider)
        self.providers[provider.hostname] = provider
        return provider

    def create_cloud_account(
        self, provider_host: str, username: str, password: str
    ) -> CloudAccount:
        """Open a pseudonymous account (one per nym is the intended pattern)."""
        provider = self._provider(provider_host)
        account = provider.create_account(username, password)
        self._accounts[(provider_host, username)] = account
        return account

    def _provider(self, provider_host: str) -> CloudProvider:
        try:
            return self.providers[provider_host]
        except KeyError:
            raise NymError(f"no cloud provider registered for {provider_host!r}") from None

    def _account(self, provider_host: str, username: str) -> CloudAccount:
        try:
            return self._accounts[(provider_host, username)]
        except KeyError:
            raise NymError(
                f"no account {username!r} known at {provider_host!r}"
            ) from None

    # -- anonymizer construction -------------------------------------------------------

    def _make_anonymizer(
        self,
        kind: str,
        nat,
        rng,
        guard_manager: Optional[GuardManager] = None,
    ) -> Anonymizer:
        if "+" in kind:
            stages = [
                self._make_anonymizer(stage_kind, nat, rng.fork(f"stage:{i}"))
                for i, stage_kind in enumerate(kind.split("+"))
            ]
            return SerialComposition(stages)
        if kind == "stegotorus" or kind.startswith("stegotorus:"):
            # "stegotorus" camouflages Tor by default; "stegotorus:<kind>"
            # wraps any other transport.
            from repro.anonymizers.stegotorus import StegoTorusWrapper

            inner_kind = kind.partition(":")[2] or "tor"
            inner = self._make_anonymizer(inner_kind, nat, rng.fork("steg-inner"))
            return StegoTorusWrapper(inner)
        kwargs = {}
        if kind == "tor":
            kwargs["directory"] = self.directory
            if guard_manager is not None:
                kwargs["guard_manager"] = guard_manager
        elif kind == "dissent":
            kwargs["deployment"] = self.dcnet
            kwargs["client_index"] = next(self._dissent_slot) % self.dcnet.num_clients
        elif kind == "mixnet":
            kwargs["topology"] = self.mixnet_topology()
            kwargs["cover_rate_pps"] = self.config.mixnet_cover_rate_pps
            kwargs["mean_hop_delay_s"] = self.config.mixnet_mean_hop_delay_s
        return create_anonymizer(
            kind, self.timeline, self.internet, nat, rng, **kwargs
        )

    def mixnet_topology(self, create: bool = True):
        """The shared mix deployment, built on first use.

        ``create=False`` peeks without building (the fault injector uses
        this so a ``mixnet.node_crash`` against a mixnet-less run is a
        recorded no-op instead of a surprise keygen).
        """
        if self._mixnet is None and create:
            from repro.mixnet.topology import MixTopology

            self._mixnet = MixTopology(
                self.timeline.fork_rng("mixnet"),
                layers=self.config.mixnet_layers,
                nodes_per_layer=self.config.mixnet_nodes_per_layer,
                obs=self.obs,
            )
        return self._mixnet

    # -- nym lifecycle -----------------------------------------------------------------

    def _build_nymbox(
        self,
        name: str,
        anonymizer_kind: str,
        usage: NymUsageModel,
        anon_spec: Optional[VmSpec],
        comm_spec: Optional[VmSpec],
        guard_manager: Optional[GuardManager],
        chain_commvms: bool = False,
    ) -> NymBox:
        nym = Nym(
            name=name,
            usage_model=usage,
            anonymizer_kind=anonymizer_kind,
            created_at=self.timeline.now,
        )
        hv = self.hypervisor
        created_vms = []
        stage_kinds = (
            anonymizer_kind.split("+") if chain_commvms else [anonymizer_kind]
        )
        try:
            # The base AnonVM+CommVM pair launches through the zygote cache
            # (flash_clone handles the cold path too when it is disabled).
            template = hv.nymbox_template(
                anon_spec or VmSpec.anonvm(),
                comm_spec or VmSpec.commvm(),
                anonymizer=stage_kinds[0],
            )
            anonvm, commvm, wire = hv.flash_clone(template, name)
            created_vms.extend([anonvm, commvm])
            # Serial chaining (§3.3): one CommVM per further stage, each
            # wired to the previous; the NAT hangs off the last hop.
            extra_commvms = []
            last_comm = commvm
            for position, stage_kind in enumerate(stage_kinds[1:]):
                next_comm = hv.create_vm(
                    comm_spec or VmSpec.commvm(),
                    name=f"{name}-comm{position + 2}",
                    anonymizer=stage_kind,
                )
                created_vms.append(next_comm)
                hv.wire_comm_chain(last_comm, next_comm, position)
                extra_commvms.append(next_comm)
                last_comm = next_comm
            nat = hv.attach_nat(last_comm)
        except Exception:
            # Partial construction must not leak VMs or names.
            for vm in created_vms:
                hv.destroy_vm(vm)
            raise
        rng = self.timeline.fork_rng(f"nym:{name}")
        anonymizer = self._make_anonymizer(
            anonymizer_kind, nat, rng.fork("anonymizer"), guard_manager
        )
        nymbox = NymBox(
            timeline=self.timeline,
            nym=nym,
            anonvm=anonvm,
            commvm=commvm,
            wire=wire,
            nat=nat,
            anonymizer=anonymizer,
            rng=rng,
            extra_commvms=extra_commvms,
        )
        self.nymboxes[name] = nymbox
        return nymbox

    def _launch(self, nymbox: NymBox) -> None:
        """Boot the VMs (in parallel) and start the anonymizer, timing phases."""
        rng = nymbox.rng
        with self.obs.span("nymbox.launch", nym=nymbox.nym.name):
            t0 = self.timeline.now
            # All guests boot concurrently; the AnonVM (the longest boot) sets the pace.
            nymbox.commvm.boot(rng, advance=False)
            for extra in nymbox.extra_commvms:
                extra.boot(rng, advance=False)
            nymbox.anonvm.boot(rng, advance=True)
            nymbox.startup.boot_vm_s = self.timeline.now - t0
            t1 = self.timeline.now
            nymbox.anonymizer.start()
            nymbox.startup.start_anonymizer_s = self.timeline.now - t1
            self.hypervisor.ksm.scan(passes=2)
        self.obs.metrics.histogram("nym.launch_s").observe(
            nymbox.startup.boot_vm_s + nymbox.startup.start_anonymizer_s
        )

    _CREATE_NYM_LEGACY_ORDER = (
        "name", "anonymizer", "usage", "anon_spec", "comm_spec",
        "guard_manager", "chain_commvms",
    )

    def create_nym(
        self,
        *args,
        request: Optional[NymRequest] = None,
        name: Optional[str] = None,
        anonymizer: Optional[str] = None,
        usage: Optional[NymUsageModel] = None,
        anon_spec: Optional[VmSpec] = None,
        comm_spec: Optional[VmSpec] = None,
        guard_manager: Optional[GuardManager] = None,
        chain_commvms: Optional[bool] = None,
        tenant: Optional[str] = None,
    ) -> NymBox:
        """Start a fresh nym ("start a fresh nym" in the §3.5 workflow).

        All parameters are keyword-only.  A :class:`NymRequest` may be
        passed (positionally or as ``request=``) as a template; explicit
        keywords override its fields.  With ``chain_commvms`` and a
        composed transport like ``"tor+dissent"``, each stage gets its own
        CommVM wired in serial (§3.3) instead of stacking inside one
        CommVM.

        Legacy positional calls (``create_nym(name="alice", "tor")``) still
        work through a shim that emits :class:`DeprecationWarning`.
        """
        explicit = {
            "name": name, "anonymizer": anonymizer, "usage": usage,
            "anon_spec": anon_spec, "comm_spec": comm_spec,
            "guard_manager": guard_manager, "chain_commvms": chain_commvms,
            "tenant": tenant,
        }
        if args and isinstance(args[0], NymRequest):
            if request is not None:
                raise TypeError("create_nym() got two request objects")
            request, args = args[0], args[1:]
        if args:
            explicit = _legacy_positional_shim(
                "create_nym", args, self._CREATE_NYM_LEGACY_ORDER, explicit
            )
        request = (request or NymRequest()).merged(explicit)
        name = request.name
        anonymizer = request.anonymizer
        usage = request.usage
        anon_spec = request.anon_spec
        comm_spec = request.comm_spec
        guard_manager = request.guard_manager
        chain_commvms = request.chain_commvms
        tenant = request.tenant or ""

        name = name or f"nym-{next(self._nym_counter)}"
        if name in self.nymboxes:
            raise NymError(f"a nymbox named {name!r} is already running")
        kind = anonymizer or self.config.default_anonymizer
        nymbox = self._build_nymbox(
            name, kind, usage, anon_spec, comm_spec, guard_manager,
            chain_commvms=chain_commvms,
        )
        # Session-level tenant binding: the outermost anonymizer carries
        # it so the ingress shaper can meter this nym's sends.  Not
        # persisted with stored nyms — a restore re-binds on creation.
        nymbox.tenant = tenant
        nymbox.anonymizer.tenant = tenant
        self._launch(nymbox)
        self.obs.metrics.counter("nym.created").inc()
        self.obs.metrics.gauge("nym.live").set(len(self.nymboxes))
        self.obs.event(
            "nym.created", nym=name, anonymizer=kind, usage=usage.value
        )
        return nymbox

    def timed_browse(self, nymbox: NymBox, hostname: str) -> PageLoad:
        """Browse and record the Figure 7 "Load webpage" phase (first load)."""
        t0 = self.timeline.now
        load = nymbox.browse(hostname)
        if nymbox.startup.load_page_s == 0.0:
            nymbox.startup.load_page_s = self.timeline.now - t0
        return load

    def discard_nym(self, nymbox: NymBox) -> None:
        """Turn off a pseudonym: amnesia (§3.4).

        Wipes the VMs' memory and writable layers; the wire comes down;
        nothing about the nym remains on the host.
        """
        footprint = nymbox.memory_bytes()
        with self.obs.span("nymbox.discard", nym=nymbox.nym.name):
            nymbox.anonymizer.stop()
            for vm in nymbox.all_vms:
                self.hypervisor.destroy_vm(vm)
            nymbox.destroyed = True
            self.nymboxes.pop(nymbox.nym.name, None)
            self.remanence.record_nym_teardown(nymbox.nym.name, footprint)
            self.hypervisor.ksm.reset_coverage()
            self.hypervisor.ksm.scan(passes=2)
        self.obs.metrics.counter("nym.discarded").inc()
        self.obs.metrics.gauge("nym.live").set(len(self.nymboxes))
        self.obs.event(
            "nym.discarded", nym=nymbox.nym.name, footprint_bytes=footprint
        )

    # -- quasi-persistence (§3.5) -----------------------------------------------------------

    _STORE_NYM_LEGACY_ORDER = (
        "password", "provider_host", "account_username", "blob_name",
    )

    def store_nym(
        self,
        nymbox: NymBox,
        *args,
        request: Optional[StoreNymRequest] = None,
        password: Optional[str] = None,
        provider_host: Optional[str] = None,
        account_username: Optional[str] = None,
        blob_name: Optional[str] = None,
    ) -> StoreReceipt:
        """The "store nym" workflow: seal the nym's state and put it away.

        Everything after ``nymbox`` is keyword-only; a
        :class:`StoreNymRequest` may be passed (positionally or as
        ``request=``) as a template, with explicit keywords overriding its
        fields.  With a ``provider_host`` the blob goes to the cloud
        through the nym's own anonymizer; with none it goes to local media
        (the §3.5 security-tradeoff alternative).

        Legacy positional calls (``store_nym(box, "pw", "dropbox.com")``)
        still work through a shim that emits :class:`DeprecationWarning`.
        """
        explicit = {
            "password": password, "provider_host": provider_host,
            "account_username": account_username, "blob_name": blob_name,
        }
        if args and isinstance(args[0], StoreNymRequest):
            if request is not None:
                raise TypeError("store_nym() got two request objects")
            request, args = args[0], args[1:]
        if args:
            explicit = _legacy_positional_shim(
                "store_nym", args, self._STORE_NYM_LEGACY_ORDER, explicit
            )
        request = (request or StoreNymRequest()).merged(explicit)
        password = request.password
        provider_host = request.provider_host
        account_username = request.account_username
        blob_name = request.blob_name
        if password is None:
            raise PersistenceError("store_nym needs the nym's password")

        nym = nymbox.nym
        blob = blob_name or f"{nym.name}.nymbox"
        with self.obs.span("nymbox.store", nym=nym.name):
            if provider_host is not None:
                provider = self._provider(provider_host)
                if account_username is None:
                    raise NymError("cloud storage needs an account username")
                account = self._account(provider_host, account_username)
                receipt = self.store.save(nymbox, blob, password, provider, account)
            else:
                nymbox.pause()
                snapshot = FsSnapshot.capture(nymbox)
                sealed, receipt = self.store.pack(snapshot, password)
                nymbox.resume()
                self._local_blobs[blob] = sealed
                receipt = StoreReceipt(
                    nym_name=nym.name,
                    blob_name=blob,
                    raw_bytes=receipt.raw_bytes,
                    compressed_bytes=receipt.compressed_bytes,
                    encrypted_bytes=receipt.encrypted_bytes,
                    pack_seconds=receipt.pack_seconds,
                    upload_seconds=0.0,
                )
        nym.storage_provider = provider_host
        nym.storage_blob = blob
        nym.save_cycles += 1
        if nym.usage_model is NymUsageModel.EPHEMERAL:
            nym.usage_model = NymUsageModel.PERSISTENT
        record = self.stored_nyms.get(nym.name)
        if record is None:
            record = StoredNymRecord(
                name=nym.name,
                usage_model=nym.usage_model,
                anonymizer_kind=nym.anonymizer_kind,
                provider_host=provider_host,
                account_username=account_username,
                blob_name=blob,
            )
            self.stored_nyms[nym.name] = record
        record.usage_model = nym.usage_model
        record.save_cycles += 1
        record.receipts.append(receipt)
        self.obs.metrics.counter("nym.stored").inc()
        self.obs.event(
            "nym.stored",
            nym=nym.name,
            blob=blob,
            cloud=provider_host is not None,
            encrypted_bytes=receipt.encrypted_bytes,
        )
        return receipt

    def snapshot_nym(self, nymbox: NymBox, password: str, **kwargs) -> StoreReceipt:
        """Store once and mark pre-configured: later sessions never re-save."""
        receipt = self.store_nym(nymbox, password=password, **kwargs)
        nymbox.nym.usage_model = NymUsageModel.PRECONFIGURED
        self.stored_nyms[nymbox.nym.name].usage_model = NymUsageModel.PRECONFIGURED
        return receipt

    def load_nym(
        self,
        name: str,
        password: str,
        account_password: Optional[str] = None,
    ) -> NymBox:
        """The "load an existing nym" workflow (§3.5).

        For cloud-stored nyms, a one-shot ephemeral nym fetches the sealed
        blob anonymously, is destroyed, and the real nym then starts from
        the decrypted state — with its preserved Tor guards.  The elapsed
        phases land in the returned nymbox's ``startup`` (including the
        "Ephemeral Nym" component of Figure 7).
        """
        record = self.stored_nyms.get(name)
        if record is None:
            raise PersistenceError(f"no stored nym named {name!r}")
        if name in self.nymboxes:
            raise NymStateError(f"nym {name!r} is already running")

        with self.obs.span("nymbox.load", nym=name):
            eph_start = self.timeline.now
            if record.provider_host is not None:
                provider = self._provider(record.provider_host)
                account = self._account(record.provider_host, record.account_username)
                with self.obs.span("nymbox.load.ephemeral_fetch", nym=name):
                    loader = self.create_nym(name=f"{name}-loader", anonymizer="tor")
                    sealed = self.store.download(
                        loader, record.blob_name, provider, account
                    )
                    self.discard_nym(loader)
            else:
                sealed = self._local_blobs.get(record.blob_name)
                if sealed is None:
                    raise PersistenceError(f"local blob {record.blob_name!r} is missing")
            snapshot = self.store.unpack(sealed, password)
            ephemeral_s = self.timeline.now - eph_start

            guard_manager = None
            if self.config.deterministic_guards and record.anonymizer_kind == "tor":
                guard_manager = GuardManager.deterministic(
                    storage_location=f"{record.provider_host or 'local'}/{record.blob_name}",
                    password=password,
                )
            nymbox = self._build_nymbox(
                name=name,
                anonymizer_kind=record.anonymizer_kind,
                usage=record.usage_model,
                anon_spec=None,
                comm_spec=None,
                guard_manager=guard_manager,
            )
            nymbox.anonymizer.import_state(snapshot.anonymizer_state)
            rng = nymbox.rng
            t0 = self.timeline.now
            nymbox.commvm.boot(rng, advance=False)
            nymbox.anonvm.boot(rng, advance=True)
            NymStore.restore_files(nymbox, snapshot)
            nymbox.startup.boot_vm_s = self.timeline.now - t0
            t1 = self.timeline.now
            nymbox.anonymizer.start()
            nymbox.startup.start_anonymizer_s = self.timeline.now - t1
            nymbox.startup.ephemeral_nym_s = ephemeral_s
            nymbox.nym.storage_provider = record.provider_host
            nymbox.nym.storage_blob = record.blob_name
            nymbox.nym.save_cycles = record.save_cycles
            self.hypervisor.ksm.scan(passes=2)
        self.obs.metrics.counter("nym.loaded").inc()
        self.obs.metrics.gauge("nym.live").set(len(self.nymboxes))
        self.obs.event(
            "nym.loaded",
            nym=name,
            cloud=record.provider_host is not None,
            ephemeral_s=round(ephemeral_s, 6),
        )
        return nymbox

    def recover_nym(
        self,
        name: str,
        password: str,
        account_password: Optional[str] = None,
    ) -> NymBox:
        """Relaunch a crashed nymbox from its quasi-persistent state.

        A crash is not amnesia: the wreck is discarded (its host traces
        scrubbed exactly like a normal teardown) and the nym comes back
        through the full §3.5 load path — ephemeral download nym, restored
        guards, re-imported file state.  Only stored nyms can recover;
        an unstored nym's state died with its VMs.
        """
        nymbox = self.nymboxes.get(name)
        if nymbox is None:
            raise NymError(f"no live nymbox named {name!r}")
        if not nymbox.crashed:
            raise NymStateError(f"nymbox {name!r} has not crashed")
        if name not in self.stored_nyms:
            raise PersistenceError(
                f"crashed nym {name!r} was never stored; its state is gone"
            )
        self.obs.metrics.counter("nym.recovered").inc()
        self.obs.event("nymbox.relaunch", nym=name)
        self.discard_nym(nymbox)
        return self.load_nym(name, password, account_password=account_password)

    def close_session(self, nymbox: NymBox, password: Optional[str] = None) -> Optional[StoreReceipt]:
        """End a session honoring the nym's usage model.

        Persistent nyms re-save (needs the password); pre-configured and
        ephemeral nyms just discard.
        """
        receipt = None
        nym = nymbox.nym
        if nym.usage_model is NymUsageModel.PERSISTENT and nym.save_cycles > 0:
            if password is None:
                raise PersistenceError(
                    f"persistent nym {nym.name!r} needs its password to re-save"
                )
            record = self.stored_nyms[nym.name]
            receipt = self.store_nym(
                nymbox,
                password=password,
                provider_host=record.provider_host,
                account_username=record.account_username,
                blob_name=record.blob_name,
            )
        self.discard_nym(nymbox)
        return receipt

    # -- sanitized transfer (§3.6) -------------------------------------------------------

    def sanivm(self) -> SaniVm:
        """The (single, air-gapped) SaniVM, created and booted on first use."""
        if self._sanivm is None:
            vm = self.hypervisor.create_vm(VmSpec.sanivm(), name="sanivm")
            vm.boot(self.timeline.fork_rng("sanivm-boot"))
            self._sanivm = SaniVm(self.timeline, vm)
        return self._sanivm

    def mount_host_filesystem(self, name: str, layer: Layer) -> None:
        self.sanivm().mount_host_filesystem(name, layer)

    def transfer_file_to_nym(
        self,
        mount: str,
        path: str,
        nymbox: NymBox,
        level: ParanoiaLevel = ParanoiaLevel.MEDIUM,
    ) -> TransferRecord:
        """SaniVM scrub -> hypervisor hand-off -> destination AnonVM inbox."""
        sanivm = self.sanivm()
        record = sanivm.transfer(mount, path, nymbox.nym.name, level)
        outbox = sanivm.outbox_for(nymbox.nym.name)
        for file_path in outbox.paths():
            outbox.move_to(file_path, nymbox.inbox)
        return record

    # -- installed OS as a nym (§3.7) ------------------------------------------------------

    def boot_installed_os_nym(self, os_name: str) -> Tuple[InstalledOsNymReport, VirtualMachine, InstalledOs]:
        """Boot the machine's installed OS in a non-anonymous nymbox."""
        try:
            profile = INSTALLED_OS_CATALOG[os_name]
        except KeyError:
            known = ", ".join(sorted(INSTALLED_OS_CATALOG))
            raise NymError(f"unknown installed OS {os_name!r} (known: {known})") from None
        ios = InstalledOs(profile, self.timeline.fork_rng(f"installed:{os_name}"))
        ios.attach_cow()
        repair_s = ios.repair(self.timeline)
        vm = self.hypervisor.create_vm(
            VmSpec.hostos(boot_seconds=profile.boot_seconds),
            name=f"hostos-{os_name.lower().replace(' ', '-')}-{next(self._nym_counter)}",
            image_id=ios.physical_disk.image_id,
        )
        vm.boot(self.timeline.fork_rng(f"installed-boot:{os_name}"), advance=False)
        boot_s = ios.boot(self.timeline)
        self.obs.metrics.counter("nym.installed_os_boots").inc()
        self.obs.event(
            "nym.installed_os_boot",
            os=os_name,
            repair_s=round(repair_s, 6),
            boot_s=round(boot_s, 6),
        )
        report = InstalledOsNymReport(
            os_name=os_name,
            repair_seconds=repair_s,
            boot_seconds=boot_s,
            cow_bytes=ios.cow_bytes,
            physical_disk_modified=ios.physical_disk_modified,
        )
        return report, vm, ios

    def reboot_host(self) -> int:
        """Power-cycle the machine: every live nym dies, volatile traces go.

        Returns the residual bytes cleared from host RAM.
        """
        killed = len(self.nymboxes)
        for nymbox in list(self.nymboxes.values()):
            self.discard_nym(nymbox)
        cleared = self.remanence.reboot()
        self.obs.event("host.reboot", nyms_killed=killed, cleared_bytes=cleared)
        return cleared

    # -- introspection --------------------------------------------------------------------

    def live_nyms(self) -> List[str]:
        return sorted(self.nymboxes)

    def __repr__(self) -> str:
        return (
            f"NymManager(live={len(self.nymboxes)}, stored={len(self.stored_nyms)}, "
            f"t={self.timeline.now:.1f}s)"
        )
