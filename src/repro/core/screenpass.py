"""ScreenPass-style trusted password entry (§6's proposed extension [47]).

"While Nymix might isolate a key logger, ScreenPass could offer Nymix a
means to secure password entry to avoid spoofing attacks by providing a
trusted password entry keyboard."

The mechanism: credentials are typed into a hypervisor-owned dialog that
the AnonVM cannot observe; the hypervisor then injects the secret into
the guest's form as opaque paste data, so no per-key events ever occur
inside the (possibly keylogged) guest.  The dialog also displays a
user-recognizable security image per nym, defeating guest-drawn fake
dialogs (spoofing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.nymbox import NymBox
from repro.errors import NymixError
from repro.obs import NULL_OBS


@dataclass(frozen=True)
class KeystrokeEvent:
    """One key event observable *inside* a guest."""

    vm_id: str
    key: str


class GuestKeylogger:
    """Malware with root in the AnonVM, recording in-guest key events."""

    def __init__(self) -> None:
        self.captured: List[KeystrokeEvent] = []

    def observe(self, event: KeystrokeEvent) -> None:
        self.captured.append(event)

    def captured_text(self, vm_id: str) -> str:
        return "".join(e.key for e in self.captured if e.vm_id == vm_id)


class TrustedPasswordEntry:
    """The hypervisor's ScreenPass dialog.

    ``keyloggers`` models whatever malware is resident in guests: in-guest
    typing feeds it; trusted entry does not.
    """

    def __init__(self, obs=NULL_OBS) -> None:
        self._security_images: Dict[str, str] = {}
        self.keyloggers: List[GuestKeylogger] = []
        self.entries_via_trusted_path = 0
        self.entries_typed_in_guest = 0
        self.obs = obs
        self._obs_trusted = obs.metrics.counter("screenpass.trusted_entries")
        self._obs_in_guest = obs.metrics.counter("screenpass.guest_entries")

    # -- anti-spoofing ----------------------------------------------------------

    def enroll_security_image(self, nym_name: str, image: str) -> None:
        """The user picks a recognition image for this nym's dialog."""
        if not image:
            raise NymixError("security image must be non-empty")
        self._security_images[nym_name] = image
        self.obs.event("screenpass.enrolled", nym=nym_name)

    def dialog_banner(self, nym_name: str) -> str:
        """What the real dialog shows.  A guest-drawn fake cannot know it."""
        image = self._security_images.get(nym_name)
        if image is None:
            raise NymixError(f"no security image enrolled for nym {nym_name!r}")
        return f"[hypervisor dialog | {image}]"

    def is_genuine_dialog(self, nym_name: str, banner: str) -> bool:
        try:
            return banner == self.dialog_banner(nym_name)
        except NymixError:
            return False

    # -- the two entry paths ------------------------------------------------------

    def type_in_guest(self, nymbox: NymBox, hostname: str, username: str, password: str) -> None:
        """The unsafe baseline: keystrokes happen inside the AnonVM."""
        for key in password:
            event = KeystrokeEvent(vm_id=nymbox.anonvm.vm_id, key=key)
            for keylogger in self.keyloggers:
                keylogger.observe(event)
        nymbox.sign_in(hostname, username, password)
        self.entries_typed_in_guest += 1
        self._obs_in_guest.inc()
        self.obs.event(
            "screenpass.guest_entry",
            nym=nymbox.nym.name,
            host=hostname,
            keystrokes_exposed=len(password),
        )

    def enter_via_trusted_path(
        self, nymbox: NymBox, hostname: str, username: str, password: str
    ) -> str:
        """ScreenPass: type into the hypervisor dialog, inject the result.

        Returns the banner the user verified before typing.  No per-key
        events reach the guest — resident keyloggers capture nothing.
        """
        banner = self.dialog_banner(nymbox.nym.name)
        # The secret is pasted into the form as one opaque buffer;
        # the guest never sees key events.
        nymbox.sign_in(hostname, username, password)
        self.entries_via_trusted_path += 1
        self._obs_trusted.inc()
        self.obs.event(
            "screenpass.trusted_entry", nym=nymbox.nym.name, host=hostname
        )
        return banner
