"""The Peacekeeper-style JavaScript CPU benchmark (§5.2, Figure 4).

Peacekeeper is a single-threaded browser benchmark whose score scales with
how fast the JavaScript engine churns through a fixed suite of work.  We
model it as a fixed work quantum; the score is calibrated so the paper's
host scores ≈ 4800 natively, drops ~20% under virtualization, and shares
cores beyond four parallel instances.

The benchmark is memory-hungry: the paper had to grow the AnonVM to ~1 GB
to keep Chromium from crashing — reproduced by :data:`REQUIRED_VM_RAM`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.vmm.vcpu import CpuModel

MIB = 1024 * 1024

#: work units in one full Peacekeeper suite run
SUITE_WORK = 60.0
#: score calibration: native quad-core i7 ≈ 4800 points
SCORE_SCALE = 4800.0 * SUITE_WORK
#: Chromium needs roughly a gigabyte to survive the suite (§5.2)
REQUIRED_VM_RAM = 1024 * MIB


@dataclass(frozen=True)
class PeacekeeperResult:
    """Figure 4's data: per-instance scores for one parallelism level."""

    nyms: int  # 0 = native
    scores: List[float]
    expected_score: float  # perfect-sharing prediction from the 1-nym run

    @property
    def mean_score(self) -> float:
        if not self.scores:
            return 0.0
        return sum(self.scores) / len(self.scores)


class PeacekeeperBenchmark:
    """Runs the suite natively or in N parallel single-vCPU guests."""

    def __init__(self, cpu: CpuModel) -> None:
        self.cpu = cpu

    @staticmethod
    def _score(duration_s: float) -> float:
        if duration_s <= 0:
            return float("inf")
        return SCORE_SCALE / duration_s

    def run_native(self) -> PeacekeeperResult:
        duration = self.cpu.run_native(SUITE_WORK)
        score = self._score(duration)
        return PeacekeeperResult(nyms=0, scores=[score], expected_score=score)

    def run_in_nyms(self, nyms: int) -> PeacekeeperResult:
        """One instance per nym, all started simultaneously."""
        if nyms < 1:
            raise ValueError(f"nyms must be >= 1, got {nyms}")
        results = self.cpu.run_guests_parallel([SUITE_WORK] * nyms)
        scores = [self._score(r.duration_s) for r in results]
        expected = self._score(self.cpu.expected_parallel_duration(SUITE_WORK, nyms))
        return PeacekeeperResult(nyms=nyms, scores=scores, expected_score=expected)

    def sweep(self, max_nyms: int = 8) -> List[PeacekeeperResult]:
        """Native baseline followed by 1..max_nyms parallel instances."""
        return [self.run_native()] + [self.run_in_nyms(n) for n in range(1, max_nyms + 1)]


@dataclass(frozen=True)
class NymboxRun:
    """One suite run inside an actual nymbox."""

    crashed: bool
    score: float
    reason: str = ""


def run_in_nymbox(nymbox, cpu: CpuModel, concurrent_nyms: int = 1) -> NymboxRun:
    """Run the suite in a real AnonVM, honoring its RAM limit.

    §5.2: "certain experiments with Peacekeeper consume too much memory
    causing Chrome to crash, therefore we had to increase the RAM
    allocated to the AnonVM" — a default 384 MB AnonVM crashes; a 1 GB
    one completes.
    """
    anonvm = nymbox.anonvm
    if anonvm.spec.ram_bytes < REQUIRED_VM_RAM:
        return NymboxRun(
            crashed=True,
            score=0.0,
            reason=(
                f"Chromium OOM: suite needs {REQUIRED_VM_RAM // MIB} MiB, "
                f"AnonVM has {anonvm.spec.ram_bytes // MIB} MiB"
            ),
        )
    # The suite's working set dirties most of the guest's RAM head-room.
    head_room = max(0, anonvm.memory.clean_bytes - 64 * MIB)
    anonvm.touch_memory(min(600 * MIB, head_room))
    result = cpu.run_guests_parallel([SUITE_WORK] * concurrent_nyms)[0]
    nymbox.timeline.sleep(result.duration_s)
    return NymboxRun(crashed=False, score=SCORE_SCALE / result.duration_s)
