"""Parallel kernel downloads through per-nym anonymizers (§5.2, Figure 5).

N nyms each download linux-3.14.2 from the DeterLab mirror, all at once,
sharing the 10 Mbit/s rate-limited uplink.  Each nym's own Tor instance
adds a fixed per-byte overhead (cells + control traffic), so the actual
time scales linearly like the ideal (no-anonymizer) time, offset by that
~12% factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.guest.websites import DownloadMirror
from repro.net.bandwidth import BandwidthPool


@dataclass(frozen=True)
class DownloadResult:
    """One parallelism level of the Figure 5 sweep."""

    nyms: int
    actual_seconds: List[float]  # per-nym completion times, via the anonymizer
    ideal_seconds: float  # slowest completion with no anonymizer overhead

    @property
    def slowest_actual(self) -> float:
        return max(self.actual_seconds)

    @property
    def overhead_fraction(self) -> float:
        if self.ideal_seconds == 0:
            return 0.0
        return self.slowest_actual / self.ideal_seconds - 1.0


class ParallelDownloadExperiment:
    """Runs the Figure 5 sweep against a fresh uplink per level."""

    def __init__(
        self,
        uplink_bps: float = 10_000_000.0,
        rtt_s: float = 0.080,
        payload_bytes: int = DownloadMirror.KERNEL_BYTES,
        anonymizer_overhead: float = 1.117,
    ) -> None:
        self.uplink_bps = uplink_bps
        self.rtt_s = rtt_s
        self.payload_bytes = payload_bytes
        self.anonymizer_overhead = anonymizer_overhead

    def run(self, nyms: int, overhead_factor: Optional[float] = None) -> DownloadResult:
        if nyms < 1:
            raise ValueError(f"nyms must be >= 1, got {nyms}")
        factor = overhead_factor if overhead_factor is not None else self.anonymizer_overhead
        pool = BandwidthPool(self.uplink_bps, rtt_s=self.rtt_s)
        actual = pool.transfer_batch(
            [self.payload_bytes] * nyms, [factor] * nyms
        )
        ideal_pool = BandwidthPool(self.uplink_bps, rtt_s=self.rtt_s)
        ideal = ideal_pool.transfer_batch([self.payload_bytes] * nyms)
        return DownloadResult(
            nyms=nyms,
            actual_seconds=[flow.duration_s for flow in actual],
            ideal_seconds=max(flow.duration_s for flow in ideal),
        )

    def sweep(self, max_nyms: int = 8) -> List[DownloadResult]:
        return [self.run(n) for n in range(1, max_nyms + 1)]
