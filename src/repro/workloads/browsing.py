"""Scripted browsing sessions for the memory and storage experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.manager import NymManager
from repro.core.nymbox import NymBox
from repro.guest.websites import FIGURE3_VISIT_ORDER, WEBSITE_CATALOG
from repro.vmm.hypervisor import MemorySnapshot


@dataclass
class BrowsingSession:
    """One user session in a nym: visit a site, optionally sign in."""

    hostname: str
    sign_in: bool = False
    username: str = ""
    password: str = ""

    def run(self, manager: NymManager, nymbox: NymBox) -> None:
        manager.timed_browse(nymbox, self.hostname)
        site = WEBSITE_CATALOG.get(self.hostname)
        if self.sign_in and site is not None and site.requires_login:
            nymbox.sign_in(
                self.hostname,
                self.username or f"{nymbox.nym.name}@{self.hostname}",
                self.password or f"pw-{nymbox.nym.name}",
            )


@dataclass(frozen=True)
class MemoryStep:
    """One Figure 3 measurement: launch a nym, measure, interact, measure."""

    nym_index: int
    hostname: str
    before: MemorySnapshot
    after: MemorySnapshot


def run_memory_experiment_step(
    manager: NymManager,
    nym_index: int,
    hostname: Optional[str] = None,
) -> MemoryStep:
    """Launch the ``nym_index``-th nym (0-based) and take both measurements.

    Mirrors §5.2: "Upon loading a pseudonym, we checked the current used
    memory and KSM shared pages.  We then interacted with a website and
    again noted the used memory and shared pages."
    """
    site = hostname or FIGURE3_VISIT_ORDER[nym_index % len(FIGURE3_VISIT_ORDER)]
    nymbox = manager.create_nym(name=f"memexp-{nym_index}")
    manager.hypervisor.ksm.scan(passes=4)
    before = manager.hypervisor.memory_snapshot()
    session = BrowsingSession(hostname=site, sign_in=True)
    session.run(manager, nymbox)
    manager.hypervisor.ksm.scan(passes=4)
    after = manager.hypervisor.memory_snapshot()
    return MemoryStep(nym_index=nym_index, hostname=site, before=before, after=after)
