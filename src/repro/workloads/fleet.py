"""The fleet workload: a deterministic stream of nymbox launch requests.

Models a user population arriving at a production Nymix deployment:
each arrival wants a nymbox from one of a few base images (the standard
image dominates; hardened and legacy builds trail), browses enough to
dirty some private pages, and arrives a bounded random interval after
the previous user.  Every draw comes from a forked :class:`SeededRng`,
so a seed fully determines the workload — the placement policies are
then compared on *identical* request streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.rng import SeededRng
from repro.vmm.vm import MIB

#: The image catalogue and its popularity mix: most users run the stock
#: image; a hardened build and a legacy build split the rest.
IMAGE_MIX: Tuple[Tuple[str, float], ...] = (
    ("nymix-base", 0.60),
    ("nymix-hardened", 0.30),
    ("nymix-legacy", 0.10),
)


@dataclass(frozen=True)
class NymArrival:
    """One user's launch request."""

    name: str
    image_id: str
    interarrival_s: float  # gap after the previous arrival
    churn_bytes: int  # private pages the session will dirty
    tenant: str = ""  # owning tenant; empty = untenanted (legacy streams)


def _draw_image(rng: SeededRng) -> str:
    roll = rng.random()
    acc = 0.0
    for image_id, weight in IMAGE_MIX:
        acc += weight
        if roll < acc:
            return image_id
    return IMAGE_MIX[-1][0]


def fleet_workload(
    rng: SeededRng,
    nyms: int,
    mean_interarrival_s: float = 0.5,
    max_churn_bytes: int = 48 * MIB,
) -> List[NymArrival]:
    """Draw the full arrival stream for a fleet run.

    Churn stays well under the AnonVM's free-page budget so dirtying
    never repurposes image-cache pages (which would muddy the KSM
    placement comparison with workload noise).
    """
    arrivals: List[NymArrival] = []
    for i in range(nyms):
        arrivals.append(
            NymArrival(
                name=f"nym-{i:04d}",
                image_id=_draw_image(rng),
                interarrival_s=rng.uniform(0.0, 2.0 * mean_interarrival_s),
                churn_bytes=rng.randint(0, max_churn_bytes // MIB) * MIB,
            )
        )
    return arrivals


def tenant_workload(
    rng: SeededRng,
    nyms: int,
    tenants: Sequence[str],
    weights: Optional[Sequence[float]] = None,
    mean_interarrival_s: float = 0.5,
    max_churn_bytes: int = 48 * MIB,
) -> List[NymArrival]:
    """Draw a multi-tenant arrival stream.

    Same structure (and same per-arrival draw order) as
    :func:`fleet_workload`, with each arrival additionally attributed to
    one of ``tenants`` by a weighted draw — so tenant attribution costs
    exactly one extra RNG draw per arrival and the stream stays fully
    seed-determined.  ``weights`` defaults to uniform.
    """
    if not tenants:
        raise ValueError("tenant_workload needs at least one tenant name")
    if weights is None:
        weights = [1.0] * len(tenants)
    if len(weights) != len(tenants):
        raise ValueError(
            f"got {len(weights)} weights for {len(tenants)} tenants"
        )
    total = float(sum(weights))
    arrivals: List[NymArrival] = []
    for i in range(nyms):
        image_id = _draw_image(rng)
        interarrival_s = rng.uniform(0.0, 2.0 * mean_interarrival_s)
        churn_bytes = rng.randint(0, max_churn_bytes // MIB) * MIB
        roll = rng.random() * total
        acc = 0.0
        tenant = tenants[-1]
        for name, weight in zip(tenants, weights):
            acc += weight
            if roll < acc:
                tenant = name
                break
        arrivals.append(
            NymArrival(
                name=f"nym-{i:04d}",
                image_id=image_id,
                interarrival_s=interarrival_s,
                churn_bytes=churn_bytes,
                tenant=tenant,
            )
        )
    return arrivals
