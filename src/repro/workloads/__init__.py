"""Workloads: the drivers behind the paper's evaluation experiments.

* :mod:`repro.workloads.peacekeeper` — the Futuremark Peacekeeper-style
  JavaScript benchmark of §5.2 / Figure 4.
* :mod:`repro.workloads.download` — the parallel Linux-kernel download of
  §5.2 / Figure 5.
* :mod:`repro.workloads.browsing` — scripted browsing sessions for the
  memory (Figure 3) and storage (Figure 6) experiments.
"""

from repro.workloads.peacekeeper import PeacekeeperBenchmark, PeacekeeperResult
from repro.workloads.download import ParallelDownloadExperiment, DownloadResult
from repro.workloads.browsing import BrowsingSession, run_memory_experiment_step

__all__ = [
    "PeacekeeperBenchmark",
    "PeacekeeperResult",
    "ParallelDownloadExperiment",
    "DownloadResult",
    "BrowsingSession",
    "run_memory_experiment_step",
]
