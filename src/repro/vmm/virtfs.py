"""VirtFS shared folders.

KVM's VirtFS (9p pass-through) lets the hypervisor expose a host directory
to a guest.  Nymix uses it twice (§4.3): the SaniVM drops scrubbed files
into a folder shared with the hypervisor, and the hypervisor moves them
into a folder shared with the destination AnonVM — the only cross-nym data
path in the system.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import FileSystemError
from repro.unionfs.layer import normalize_path


class SharedFolder:
    """A host-side directory mountable into guests via VirtFS."""

    def __init__(self, name: str, read_only: bool = False) -> None:
        self.name = name
        self.read_only = read_only
        self._files: Dict[str, bytes] = {}

    def write(self, path: str, data: bytes) -> None:
        if self.read_only:
            raise FileSystemError(f"shared folder {self.name!r} is read-only")
        self._files[normalize_path(path)] = bytes(data)

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        if path not in self._files:
            raise FileSystemError(f"{path}: not present in shared folder {self.name!r}")
        return self._files[path]

    def exists(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def remove(self, path: str) -> None:
        path = normalize_path(path)
        if path not in self._files:
            raise FileSystemError(f"{path}: not present in shared folder {self.name!r}")
        del self._files[path]

    def move_to(self, path: str, other: "SharedFolder", dst_path: str = "") -> None:
        """Move one file into another shared folder (the hypervisor hand-off)."""
        data = self.read(path)
        other.write(dst_path or path, data)
        self.remove(path)

    def paths(self) -> List[str]:
        return sorted(self._files)

    def items(self) -> Iterator[Tuple[str, bytes]]:
        return iter(sorted(self._files.items()))

    @property
    def used_bytes(self) -> int:
        return sum(len(data) for data in self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:
        return f"SharedFolder({self.name!r}, files={len(self._files)})"
