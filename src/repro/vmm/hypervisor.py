"""The Nymix hypervisor: host resources, VM factory, isolation mechanics."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import HypervisorError, UnreachableError
from repro.memory.ksm import Ksm
from repro.memory.pages import GuestMemory
from repro.memory.physmem import GIB, HostMemory
from repro.net.addresses import (
    GATEWAY_IP,
    GUEST_IP,
    QEMU_DEFAULT_MAC,
    Ipv4Address,
    MacAddress,
)
from repro.net.dhcp import DhcpClient, DhcpServer
from repro.net.internet import Internet
from repro.net.link import VirtualWire
from repro.net.nat import MasqueradeNat
from repro.net.nic import VirtualNic
from repro.net.pcap import PacketCapture
from repro.sim.clock import Timeline
from repro.unionfs.layer import Layer
from repro.unionfs.verify import VerifiedLayer
from repro.vmm.baseimage import (
    NYMIX_IMAGE_ID,
    build_base_layer,
    build_config_layer,
    build_vm_mount,
    published_merkle_root,
)
from repro.vmm.vcpu import CpuModel
from repro.vmm.virtfs import SharedFolder
from repro.vmm.vm import MIB, VirtualMachine, VmRole, VmSpec


@dataclass(frozen=True)
class HostSpec:
    """The physical machine (defaults: the paper's i7 quad core, 16 GB)."""

    cores: int = 4
    ram_bytes: int = 16 * GIB
    host_base_ram_bytes: int = 1 * GIB
    uplink_bps: float = 10_000_000.0
    uplink_rtt_s: float = 0.080
    public_ip: str = "203.0.113.77"
    lan_mac: str = "00:16:3e:aa:bb:01"


@dataclass(frozen=True)
class NymboxTemplate:
    """The zygote-cache key for one flavour of nymbox.

    Two launches with equal templates share the same pre-booted memory
    image and read-only mount layers on a given hypervisor; the template
    itself carries no state, so it can be computed anywhere and passed
    around freely.
    """

    anon_spec: VmSpec
    comm_spec: VmSpec
    anonymizer: str = ""
    image_id: str = NYMIX_IMAGE_ID


@dataclass(frozen=True)
class MemorySnapshot:
    """One Figure 3 measurement point."""

    used_bytes: int  # host RAM in use (guests + writable FS - KSM savings)
    guest_ram_bytes: int
    fs_bytes: int
    ksm_pages_sharing: int
    ksm_pages_saved: int


class Hypervisor:
    """Host OS + KVM + the Nymix supervisory glue.

    Owns physical memory (with KSM), the CPU model, the base image (with
    its published Merkle root), the host uplink with packet capture, and
    every VM.  The Nym Manager sits on top of this class.
    """

    def __init__(
        self,
        timeline: Timeline,
        internet: Internet,
        host: Optional[HostSpec] = None,
        verify_base_image: bool = False,
        ksm_enabled: bool = True,
        base_layer: Optional[Layer] = None,
        merkle_root: Optional[str] = None,
        zygote_cache: bool = True,
    ) -> None:
        self.timeline = timeline
        self.internet = internet
        self.host = host or HostSpec()
        self.cpu = CpuModel(cores=self.host.cores, obs=timeline.obs)
        self.ksm = Ksm(enabled=ksm_enabled, obs=timeline.obs)
        self.memory = HostMemory(
            total_bytes=self.host.ram_bytes,
            base_used_bytes=self.host.host_base_ram_bytes,
            ksm=self.ksm,
        )
        # A fleet shares one base layer (and its published Merkle root)
        # across all its hosts; building it per host is pure waste.
        self.base_layer: Layer = base_layer if base_layer is not None else build_base_layer()
        self.merkle_root = (
            merkle_root if merkle_root is not None else published_merkle_root(self.base_layer)
        )
        self.verify_base_image = verify_base_image
        self.rng = timeline.fork_rng("hypervisor")

        # Host-side capture: the Wireshark vantage point of §5.1.
        self.host_capture = PacketCapture(timeline, name="host-uplink-capture")
        self.public_ip = Ipv4Address.parse(self.host.public_ip)
        self.lan_nic = VirtualNic("host-eth0", MacAddress.parse(self.host.lan_mac))

        self._vms: Dict[str, VirtualMachine] = {}
        self._nats: Dict[str, MasqueradeNat] = {}
        self._wires: List[VirtualWire] = []
        # O(1) wire teardown: wires registered through the factory methods
        # below are indexed by endpoint NIC and by position in ``_wires``.
        self._wire_slots: Dict[int, int] = {}
        self._wires_by_nic: Dict[VirtualNic, VirtualWire] = {}
        self._vm_counter = itertools.count(1)
        self.emergency_halted = False
        self.tamper_log: List[str] = []
        # Writable-FS bytes across all resident VMs, maintained by delta
        # listeners on each VM's top layer — keeps memory_snapshot() O(1).
        self._fs_ram_bytes = 0

        #: Flash-clone launch path: pre-booted memory images and shared
        #: read-only mount layers, keyed per (spec, role, anonymizer, image).
        self.zygote_cache = zygote_cache
        self._zygote_memories: Dict[tuple, GuestMemory] = {}
        self._layer_cache: Dict[tuple, tuple] = {}
        # flash_clone resolves a template's mount layers + zygote memories
        # once and reuses them for every clone; keyed by template identity
        # (the template itself is stored so a recycled id can't alias).
        self._template_prep: Dict[int, tuple] = {}

        #: The host LAN wire, built once on the first DHCP handshake and
        #: kept (torn down) between handshakes instead of leaking a fresh
        #: server + tapped wire per call.
        self._lan_wire: Optional[VirtualWire] = None
        self._lan_client: Optional[DhcpClient] = None

    # -- host bring-up ------------------------------------------------------

    def acquire_lan_address(self) -> Ipv4Address:
        """Run the host's DHCP handshake on a captured LAN wire.

        The wire, DHCP server, and client are created once and reused for
        subsequent handshakes (the server's lease table hands the same
        address back); the wire is severed after each handshake so the
        host is not left holding an open LAN link.
        """
        if self._lan_wire is None:
            server_nic = VirtualNic(
                "lan-dhcp-server", MacAddress.parse("00:16:3e:00:00:01"),
                Ipv4Address.parse("192.168.1.1"),
            )
            self._lan_wire = VirtualWire(
                self.timeline, self.lan_nic, server_nic, name="host-lan"
            )
            self._lan_wire.add_tap(self.host_capture)
            DhcpServer(self.timeline, server_nic, Ipv4Address.parse("192.168.1.100"))
            self._lan_client = DhcpClient(self.timeline, self.lan_nic)
        else:
            self._lan_wire.bring_up(quiet=True)
        try:
            return self._lan_client.acquire()
        finally:
            self._lan_wire.take_down()

    # -- tamper handling (verified boot, §3.4) -----------------------------------

    def _on_tamper(self, path: str) -> None:
        self.tamper_log.append(path)
        self.timeline.obs.event("vmm.tamper", path=path)
        self.emergency_halt()

    def emergency_halt(self) -> None:
        """Safely shut down every VM (tampered base image detected)."""
        self.emergency_halted = True
        for vm in list(self._vms.values()):
            if vm.state.value in ("running", "paused"):
                vm.shutdown()

    # -- zygote cache (flash-clone launch path) ---------------------------------

    def nymbox_template(
        self,
        anon_spec: VmSpec,
        comm_spec: VmSpec,
        anonymizer: str = "",
        image_id: str = NYMIX_IMAGE_ID,
    ) -> NymboxTemplate:
        """The template key for :meth:`flash_clone` launches."""
        return NymboxTemplate(
            anon_spec=anon_spec,
            comm_spec=comm_spec,
            anonymizer=anonymizer,
            image_id=image_id,
        )

    def _zygote_memory(self, spec: VmSpec, image_id: str) -> GuestMemory:
        """The pre-booted memory image for one (spec, image) flavour.

        Built once by replaying exactly the map/dirty sequence a cold boot
        performs, on a synthetic guest that is *not* registered with host
        memory or KSM — it represents no resident VM, so Figure 3
        accounting never sees it.  Clones adopt its content runs
        copy-on-write at boot.
        """
        key = (spec, image_id)
        zygote = self._zygote_memories.get(key)
        if zygote is None:
            zygote = GuestMemory(f"zygote({spec.role.value})", spec.ram_bytes)
            if spec.image_cache_bytes:
                zygote.map_image(image_id, spec.image_cache_bytes)
            if spec.boot_dirty_bytes:
                zygote.dirty(spec.boot_dirty_bytes)
            self._zygote_memories[key] = zygote
        return zygote

    def _mount_layers(
        self, role: VmRole, anonymizer: str, base: Layer
    ) -> tuple:
        """Memoized (config, bottom) mount layers for one VM flavour.

        Both layers are read-only, so every clone of a flavour can share
        the same objects — including the Merkle proof index a
        ``VerifiedLayer`` builds, which is the expensive part of the
        verified-boot check.
        """
        key = (role, anonymizer, id(base))
        cached = self._layer_cache.get(key)
        if cached is None:
            bottom: Layer = base
            if self.verify_base_image:
                bottom = VerifiedLayer(base, self.merkle_root, on_tamper=self._on_tamper)
            config = build_config_layer(role, anonymizer)
            cached = (config, bottom)
            self._layer_cache[key] = cached
        return cached

    def flash_clone(
        self, template: NymboxTemplate, name: str
    ) -> tuple:
        """Launch one AnonVM + CommVM nymbox pair from ``template``.

        Returns ``(anonvm, commvm, wire)``.  With the zygote cache enabled
        the pair shares the template's mount layers and flash-adopts its
        pre-booted memory at boot; with it disabled this is exactly the
        cold-boot construction sequence — either way the resulting nymbox
        is semantically identical.
        """
        anon_prep = comm_prep = None
        if self.zygote_cache:
            cached = self._template_prep.get(id(template))
            if cached is not None and cached[0] is template:
                _, anon_prep, comm_prep = cached
            else:
                anon_prep = (
                    self._mount_layers(template.anon_spec.role, "", self.base_layer),
                    self._zygote_memory(template.anon_spec, template.image_id),
                )
                comm_prep = (
                    self._mount_layers(
                        template.comm_spec.role,
                        template.anonymizer,
                        self.base_layer,
                    ),
                    self._zygote_memory(template.comm_spec, template.image_id),
                )
                self._template_prep[id(template)] = (template, anon_prep, comm_prep)
        anonvm = self.create_vm(
            template.anon_spec,
            name=f"{name}-anon",
            image_id=template.image_id,
            prepared=anon_prep,
        )
        try:
            commvm = self.create_vm(
                template.comm_spec,
                name=f"{name}-comm",
                anonymizer=template.anonymizer,
                image_id=template.image_id,
                prepared=comm_prep,
            )
        except Exception:
            self.destroy_vm(anonvm)
            raise
        wire = self.wire_nymbox(anonvm, commvm)
        return anonvm, commvm, wire

    # -- VM factory ------------------------------------------------------------

    def create_vm(
        self,
        spec: VmSpec,
        name: str = "",
        anonymizer: str = "",
        base_layer: Optional[Layer] = None,
        image_id: str = NYMIX_IMAGE_ID,
        prepared: Optional[tuple] = None,
    ) -> VirtualMachine:
        """``prepared`` is flash_clone's pre-resolved ``((config, bottom),
        zygote)`` bundle for this flavour — exactly what the zygote-cache
        branch below would look up, minus the per-clone cache probes."""
        if self.emergency_halted:
            raise HypervisorError("hypervisor is halted (base image tamper detected)")
        vm_id = name or f"{spec.role.value}-{next(self._vm_counter)}"
        if vm_id in self._vms:
            raise HypervisorError(f"VM id {vm_id!r} already exists")
        guest_memory = self.memory.allocate_guest(vm_id, spec.ram_bytes)
        base = base_layer if base_layer is not None else self.base_layer
        template_memory: Optional[GuestMemory] = None
        if prepared is not None:
            (config, bottom), template_memory = prepared
            fs = build_vm_mount(
                role=spec.role,
                tmpfs_bytes=spec.writable_fs_bytes,
                base=base,
                anonymizer=anonymizer,
                config=config,
                bottom=bottom,
            )
        elif self.zygote_cache:
            config, bottom = self._mount_layers(spec.role, anonymizer, base)
            fs = build_vm_mount(
                role=spec.role,
                tmpfs_bytes=spec.writable_fs_bytes,
                base=base,
                anonymizer=anonymizer,
                config=config,
                bottom=bottom,
            )
            template_memory = self._zygote_memory(spec, image_id)
        else:
            fs = build_vm_mount(
                role=spec.role,
                tmpfs_bytes=spec.writable_fs_bytes,
                base=base,
                anonymizer=anonymizer,
                merkle_root=self.merkle_root if self.verify_base_image else None,
                on_tamper=self._on_tamper,
            )
        vm = VirtualMachine(
            timeline=self.timeline,
            vm_id=vm_id,
            spec=spec,
            memory=guest_memory,
            fs=fs,
            image_id=image_id,
            template_memory=template_memory,
        )
        self._vms[vm_id] = vm
        if vm.fs.writable:
            self._fs_ram_bytes += vm.fs.top.used_bytes
            vm.fs.top.set_delta_listener(self._on_fs_delta)
        obs = self.timeline.obs
        if obs.enabled:
            obs.metrics.counter("vmm.vm.created").inc()
            obs.metrics.gauge("vmm.vms_live").set(len(self._vms))
        return vm

    def _on_fs_delta(self, delta: int) -> None:
        self._fs_ram_bytes += delta

    def destroy_vm(self, vm: VirtualMachine) -> None:
        """Shut down and securely erase a VM (the amnesia step of §3.4)."""
        if vm.state.value in ("running", "paused", "created"):
            vm.shutdown()
        vm.fs.discard_changes()
        if vm.fs.writable:
            # discard_changes cleared the top layer (the listener saw the
            # delta); stop tracking it and drop any residual bytes.
            vm.fs.top.set_delta_listener(None)
            self._fs_ram_bytes -= vm.fs.top.used_bytes
        # O(nics), not O(host wires): each registered wire is indexed by
        # its endpoint NICs, so a fleet-scale teardown no longer rescans
        # every wire on the host per destroyed VM.
        for nic in vm.nics:
            wire = self._wires_by_nic.get(nic)
            if wire is not None:
                wire.take_down()
                self._unregister_wire(wire)
        self.memory.release_guest(vm.vm_id, secure=True)
        self._nats.pop(vm.vm_id, None)
        self._vms.pop(vm.vm_id, None)
        obs = self.timeline.obs
        obs.metrics.counter("vmm.vm.destroyed").inc()
        obs.metrics.gauge("vmm.vms_live").set(len(self._vms))
        obs.event("vm.destroyed", vm=vm.vm_id, role=vm.spec.role.value)

    def vm(self, vm_id: str) -> VirtualMachine:
        return self._vms[vm_id]

    def vms(self) -> List[VirtualMachine]:
        return list(self._vms.values())

    # -- wire registry ------------------------------------------------------------

    def _register_wire(self, wire: VirtualWire) -> None:
        self._wire_slots[id(wire)] = len(self._wires)
        self._wires.append(wire)
        for nic in wire.endpoints:
            self._wires_by_nic[nic] = wire

    def _unregister_wire(self, wire: VirtualWire) -> None:
        """Drop a registered wire in O(1) (swap-remove from ``_wires``)."""
        for nic in wire.endpoints:
            if self._wires_by_nic.get(nic) is wire:
                del self._wires_by_nic[nic]
        slot = self._wire_slots.pop(id(wire), None)
        if slot is None:
            # Not registered through the factory methods (tests poke
            # ``_wires`` directly); fall back to a linear removal.
            if wire in self._wires:
                self._wires.remove(wire)
                self._wire_slots = {
                    id(w): i for i, w in enumerate(self._wires)
                    if id(w) in self._wire_slots
                }
            return
        last = self._wires.pop()
        if last is not wire:
            self._wires[slot] = last
            self._wire_slots[id(last)] = slot

    # -- nymbox wiring (§4.2) -----------------------------------------------------

    def wire_nymbox(self, anonvm: VirtualMachine, commvm: VirtualMachine) -> VirtualWire:
        """Build the private AnonVM <-> CommVM virtual wire.

        Every nymbox gets the *same* guest-side MAC and IP addresses —
        deliberate homogenization; isolation comes from the wire being a
        distinct object per nymbox with no bridge between them.
        """
        anon_nic = anonvm.attach_nic(VirtualNic(f"{anonvm.vm_id}-eth0", QEMU_DEFAULT_MAC, GUEST_IP))
        comm_inner = commvm.attach_nic(
            VirtualNic(f"{commvm.vm_id}-eth0", QEMU_DEFAULT_MAC, GATEWAY_IP)
        )
        wire = VirtualWire(
            self.timeline, anon_nic, comm_inner,
            latency_s=0.0002, name=f"nymwire({anonvm.vm_id})",
        )
        self._register_wire(wire)
        return wire

    def wire_comm_chain(
        self, upstream: VirtualMachine, downstream: VirtualMachine, position: int
    ) -> VirtualWire:
        """Link two CommVMs in serial (§3.3's chained-anonymizer option).

        ``upstream`` is the CommVM closer to the AnonVM; ``downstream``
        carries its output toward the Internet.  Each chain link gets its
        own private /24 so the hops cannot be confused.
        """
        subnet = 3 + position
        up_nic = upstream.attach_nic(
            VirtualNic(
                f"{upstream.vm_id}-eth1",
                QEMU_DEFAULT_MAC,
                Ipv4Address.parse(f"10.0.{subnet}.15"),
            )
        )
        down_nic = downstream.attach_nic(
            VirtualNic(
                f"{downstream.vm_id}-eth0",
                QEMU_DEFAULT_MAC,
                Ipv4Address.parse(f"10.0.{subnet}.2"),
            )
        )
        wire = VirtualWire(
            self.timeline, up_nic, down_nic,
            latency_s=0.0002, name=f"chainwire({upstream.vm_id}->{downstream.vm_id})",
        )
        self._register_wire(wire)
        return wire

    def attach_nat(self, commvm: VirtualMachine) -> MasqueradeNat:
        """Give a CommVM its user-mode NAT uplink to the Internet."""
        nat = MasqueradeNat(
            timeline=self.timeline,
            name=f"nat({commvm.vm_id})",
            public_ip=self.public_ip,
            internet=self.internet,
            host_capture=self.host_capture,
        )
        self._nats[commvm.vm_id] = nat
        return nat

    def nat_for(self, commvm_id: str) -> MasqueradeNat:
        return self._nats[commvm_id]

    # -- isolation probing (§5.1 validation) ----------------------------------------

    def probe_cross_vm(self, src: VirtualMachine, dst: VirtualMachine) -> bool:
        """Attempt direct delivery from ``src`` to ``dst``.

        Returns True only if a frame from ``src``'s primary NIC could reach
        ``dst`` — i.e. they share a wire.  Used to assert the isolation
        matrix: only an AnonVM and its own CommVM may communicate.
        """
        if not src.nics or not dst.nics:
            return False
        for src_nic in src.nics:
            for wire in self._wires:
                endpoints = wire.endpoints
                if src_nic in endpoints:
                    other = endpoints[0] if endpoints[1] is src_nic else endpoints[1]
                    if other in dst.nics and wire.up:
                        return True
        return False

    def probe_local_network(self, vm: VirtualMachine) -> bool:
        """Can this VM reach the host's local intranet?  Must be False."""
        nat = self._nats.get(vm.vm_id)
        if nat is None:
            return False
        try:
            nat.stream(Ipv4Address.parse("192.168.1.10"), 100, label="probe")
        except UnreachableError:
            return False
        return True

    # -- accounting ----------------------------------------------------------------

    def accounting_token(self) -> tuple:
        """A value that changes whenever :meth:`memory_snapshot` could.

        Covers guest allocations, KSM state (index staleness, scan
        coverage, guest registration), and writable-FS bytes — callers
        (the fleet's :class:`HostHandle`) cache snapshots keyed on it.
        """
        return (self.memory._allocated_pages, self.ksm.version, self._fs_ram_bytes)

    def memory_snapshot(self) -> MemorySnapshot:
        stats = self.memory.stats()
        ksm_stats = self.ksm.stats()
        fs_bytes = self._fs_ram_bytes
        return MemorySnapshot(
            used_bytes=stats.used_bytes + fs_bytes,
            guest_ram_bytes=stats.guest_allocated_bytes,
            fs_bytes=fs_bytes,
            ksm_pages_sharing=ksm_stats.pages_sharing,
            ksm_pages_saved=ksm_stats.pages_saved,
        )

    def expected_bytes_per_nymbox(
        self, anon_spec: VmSpec, comm_spec: VmSpec
    ) -> int:
        """The Figure 3 dashed line: nominal RAM+disk cost of one nymbox."""
        return (
            anon_spec.ram_bytes
            + comm_spec.ram_bytes
            + anon_spec.writable_fs_bytes
            + comm_spec.writable_fs_bytes
        )

    def __repr__(self) -> str:
        return (
            f"Hypervisor(vms={len(self._vms)}, "
            f"ram={self.memory.stats().used_bytes // MIB}MiB used)"
        )
