"""Virtual machines: lifecycle, resources, and the homogenized fingerprint."""

from __future__ import annotations

import enum
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import VmStateError
from repro.memory.pages import GuestMemory
from repro.net.nic import VirtualNic
from repro.sim.clock import Timeline
from repro.unionfs.mount import UnionMount
from repro.vmm.virtfs import SharedFolder

MIB = 1024 * 1024


class VmRole(enum.Enum):
    """The four guest roles of the Nymix architecture (Figure 2)."""

    ANONVM = "anonvm"
    COMMVM = "commvm"
    SANIVM = "sanivm"
    HOSTOS = "hostos"  # installed OS booted as a nym (§3.7)


class VmState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    SHUTDOWN = "shutdown"
    CRASHED = "crashed"


@dataclass(frozen=True)
class VmSpec:
    """Resource allocation for one VM (defaults follow §4.2/§5.2)."""

    role: VmRole
    ram_bytes: int
    writable_fs_bytes: int
    # How much of the shared base image this role's boot leaves resident in
    # the page cache — the KSM-shareable portion of guest memory.
    image_cache_bytes: int
    # Memory privately dirtied during boot (kernel, services, UI).
    boot_dirty_bytes: int
    boot_seconds: float
    vcpus: int = 1

    @classmethod
    def anonvm(cls, ram_bytes: int = 384 * MIB, disk_bytes: int = 128 * MIB) -> "VmSpec":
        return cls(
            role=VmRole.ANONVM,
            ram_bytes=ram_bytes,
            writable_fs_bytes=disk_bytes,
            image_cache_bytes=24 * MIB,
            boot_dirty_bytes=150 * MIB,
            boot_seconds=9.5,
        )

    @classmethod
    def commvm(cls, ram_bytes: int = 128 * MIB, disk_bytes: int = 16 * MIB) -> "VmSpec":
        return cls(
            role=VmRole.COMMVM,
            ram_bytes=ram_bytes,
            writable_fs_bytes=disk_bytes,
            image_cache_bytes=8 * MIB,
            boot_dirty_bytes=48 * MIB,
            boot_seconds=4.0,
        )

    @classmethod
    def sanivm(cls, ram_bytes: int = 256 * MIB, disk_bytes: int = 64 * MIB) -> "VmSpec":
        return cls(
            role=VmRole.SANIVM,
            ram_bytes=ram_bytes,
            writable_fs_bytes=disk_bytes,
            image_cache_bytes=16 * MIB,
            boot_dirty_bytes=96 * MIB,
            boot_seconds=5.0,
        )

    @classmethod
    def hostos(
        cls,
        ram_bytes: int = 1024 * MIB,
        disk_bytes: int = 512 * MIB,
        boot_seconds: float = 40.0,
    ) -> "VmSpec":
        return cls(
            role=VmRole.HOSTOS,
            ram_bytes=ram_bytes,
            writable_fs_bytes=disk_bytes,
            image_cache_bytes=0,  # the installed OS image is not the Nymix base
            boot_dirty_bytes=400 * MIB,
            boot_seconds=boot_seconds,
        )


# Every Nymix VM advertises exactly this hardware, regardless of host
# (§4.2: "we want Nymix to run the same on every machine").
HOMOGENIZED_RESOLUTION = (1024, 768)
HOMOGENIZED_CPU = "QEMU Virtual CPU version 2.0.0"


@dataclass
class VmFingerprint:
    """Guest-observable identity surface; identical for all nymbox VMs."""

    cpu_model: str
    cpu_count: int
    resolution: tuple
    mac: str
    ip: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "cpu_model": self.cpu_model,
            "cpu_count": self.cpu_count,
            "resolution": self.resolution,
            "mac": self.mac,
            "ip": self.ip,
        }


class VirtualMachine:
    """One guest: RAM, a union-FS root, NICs, and a lifecycle."""

    def __init__(
        self,
        timeline: Timeline,
        vm_id: str,
        spec: VmSpec,
        memory: GuestMemory,
        fs: UnionMount,
        image_id: str,
        template_memory: Optional[GuestMemory] = None,
    ) -> None:
        self.timeline = timeline
        self.vm_id = vm_id
        self.spec = spec
        self.memory = memory
        self.fs = fs
        self.image_id = image_id
        #: Pre-booted memory image to flash-adopt at boot time instead of
        #: replaying map_image/dirty (the hypervisor's zygote cache).
        self.template_memory = template_memory
        self.state = VmState.CREATED
        self.nics: List[VirtualNic] = []
        self.shared_folders: Dict[str, SharedFolder] = {}
        self.booted_at: Optional[float] = None
        self.last_boot_seconds: Optional[float] = None

    # -- state machine ------------------------------------------------------

    def _require(self, *states: VmState) -> None:
        if self.state not in states:
            allowed = ", ".join(s.value for s in states)
            raise VmStateError(
                f"VM {self.vm_id!r} is {self.state.value}; operation requires {allowed}"
            )

    def boot(self, jitter_rng=None, advance: bool = True) -> float:
        """Boot the guest: advances time, populates memory.  Returns seconds.

        With ``advance=False`` the boot consumes no timeline time — used
        when this boot overlaps a longer concurrent boot (the nymbox boots
        its AnonVM and CommVM in parallel, so the pair costs the max).
        """
        self._require(VmState.CREATED)
        obs = self.timeline.obs
        duration = self.spec.boot_seconds
        if jitter_rng is not None:
            duration = jitter_rng.jitter(duration, 0.08)
        span = (
            obs.span("vm.boot", vm=self.vm_id, role=self.spec.role.value)
            if obs.enabled
            else nullcontext()
        )
        with span:
            if advance:
                self.timeline.sleep(duration)
            template = self.template_memory
            if template is not None and self.memory.can_adopt(template):
                # Flash clone: take the template's post-boot content runs
                # copy-on-write — equivalent to replaying the map/dirty
                # sequence below, without the per-boot run construction.
                self.memory.adopt_template(template)
            else:
                if self.spec.image_cache_bytes:
                    self.memory.map_image(self.image_id, self.spec.image_cache_bytes)
                if self.spec.boot_dirty_bytes:
                    self.memory.dirty(self.spec.boot_dirty_bytes)
            self.state = VmState.RUNNING
            self.booted_at = self.timeline.now
            self.last_boot_seconds = duration
        if obs.enabled:
            obs.metrics.counter("vmm.vm.boots").inc()
            obs.metrics.histogram("vmm.boot.phase_s").observe(duration)
            obs.event(
                "vm.boot",
                vm=self.vm_id,
                role=self.spec.role.value,
                seconds=round(duration, 6),
                overlapped=not advance,
            )
        return duration

    def pause(self) -> None:
        self._require(VmState.RUNNING)
        self.state = VmState.PAUSED

    def resume(self) -> None:
        self._require(VmState.PAUSED)
        self.state = VmState.RUNNING

    def shutdown(self) -> None:
        """Stop the guest.  Memory erase happens at hypervisor release."""
        self._require(VmState.RUNNING, VmState.PAUSED, VmState.CREATED)
        self.state = VmState.SHUTDOWN

    def crash(self) -> None:
        """The guest dies without a clean shutdown (fault injection).

        Unlike :meth:`shutdown`, nothing inside the guest gets to run;
        recovery means relaunching from quasi-persistent state (§3.5).
        """
        self._require(VmState.RUNNING, VmState.PAUSED)
        self.state = VmState.CRASHED
        self.timeline.obs.metrics.counter("vmm.vm.crashes").inc()
        self.timeline.obs.event("vm.crashed", vm=self.vm_id, role=self.spec.role.value)

    @property
    def running(self) -> bool:
        return self.state is VmState.RUNNING

    # -- resources ------------------------------------------------------------

    def attach_nic(self, nic: VirtualNic) -> VirtualNic:
        self.nics.append(nic)
        return nic

    @property
    def primary_nic(self) -> VirtualNic:
        if not self.nics:
            raise VmStateError(f"VM {self.vm_id!r} has no NIC attached")
        return self.nics[0]

    def mount_shared(self, folder: SharedFolder) -> None:
        self.shared_folders[folder.name] = folder

    def touch_memory(self, dirty_bytes: int) -> None:
        """Guest workload dirties private pages (browsing, JS heaps...)."""
        self._require(VmState.RUNNING)
        self.memory.dirty(dirty_bytes)
        self.timeline.obs.metrics.counter("vmm.vm.dirtied_bytes").inc(dirty_bytes)

    # -- observability -------------------------------------------------------

    def fingerprint(self) -> VmFingerprint:
        """What in-guest software can learn about "the hardware"."""
        nic = self.nics[0] if self.nics else None
        return VmFingerprint(
            cpu_model=HOMOGENIZED_CPU,
            cpu_count=self.spec.vcpus,
            resolution=HOMOGENIZED_RESOLUTION,
            mac=str(nic.mac) if nic else "",
            ip=str(nic.ip) if nic and nic.ip else "",
        )

    @property
    def fs_ram_bytes(self) -> int:
        """RAM consumed by the writable file-system layer."""
        return self.fs.ram_bytes

    def __repr__(self) -> str:
        return (
            f"VirtualMachine({self.vm_id!r}, {self.spec.role.value}, "
            f"{self.state.value}, ram={self.spec.ram_bytes // MIB}MiB)"
        )
