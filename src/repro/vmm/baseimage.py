"""The Nymix distribution image and the per-role configuration layers.

One OS partition on the USB stick serves as host OS, AnonVM root, CommVM
root, and SaniVM root (§3.4).  Roles are differentiated by a thin
read-only *configuration layer* masking a handful of files — network
configuration, ``/etc/rc.local``, and the window-manager autostart — atop
the shared base; all writes land in a RAM-backed tmpfs layer above both.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.unionfs.layer import Layer, TmpfsLayer
from repro.unionfs.mount import UnionMount
from repro.unionfs.verify import VerifiedLayer, commit_layer
from repro.vmm.vm import VmRole

NYMIX_IMAGE_ID = "nymix-ubuntu-14.04-amd64"


def build_base_layer(image_id: str = NYMIX_IMAGE_ID) -> Layer:
    """The distribution's file tree, identical on every Nymix USB stick."""
    files: Dict[str, bytes] = {}

    def add(path: str, text: str) -> None:
        files[path] = text.encode()

    add("/etc/os-release", f'NAME="Nymix"\nID=nymix\nBASE="{image_id}"\n')
    add("/etc/hostname", "nymix\n")
    add("/etc/hosts", "127.0.0.1 localhost\n127.0.1.1 nymix\n")
    add("/etc/resolv.conf", "nameserver 127.0.0.1\n")
    add("/etc/network/interfaces", "auto lo\niface lo inet loopback\n")
    add("/etc/rc.local", "#!/bin/sh\nexit 0\n")
    add("/etc/xdg/autostart/nymix.desktop", "[Desktop Entry]\nExec=true\n")
    add("/etc/fstab", "overlay / overlay defaults 0 0\n")
    # Binaries shared by every role: the same bits back hypervisor, AnonVMs
    # and CommVMs, which is what makes KSM effective across nymboxes.
    for name in (
        "bash", "busybox", "chromium", "tor", "dissent", "qemu-system-x86_64",
        "openvpn", "mat", "python3", "Xorg", "openbox",
    ):
        add(f"/usr/bin/{name}", f"#!ELF simulated binary: {name}\n" + "x" * 2048)
    for name in ("libc.so.6", "libssl.so", "libevent.so", "libqt5.so"):
        add(f"/usr/lib/{name}", f"#!ELF simulated library: {name}\n" + "y" * 4096)
    add("/usr/share/nymix/VERSION", "Nymix 1.0 (reproduction)\n")
    return Layer(name=f"base({image_id})", files=files, read_only=True)


def build_config_layer(role: VmRole, anonymizer: str = "") -> Layer:
    """The role-specific mask layer inserted between base and tmpfs."""
    files: Dict[str, bytes] = {}

    def add(path: str, text: str) -> None:
        files[path] = text.encode()

    if role is VmRole.ANONVM:
        add(
            "/etc/network/interfaces",
            "auto eth0\niface eth0 inet static\n"
            "  address 10.0.2.15\n  gateway 10.0.2.2\n",
        )
        add("/etc/resolv.conf", "nameserver 10.0.2.3\n")
        add("/etc/rc.local", "#!/bin/sh\nxrandr --size 1024x768\nexit 0\n")
        add(
            "/etc/xdg/autostart/nymix.desktop",
            "[Desktop Entry]\nExec=chromium --proxy-server=socks5://10.0.2.2:9050\n",
        )
    elif role is VmRole.COMMVM:
        add(
            "/etc/network/interfaces",
            "auto eth0 eth1\niface eth0 inet static\n  address 10.0.2.2\n"
            "iface eth1 inet dhcp\n",
        )
        add(
            "/etc/rc.local",
            f"#!/bin/sh\nnymix-anonymizer --start {anonymizer or 'tor'}\nexit 0\n",
        )
        add("/etc/sysctl.d/forwarding.conf", "net.ipv4.ip_forward=1\n")
    elif role is VmRole.SANIVM:
        # No network configuration at all: the SaniVM is air-gapped.
        add("/etc/network/interfaces", "auto lo\niface lo inet loopback\n")
        add("/etc/rc.local", "#!/bin/sh\nnymix-scrubd --watch /srv/transfer\nexit 0\n")
    layer_name = f"config({role.value}{':' + anonymizer if anonymizer else ''})"
    return Layer(name=layer_name, files=files, read_only=True)


def build_vm_mount(
    role: VmRole,
    tmpfs_bytes: int,
    base: Layer,
    anonymizer: str = "",
    merkle_root: Optional[bytes] = None,
    on_tamper=None,
    config: Optional[Layer] = None,
    bottom: Optional[Layer] = None,
) -> UnionMount:
    """Assemble the three-layer stack for one VM.

    With ``merkle_root`` given, the base layer is wrapped in the verified
    read path of §3.4 (shut down rather than boot from tampered media).
    Callers that launch many VMs may pass pre-built ``config``/``bottom``
    layers (both read-only, so sharing them across mounts is safe — the
    hypervisor's zygote cache does this); only the tmpfs top is always
    fresh.
    """
    if bottom is None:
        bottom = base
        if merkle_root is not None:
            bottom = VerifiedLayer(base, merkle_root, on_tamper=on_tamper)
    if config is None:
        config = build_config_layer(role, anonymizer)
    tmpfs = TmpfsLayer(name=f"tmpfs({role.value})", capacity_bytes=tmpfs_bytes)
    return UnionMount([tmpfs, config, bottom])


def published_merkle_root(base: Layer) -> bytes:
    """The well-known root hash shipped with the Nymix distribution."""
    return commit_layer(base).root
