"""Physical CPU model and virtualized execution timing.

Reproduces the CPU side of §5.2: a quad-core host runs single-vCPU guests;
hardware virtualization costs about 20% on a CPU-bound benchmark; and when
more guests than cores run in parallel, each guest's share of a core
shrinks — but real workloads have brief I/O and timer gaps that let
co-scheduled guests overlap, so measured parallel throughput lands a bit
*above* the perfect-sharing prediction (the Figure 4 "actual vs expected"
gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import HypervisorError
from repro.obs import NULL_OBS
from repro.sim.sharing import processor_sharing_times


@dataclass(frozen=True)
class ParallelRunResult:
    """Timing of one job in a parallel batch."""

    work_units: float
    duration_s: float

    @property
    def throughput(self) -> float:
        if self.duration_s == 0:
            return float("inf")
        return self.work_units / self.duration_s


class CpuModel:
    """The host's cores plus the cost model for running guests on them.

    Args:
        cores: Physical cores (the paper's host is an Intel i7 quad core).
        core_speed: Work units per second a core executes natively.
        virtualization_overhead: Fractional slowdown for guest execution
            (~0.20 measured in §5.2).
        interleave_bonus: Fraction of a contended guest's nominal share it
            recovers by overlapping with other guests' idle gaps.  Only
            applies when guests outnumber cores.
    """

    def __init__(
        self,
        cores: int = 4,
        core_speed: float = 1.0,
        virtualization_overhead: float = 0.20,
        interleave_bonus: float = 0.12,
        obs=NULL_OBS,
    ) -> None:
        if cores <= 0:
            raise HypervisorError(f"cores must be positive, got {cores}")
        if not 0 <= virtualization_overhead < 1:
            raise HypervisorError(
                f"virtualization overhead must be in [0, 1), got {virtualization_overhead}"
            )
        if interleave_bonus < 0:
            raise HypervisorError(f"negative interleave bonus: {interleave_bonus}")
        self.cores = cores
        self.core_speed = core_speed
        self.virtualization_overhead = virtualization_overhead
        self.interleave_bonus = interleave_bonus
        self._job_runs = obs.metrics.counter("vmm.vcpu.jobs")
        self._job_hist = obs.metrics.histogram("vmm.vcpu.job_s")

    # -- native execution ------------------------------------------------------

    def run_native(self, work_units: float) -> float:
        """Seconds for a single-threaded native job."""
        if work_units < 0:
            raise HypervisorError(f"negative work: {work_units}")
        return work_units / self.core_speed

    # -- virtualized execution ---------------------------------------------------

    def guest_work(self, work_units: float) -> float:
        """Effective work after the virtualization tax."""
        return work_units * (1.0 + self.virtualization_overhead)

    def run_guests_parallel(self, work_units: Sequence[float]) -> List[ParallelRunResult]:
        """Run one single-vCPU job per guest, all starting together."""
        inflated = [self.guest_work(w) for w in work_units]
        contended = len(work_units) > self.cores
        capacity = self.cores * self.core_speed
        if contended:
            # Idle-gap overlap recovers part of the contention loss.
            capacity *= 1.0 + self.interleave_bonus
        times = processor_sharing_times(inflated, capacity, max_share=self.core_speed)
        for elapsed in times:
            self._job_runs.inc()
            self._job_hist.observe(elapsed)
        return [
            ParallelRunResult(work_units=w, duration_s=t)
            for w, t in zip(work_units, times)
        ]

    def expected_parallel_duration(self, work_units: float, guests: int) -> float:
        """Perfect-sharing prediction from the single-guest run (Fig 4's line)."""
        if guests <= 0:
            raise HypervisorError(f"guests must be positive, got {guests}")
        share = min(self.core_speed, self.cores * self.core_speed / guests)
        return self.guest_work(work_units) / share
