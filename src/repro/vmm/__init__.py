"""Virtual machine monitor: vCPU scheduling, VM lifecycle, the hypervisor.

The paper's prototype runs every nymbox as a pair of QEMU/KVM guests with
one vCPU, a fixed 1024x768 display, identical MAC/IP addressing, and a
three-layer union file system rooted in the shared USB base image (§4.2).
This package reproduces those mechanics:

* :class:`CpuModel` — physical cores + virtualization overhead; exact
  processor-sharing completion times for parallel guest workloads.
* :class:`VirtualMachine` — lifecycle (created/running/paused/shutdown),
  guest RAM backed by :class:`~repro.memory.HostMemory`, a union-FS root,
  NICs, and secure teardown.
* :class:`Hypervisor` — admission control, VM factory for the
  AnonVM/CommVM/SaniVM roles, KSM, VirtFS shared folders, the host uplink
  with its DHCP exchange, and the packet capture used for validation.
"""

from repro.vmm.vcpu import CpuModel, ParallelRunResult
from repro.vmm.vm import VmRole, VmState, VirtualMachine, VmSpec
from repro.vmm.virtfs import SharedFolder
from repro.vmm.hypervisor import Hypervisor, HostSpec

__all__ = [
    "CpuModel",
    "ParallelRunResult",
    "VmRole",
    "VmState",
    "VirtualMachine",
    "VmSpec",
    "SharedFolder",
    "Hypervisor",
    "HostSpec",
]
