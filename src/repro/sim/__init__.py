"""Deterministic discrete-event simulation kernel.

Everything in the Nymix reproduction that involves time — VM boots, Tor
circuit construction, page loads, downloads — runs against a single
:class:`~repro.sim.clock.Clock` owned by a
:class:`~repro.sim.clock.Timeline`.  The kernel is intentionally small:

* :class:`Clock` — a monotonic simulated wall clock.
* :class:`EventQueue` — a priority queue of timed callbacks.
* :class:`Timeline` — clock + queue + seeded RNG, the object threaded
  through the whole system.
* :class:`SeededRng` — deterministic randomness (no wall-clock entropy).
* :func:`processor_sharing_times` — analytic completion times for jobs
  sharing a capacity-limited resource (used by the vCPU scheduler and the
  network bandwidth model).
"""

from repro.sim.clock import Clock, EventQueue, ScheduledEvent, Timeline
from repro.sim.rng import SeededRng
from repro.sim.sharing import processor_sharing_times

__all__ = [
    "Clock",
    "EventQueue",
    "ScheduledEvent",
    "Timeline",
    "SeededRng",
    "processor_sharing_times",
]
