"""Deterministic randomness for the simulation.

The substrate never touches ``os.urandom`` or wall-clock entropy; all
randomness flows from a seed so that experiments are reproducible.  Key
material for the crypto layer is drawn from the same stream — acceptable
because the "adversary" here is also part of the simulation.
"""

from __future__ import annotations

import hashlib
import random
import sys
from typing import List, Sequence, TypeVar

try:  # pragma: no cover - exercised through content_bytes
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

T = TypeVar("T")

#: Below this many bytes the pure-python path wins (state sync overhead).
_NUMPY_CONTENT_MIN_BYTES = 4096

#: Flipped off by perfbench's frozen-seed mode so the baseline measures
#: the pure-python draw honestly; the byte stream is identical either way.
_numpy_content_enabled = True


def numpy_content_enabled() -> bool:
    return _np is not None and _numpy_content_enabled


def set_numpy_content_enabled(enabled: bool) -> None:
    global _numpy_content_enabled
    _numpy_content_enabled = enabled

#: One reusable MT19937 bit generator; its state is overwritten from the
#: caller's ``random.Random`` on every draw, so sharing it between
#: independent streams is safe (and cheap — seeding a fresh generator per
#: call would dominate the draw).
_MT_SCRATCH = _np.random.MT19937(0) if _np is not None else None

#: Persistent word buffer for draws up to 1 MiB.  ``random_raw`` always
#: allocates its output, so large single draws churn the allocator (the
#: multi-hundred-KiB temporaries mmap/munmap every call, which costs more
#: than the generation itself on small-cache machines); drawing in
#: modest chunks into one reused buffer keeps every per-call allocation
#: allocator-pool sized.
_MT_BUFFER = _np.empty(1 << 18, dtype=_np.uint32) if _np is not None else None

#: Words per random_raw chunk (256 KiB) — measured sweet spot between
#: python loop overhead and temporary-allocation churn.
_MT_CHUNK_WORDS = 1 << 16


def _numpy_randbytes(py_random: random.Random, n: int) -> bytes:
    """``py_random.randbytes(n)``, computed by numpy's MT19937.

    CPython's ``random.Random`` and numpy's MT19937 are the same
    generator, so mirroring the 624-word state across, drawing the raw
    32-bit outputs vectorized, and mirroring the advanced state back
    produces the *identical* byte string and leaves ``py_random``
    exactly where the pure-python draw would have — journals cannot
    tell the difference.  ``randbytes`` is ``getrandbits(8n)`` rendered
    little-endian: one raw word per 32 bits, the top word right-shifted
    to the remaining bit count.
    """
    version, state, gauss_next = py_random.getstate()
    mt_state = _MT_SCRATCH.state
    mt_state["state"] = {
        "key": _np.asarray(state[:-1], dtype=_np.uint32),
        "pos": state[-1],
    }
    _MT_SCRATCH.state = mt_state
    bits = 8 * n
    words = (bits + 31) // 32
    buf = (
        _MT_BUFFER
        if words <= len(_MT_BUFFER)
        else _np.empty(words, dtype=_np.uint32)
    )
    for offset in range(0, words, _MT_CHUNK_WORDS):
        count = min(_MT_CHUNK_WORDS, words - offset)
        buf[offset : offset + count] = _MT_SCRATCH.random_raw(count)
    if bits % 32:
        buf[words - 1] >>= _np.uint32(32 - bits % 32)
    if sys.byteorder == "little":
        data = buf.view(_np.uint8)[:n].tobytes()
    else:  # pragma: no cover - no big-endian CI runner
        data = buf[:words].astype("<u4").tobytes()[:n]
    advanced = _MT_SCRATCH.state["state"]
    key = advanced["key"].tolist()
    key.append(int(advanced["pos"]))
    py_random.setstate((version, tuple(key), gauss_next))
    return data


class SeededRng:
    """A seeded random stream with helpers used across the substrate."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream from this one.

        Forking by label (rather than drawing a child seed from the parent
        stream) keeps child streams stable even if the parent's consumption
        pattern changes.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return SeededRng(int.from_bytes(digest[:8], "big"))

    # -- primitives ------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def token_bytes(self, n: int) -> bytes:
        """``n`` deterministic pseudo-random bytes (key material, nonces)."""
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def token_hex(self, n: int) -> str:
        return self.token_bytes(n).hex()

    def content_bytes(self, n: int) -> bytes:
        """Fast bulk pseudo-random (incompressible) content, e.g. cache files.

        Large draws route through numpy's MT19937 (bit-identical bytes,
        bit-identical stream position — see :func:`_numpy_randbytes`);
        small draws and numpy-less environments take the pure-python
        path.  Either way the result is exactly ``randbytes(n)``.
        """
        if (
            _np is not None
            and _numpy_content_enabled
            and n >= _NUMPY_CONTENT_MIN_BYTES
        ):
            return _numpy_randbytes(self._random, n)
        return self._random.randbytes(n)

    # -- distributions used by the timing models --------------------------

    def jitter(self, base: float, fraction: float = 0.05) -> float:
        """``base`` seconds perturbed by a uniform ±``fraction`` jitter.

        Used by timing models so repeated measurements show realistic
        variance while remaining deterministic for a given seed.
        """
        if base < 0:
            raise ValueError(f"negative base duration: {base!r}")
        return base * (1.0 + self.uniform(-fraction, fraction))

    def positive_gauss(self, mu: float, sigma: float, floor: float = 0.0) -> float:
        """Gaussian sample clamped below at ``floor`` (durations, sizes)."""
        return max(floor, self.gauss(mu, sigma))
