"""Deterministic randomness for the simulation.

The substrate never touches ``os.urandom`` or wall-clock entropy; all
randomness flows from a seed so that experiments are reproducible.  Key
material for the crypto layer is drawn from the same stream — acceptable
because the "adversary" here is also part of the simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A seeded random stream with helpers used across the substrate."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream from this one.

        Forking by label (rather than drawing a child seed from the parent
        stream) keeps child streams stable even if the parent's consumption
        pattern changes.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return SeededRng(int.from_bytes(digest[:8], "big"))

    # -- primitives ------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def token_bytes(self, n: int) -> bytes:
        """``n`` deterministic pseudo-random bytes (key material, nonces)."""
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def token_hex(self, n: int) -> str:
        return self.token_bytes(n).hex()

    def content_bytes(self, n: int) -> bytes:
        """Fast bulk pseudo-random (incompressible) content, e.g. cache files."""
        return self._random.randbytes(n)

    # -- distributions used by the timing models --------------------------

    def jitter(self, base: float, fraction: float = 0.05) -> float:
        """``base`` seconds perturbed by a uniform ±``fraction`` jitter.

        Used by timing models so repeated measurements show realistic
        variance while remaining deterministic for a given seed.
        """
        if base < 0:
            raise ValueError(f"negative base duration: {base!r}")
        return base * (1.0 + self.uniform(-fraction, fraction))

    def positive_gauss(self, mu: float, sigma: float, floor: float = 0.0) -> float:
        """Gaussian sample clamped below at ``floor`` (durations, sizes)."""
        return max(floor, self.gauss(mu, sigma))
