"""Simulated clock, event queue, and the Timeline façade.

The simulation is *analytic-first*: most operations compute how long they
take and advance the clock directly.  The event queue exists for the cases
where several activities complete out of order (parallel downloads, KSM
scan passes, deferred callbacks) and for tests that need to observe
interleavings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.rng import SeededRng


class Clock:
    """A monotonic simulated wall clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds!r} s")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance the clock to the absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={when}"
            )
        self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulated time."""

    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            hook, self._on_cancel = self._on_cancel, None
            hook()


class EventQueue:
    """Priority queue of :class:`ScheduledEvent`, ordered by time then FIFO.

    Cancelled events become heap tombstones; a live-event counter keeps
    ``len()`` O(1), and the heap is compacted whenever tombstones exceed
    half of its entries, so mass cancellation cannot pin memory until the
    dead timestamps drain.
    """

    #: Compact only past this size — tiny heaps aren't worth rebuilding.
    _COMPACT_MIN_ENTRIES = 8

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self._heap) - self._tombstones

    def _note_cancelled(self) -> None:
        """Cancel hook for events still in the heap."""
        self._tombstones += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_ENTRIES
            and self._tombstones * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0

    def _pop(self) -> ScheduledEvent:
        """Pop the heap head, keeping the tombstone count coherent."""
        event = heapq.heappop(self._heap)
        if event.cancelled:
            self._tombstones -= 1
        else:
            # Out of the heap now: a late cancel must not count a tombstone.
            event._on_cancel = None
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self._clock.now}, when={when}"
            )
        event = ScheduledEvent(when=when, seq=next(self._seq), callback=callback)
        event._on_cancel = self._note_cancelled
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self._clock.now + delay, callback)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].when

    def run_until(self, when: float) -> int:
        """Run every event scheduled at or before ``when``.

        The clock advances to each event's time as it fires and ends at
        ``when``.  Returns the number of callbacks executed.
        """
        if when < self._clock.now:
            raise SimulationError("run_until target is in the past")
        fired = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0].when > when:
                break
            event = self._pop()
            self._clock.advance_to(event.when)
            event.callback()
            fired += 1
        self._clock.advance_to(when)
        return fired

    def run_all(self, limit: int = 1_000_000) -> int:
        """Run every pending event (including ones scheduled while running).

        ``limit`` guards against runaway self-rescheduling loops.
        """
        fired = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap:
                return fired
            event = self._pop()
            self._clock.advance_to(event.when)
            event.callback()
            fired += 1
            if fired >= limit:
                raise SimulationError(f"event loop exceeded {limit} events")

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            self._pop()


class Timeline:
    """Clock + event queue + deterministic RNG + observability: the context.

    A single ``Timeline`` is threaded through every subsystem so that all
    activity shares one notion of time, one seeded randomness source, and
    one observability sink (``timeline.obs``), keeping whole-system runs
    reproducible bit-for-bit.  With ``observability=False`` the sink is
    the shared no-op recorder and instrumentation costs nothing.
    """

    def __init__(
        self, seed: int = 0, start: float = 0.0, observability: bool = True
    ) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.obs import NULL_OBS, Observability
        from repro.tenancy.registry import NULL_TENANCY

        self.clock = Clock(start=start)
        self.events = EventQueue(self.clock)
        self.rng = SeededRng(seed)
        self.obs = Observability(self.clock) if observability else NULL_OBS
        #: the armed fault injector, or the shared no-op when nothing is
        #: injecting — operation paths consult ``timeline.faults`` the same
        #: way they emit to ``timeline.obs``
        self.faults = NULL_FAULTS
        #: the attached tenant registry, or the shared no-op when no
        #: control plane is active — enforcement paths consult
        #: ``timeline.tenancy`` like ``timeline.obs``/``timeline.faults``
        self.tenancy = NULL_TENANCY

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def quiescent(self) -> bool:
        """True when no events are pending — the timeline is a closed
        object graph with no scheduled callbacks, safe to checkpoint."""
        return len(self.events) == 0

    def sleep(self, seconds: float) -> float:
        """Advance time by ``seconds``, firing any events that come due."""
        target = self.clock.now + seconds
        self.events.run_until(target)
        return self.clock.now

    def after(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        return self.events.schedule_in(delay, callback)

    def fork_rng(self, label: str) -> SeededRng:
        """Derive an independent RNG stream named by ``label``."""
        return self.rng.fork(label)

    def __repr__(self) -> str:
        return f"Timeline(now={self.clock.now:.3f}, pending={len(self.events)})"
