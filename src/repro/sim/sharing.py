"""Analytic processor-sharing model.

Both the vCPU scheduler (Figure 4) and the NAT uplink bandwidth model
(Figure 5) need the same primitive: *n* jobs of known size share a resource
of fixed capacity, each receiving an equal share of whatever capacity is
not left idle by already-finished jobs.  This module computes exact
completion times for that model without simulating progress tick-by-tick.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SimulationError


def processor_sharing_times(
    work_units: Sequence[float],
    capacity: float,
    max_share: float = float("inf"),
) -> List[float]:
    """Completion time of each job under egalitarian processor sharing.

    Args:
        work_units: Amount of work per job (e.g. bytes, cycle counts).
        capacity: Total resource capacity in work-units per second.
        max_share: Per-job ceiling on the rate it can consume (e.g. one
            vCPU can use at most one physical core even if others are idle).

    Returns:
        Completion time in seconds for each job, in input order.

    The model: at any instant the ``k`` unfinished jobs each proceed at
    ``min(capacity / k, max_share)``.  Completion order follows remaining
    work, so we process jobs shortest-first and advance an epoch clock.
    """
    if capacity <= 0:
        raise SimulationError(f"capacity must be positive, got {capacity!r}")
    if max_share <= 0:
        raise SimulationError(f"max_share must be positive, got {max_share!r}")
    for work in work_units:
        if work < 0:
            raise SimulationError(f"negative work unit: {work!r}")
    if not work_units:
        return []

    indexed: List[Tuple[float, int]] = sorted(
        (work, idx) for idx, work in enumerate(work_units)
    )
    completion = [0.0] * len(work_units)
    now = 0.0
    done_work = 0.0  # work already completed by every still-listed job
    remaining = len(indexed)
    for position, (work, idx) in enumerate(indexed):
        active = remaining - position
        rate = min(capacity / active, max_share)
        # This job must still perform (work - done_work) at the current rate.
        now += (work - done_work) / rate if work > done_work else 0.0
        done_work = work
        completion[idx] = now
    return completion


def equal_share_rate(capacity: float, jobs: int, max_share: float = float("inf")) -> float:
    """Instantaneous per-job rate when ``jobs`` jobs share ``capacity``."""
    if jobs <= 0:
        raise SimulationError(f"jobs must be positive, got {jobs!r}")
    return min(capacity / jobs, max_share)
