"""Incognito mode: iptables-masquerade relaying, minimal overhead.

The paper's lightweight option (§3.3/§4.1): the CommVM simply NATs the
AnonVM onto the Internet.  It still gives the structural benefits of a
nymbox (ephemeral state, browser isolation, fixed fingerprint) but offers
**no network-level tracking protection** — destinations see the user's
real public address.
"""

from __future__ import annotations

from repro.anonymizers.base import Anonymizer, TransferPlan, register_anonymizer
from repro.net.addresses import Ipv4Address


class IncognitoMode(Anonymizer):
    """NAT passthrough: fast, unprotected."""

    kind = "incognito"
    protects_network_identity = False
    # Traffic exits as plain NAT'd flows; the §5.1 leak policy still counts
    # it as sanctioned CommVM traffic, so it keeps the anonymizer label.
    traffic_label = "anonymizer"

    _STARTUP_S = 0.4  # one iptables rule install

    def start(self) -> float:
        self.timeline.sleep(self.rng.jitter(self._STARTUP_S, 0.2))
        self.started = True
        self.startup_seconds = self._STARTUP_S
        return self.startup_seconds

    def plan(self, payload_bytes: int) -> TransferPlan:
        return TransferPlan(
            overhead_factor=1.01,  # NAT/TCP bookkeeping only
            path_latency_s=0.0,
            handshake_rtts=1.0,  # plain TCP connect
        )

    def exit_address(self) -> Ipv4Address:
        # The whole point of the weak mode: the destination sees *you*.
        return self.nat.public_ip


register_anonymizer("incognito", IncognitoMode)
