"""SWEET: serving the web by exploiting email tunnels.

The paper's authors built their own SWEET implementation for Nymix (§4.1):
web traffic is smuggled through an ordinary email account, which censors
are reluctant to block wholesale.  Store-and-forward mail delivery makes
it extremely high-latency and low-throughput — a circumvention tool of
last resort, not a browsing transport.
"""

from __future__ import annotations

from repro.anonymizers.base import Anonymizer, TransferPlan, register_anonymizer
from repro.net.addresses import Ipv4Address

_MAIL_PROVIDER_IP = Ipv4Address.parse("198.51.103.1")


class SweetTunnel(Anonymizer):
    """Web-over-email tunnelling."""

    kind = "sweet"

    #: one mail round trip: submission, relay queues, polling the reply
    MAIL_ROUND_TRIP_S = 4.0
    #: MIME + base64 + headers roughly half again the payload
    MIME_OVERHEAD = 1.55
    #: mail-provider throttling caps effective throughput
    THROUGHPUT_CEILING_BPS = 256_000.0

    def start(self) -> float:
        begin = self.timeline.now
        # Log in to the mail account and prime the tunnel with a probe mail.
        self.timeline.sleep(self.rng.jitter(1.0, 0.1))
        self.timeline.sleep(self.MAIL_ROUND_TRIP_S)
        self.started = True
        self.startup_seconds = self.timeline.now - begin
        return self.startup_seconds

    def plan(self, payload_bytes: int) -> TransferPlan:
        return TransferPlan(
            overhead_factor=self.MIME_OVERHEAD,
            path_latency_s=self.MAIL_ROUND_TRIP_S,
            handshake_rtts=1.0,
            per_flow_ceiling_bps=self.THROUGHPUT_CEILING_BPS,
        )

    def exit_address(self) -> Ipv4Address:
        return _MAIL_PROVIDER_IP


register_anonymizer("sweet", SweetTunnel)
