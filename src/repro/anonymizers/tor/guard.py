"""Entry-guard selection and persistence.

Guards are the heart of the §3.5 security argument for quasi-persistent
nyms: Tor keeps the same entry relay for months because frequent rotation
accelerates long-term intersection attacks [36].  An amnesiac nym forces
fresh guards every boot; a persistent nym restores them.  Nymix's proposed
mitigation for cloud-loading (the ephemeral download nym can't know the
nym's guards yet) is to derive guard choice deterministically from the
nym's storage location and password — implemented here as
:meth:`GuardManager.deterministic`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.anonymizers.tor.directory import Consensus
from repro.anonymizers.tor.relay import RelayDescriptor
from repro.crypto.kdf import hkdf
from repro.errors import AnonymizerError
from repro.sim.rng import SeededRng

#: Tor's default guard-set size at the time of the paper.
DEFAULT_NUM_GUARDS = 3
#: Guard lifetime: "Tor normally maintains the same entry relay for
#: several months" (§3.5); 60 days expressed in seconds.
DEFAULT_ROTATION_S = 60 * 24 * 3600.0


def _weighted_sample(
    rng: SeededRng, candidates: Sequence[RelayDescriptor], k: int
) -> List[RelayDescriptor]:
    """Bandwidth-weighted sampling without replacement (Tor's guard policy)."""
    pool = list(candidates)
    chosen: List[RelayDescriptor] = []
    while pool and len(chosen) < k:
        total = sum(d.bandwidth_bps for d in pool)
        point = rng.uniform(0, total)
        cumulative = 0.0
        for descriptor in pool:
            cumulative += descriptor.bandwidth_bps
            if point <= cumulative:
                chosen.append(descriptor)
                pool.remove(descriptor)
                break
        else:  # floating-point edge: take the last candidate
            chosen.append(pool.pop())
    return chosen


class GuardManager:
    """Selects, remembers, and rotates entry guards for one Tor client."""

    def __init__(
        self,
        rng: SeededRng,
        num_guards: int = DEFAULT_NUM_GUARDS,
        rotation_s: float = DEFAULT_ROTATION_S,
    ) -> None:
        if num_guards < 1:
            raise AnonymizerError(f"need at least one guard, got {num_guards}")
        self.rng = rng
        self.num_guards = num_guards
        self.rotation_s = rotation_s
        self._guards: List[str] = []  # nicknames
        self._selected_at: Optional[float] = None

    # -- selection ------------------------------------------------------------

    def ensure_guards(self, consensus: Consensus, now: float) -> List[str]:
        """Return current guard nicknames, selecting or rotating if needed.

        Held guards (including restored ones) are re-validated against the
        consensus: a guard that churned out of the network is dropped and
        replaced, so a path never telescopes through a vanished relay.
        """
        expired = (
            self._selected_at is not None
            and now - self._selected_at >= self.rotation_s
        )
        if expired:
            self._guards = []
        candidates = consensus.guards()
        available = {d.nickname for d in candidates}
        self._guards = [g for g in self._guards if g in available]
        if len(self._guards) < self.num_guards:
            fresh = [d for d in candidates if d.nickname not in self._guards]
            if not fresh and not self._guards:
                raise AnonymizerError("consensus contains no Guard relays")
            picked = _weighted_sample(
                self.rng, fresh, self.num_guards - len(self._guards)
            )
            self._guards.extend(d.nickname for d in picked)
            self._selected_at = now
        return list(self._guards)

    @property
    def guards(self) -> List[str]:
        return list(self._guards)

    @property
    def has_guards(self) -> bool:
        return bool(self._guards)

    # -- persistence (§3.5) ------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        return {
            "guards": list(self._guards),
            "selected_at": self._selected_at,
            "num_guards": self.num_guards,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        guards = state.get("guards") or []
        self._guards = [str(g) for g in guards]
        self._selected_at = state.get("selected_at")  # type: ignore[assignment]
        num_guards = int(state.get("num_guards") or 0)
        if num_guards >= 1:
            self.num_guards = num_guards

    # -- deterministic seeding ------------------------------------------------------

    @classmethod
    def deterministic(
        cls,
        storage_location: str,
        password: str,
        num_guards: int = DEFAULT_NUM_GUARDS,
        rotation_s: float = DEFAULT_ROTATION_S,
    ) -> "GuardManager":
        """Guard choice derived from (storage location, password).

        The same nym loaded anywhere — including by its one-shot ephemeral
        download nym — picks the same entry guards, closing the §3.5
        intersection-attack gap for cloud-stored nyms.
        """
        seed_material = hkdf(
            password.encode(),
            salt=storage_location.encode(),
            info=b"nymix-guard-seed",
            length=8,
        )
        seed = int.from_bytes(seed_material, "big")
        return cls(SeededRng(seed), num_guards=num_guards, rotation_s=rotation_s)
