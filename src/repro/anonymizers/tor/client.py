"""The Tor client: bootstrap, circuits, SOCKS front-end, DNS.

One ``TorClient`` runs inside each nymbox's CommVM — a fresh instance per
nym, so circuits and exit addresses are never shared across nyms (§3.3:
shared anonymizer state like Tor circuits "cannot accidentally reveal the
links between different nyms").
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.anonymizers.base import Anonymizer, AnonymizerState, TransferPlan, register_anonymizer
from repro.anonymizers.socks import (
    AUTH_NONE,
    REPLY_SUCCESS,
    build_connect,
    build_greeting,
    build_method_selection,
    build_reply,
    parse_connect,
    parse_greeting,
    parse_reply,
)
from repro.anonymizers.tor.cells import CELL_OVERHEAD_FACTOR
from repro.anonymizers.tor.circuit import Circuit
from repro.anonymizers.tor.directory import Consensus, DirectoryAuthority
from repro.anonymizers.tor.guard import GuardManager
from repro.anonymizers.tor.policy import CircuitPool, IsolationPolicy
from repro.errors import AnonymizerError, CircuitError
from repro.faults.retry import RetryPolicy, retry_call
from repro.net.addresses import Ipv4Address
from repro.net.internet import Internet
from repro.net.nat import MasqueradeNat
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng

#: Control traffic (directory refresh, padding, circuit management) beyond
#: cell framing; together with CELL_OVERHEAD_FACTOR this yields the ~12%
#: fixed overhead of Figure 5.
CONTROL_OVERHEAD = 0.085

_PROCESS_LAUNCH_S = 1.2
_DESCRIPTOR_FETCH_S = 1.5
_FRESH_SETTLE_S = 2.5
_WARM_SETTLE_S = 0.6


class TorClient(Anonymizer):
    """Tor inside the CommVM: the paper's default anonymizer."""

    kind = "tor"

    def __init__(
        self,
        timeline: Timeline,
        internet: Internet,
        nat: MasqueradeNat,
        rng: SeededRng,
        directory: DirectoryAuthority,
        guard_manager: Optional[GuardManager] = None,
        num_hops: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_build_timeout_s: float = 60.0,
    ) -> None:
        super().__init__(timeline, internet, nat, rng)
        if num_hops < 1:
            raise AnonymizerError(f"need at least one hop, got {num_hops}")
        self.directory = directory
        self.guard_manager = guard_manager or GuardManager(rng.fork("guards"))
        self.num_hops = num_hops
        self.retry_policy = retry_policy or RetryPolicy()
        self.circuit_build_timeout_s = circuit_build_timeout_s
        self.consensus: Optional[Consensus] = None
        self._consensus_cached = False
        self.circuits: List[Circuit] = []
        # Circuit RNG labels must never repeat, even after destroyed
        # circuits are pruned from ``self.circuits`` — a monotonic counter,
        # not the list length, names each fork.
        self._circuit_counter = itertools.count()
        self._current: Optional[Circuit] = None
        self._pool: Optional[CircuitPool] = None

    # -- bootstrap (the Figure 7 "Start Tor" phase) --------------------------------

    def start(self) -> float:
        obs = self.timeline.obs
        begin = self.timeline.now
        with obs.span("tor.start"):
            self.timeline.sleep(self.rng.jitter(_PROCESS_LAUNCH_S, 0.1))
            self.consensus = self.directory.consensus(self.timeline.now)
            if not self._consensus_cached:
                # Fetch the consensus document plus relay descriptors through
                # the (not yet anonymized) directory connection.
                doc_bytes = self.consensus.document_bytes()
                duration = self.internet.uplink.transfer(doc_bytes).duration_s
                if self.nat.host_capture is not None:
                    self.nat.host_capture.record_flow(
                        where=f"uplink({self.nat.name})",
                        sender=self.nat.name,
                        label="anonymizer",
                        payload_bytes=doc_bytes,
                        summary="tor consensus fetch",
                    )
                self.timeline.sleep(duration + self.rng.jitter(_DESCRIPTOR_FETCH_S, 0.15))
            had_guards = self.guard_manager.has_guards
            before = self.guard_manager.guards
            guards = self.guard_manager.ensure_guards(self.consensus, self.timeline.now)
            if guards != before:
                obs.metrics.counter("tor.guard.selections").inc()
                obs.event(
                    "tor.guard.selected",
                    guards=",".join(guards),
                    rotation=had_guards,
                )
            self._current = self._build_circuit()
            settle = _WARM_SETTLE_S if (had_guards and self._consensus_cached) else _FRESH_SETTLE_S
            self.timeline.sleep(self.rng.jitter(settle, 0.2))
        self.started = True
        self.startup_seconds = self.timeline.now - begin
        obs.metrics.histogram("tor.start_s").observe(self.startup_seconds)
        obs.event(
            "tor.started",
            warm=bool(had_guards and self._consensus_cached),
            seconds=round(self.startup_seconds, 6),
        )
        return self.startup_seconds

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.flush()
        for circuit in self.circuits:
            circuit.destroy()
        self.circuits.clear()
        self._current = None
        super().stop()

    # -- circuits ---------------------------------------------------------------

    def _pick_path(self) -> List:
        assert self.consensus is not None
        guard_nick = self.rng.choice(self.guard_manager.guards)
        guard = self.directory.relay(guard_nick)
        exits = [d for d in self.consensus.exits() if d.nickname != guard_nick]
        if not exits:
            if self.num_hops == 1 and guard.descriptor.is_exit:
                return [guard]
            raise CircuitError("no usable exit relays in consensus")
        exit_desc = self.rng.choice(exits)
        if self.num_hops == 1:
            # A 1-hop path must still terminate at an Exit-flagged relay,
            # or exit_address() reports a relay that may not carry the
            # Exit flag and was never drawn from consensus.exits().
            if guard.descriptor.is_exit:
                return [guard]
            return [self.directory.relay(exit_desc.nickname)]
        path = [guard]
        middles = [
            d
            for d in self.consensus.middles()
            if d.nickname not in (guard_nick, exit_desc.nickname)
        ]
        for _ in range(self.num_hops - 2):
            if not middles:
                break
            middle = self.rng.choice(middles)
            middles = [d for d in middles if d.nickname != middle.nickname]
            path.append(self.directory.relay(middle.nickname))
        if self.num_hops >= 2:
            path.append(self.directory.relay(exit_desc.nickname))
        return path

    def _refresh_network_view(self, failures: int, exc: BaseException) -> None:
        """Between circuit-build attempts: re-fetch the consensus and let the
        guard manager drop/replace guards that churned out of it."""
        self.consensus = self.directory.consensus(self.timeline.now)
        self.guard_manager.ensure_guards(self.consensus, self.timeline.now)

    def _build_circuit(self) -> Circuit:
        def attempt() -> Circuit:
            self.timeline.faults.maybe_fail("tor.circuit_build")
            circuit = Circuit(
                self.timeline,
                self.rng.fork(f"circuit:{next(self._circuit_counter)}"),
            )
            try:
                circuit.build(self._pick_path())
            except AnonymizerError:
                circuit.destroy()
                raise
            if circuit.build_seconds > self.circuit_build_timeout_s:
                circuit.destroy()
                raise CircuitError(
                    f"circuit build took {circuit.build_seconds:.1f}s, "
                    f"over the {self.circuit_build_timeout_s:.0f}s timeout"
                )
            return circuit

        circuit = retry_call(
            self.timeline,
            attempt,
            policy=self.retry_policy,
            retryable=AnonymizerError,
            site="tor.circuit_build",
            on_retry=self._refresh_network_view,
            reraise=True,
        )
        self.circuits.append(circuit)
        return circuit

    @property
    def current_circuit(self) -> Circuit:
        previous = self._current
        if previous is not None and previous.built and not previous.usable:
            # A relay on the path died: the circuit is unusable even though
            # it still holds hop state.  Tear it down and rebuild.
            previous.destroy()
        if self._current is None or not self._current.built:
            self.circuits = [c for c in self.circuits if c.built]
            self._current = self._build_circuit()
            if previous is not None:
                self.timeline.obs.metrics.counter("tor.circuit.rebuilds").inc()
                self.timeline.obs.event("tor.circuit.rebuilt", reason="unusable")
        return self._current

    def new_identity(self) -> Circuit:
        """Rotate to a fresh circuit (Tor's NEWNYM).

        NEWNYM severs *everything* pre-rotation: the current circuit dies,
        an installed pool is flushed (it must not keep handing out old
        circuits), and destroyed circuits are pruned from ``self.circuits``
        so repeated rotations don't grow it without bound.
        """
        if self._current is not None:
            self._current.destroy()
        if self._pool is not None:
            self._pool.flush()
        self.circuits = [c for c in self.circuits if c.built]
        self.timeline.obs.metrics.counter("tor.newnym").inc()
        self._current = self._build_circuit()
        return self._current

    def enable_stream_isolation(self, policy: Optional[IsolationPolicy] = None) -> CircuitPool:
        """Install a circuit pool applying ``policy`` to SOCKS streams."""
        self._pool = CircuitPool(
            self.timeline, self._build_circuit, policy or IsolationPolicy()
        )
        return self._pool

    @property
    def circuit_pool(self) -> Optional[CircuitPool]:
        return self._pool

    def exit_address(self) -> Ipv4Address:
        return self.current_circuit.exit.descriptor.ip

    # -- SOCKS front end ------------------------------------------------------------

    def socks_connect(self, hostname: str, port: int = 443) -> bytes:
        """Run the full SOCKS5 negotiation as the CommVM-side proxy would.

        Returns the success reply the AnonVM's browser receives.  Also
        opens a stream on the current circuit (the real effect).
        """
        self._require_started()
        methods = parse_greeting(build_greeting())
        if AUTH_NONE not in methods:
            raise AnonymizerError("client offered no supported SOCKS auth method")
        build_method_selection(AUTH_NONE)
        request = parse_connect(build_connect(hostname, port))
        target = f"{request.hostname}:{request.port}"

        def open_stream() -> None:
            # current_circuit and the pool's sweep both replace circuits
            # that died (teardown, relay churn) since the last stream.
            if self._pool is not None:
                circuit = self._pool.circuit_for_stream(request.hostname)
                circuit.open_stream(target)
            else:
                self.current_circuit.open_stream(target)

        retry_call(
            self.timeline,
            open_stream,
            policy=self.retry_policy,
            retryable=CircuitError,
            site="tor.stream_open",
            reraise=True,
        )
        reply = build_reply(REPLY_SUCCESS, Ipv4Address.parse("0.0.0.0"), 0)
        code, _, _ = parse_reply(reply)
        if code != REPLY_SUCCESS:
            raise AnonymizerError(f"SOCKS connect failed with code {code}")
        return reply

    # -- transport contract ------------------------------------------------------------

    def plan(self, payload_bytes: int) -> TransferPlan:
        return TransferPlan(
            overhead_factor=CELL_OVERHEAD_FACTOR * (1.0 + CONTROL_OVERHEAD),
            path_latency_s=self.current_circuit.path_latency_s,
            handshake_rtts=2.0,  # SOCKS negotiation + RELAY_BEGIN round trip
        )

    def resolve(self, hostname: str) -> Ipv4Address:
        """Tor's built-in DNS: resolve at the exit, never locally (§4.1)."""
        self._require_started()
        answer = self.internet.resolve(hostname)
        self.timeline.sleep(2 * self.current_circuit.path_latency_s)
        return answer

    def send_payload(self, plaintext: bytes) -> bytes:
        """Round-trip a payload through real onion crypto (for validation)."""
        self._require_started()
        circuit = self.current_circuit
        onion = circuit.onion_encrypt(plaintext)
        if onion == plaintext:
            raise AnonymizerError("onion encryption produced identity transform")
        at_exit = circuit.relay_forward(onion)
        response = circuit.relay_backward(at_exit)
        return circuit.onion_decrypt(response)

    # -- quasi-persistent state (§3.5) ---------------------------------------------------

    def export_state(self) -> AnonymizerState:
        return AnonymizerState(
            kind=self.kind,
            payload={
                "guards": self.guard_manager.export_state(),
                "consensus_cached": True,
            },
        )

    def import_state(self, state: AnonymizerState) -> None:
        super().import_state(state)
        guards = state.payload.get("guards")
        if guards:
            self.guard_manager.import_state(guards)  # type: ignore[arg-type]
        self._consensus_cached = bool(state.payload.get("consensus_cached"))


register_anonymizer("tor", TorClient)
