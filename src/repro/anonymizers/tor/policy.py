"""Circuit management policy: lifetime rotation and stream isolation.

Tor clients retire "dirty" circuits after MaxCircuitDirtiness (10 minutes
by default) and can isolate streams — per destination, or per SOCKS
credential — onto separate circuits so activities don't share an exit.
Nymix's per-nym CommVMs already give *cross-nym* isolation structurally;
the policy here governs circuit hygiene *within* one nym, and lets tests
quantify what a shared-Tor design (the Whonix model the paper contrasts)
would leak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.anonymizers.tor.circuit import Circuit
from repro.errors import CircuitError

#: Tor's default MaxCircuitDirtiness.
DEFAULT_MAX_DIRTINESS_S = 600.0


@dataclass(frozen=True)
class IsolationPolicy:
    """Which streams may share a circuit."""

    #: retire a circuit this long after its first stream
    max_dirtiness_s: float = DEFAULT_MAX_DIRTINESS_S
    #: never put streams to different destinations on one circuit
    isolate_destinations: bool = False
    #: never put streams with different SOCKS auth tokens on one circuit
    isolate_tokens: bool = False


@dataclass
class _TrackedCircuit:
    circuit: Circuit
    first_stream_at: Optional[float] = None
    destinations: List[str] = field(default_factory=list)
    tokens: List[str] = field(default_factory=list)


class CircuitPool:
    """Applies an :class:`IsolationPolicy` to a Tor client's circuits.

    The pool is given a circuit factory (the client's ``_build_circuit``)
    and answers "which circuit may carry this stream?", building fresh
    circuits when the policy forbids reuse.
    """

    def __init__(self, timeline, build_circuit, policy: IsolationPolicy) -> None:
        self.timeline = timeline
        self._build = build_circuit
        self.policy = policy
        self._tracked: List[_TrackedCircuit] = []
        self.circuits_built = 0
        self.reuses = 0
        self.retired = 0

    def _is_dirty(self, tracked: _TrackedCircuit) -> bool:
        if tracked.first_stream_at is None:
            return False
        return (
            self.timeline.now - tracked.first_stream_at
            >= self.policy.max_dirtiness_s
        )

    def _compatible(self, tracked: _TrackedCircuit, destination: str, token: str) -> bool:
        if not tracked.circuit.built or self._is_dirty(tracked):
            return False
        if self.policy.isolate_destinations and tracked.destinations:
            if destination not in tracked.destinations:
                return False
        if self.policy.isolate_tokens and tracked.tokens:
            if token not in tracked.tokens:
                return False
        return True

    def _sweep(self) -> int:
        """Destroy and drop circuits that can no longer carry streams:
        past their dirtiness budget, or broken (torn down, dead relay).
        Without this the tracked list grows without bound and
        ``active_circuits``/``exits_seen_by`` report ghost circuits."""
        swept = 0
        for tracked in list(self._tracked):
            if self._is_dirty(tracked) or not tracked.circuit.usable:
                tracked.circuit.destroy()
                self._tracked.remove(tracked)
                swept += 1
        self.retired += swept
        return swept

    def circuit_for_stream(self, destination: str, token: str = "") -> Circuit:
        """Pick (or build) the circuit this stream is allowed to use.

        Dirty and broken circuits are retired on the way in, so the pool
        never accumulates unusable entries."""
        self._sweep()
        for tracked in self._tracked:
            if self._compatible(tracked, destination, token):
                self.reuses += 1
                self._note_stream(tracked, destination, token)
                return tracked.circuit
        circuit = self._build()
        if not circuit.built:
            raise CircuitError("circuit factory returned an unbuilt circuit")
        tracked = _TrackedCircuit(circuit=circuit)
        self._note_stream(tracked, destination, token)
        self._tracked.append(tracked)
        self.circuits_built += 1
        return circuit

    def _note_stream(self, tracked: _TrackedCircuit, destination: str, token: str) -> None:
        if tracked.first_stream_at is None:
            tracked.first_stream_at = self.timeline.now
        if destination not in tracked.destinations:
            tracked.destinations.append(destination)
        if token not in tracked.tokens:
            tracked.tokens.append(token)

    def retire_dirty(self) -> int:
        """Destroy circuits past their dirtiness budget.  Returns count."""
        retired = 0
        for tracked in list(self._tracked):
            if self._is_dirty(tracked):
                tracked.circuit.destroy()
                self._tracked.remove(tracked)
                retired += 1
        self.retired += retired
        return retired

    def flush(self) -> int:
        """Destroy every tracked circuit (NEWNYM: nothing pre-rotation may
        carry post-rotation streams).  Returns the number flushed."""
        flushed = len(self._tracked)
        for tracked in self._tracked:
            tracked.circuit.destroy()
        self._tracked.clear()
        self.retired += flushed
        return flushed

    @property
    def active_circuits(self) -> int:
        return len(self._tracked)

    def exits_seen_by(self, destination: str) -> List[str]:
        """Which exit relays have carried streams to ``destination``."""
        return [
            t.circuit.exit.descriptor.nickname
            for t in self._tracked
            if destination in t.destinations and t.circuit.built
        ]


def shared_exit_linkage(pool: CircuitPool, dest_a: str, dest_b: str) -> bool:
    """Would a colluding pair of destinations see the same exit?

    This is the §3.3 hazard of *sharing* one Tor instance across nyms:
    reused circuits let two destinations correlate a user.  Per-nym
    CommVMs make the question moot; within a nym, destination isolation
    answers it.
    """
    return bool(set(pool.exits_seen_by(dest_a)) & set(pool.exits_seen_by(dest_b)))
