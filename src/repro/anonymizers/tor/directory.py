"""The directory authority and consensus for the test Tor deployment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.anonymizers.tor.relay import Relay, RelayDescriptor
from repro.errors import AnonymizerError
from repro.net.addresses import Ipv4Address
from repro.sim.rng import SeededRng


@dataclass(frozen=True)
class Consensus:
    """A signed-snapshot view of the relay population."""

    valid_after: float
    descriptors: List[RelayDescriptor]

    def document_bytes(self) -> int:
        """Size of the consensus document a bootstrapping client downloads."""
        # Descriptors are immutable, so the document size is fixed at
        # consensus creation; memoize it on the frozen instance (every
        # bootstrapping client asks, and rendering is O(relays)).
        cached = getattr(self, "_document_size", None)
        if cached is None:
            body = "\n".join(d.summary_line() for d in self.descriptors)
            cached = len(body.encode()) + 1024  # header + signatures
            object.__setattr__(self, "_document_size", cached)
        return cached

    def guards(self) -> List[RelayDescriptor]:
        return [d for d in self.descriptors if d.is_guard]

    def exits(self) -> List[RelayDescriptor]:
        return [d for d in self.descriptors if d.is_exit]

    def middles(self) -> List[RelayDescriptor]:
        return list(self.descriptors)

    def by_nickname(self, nickname: str) -> RelayDescriptor:
        for descriptor in self.descriptors:
            if descriptor.nickname == nickname:
                return descriptor
        raise AnonymizerError(f"no relay named {nickname!r} in consensus")


class DirectoryAuthority:
    """Generates and serves the test deployment's relays and consensus.

    One authority instance is shared by every TorClient in a run (all
    CommVMs talk to the same deployment); each client still builds its own
    circuits through it.
    """

    def __init__(
        self,
        rng: SeededRng,
        relay_count: int = 40,
        guard_fraction: float = 0.35,
        exit_fraction: float = 0.35,
        base_ip: str = "198.51.101.0",
    ) -> None:
        if relay_count < 3:
            raise AnonymizerError(f"a Tor deployment needs >= 3 relays, got {relay_count}")
        self.rng = rng.fork("directory")
        self._relays: Dict[str, Relay] = {}
        base = Ipv4Address.parse(base_ip)
        for index in range(relay_count):
            flags = {"Running", "Valid", "Stable"}
            # Assign Guard and Exit by position to get deterministic,
            # non-overlapping-enough pools (real networks overlap too).
            if index < int(relay_count * guard_fraction):
                flags.add("Guard")
            if index >= relay_count - int(relay_count * exit_fraction):
                flags.add("Exit")
            bandwidth = self.rng.uniform(5_000_000, 20_000_000)
            relay = Relay(
                nickname=f"relay{index:03d}",
                ip=Ipv4Address(base.value + index + 1),
                bandwidth_bps=bandwidth,
                flags=frozenset(flags),
                rng=self.rng,
            )
            self._relays[relay.descriptor.nickname] = relay
        self._consensus: Optional[Consensus] = None

    def consensus(self, now: float = 0.0) -> Consensus:
        if self._consensus is None:
            self._consensus = Consensus(
                valid_after=now,
                descriptors=[r.descriptor for r in self._relays.values()],
            )
        return self._consensus

    def churn_relay(self, nickname: str) -> Relay:
        """Remove a relay from the deployment (churn).

        The relay is retired (its circuits die) and the cached consensus is
        invalidated so the next ``consensus()`` call reflects the loss.
        """
        if len(self._relays) <= 3:
            raise AnonymizerError(
                "cannot churn below the 3-relay minimum deployment"
            )
        try:
            relay = self._relays.pop(nickname)
        except KeyError:
            raise AnonymizerError(f"unknown relay {nickname!r}") from None
        relay.retire()
        self._consensus = None
        return relay

    def relay(self, nickname: str) -> Relay:
        try:
            return self._relays[nickname]
        except KeyError:
            raise AnonymizerError(f"unknown relay {nickname!r}") from None

    def relays(self) -> List[Relay]:
        return list(self._relays.values())

    def __len__(self) -> int:
        return len(self._relays)
