"""Tor cell framing: fixed 512-byte cells.

The fixed cell size is the dominant source of Tor's wire overhead for
bulk transfer (512 bytes carrying up to 498 of payload), which combined
with circuit/directory control traffic yields the ~12% fixed overhead
observed in Figure 5.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import AnonymizerError

CELL_SIZE = 512
_HEADER_SIZE = 14  # circ_id (4) + command (1) + length (2) + digest (7, abridged)
CELL_PAYLOAD_SIZE = CELL_SIZE - _HEADER_SIZE  # 498


class CellCommand(enum.IntEnum):
    PADDING = 0
    CREATE2 = 10
    CREATED2 = 11
    RELAY_EXTEND2 = 14
    RELAY_EXTENDED2 = 15
    RELAY_BEGIN = 1
    RELAY_CONNECTED = 4
    RELAY_DATA = 2
    RELAY_END = 3
    RELAY_RESOLVE = 11 + 16
    RELAY_RESOLVED = 12 + 16
    DESTROY = 4 + 32


@dataclass(frozen=True)
class Cell:
    """One fixed-size cell on a circuit."""

    circ_id: int
    command: CellCommand
    payload: bytes = b""

    def pack(self) -> bytes:
        """Serialize to exactly ``CELL_SIZE`` bytes (zero-padded payload)."""
        if len(self.payload) > CELL_PAYLOAD_SIZE:
            raise AnonymizerError(
                f"cell payload {len(self.payload)} exceeds {CELL_PAYLOAD_SIZE} bytes"
            )
        header = struct.pack(
            ">IBH7s", self.circ_id, int(self.command), len(self.payload), b"\x00" * 7
        )
        return header + self.payload + b"\x00" * (CELL_PAYLOAD_SIZE - len(self.payload))

    @classmethod
    def unpack(cls, data: bytes) -> "Cell":
        if len(data) != CELL_SIZE:
            raise AnonymizerError(f"cell must be {CELL_SIZE} bytes, got {len(data)}")
        circ_id, command, length, _ = struct.unpack(">IBH7s", data[:_HEADER_SIZE])
        if length > CELL_PAYLOAD_SIZE:
            raise AnonymizerError(f"cell declares oversized payload: {length}")
        return cls(
            circ_id=circ_id,
            command=CellCommand(command),
            payload=data[_HEADER_SIZE : _HEADER_SIZE + length],
        )


def cells_for_payload(payload_bytes: int) -> int:
    """How many RELAY_DATA cells a payload occupies."""
    if payload_bytes <= 0:
        return 0
    return (payload_bytes + CELL_PAYLOAD_SIZE - 1) // CELL_PAYLOAD_SIZE


#: Pure cell-framing expansion factor for bulk data.
CELL_OVERHEAD_FACTOR = CELL_SIZE / CELL_PAYLOAD_SIZE
