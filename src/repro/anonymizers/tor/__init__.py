"""A Tor simulator: directory, relays, guards, circuits, onion crypto.

Models the private Tor deployment of §5.2 (a DeterLab testbed reaching the
real Internet) rather than the live network: relay count, bandwidths and
path latencies are fixed and noise-free, which is exactly why the paper
used a testbed.  Circuit handshakes use real X25519 key exchange and the
onion layers use real ChaCha20 — peeling actually decrypts.
"""

from repro.anonymizers.tor.cells import Cell, CellCommand, CELL_SIZE, CELL_PAYLOAD_SIZE
from repro.anonymizers.tor.circuit import Circuit
from repro.anonymizers.tor.client import TorClient
from repro.anonymizers.tor.directory import Consensus, DirectoryAuthority
from repro.anonymizers.tor.guard import GuardManager
from repro.anonymizers.tor.relay import Relay, RelayDescriptor

__all__ = [
    "Cell",
    "CellCommand",
    "CELL_SIZE",
    "CELL_PAYLOAD_SIZE",
    "Circuit",
    "TorClient",
    "Consensus",
    "DirectoryAuthority",
    "GuardManager",
    "Relay",
    "RelayDescriptor",
]
