"""Multi-authority consensus voting.

Real Tor trusts no single directory: each authority publishes a vote
(its view of the relay population and flags), and the consensus contains
a relay iff a majority of authorities listed it, with flags assigned by
per-flag majority.  A client requires the consensus to carry signatures
from more than half the authorities it knows.

The single-:class:`~repro.anonymizers.tor.directory.DirectoryAuthority`
path stays the fast default; this module supplies the full voting
machinery for deployments that want Byzantine directory behaviour in
scope (e.g. testing what a single malicious authority can and cannot do).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.anonymizers.tor.directory import Consensus
from repro.anonymizers.tor.relay import RelayDescriptor
from repro.errors import AnonymizerError


@dataclass(frozen=True)
class DirectoryVote:
    """One authority's signed view of the network."""

    authority: str
    descriptors: Dict[str, RelayDescriptor]  # by nickname
    flags: Dict[str, FrozenSet[str]]  # nickname -> flags this authority asserts

    def digest(self) -> bytes:
        body = ";".join(
            f"{nick}:{','.join(sorted(self.flags.get(nick, frozenset())))}"
            for nick in sorted(self.descriptors)
        )
        return hashlib.sha256(f"{self.authority}|{body}".encode()).digest()


@dataclass(frozen=True)
class SignedConsensus:
    """The voted consensus plus the authorities that signed it."""

    consensus: Consensus
    signers: FrozenSet[str]
    total_authorities: int

    @property
    def quorum(self) -> bool:
        return len(self.signers) * 2 > self.total_authorities


def cast_vote(authority: str, descriptors: Sequence[RelayDescriptor]) -> DirectoryVote:
    """An honest authority votes its actual view."""
    return DirectoryVote(
        authority=authority,
        descriptors={d.nickname: d for d in descriptors},
        flags={d.nickname: d.flags for d in descriptors},
    )


def tally_votes(votes: Sequence[DirectoryVote], valid_after: float = 0.0) -> SignedConsensus:
    """Majority-combine votes into a consensus.

    A relay enters iff a strict majority of authorities voted for it; each
    flag is kept iff a majority of *those voting for the relay* assert it.
    """
    if not votes:
        raise AnonymizerError("cannot tally zero votes")
    authorities = [vote.authority for vote in votes]
    if len(set(authorities)) != len(authorities):
        raise AnonymizerError("duplicate authority votes")
    majority = len(votes) // 2 + 1

    supporters: Dict[str, List[DirectoryVote]] = {}
    for vote in votes:
        for nickname in vote.descriptors:
            supporters.setdefault(nickname, []).append(vote)

    descriptors: List[RelayDescriptor] = []
    for nickname, voting in sorted(supporters.items()):
        if len(voting) < majority:
            continue
        flag_votes: Dict[str, int] = {}
        for vote in voting:
            for flag in vote.flags.get(nickname, frozenset()):
                flag_votes[flag] = flag_votes.get(flag, 0) + 1
        flag_majority = len(voting) // 2 + 1
        flags = frozenset(
            flag for flag, count in flag_votes.items() if count >= flag_majority
        )
        base = voting[0].descriptors[nickname]
        descriptors.append(
            RelayDescriptor(
                nickname=base.nickname,
                ip=base.ip,
                or_port=base.or_port,
                bandwidth_bps=base.bandwidth_bps,
                flags=flags,
                onion_public_key=base.onion_public_key,
            )
        )
    consensus = Consensus(valid_after=valid_after, descriptors=descriptors)
    return SignedConsensus(
        consensus=consensus,
        signers=frozenset(authorities),
        total_authorities=len(votes),
    )


def verify_consensus(signed: SignedConsensus, known_authorities: Set[str]) -> bool:
    """Client-side check: enough known authorities signed?"""
    recognized = signed.signers & known_authorities
    return len(recognized) * 2 > len(known_authorities)
