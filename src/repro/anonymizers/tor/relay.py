"""Tor relays: descriptors, onion keys, and per-hop cell processing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.crypto.chacha20 import chacha20_keystream, xor_bytes
from repro.crypto.kdf import hkdf
from repro.crypto.x25519 import x25519, x25519_keypair
from repro.errors import CircuitError
from repro.net.addresses import Ipv4Address
from repro.sim.rng import SeededRng

_KEY_INFO = b"nymix-tor-ntor-v1"
_NONCE = b"\x00" * 12  # per-hop keys are single-use directions in this model

# The ntor exchange is deterministic given (relay onion key, client public
# key), so each relay can memoize the derived hop keys per client key: a
# repeat CREATE2 from the same ephemeral key skips the scalar multiply and
# the HKDF.  Toggleable so perfbench baselines can measure the cold path.
_HANDSHAKE_MEMO_ENABLED = True


def set_handshake_memo_enabled(enabled: bool) -> None:
    global _HANDSHAKE_MEMO_ENABLED
    _HANDSHAKE_MEMO_ENABLED = bool(enabled)


def handshake_memo_enabled() -> bool:
    return _HANDSHAKE_MEMO_ENABLED


@dataclass(frozen=True)
class RelayDescriptor:
    """The consensus entry for one relay."""

    nickname: str
    ip: Ipv4Address
    or_port: int
    bandwidth_bps: float
    flags: FrozenSet[str]
    onion_public_key: bytes

    @property
    def is_guard(self) -> bool:
        return "Guard" in self.flags

    @property
    def is_exit(self) -> bool:
        return "Exit" in self.flags

    def summary_line(self) -> str:
        """The consensus wire form (sizes the directory download)."""
        flag_text = ",".join(sorted(self.flags))
        return (
            f"r {self.nickname} {self.ip}:{self.or_port} "
            f"bw={int(self.bandwidth_bps)} {flag_text} "
            f"ntor={self.onion_public_key.hex()}"
        )


#: Keystream caches grow in whole cells' worth of bytes.
_KEYSTREAM_CHUNK = 4096


@dataclass
class _CircuitHopState:
    forward_key: bytes
    backward_key: bytes
    next_hop: Optional["Relay"] = None
    streams: List[str] = field(default_factory=list)
    # Cached ChaCha20 keystream per direction.  Hop keys are single-use
    # directions under a fixed nonce/counter in this model, so the stream
    # bytes never change — caching them turns per-cell onion processing
    # into a single XOR instead of a full 20-round cipher evaluation.
    forward_keystream: bytes = b""
    backward_keystream: bytes = b""

    def keystream(self, forward: bool, length: int, nonce: bytes) -> bytes:
        cached = self.forward_keystream if forward else self.backward_keystream
        if len(cached) < length:
            rounded = -(-length // _KEYSTREAM_CHUNK) * _KEYSTREAM_CHUNK
            key = self.forward_key if forward else self.backward_key
            cached = chacha20_keystream(key, nonce, rounded)
            if forward:
                self.forward_keystream = cached
            else:
                self.backward_keystream = cached
        return cached[:length]


class Relay:
    """A running relay: static onion key plus per-circuit hop state."""

    def __init__(
        self,
        nickname: str,
        ip: Ipv4Address,
        bandwidth_bps: float,
        flags: FrozenSet[str],
        rng: SeededRng,
        or_port: int = 9001,
    ) -> None:
        private, public = x25519_keypair(rng.fork(f"relay:{nickname}"))
        self._onion_private_key = private
        self.descriptor = RelayDescriptor(
            nickname=nickname,
            ip=ip,
            or_port=or_port,
            bandwidth_bps=bandwidth_bps,
            flags=flags,
            onion_public_key=public,
        )
        self._circuits: Dict[int, _CircuitHopState] = {}
        self._ntor_memo: Dict[bytes, Tuple[bytes, bytes]] = {}
        self.cells_processed = 0
        #: cleared when the relay churns out of the deployment; dead relays
        #: refuse new circuits and have forgotten their hop state
        self.alive = True

    # -- handshake ------------------------------------------------------------

    @staticmethod
    def derive_keys(shared_secret: bytes) -> Tuple[bytes, bytes]:
        material = hkdf(shared_secret, salt=b"", info=_KEY_INFO, length=64)
        return material[:32], material[32:]

    def handle_create(self, circ_id: int, client_public_key: bytes) -> bytes:
        """CREATE2: complete the DH handshake, install hop keys.

        Returns the relay's handshake reply (its onion public key echo —
        the client derives the same shared secret from it).
        """
        if not self.alive:
            raise CircuitError(f"{self.descriptor.nickname}: relay is gone")
        if circ_id in self._circuits:
            raise CircuitError(
                f"{self.descriptor.nickname}: circuit id {circ_id} already in use"
            )
        memo = self._ntor_memo if _HANDSHAKE_MEMO_ENABLED else None
        keys = memo.get(client_public_key) if memo is not None else None
        if keys is None:
            shared = x25519(self._onion_private_key, client_public_key)
            keys = self.derive_keys(shared)
            if _HANDSHAKE_MEMO_ENABLED:
                self._ntor_memo[client_public_key] = keys
        self._circuits[circ_id] = _CircuitHopState(*keys)
        return self.descriptor.onion_public_key

    def link_next_hop(self, circ_id: int, next_hop: "Relay") -> None:
        self._hop(circ_id).next_hop = next_hop

    def _hop(self, circ_id: int) -> _CircuitHopState:
        if not self.alive:
            raise CircuitError(f"{self.descriptor.nickname}: relay is gone")
        try:
            return self._circuits[circ_id]
        except KeyError:
            raise CircuitError(
                f"{self.descriptor.nickname}: unknown circuit {circ_id}"
            ) from None

    # -- onion processing ----------------------------------------------------------

    def peel_forward(self, circ_id: int, data: bytes) -> bytes:
        """Remove this hop's forward onion layer."""
        hop = self._hop(circ_id)
        self.cells_processed += 1
        return xor_bytes(data, hop.keystream(True, len(data), _NONCE))

    def wrap_backward(self, circ_id: int, data: bytes) -> bytes:
        """Add this hop's backward onion layer (responses toward the client)."""
        hop = self._hop(circ_id)
        self.cells_processed += 1
        return xor_bytes(data, hop.keystream(False, len(data), _NONCE))

    def open_stream(self, circ_id: int, target: str) -> None:
        """RELAY_BEGIN arrives fully peeled at the exit: record the stream."""
        self._hop(circ_id).streams.append(target)

    def streams_on_circuit(self, circ_id: int) -> List[str]:
        return list(self._hop(circ_id).streams)

    def destroy_circuit(self, circ_id: int) -> None:
        self._circuits.pop(circ_id, None)

    def retire(self) -> None:
        """The relay leaves the network: all its circuits die with it."""
        self.alive = False
        self._circuits.clear()
        self._ntor_memo.clear()

    @property
    def active_circuits(self) -> int:
        return len(self._circuits)

    def __repr__(self) -> str:
        return f"Relay({self.descriptor.nickname!r}, circuits={self.active_circuits})"
