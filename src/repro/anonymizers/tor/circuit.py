"""Circuits: telescoping construction and real onion encryption."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

from repro.anonymizers.tor.relay import Relay
from repro.crypto.chacha20 import chacha20_combined_keystream, xor_bytes
from repro.crypto.x25519 import x25519, x25519_keypair
from repro.errors import CircuitError
from repro.runtime import evict_oldest, register_process_cache
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng

_NONCE = b"\x00" * 12

_circuit_ids = itertools.count(0x1000)


class NtorClientCache:
    """Process-global client side of the ntor handshake, keyed by relay.

    The ntor exchange is a pure function of (client keypair, relay onion
    key).  A relay's onion key is derived from the deployment seed, so two
    relays with the same key are the *same* relay for handshake purposes
    and the client may reuse one ephemeral keypair and its derived hop
    keys against it.  The RNG draw for the ephemeral key is still made on
    every handshake, so the seeded stream — and therefore the event
    journal — is byte-identical whether the cache is warm, cold, or
    disabled entirely.
    """

    #: one keyshare per distinct relay onion key; bounded so a long-lived
    #: process crossing many deployments cannot grow it without limit.
    DEFAULT_MAX_ENTRIES = 65_536

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.enabled = True
        self.max_entries = max_entries
        self.evictions = 0
        self._by_relay_key: dict = {}

    def __len__(self) -> int:
        return len(self._by_relay_key)

    def lookup(self, relay_public: bytes):
        if not self.enabled:
            return None
        return self._by_relay_key.get(relay_public)

    def store(
        self, relay_public: bytes, client_public: bytes, keys: Tuple[bytes, bytes]
    ) -> None:
        if self.enabled:
            self._by_relay_key[relay_public] = (client_public, keys)
            self.evictions += evict_oldest(self._by_relay_key, self.max_entries)

    def clear(self) -> None:
        self._by_relay_key.clear()


#: shared across every circuit in the process (see class docstring for
#: why that is sound); perfbench baselines disable + clear it
NTOR_CLIENT_CACHE = NtorClientCache()
register_process_cache(
    "tor.ntor_keyshares", NTOR_CLIENT_CACHE.clear, NTOR_CLIENT_CACHE.__len__
)


@dataclass
class _ClientHop:
    relay: Relay
    forward_key: bytes
    backward_key: bytes


class Circuit:
    """A three-hop (or longer) circuit built by one Tor client.

    Construction telescopes: CREATE2 to the guard, then EXTEND2 cells
    carried through already-built hops.  Each handshake is a real X25519
    exchange deriving per-hop ChaCha20 keys; :meth:`onion_encrypt` wraps
    payloads in all layers and relays peel them in path order.
    """

    #: one-way latency per relay link in the testbed deployment
    HOP_LATENCY_S = 0.025

    def __init__(self, timeline: Timeline, rng: SeededRng) -> None:
        self.timeline = timeline
        self.rng = rng
        self.circ_id = next(_circuit_ids)
        self._hops: List[_ClientHop] = []
        # Combined (XOR-folded) keystreams across all hop layers, cached per
        # direction: hop keys are fixed once built, so wrapping/unwrapping a
        # whole onion is a single XOR against these.
        self._onion_keystreams = {"forward": b"", "backward": b""}
        self.built_at = None  # type: float
        self.build_seconds = 0.0
        self.streams_opened = 0

    # -- construction ---------------------------------------------------------

    def _handshake(self, relay: Relay) -> Tuple[bytes, bytes]:
        onion_key = relay.descriptor.onion_public_key
        cached = NTOR_CLIENT_CACHE.lookup(onion_key)
        if cached is not None:
            # Burn the ephemeral-key draw so the seeded RNG stream is
            # identical to a cold handshake, then replay the cached
            # exchange; the relay still installs fresh circuit state.
            self.rng.token_bytes(32)
            client_public, keys = cached
            relay.handle_create(self.circ_id, client_public)
            return keys
        private, public = x25519_keypair(self.rng)
        relay_public = relay.handle_create(self.circ_id, public)
        shared = x25519(private, relay_public)
        keys = Relay.derive_keys(shared)
        NTOR_CLIENT_CACHE.store(onion_key, public, keys)
        return keys

    def build(self, path: List[Relay]) -> float:
        """Extend through ``path`` in order.  Returns elapsed seconds."""
        if len(path) < 1:
            raise CircuitError("a circuit needs at least one hop")
        if self._hops:
            raise CircuitError(f"circuit {self.circ_id} is already built")
        nicknames = [r.descriptor.nickname for r in path]
        if len(set(nicknames)) != len(nicknames):
            raise CircuitError(f"circuit path repeats a relay: {nicknames}")
        obs = self.timeline.obs
        start = self.timeline.now
        with obs.span("tor.circuit.build", hops=len(path)):
            for position, relay in enumerate(path):
                forward, backward = self._handshake(relay)
                self._hops.append(_ClientHop(relay, forward, backward))
                if position > 0:
                    path[position - 1].link_next_hop(self.circ_id, relay)
                # The CREATE/EXTEND round trip traverses every built hop.
                round_trip = 2 * self.HOP_LATENCY_S * (position + 1)
                self.timeline.sleep(round_trip)
        self.built_at = self.timeline.now
        self.build_seconds = self.timeline.now - start
        obs.metrics.counter("tor.circuit.built").inc()
        obs.metrics.histogram("tor.circuit.build_s").observe(self.build_seconds)
        # The journal deliberately omits ``circ_id``: circuit ids come from a
        # process-global counter, and journal bytes must depend only on the
        # seed and scenario.
        obs.event(
            "tor.circuit.built",
            hops=len(path),
            path="->".join(nicknames),
            seconds=round(self.build_seconds, 6),
        )
        return self.build_seconds

    @property
    def built(self) -> bool:
        return bool(self._hops)

    @property
    def usable(self) -> bool:
        """Built *and* every relay on the path is still alive."""
        return bool(self._hops) and all(hop.relay.alive for hop in self._hops)

    @property
    def path_nicknames(self) -> List[str]:
        return [hop.relay.descriptor.nickname for hop in self._hops]

    @property
    def guard(self) -> Relay:
        self._require_built()
        return self._hops[0].relay

    @property
    def exit(self) -> Relay:
        self._require_built()
        return self._hops[-1].relay

    def _require_built(self) -> None:
        if not self._hops:
            raise CircuitError(f"circuit {self.circ_id} is not built")

    # -- latency ---------------------------------------------------------------

    @property
    def path_latency_s(self) -> float:
        """One-way latency across all hops."""
        return self.HOP_LATENCY_S * len(self._hops)

    # -- onion crypto -----------------------------------------------------------

    def _combined_keystream(self, direction: str, length: int) -> bytes:
        """Length-`length` prefix of the XOR of every hop's keystream."""
        cached = self._onion_keystreams[direction]
        if len(cached) < length:
            attr = "forward_key" if direction == "forward" else "backward_key"
            keys = [getattr(hop, attr) for hop in self._hops]
            rounded = max(4096, -(-length // 64) * 64)
            cached = chacha20_combined_keystream(keys, _NONCE, rounded)
            self._onion_keystreams[direction] = cached
        return cached[:length]

    def onion_encrypt(self, plaintext: bytes) -> bytes:
        """Wrap a forward payload in every hop's layer (exit layer innermost).

        Layering is XOR under per-hop keystreams, so all layers collapse
        into one XOR against the cached combined keystream — bit-identical
        to peeling per hop, and what each relay's single-layer removal
        undoes in path order.
        """
        self._require_built()
        if not plaintext:
            return b""
        return xor_bytes(plaintext, self._combined_keystream("forward", len(plaintext)))

    def relay_forward(self, onion: bytes) -> bytes:
        """Let each relay on the path peel its layer; returns the plaintext."""
        self._require_built()
        data = onion
        for hop in self._hops:
            data = hop.relay.peel_forward(self.circ_id, data)
        self.timeline.obs.metrics.counter("tor.cells.relayed").inc(len(self._hops))
        return data

    def relay_backward(self, plaintext: bytes) -> bytes:
        """Relays wrap a response from the exit back toward the client."""
        self._require_built()
        data = plaintext
        for hop in reversed(self._hops):
            data = hop.relay.wrap_backward(self.circ_id, data)
        return data

    def onion_decrypt(self, onion: bytes) -> bytes:
        """Client removes every backward layer from a response."""
        self._require_built()
        if not onion:
            return b""
        return xor_bytes(onion, self._combined_keystream("backward", len(onion)))

    # -- streams -----------------------------------------------------------------

    def open_stream(self, target: str) -> float:
        """RELAY_BEGIN through the circuit; the exit records the stream.

        Returns the full-path round-trip time the BEGIN/CONNECTED pair costs.
        """
        self._require_built()
        begin = self.onion_encrypt(f"BEGIN {target}".encode())
        peeled = self.relay_forward(begin)
        if not peeled.startswith(b"BEGIN "):
            raise CircuitError("onion layers failed to peel to the BEGIN cell")
        self.exit.open_stream(self.circ_id, peeled[6:].decode())
        self.streams_opened += 1
        self.timeline.obs.metrics.counter("tor.streams.opened").inc()
        round_trip = 2 * self.path_latency_s
        self.timeline.sleep(round_trip)
        return round_trip

    def destroy(self) -> None:
        for hop in self._hops:
            hop.relay.destroy_circuit(self.circ_id)
        self._hops.clear()
        self._onion_keystreams = {"forward": b"", "backward": b""}

    def __repr__(self) -> str:
        path = " -> ".join(self.path_nicknames) if self._hops else "<unbuilt>"
        return f"Circuit({self.circ_id:#x}, {path})"
