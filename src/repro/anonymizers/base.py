"""The anonymizer contract and registry.

An anonymizer runs inside a CommVM and carries every byte between the
AnonVM and the Internet.  The contract captures what the rest of Nymix
needs to know about a transport:

* how long it takes to **start** (Figure 7's "Start Tor" phase),
* its **wire overhead** and **path latency** (Figures 5 and 7),
* whether it actually hides the client's network identity (incognito
  does not),
* its exportable **state** — the piece of a nym snapshot that preserves
  Tor entry guards across sessions (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import AnonymizerError
from repro.net.addresses import Ipv4Address
from repro.net.internet import Internet
from repro.net.nat import MasqueradeNat
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng


@dataclass
class AnonymizerState:
    """Opaque-but-serializable transport state stored with a persistent nym."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class TransferPlan:
    """How a payload of N bytes will be carried by this transport."""

    overhead_factor: float  # bytes-on-wire / payload bytes
    path_latency_s: float  # one-way relay-path latency added per round trip
    handshake_rtts: float  # connection setup round trips (SOCKS, circuits)
    #: transport's own throughput ceiling (DC-net round pacing etc.)
    per_flow_ceiling_bps: float = float("inf")


class Anonymizer:
    """Base class for pluggable transports.

    Concrete classes must set :attr:`kind` and implement :meth:`start`
    and :meth:`plan`.  The common :meth:`fetch` composes the plan with
    the shared uplink to produce page-load / download timings, and routes
    destination-visible addressing correctly (exit address vs client
    address).
    """

    kind = "abstract"
    #: does the destination see something other than the client's IP?
    protects_network_identity = True
    #: traffic label the host capture sees for this transport's uplink flows
    traffic_label = "anonymizer"

    def __init__(
        self,
        timeline: Timeline,
        internet: Internet,
        nat: MasqueradeNat,
        rng: SeededRng,
    ) -> None:
        self.timeline = timeline
        self.internet = internet
        self.nat = nat
        self.rng = rng
        self.started = False
        self.startup_seconds: Optional[float] = None
        self.bytes_carried = 0
        #: owning tenant for ingress shaping; empty = untenanted (no
        #: shaping).  Set by the manager when a nym is created with a
        #: tenant binding; consulted against ``timeline.tenancy``.
        self.tenant = ""

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> float:
        """Bootstrap the transport; returns elapsed seconds."""
        raise NotImplementedError

    def stop(self) -> None:
        self.started = False

    def _require_started(self) -> None:
        if not self.started:
            raise AnonymizerError(f"{self.kind} anonymizer has not been started")

    # -- data path -----------------------------------------------------------

    def plan(self, payload_bytes: int) -> TransferPlan:
        """Cost model for carrying ``payload_bytes``."""
        raise NotImplementedError

    def exit_address(self) -> Ipv4Address:
        """The address destinations observe.  Defaults to the NAT public IP."""
        return self.nat.public_ip

    def resolve(self, hostname: str) -> Ipv4Address:
        """Anonymized DNS (Tor's built-in resolver, Dissent's UDP proxying)."""
        self._require_started()
        return self.internet.resolve(hostname)

    def fetch(self, hostname: str, path: str = "/"):
        """Carry one request/response through this transport.

        Returns the :class:`~repro.net.internet.FetchResult`; the timeline
        advances by the full transfer time including handshakes and relay
        path latency.
        """
        self._require_started()
        # Tenant ingress shaping: wait out any token-bucket debt and
        # strict-priority queueing before the send starts.  The no-op
        # registry answers 0.0, so untenanted traffic pays nothing and
        # the sleep below never fires for it (journal-neutral).
        throttle_s = self.timeline.tenancy.shape(self.tenant)
        if throttle_s > 0.0:
            self.timeline.sleep(throttle_s)
        plan = self.plan(0)
        result = self.internet.fetch(
            hostname,
            path=path,
            overhead_factor=plan.overhead_factor,
            extra_rtts=plan.handshake_rtts,
            src_ip=self.exit_address(),
            per_flow_ceiling_bps=plan.per_flow_ceiling_bps,
        )
        # Relay-path latency applies on top of the uplink RTT already counted.
        extra = plan.path_latency_s * (plan.handshake_rtts + 1)
        self.timeline.sleep(extra)
        self.bytes_carried += result.response.body_bytes
        self._record_flow(result.response.body_bytes, plan)
        # Charge the completed transfer against the tenant's rate state
        # (debt-based: the *next* send absorbs any overdraft as delay).
        self.timeline.tenancy.record_sent(self.tenant, result.response.body_bytes)
        return result

    def _record_flow(self, payload_bytes: int, plan: TransferPlan) -> None:
        if self.nat.host_capture is not None:
            self.nat.host_capture.record_flow(
                where=f"uplink({self.nat.name})",
                sender=self.nat.name,
                label=self.traffic_label,
                payload_bytes=int(payload_bytes * plan.overhead_factor),
            )

    def download_overhead_factor(self) -> float:
        """Bulk-flow overhead, used by parallel download experiments."""
        return self.plan(0).overhead_factor

    # -- quasi-persistent state (§3.5) ------------------------------------------

    def export_state(self) -> AnonymizerState:
        """State worth persisting with the nym (guards, keys).  May be empty."""
        return AnonymizerState(kind=self.kind)

    def import_state(self, state: AnonymizerState) -> None:
        """Restore previously exported state before :meth:`start`."""
        if state.kind != self.kind:
            raise AnonymizerError(
                f"cannot import {state.kind!r} state into a {self.kind!r} anonymizer"
            )

    def __repr__(self) -> str:
        status = "started" if self.started else "stopped"
        return f"{type(self).__name__}({status})"


AnonymizerFactory = Callable[..., Anonymizer]

ANONYMIZER_REGISTRY: Dict[str, AnonymizerFactory] = {}


def register_anonymizer(kind: str, factory: AnonymizerFactory) -> None:
    if kind in ANONYMIZER_REGISTRY:
        raise AnonymizerError(f"anonymizer kind {kind!r} already registered")
    ANONYMIZER_REGISTRY[kind] = factory


def create_anonymizer(
    kind: str,
    timeline: Timeline,
    internet: Internet,
    nat: MasqueradeNat,
    rng: SeededRng,
    **kwargs,
) -> Anonymizer:
    """Instantiate a registered transport (the Nym Manager's entry point)."""
    try:
        factory = ANONYMIZER_REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(ANONYMIZER_REGISTRY))
        raise AnonymizerError(f"unknown anonymizer {kind!r} (known: {known})") from None
    return factory(timeline=timeline, internet=internet, nat=nat, rng=rng, **kwargs)
