"""Serial composition of anonymizers ("best of both worlds", §3.3).

Nymix can chain CommVMs (or stack tools inside one CommVM): traffic enters
the first transport, whose output feeds the second, and so on.  Costs
compose multiplicatively (overhead) and additively (latency, startup); the
exit address is the last stage's; identity is protected if *any* stage
protects it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.anonymizers.base import Anonymizer, AnonymizerState, TransferPlan
from repro.errors import AnonymizerError
from repro.net.addresses import Ipv4Address


class SerialComposition(Anonymizer):
    """A chain of transports applied in order (first = closest to client)."""

    kind = "serial"

    def __init__(self, stages: Sequence[Anonymizer]) -> None:
        if not stages:
            raise AnonymizerError("a serial composition needs at least one stage")
        first = stages[0]
        super().__init__(first.timeline, first.internet, first.nat, first.rng)
        self.stages: List[Anonymizer] = list(stages)
        self.kind = "+".join(stage.kind for stage in stages)

    @property
    def protects_network_identity(self) -> bool:  # type: ignore[override]
        return any(stage.protects_network_identity for stage in self.stages)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> float:
        begin = self.timeline.now
        for stage in self.stages:
            stage.start()
        self.started = True
        self.startup_seconds = self.timeline.now - begin
        return self.startup_seconds

    def stop(self) -> None:
        for stage in self.stages:
            stage.stop()
        super().stop()

    # -- transport contract ------------------------------------------------------

    def plan(self, payload_bytes: int) -> TransferPlan:
        overhead = 1.0
        latency = 0.0
        handshakes = 0.0
        ceiling = float("inf")
        for stage in self.stages:
            stage_plan = stage.plan(payload_bytes)
            overhead *= stage_plan.overhead_factor
            latency += stage_plan.path_latency_s
            handshakes += stage_plan.handshake_rtts
            ceiling = min(ceiling, stage_plan.per_flow_ceiling_bps)
        return TransferPlan(
            overhead_factor=overhead,
            path_latency_s=latency,
            handshake_rtts=handshakes,
            per_flow_ceiling_bps=ceiling,
        )

    def exit_address(self) -> Ipv4Address:
        return self.stages[-1].exit_address()

    def resolve(self, hostname: str):
        self._require_started()
        return self.stages[-1].resolve(hostname)

    # -- state ------------------------------------------------------------------

    def export_state(self) -> AnonymizerState:
        return AnonymizerState(
            kind=self.kind,
            payload={
                "stages": [stage.export_state() for stage in self.stages],
            },
        )

    def import_state(self, state: AnonymizerState) -> None:
        if state.kind != self.kind:
            raise AnonymizerError(
                f"cannot import {state.kind!r} state into composition {self.kind!r}"
            )
        stage_states = state.payload.get("stages", [])
        for stage, stage_state in zip(self.stages, stage_states):
            stage.import_state(stage_state)  # type: ignore[arg-type]
