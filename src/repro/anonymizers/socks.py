"""SOCKS5 protocol framing (RFC 1928).

Anonymizers present themselves to the AnonVM as SOCKS proxies (§4.1); the
browser's ``--proxy-server=socks5://10.0.2.2:9050`` flag points at the
CommVM.  This module implements real byte-level SOCKS5 message encoding
and parsing — a handshake that doesn't round-trip correctly would be
exactly the kind of misconfiguration Nymix exists to contain.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.errors import NetworkError
from repro.net.addresses import Ipv4Address

SOCKS_VERSION = 5

AUTH_NONE = 0x00
CMD_CONNECT = 0x01
CMD_UDP_ASSOCIATE = 0x03
ATYP_IPV4 = 0x01
ATYP_DOMAIN = 0x03

REPLY_SUCCESS = 0x00
REPLY_HOST_UNREACHABLE = 0x04


def build_greeting() -> bytes:
    """Client greeting offering no-auth only."""
    return bytes([SOCKS_VERSION, 1, AUTH_NONE])


def parse_greeting(data: bytes) -> Tuple[int, ...]:
    if len(data) < 3 or data[0] != SOCKS_VERSION:
        raise NetworkError(f"malformed SOCKS5 greeting: {data!r}")
    n_methods = data[1]
    methods = tuple(data[2 : 2 + n_methods])
    if len(methods) != n_methods:
        raise NetworkError("truncated SOCKS5 greeting")
    return methods


def build_method_selection(method: int = AUTH_NONE) -> bytes:
    return bytes([SOCKS_VERSION, method])


@dataclass(frozen=True)
class ConnectRequest:
    command: int
    hostname: str = ""
    ip: Ipv4Address = None
    port: int = 0


def build_connect(hostname: str, port: int, command: int = CMD_CONNECT) -> bytes:
    """CONNECT request with a domain-name target (lets Tor do the DNS)."""
    name = hostname.encode()
    if len(name) > 255:
        raise NetworkError(f"hostname too long for SOCKS5: {hostname!r}")
    return (
        bytes([SOCKS_VERSION, command, 0x00, ATYP_DOMAIN, len(name)])
        + name
        + struct.pack(">H", port)
    )


def parse_connect(data: bytes) -> ConnectRequest:
    if len(data) < 7 or data[0] != SOCKS_VERSION:
        raise NetworkError(f"malformed SOCKS5 request: {data!r}")
    command, _, atyp = data[1], data[2], data[3]
    if atyp == ATYP_DOMAIN:
        name_len = data[4]
        name = data[5 : 5 + name_len]
        if len(name) != name_len or len(data) < 5 + name_len + 2:
            raise NetworkError("truncated SOCKS5 domain request")
        (port,) = struct.unpack(">H", data[5 + name_len : 7 + name_len])
        return ConnectRequest(command=command, hostname=name.decode(), port=port)
    if atyp == ATYP_IPV4:
        if len(data) < 10:
            raise NetworkError("truncated SOCKS5 IPv4 request")
        ip = Ipv4Address(int.from_bytes(data[4:8], "big"))
        (port,) = struct.unpack(">H", data[8:10])
        return ConnectRequest(command=command, ip=ip, port=port)
    raise NetworkError(f"unsupported SOCKS5 address type: {atyp}")


def build_reply(code: int, bind_ip: Ipv4Address, bind_port: int) -> bytes:
    return (
        bytes([SOCKS_VERSION, code, 0x00, ATYP_IPV4])
        + bind_ip.value.to_bytes(4, "big")
        + struct.pack(">H", bind_port)
    )


def parse_reply(data: bytes) -> Tuple[int, Ipv4Address, int]:
    if len(data) < 10 or data[0] != SOCKS_VERSION:
        raise NetworkError(f"malformed SOCKS5 reply: {data!r}")
    code = data[1]
    ip = Ipv4Address(int.from_bytes(data[4:8], "big"))
    (port,) = struct.unpack(">H", data[8:10])
    return code, ip, port


#: Round trips a full SOCKS5 negotiation costs on the AnonVM<->CommVM wire:
#: greeting/selection plus connect/reply.  (Negligible on the virtual wire,
#: but modelled for completeness.)
SOCKS_HANDSHAKE_RTTS = 2
