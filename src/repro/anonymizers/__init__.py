"""Pluggable anonymizers: Tor, Dissent, incognito, SWEET, and compositions.

Nymix treats the anonymizer as a pluggable CommVM module (§3.3): every
nymbox picks one (or a serial composition of several) to carry all of its
AnonVM's traffic.  The framework contract is :class:`Anonymizer`; concrete
transports register in :data:`ANONYMIZER_REGISTRY` and are constructed by
:func:`create_anonymizer`, which is what the Nym Manager calls.

Security/performance trade-off, as the paper frames it:

* ``incognito`` — iptables-masquerade NAT relaying; nearly free, but no
  network-level tracking protection at all.
* ``tor`` — onion routing; good security against moderate adversaries,
  scalable, the default.
* ``dissent`` — anytrust DC-nets; provable traffic-analysis resistance,
  much lower throughput.
* ``sweet`` — covert email tunnelling for censorship circumvention;
  extreme latency.
* serial compositions such as Tor-over-Dissent for "best of both worlds".
"""

from repro.anonymizers.base import (
    ANONYMIZER_REGISTRY,
    Anonymizer,
    AnonymizerState,
    TransferPlan,
    create_anonymizer,
)
from repro.anonymizers.compose import SerialComposition
from repro.anonymizers.incognito import IncognitoMode
from repro.anonymizers.sweet import SweetTunnel
from repro.anonymizers.dissent.client import DissentClient
from repro.anonymizers.tor.client import TorClient
from repro.mixnet.client import MixnetClient

__all__ = [
    "ANONYMIZER_REGISTRY",
    "Anonymizer",
    "AnonymizerState",
    "TransferPlan",
    "create_anonymizer",
    "SerialComposition",
    "IncognitoMode",
    "SweetTunnel",
    "DissentClient",
    "TorClient",
    "MixnetClient",
]
