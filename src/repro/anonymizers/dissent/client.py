"""Dissent as a pluggable CommVM anonymizer."""

from __future__ import annotations

from typing import Optional

from repro.anonymizers.base import Anonymizer, TransferPlan, register_anonymizer
from repro.anonymizers.dissent.dcnet import DcNetDeployment, DcNetRound
from repro.errors import AnonymizerError
from repro.net.addresses import Ipv4Address
from repro.net.internet import Internet
from repro.net.nat import MasqueradeNat
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng

#: One anytrust server fronts the deployment's traffic toward destinations.
_FRONT_SERVER_IP = Ipv4Address.parse("198.51.102.1")


class DissentClient(Anonymizer):
    """Anytrust DC-net transport: strong anonymity, round-paced throughput.

    Every member transmits every round (cover traffic), so goodput is the
    slot size divided by the round time regardless of demand, and latency
    is at least one round.  Dissent supports UDP proxying (§4.1), so DNS
    needs no special-casing.
    """

    kind = "dissent"

    ROUND_SECONDS = 0.45
    SLOT_BYTES = 48 * 1024

    def __init__(
        self,
        timeline: Timeline,
        internet: Internet,
        nat: MasqueradeNat,
        rng: SeededRng,
        deployment: Optional[DcNetDeployment] = None,
        client_index: int = 0,
    ) -> None:
        super().__init__(timeline, internet, nat, rng)
        self.deployment = deployment or DcNetDeployment(rng, num_clients=8, num_servers=3)
        if not 0 <= client_index < self.deployment.num_clients:
            raise AnonymizerError(
                f"client index {client_index} out of range for "
                f"{self.deployment.num_clients}-client deployment"
            )
        self.client_index = client_index
        self.rounds_run = 0

    @property
    def client_name(self) -> str:
        return self.deployment.clients[self.client_index].name

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> float:
        begin = self.timeline.now
        # Key agreement with every anytrust server (one RTT each, pipelined)
        # plus scheduling into the next round.
        self.timeline.sleep(self.rng.jitter(0.8, 0.1))
        self.timeline.sleep(self.deployment.num_servers * 2 * self.internet.rtt_s)
        self.timeline.sleep(self.ROUND_SECONDS)  # wait for a round boundary
        self.started = True
        self.startup_seconds = self.timeline.now - begin
        return self.startup_seconds

    # -- transport contract ------------------------------------------------------

    def plan(self, payload_bytes: int) -> TransferPlan:
        # Upstream cover traffic: every client transmits a full slot each
        # round.  The *client's own* wire cost per useful byte stays modest
        # (servers do the N-fold work), but round pacing caps throughput.
        ceiling = self.SLOT_BYTES * 8 / self.ROUND_SECONDS
        return TransferPlan(
            overhead_factor=1.30,
            path_latency_s=self.ROUND_SECONDS,  # at least a round boundary
            handshake_rtts=1.0,
            per_flow_ceiling_bps=ceiling,
        )

    def exit_address(self) -> Ipv4Address:
        return _FRONT_SERVER_IP

    # -- protocol-level round (for validation and examples) -------------------------

    def transmit_anonymously(self, message: bytes) -> bytes:
        """Send one slot through a real DC-net round; returns the output.

        The returned plaintext equals ``message`` (padded), yet no single
        ciphertext reveals the sender — asserted by the protocol tests.
        """
        self._require_started()
        if len(message) > self.SLOT_BYTES:
            raise AnonymizerError(
                f"message exceeds slot size ({len(message)} > {self.SLOT_BYTES})"
            )
        round_obj = DcNetRound(
            round_id=self.rounds_run,
            slot_bytes=max(len(message), 1),
            owner=self.client_name,
            message=message,
        )
        self.rounds_run += 1
        self.timeline.sleep(self.ROUND_SECONDS)
        return self.deployment.run_round(round_obj)


register_anonymizer("dissent", DissentClient)
