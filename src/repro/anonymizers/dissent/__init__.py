"""Dissent: anytrust DC-nets with provable traffic-analysis resistance.

The paper's experimental strong-anonymity option (§3.3): based on
Chaum's Dining Cryptographers, run in the anytrust model (clients trust
that *at least one* server is honest).  :mod:`repro.anonymizers.dissent.dcnet`
implements real XOR-pad rounds — ciphertexts actually combine to the
plaintext — and :class:`~repro.anonymizers.dissent.client.DissentClient`
adapts the protocol to the pluggable-anonymizer contract.
"""

from repro.anonymizers.dissent.dcnet import DcNetDeployment, DcNetRound
from repro.anonymizers.dissent.client import DissentClient

__all__ = ["DcNetDeployment", "DcNetRound", "DissentClient"]
