"""DC-net rounds in the anytrust model (real XOR-pad cryptography).

Every client shares an X25519-derived secret with every server.  In round
``r`` each party expands its secrets into pseudo-random pads (ChaCha20 as
a PRG keyed per pair, nonce = round number); a client's ciphertext is the
XOR of all its pads and — if it owns the transmission slot — its message.
Each server's ciphertext is the XOR of its pads with every client.  XORing
all ciphertexts cancels every pad pairwise, revealing exactly the slot
owner's message and nothing about who sent it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.kdf import hkdf
from repro.crypto.x25519 import x25519, x25519_keypair
from repro.errors import AnonymizerError
from repro.sim.rng import SeededRng


def _xor(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise AnonymizerError(f"XOR length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def _pad(shared_secret: bytes, round_id: int, length: int) -> bytes:
    key = hkdf(shared_secret, salt=b"", info=b"nymix-dcnet-pad", length=32)
    nonce = round_id.to_bytes(12, "big")
    return chacha20_xor(key, nonce, b"\x00" * length)


@dataclass
class _Party:
    name: str
    private_key: bytes
    public_key: bytes


class DcNetDeployment:
    """A fixed set of clients and anytrust servers sharing pairwise secrets."""

    def __init__(self, rng: SeededRng, num_clients: int = 24, num_servers: int = 3) -> None:
        if num_clients < 2:
            raise AnonymizerError(f"DC-net needs >= 2 clients, got {num_clients}")
        if num_servers < 1:
            raise AnonymizerError(f"anytrust needs >= 1 server, got {num_servers}")
        self.rng = rng.fork("dcnet")
        self.clients: List[_Party] = []
        self.servers: List[_Party] = []
        for index in range(num_clients):
            private, public = x25519_keypair(self.rng.fork(f"client:{index}"))
            self.clients.append(_Party(f"client{index:02d}", private, public))
        for index in range(num_servers):
            private, public = x25519_keypair(self.rng.fork(f"server:{index}"))
            self.servers.append(_Party(f"server{index}", private, public))
        # Pairwise secrets, computed from both sides and verified equal.
        self._secrets: Dict[tuple, bytes] = {}
        for client in self.clients:
            for server in self.servers:
                from_client = x25519(client.private_key, server.public_key)
                from_server = x25519(server.private_key, client.public_key)
                if from_client != from_server:
                    raise AnonymizerError("X25519 key agreement mismatch")
                self._secrets[(client.name, server.name)] = from_client

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def secret(self, client_name: str, server_name: str) -> bytes:
        return self._secrets[(client_name, server_name)]

    def run_round(self, round_obj: "DcNetRound") -> bytes:
        """Execute a full round; returns the recovered slot plaintext."""
        return round_obj.combine(
            [round_obj.client_ciphertext(self, c.name) for c in self.clients]
            + [round_obj.server_ciphertext(self, s.name) for s in self.servers]
        )


@dataclass
class DcNetRound:
    """One slot transmission: who owns the slot and what they send."""

    round_id: int
    slot_bytes: int
    owner: Optional[str] = None  # client name; None = nobody transmits
    message: bytes = b""

    def __post_init__(self) -> None:
        if self.slot_bytes <= 0:
            raise AnonymizerError(f"slot must be positive, got {self.slot_bytes}")
        if len(self.message) > self.slot_bytes:
            raise AnonymizerError(
                f"message ({len(self.message)} B) exceeds slot ({self.slot_bytes} B)"
            )

    def _padded_message(self) -> bytes:
        return self.message + b"\x00" * (self.slot_bytes - len(self.message))

    def client_ciphertext(self, deployment: DcNetDeployment, client_name: str) -> bytes:
        data = b"\x00" * self.slot_bytes
        for server in deployment.servers:
            data = _xor(
                data, _pad(deployment.secret(client_name, server.name), self.round_id, self.slot_bytes)
            )
        if client_name == self.owner:
            data = _xor(data, self._padded_message())
        return data

    def server_ciphertext(self, deployment: DcNetDeployment, server_name: str) -> bytes:
        data = b"\x00" * self.slot_bytes
        for client in deployment.clients:
            data = _xor(
                data, _pad(deployment.secret(client.name, server_name), self.round_id, self.slot_bytes)
            )
        return data

    @staticmethod
    def combine(ciphertexts: List[bytes]) -> bytes:
        if not ciphertexts:
            raise AnonymizerError("no ciphertexts to combine")
        result = ciphertexts[0]
        for ciphertext in ciphertexts[1:]:
            result = _xor(result, ciphertext)
        return result
