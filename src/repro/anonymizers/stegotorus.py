"""StegoTorus: a camouflage proxy for Tor [74] (§4's circumvention need).

The paper chose Chromium specifically to support StegoTorus, which
disguises Tor's wire format as innocuous cover protocols (HTTP, say) so
national-firewall DPI cannot pick Tor flows out of traffic.  Modelled as
a wrapper transport: it carries an inner anonymizer's bytes inside cover
traffic, changing the flow's *classified protocol* at the cost of cover
overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.anonymizers.base import Anonymizer, AnonymizerState, TransferPlan
from repro.errors import AnonymizerError
from repro.net.addresses import Ipv4Address

#: how a DPI box classifies each transport's wire format
WIRE_PROTOCOLS = {
    "tor": "tls-tor",  # Tor's TLS handshake is fingerprintable
    "dissent": "dissent",
    "mixnet": "mixnet",  # fixed-size packets on a steady clock are distinctive
    "incognito": "https",
    "sweet": "smtp",
    "stegotorus": "http",  # the whole point: looks like plain web traffic
}


class StegoTorusWrapper(Anonymizer):
    """Wraps an inner anonymizer in HTTP-lookalike cover traffic."""

    kind = "stegotorus"

    #: cover-protocol framing roughly doubles header mass on small flows
    COVER_OVERHEAD = 1.25
    #: chopping/reassembly latency per round trip
    CHOPPER_LATENCY_S = 0.040

    def __init__(self, inner: Anonymizer, cover_protocol: str = "http") -> None:
        super().__init__(inner.timeline, inner.internet, inner.nat, inner.rng)
        self.inner = inner
        self.cover_protocol = cover_protocol
        self.kind = f"stegotorus({inner.kind})"

    @property
    def protects_network_identity(self) -> bool:  # type: ignore[override]
        return self.inner.protects_network_identity

    def wire_protocol(self) -> str:
        """What a DPI classifier sees on this transport's flows."""
        return self.cover_protocol

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> float:
        begin = self.timeline.now
        self.inner.start()
        # Negotiate the steg modules with the server-side proxy.
        self.timeline.sleep(self.rng.jitter(0.8, 0.2))
        self.started = True
        self.startup_seconds = self.timeline.now - begin
        return self.startup_seconds

    def stop(self) -> None:
        self.inner.stop()
        super().stop()

    # -- transport contract ----------------------------------------------------

    def plan(self, payload_bytes: int) -> TransferPlan:
        inner_plan = self.inner.plan(payload_bytes)
        return TransferPlan(
            overhead_factor=inner_plan.overhead_factor * self.COVER_OVERHEAD,
            path_latency_s=inner_plan.path_latency_s + self.CHOPPER_LATENCY_S,
            handshake_rtts=inner_plan.handshake_rtts + 1.0,
            per_flow_ceiling_bps=inner_plan.per_flow_ceiling_bps,
        )

    def exit_address(self) -> Ipv4Address:
        return self.inner.exit_address()

    def resolve(self, hostname: str) -> Ipv4Address:
        self._require_started()
        return self.inner.resolve(hostname)

    def export_state(self) -> AnonymizerState:
        return AnonymizerState(
            kind=self.kind, payload={"inner": self.inner.export_state()}
        )

    def import_state(self, state: AnonymizerState) -> None:
        if state.kind != self.kind:
            raise AnonymizerError(
                f"cannot import {state.kind!r} into {self.kind!r}"
            )
        inner_state = state.payload.get("inner")
        if inner_state is not None:
            self.inner.import_state(inner_state)  # type: ignore[arg-type]


class DpiCensor:
    """A national-firewall DPI box: classifies flows, blocks a protocol list.

    The Tyrannistan model: Tor's wire format is blocked outright; plain
    web and mail pass.  StegoTorus's cover protocol sails through.
    """

    def __init__(self, blocked_protocols=("tls-tor", "dissent")) -> None:
        self.blocked_protocols = tuple(blocked_protocols)
        self.flows_inspected = 0
        self.flows_blocked = 0

    def classify(self, anonymizer: Anonymizer) -> str:
        if isinstance(anonymizer, StegoTorusWrapper):
            return anonymizer.wire_protocol()
        return WIRE_PROTOCOLS.get(anonymizer.kind, "unknown")

    def allows(self, anonymizer: Anonymizer) -> bool:
        self.flows_inspected += 1
        protocol = self.classify(anonymizer)
        if protocol in self.blocked_protocols:
            self.flows_blocked += 1
            return False
        return True
