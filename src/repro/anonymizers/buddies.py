"""Buddies: anonymity metrics and posting safeguards [77] (§7 integration).

The paper plans to integrate Buddies to resist long-term intersection
attacks: each pseudonym gets a *buddy set* — the users indistinguishable
from it given everything the adversary has observed — and the system
warns or refuses to post when the set shrinks below a user-chosen
threshold.

The model here follows the Buddies paper's core accounting: every time a
linkable message appears for a pseudonym, the possible owners are
intersected with the set of users online at that moment.  The policy
layer then gates posting on the surviving set size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import AnonymizerError
from repro.obs import NULL_OBS


class PostingPolicy(enum.Enum):
    """What to do when a post would shrink the buddy set below threshold."""

    WARN = "warn"  # tell the user, post anyway
    BLOCK = "block"  # refuse the post


@dataclass
class PostDecision:
    """Outcome of one posting attempt."""

    allowed: bool
    buddy_set_size_before: int
    buddy_set_size_after: int
    warning: Optional[str] = None


@dataclass
class _NymState:
    buddy_set: Optional[Set[str]] = None  # None = no observation yet (everyone)
    posts: int = 0
    blocked_posts: int = 0


class BuddiesMonitor:
    """Tracks buddy sets per pseudonym and enforces a posting policy.

    ``population`` is the set of user identifiers the adversary considers
    as possible owners (e.g. all clients of the anonymity system).  The
    caller reports who is online whenever a nym wants to post; the
    monitor maintains the intersection and applies the policy.
    """

    def __init__(
        self,
        population: Set[str],
        threshold: int = 2,
        policy: PostingPolicy = PostingPolicy.BLOCK,
        obs=NULL_OBS,
    ) -> None:
        if threshold < 1:
            raise AnonymizerError(f"threshold must be >= 1, got {threshold}")
        if not population:
            raise AnonymizerError("population must be non-empty")
        self.population = set(population)
        self.threshold = threshold
        self.policy = policy
        self._nyms: Dict[str, _NymState] = {}
        self.decisions: List[PostDecision] = []
        self.obs = obs
        self._obs_posts = obs.metrics.counter("buddies.posts")
        self._obs_blocked = obs.metrics.counter("buddies.blocked_posts")

    def _state(self, nym_name: str) -> _NymState:
        return self._nyms.setdefault(nym_name, _NymState())

    # -- metrics -----------------------------------------------------------------

    def buddy_set(self, nym_name: str) -> Set[str]:
        state = self._state(nym_name)
        return set(self.population if state.buddy_set is None else state.buddy_set)

    def buddy_set_size(self, nym_name: str) -> int:
        return len(self.buddy_set(nym_name))

    def anonymity_bits(self, nym_name: str) -> float:
        """log2 of the buddy set size: the user-facing anonymity metric."""
        import math

        size = self.buddy_set_size(nym_name)
        return math.log2(size) if size > 0 else float("-inf")

    # -- the safeguard ---------------------------------------------------------------

    def attempt_post(self, nym_name: str, online_users: Set[str]) -> PostDecision:
        """Gate one linkable post given who the adversary sees online.

        A posted message lets the adversary intersect the nym's buddy set
        with ``online_users``; the monitor evaluates that shrinkage
        *before* allowing the post.
        """
        state = self._state(nym_name)
        before = self.buddy_set(nym_name)
        projected = before & (online_users | set())
        warning = None
        allowed = True
        if len(projected) < self.threshold:
            warning = (
                f"posting now would shrink {nym_name!r}'s buddy set to "
                f"{len(projected)} (< {self.threshold})"
            )
            if self.policy is PostingPolicy.BLOCK:
                allowed = False
        if allowed:
            state.buddy_set = projected
            state.posts += 1
            self._obs_posts.inc()
        else:
            state.blocked_posts += 1
            self._obs_blocked.inc()
        self.obs.event(
            "buddies.post",
            nym=nym_name,
            allowed=allowed,
            before=len(before),
            after=len(projected) if allowed else len(before),
        )
        decision = PostDecision(
            allowed=allowed,
            buddy_set_size_before=len(before),
            buddy_set_size_after=len(projected) if allowed else len(before),
            warning=warning,
        )
        self.decisions.append(decision)
        return decision

    def reset_nym(self, nym_name: str) -> None:
        """A discarded nym's pseudonym is abandoned; a fresh one starts
        with the full population again (the ephemeral-nym defense)."""
        self._nyms.pop(nym_name, None)

    def stats(self, nym_name: str) -> Dict[str, int]:
        state = self._state(nym_name)
        return {
            "posts": state.posts,
            "blocked_posts": state.blocked_posts,
            "buddy_set_size": self.buddy_set_size(nym_name),
        }
