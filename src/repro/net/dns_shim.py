"""UDP-to-TCP DNS conversion (§4.1).

"While Tor does not support UDP redirection, it has a built-in DNS
server.  Dissent ... does have support for UDP redirection.  For tools
that support neither, Nymix would need to convert UDP-based DNS requests
to TCP before transmitting them over the communication tool."

This module implements that converter: it parses a minimal DNS query
from a UDP payload, re-frames it with the RFC 1035 two-byte TCP length
prefix, carries it over a TCP-only transport, and unframes the answer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.errors import NetworkError
from repro.net.addresses import Ipv4Address


def encode_query(transaction_id: int, hostname: str) -> bytes:
    """A minimal DNS query message (header + one QNAME question)."""
    if not 0 <= transaction_id <= 0xFFFF:
        raise NetworkError(f"transaction id out of range: {transaction_id}")
    header = struct.pack(">HHHHHH", transaction_id, 0x0100, 1, 0, 0, 0)
    qname = b""
    for label in hostname.split("."):
        raw = label.encode()
        if not raw or len(raw) > 63:
            raise NetworkError(f"bad DNS label in {hostname!r}")
        qname += bytes([len(raw)]) + raw
    return header + qname + b"\x00" + struct.pack(">HH", 1, 1)  # A, IN


def decode_query(message: bytes) -> Tuple[int, str]:
    """Parse a query back to (transaction id, hostname)."""
    if len(message) < 12:
        raise NetworkError("truncated DNS query")
    (transaction_id,) = struct.unpack(">H", message[:2])
    labels: List[str] = []
    offset = 12
    while True:
        if offset >= len(message):
            raise NetworkError("unterminated QNAME")
        length = message[offset]
        offset += 1
        if length == 0:
            break
        labels.append(message[offset : offset + length].decode())
        offset += length
    return transaction_id, ".".join(labels)


def encode_answer(transaction_id: int, hostname: str, address: Ipv4Address) -> bytes:
    """A minimal response: echo the question, add one A record."""
    query = encode_query(transaction_id, hostname)
    header = struct.pack(">HHHHHH", transaction_id, 0x8180, 1, 1, 0, 0)
    answer = (
        b"\xc0\x0c"  # compressed name pointer to the question
        + struct.pack(">HHIH", 1, 1, 300, 4)
        + address.value.to_bytes(4, "big")
    )
    return header + query[12:] + answer


def decode_answer(message: bytes) -> Tuple[int, Ipv4Address]:
    """Extract (transaction id, first A record) from a response."""
    if len(message) < 12:
        raise NetworkError("truncated DNS response")
    (transaction_id,) = struct.unpack(">H", message[:2])
    if len(message) < 16:
        raise NetworkError("DNS response carries no answer")
    address = Ipv4Address(int.from_bytes(message[-4:], "big"))
    return transaction_id, address


def tcp_frame(message: bytes) -> bytes:
    """RFC 1035 §4.2.2: DNS-over-TCP prefixes a two-byte length."""
    if len(message) > 0xFFFF:
        raise NetworkError("DNS message too large for TCP framing")
    return struct.pack(">H", len(message)) + message


def tcp_unframe(data: bytes) -> bytes:
    if len(data) < 2:
        raise NetworkError("truncated TCP DNS frame")
    (length,) = struct.unpack(">H", data[:2])
    message = data[2 : 2 + length]
    if len(message) != length:
        raise NetworkError("TCP DNS frame length mismatch")
    return message


class TcpDnsShim:
    """Converts a guest's UDP DNS queries to TCP for TCP-only transports.

    ``tcp_exchange`` is the transport hook: it takes the framed request
    bytes and must return framed response bytes (having carried them
    through SOCKS/whatever).  A default hook that answers from a resolver
    function is provided for direct use.
    """

    def __init__(self, tcp_exchange: Callable[[bytes], bytes]) -> None:
        self._exchange = tcp_exchange
        self.queries_converted = 0

    @classmethod
    def over_resolver(cls, resolve: Callable[[str], Ipv4Address]) -> "TcpDnsShim":
        """Build a shim whose TCP far-end answers via ``resolve``."""

        def exchange(framed_request: bytes) -> bytes:
            request = tcp_unframe(framed_request)
            transaction_id, hostname = decode_query(request)
            address = resolve(hostname)
            return tcp_frame(encode_answer(transaction_id, hostname, address))

        return cls(exchange)

    def resolve_udp_payload(self, udp_payload: bytes) -> bytes:
        """The full conversion: UDP query in, UDP response out."""
        framed = tcp_frame(udp_payload)
        response = tcp_unframe(self._exchange(framed))
        request_id, _ = decode_query(udp_payload)
        response_id, _ = decode_answer(response)
        if request_id != response_id:
            raise NetworkError(
                f"DNS transaction id mismatch: {request_id} != {response_id}"
            )
        self.queries_converted += 1
        return response
