"""Packet capture and leak analysis (the §5.1 Wireshark methodology).

The paper validates Nymix by tunnelling the hypervisor's traffic to a NAT
on an outer host and watching it with Wireshark: an idle Nymix client must
emit only DHCP and anonymizer traffic, and the AnonVM must emit nothing at
all.  :class:`PacketCapture` is the tap; :class:`LeakAnalyzer` encodes the
"what is this traffic allowed to be" policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.net.frame import EthernetFrame
from repro.sim.clock import Timeline


@dataclass(frozen=True)
class CaptureEntry:
    """One observed frame (or summarized flow) on a tapped link."""

    time: float
    where: str  # wire or uplink name
    sender: str  # NIC name
    summary: str
    label: str  # protocol tag: "dhcp", "anonymizer", "dns", "" for unknown
    size: int
    flow_bytes: int = 0  # nonzero when this entry summarizes a bulk flow


class PacketCapture:
    """A promiscuous tap that can be attached to wires and NAT uplinks."""

    def __init__(self, timeline: Timeline, name: str = "capture") -> None:
        self.timeline = timeline
        self.name = name
        self.entries: List[CaptureEntry] = []

    def observe(self, wire: object, sender: object, frame: EthernetFrame) -> None:
        label = frame.packet.label if frame.packet is not None else "raw-ethernet"
        self.entries.append(
            CaptureEntry(
                time=self.timeline.now,
                where=getattr(wire, "name", str(wire)),
                sender=getattr(sender, "name", str(sender)),
                summary=frame.describe(),
                label=label,
                size=frame.size,
            )
        )

    def record_flow(
        self, where: str, sender: str, label: str, payload_bytes: int, summary: str = ""
    ) -> None:
        """Record a summarized bulk flow (data plane)."""
        self.entries.append(
            CaptureEntry(
                time=self.timeline.now,
                where=where,
                sender=sender,
                summary=summary or f"flow [{label}] ({payload_bytes} B)",
                label=label,
                size=0,
                flow_bytes=payload_bytes,
            )
        )

    def clear(self) -> None:
        self.entries.clear()

    def by_label(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.label] = counts.get(entry.label, 0) + 1
        return counts

    def from_sender(self, sender: str) -> List[CaptureEntry]:
        return [entry for entry in self.entries if entry.sender == sender]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class LeakReport:
    """Outcome of scanning a capture against an allowed-traffic policy."""

    total_entries: int
    allowed_labels: Sequence[str]
    counts_by_label: Dict[str, int]
    leaks: List[CaptureEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.leaks

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.leaks)} LEAK(S)"
        labels = ", ".join(
            f"{label or '<unlabeled>'}={count}"
            for label, count in sorted(self.counts_by_label.items())
        )
        return f"{status}: {self.total_entries} entries ({labels})"


class LeakAnalyzer:
    """Classifies captured traffic as expected or leaking.

    The §5.1 policy for the host uplink: DHCP and anonymizer traffic only.
    Any raw Ethernet, unlabeled IP, or application-labelled traffic that
    bypassed the anonymizer counts as a leak.
    """

    DEFAULT_ALLOWED = ("dhcp", "anonymizer")

    def __init__(self, allowed_labels: Optional[Sequence[str]] = None) -> None:
        self.allowed_labels = tuple(
            allowed_labels if allowed_labels is not None else self.DEFAULT_ALLOWED
        )

    def analyze(self, capture: PacketCapture) -> LeakReport:
        counts: Dict[str, int] = {}
        leaks: List[CaptureEntry] = []
        for entry in capture.entries:
            counts[entry.label] = counts.get(entry.label, 0) + 1
            if entry.label not in self.allowed_labels:
                leaks.append(entry)
        return LeakReport(
            total_entries=len(capture.entries),
            allowed_labels=self.allowed_labels,
            counts_by_label=counts,
            leaks=leaks,
        )
