"""MAC and IPv4 address value types."""

from __future__ import annotations

from repro.errors import NetworkError


class MacAddress:
    """A 48-bit Ethernet address."""

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 48):
            raise NetworkError(f"MAC address out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise NetworkError(f"malformed MAC address: {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError as exc:
            raise NetworkError(f"malformed MAC address: {text!r}") from exc
        if any(not 0 <= octet <= 0xFF for octet in octets):
            raise NetworkError(f"malformed MAC address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)

    def __repr__(self) -> str:
        return f"MacAddress({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))


# The fixed MAC QEMU assigns by default — Nymix deliberately gives every
# AnonVM this same address so hardware identity cannot distinguish nyms.
QEMU_DEFAULT_MAC = MacAddress.parse("52:54:00:12:34:56")


class Ipv4Address:
    """A 32-bit IPv4 address."""

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise NetworkError(f"IPv4 address out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise NetworkError(f"malformed IPv4 address: {text!r}")
        try:
            octets = [int(part) for part in parts]
        except ValueError as exc:
            raise NetworkError(f"malformed IPv4 address: {text!r}") from exc
        if any(not 0 <= octet <= 255 for octet in octets):
            raise NetworkError(f"malformed IPv4 address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    def in_subnet(self, network: "Ipv4Address", prefix_len: int) -> bool:
        if not 0 <= prefix_len <= 32:
            raise NetworkError(f"bad prefix length: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (network.value & mask)

    def is_private(self) -> bool:
        """RFC 1918 check, used by the leak analyzer."""
        return (
            self.in_subnet(Ipv4Address.parse("10.0.0.0"), 8)
            or self.in_subnet(Ipv4Address.parse("172.16.0.0"), 12)
            or self.in_subnet(Ipv4Address.parse("192.168.0.0"), 16)
        )

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in range(24, -8, -8)]
        return ".".join(str(octet) for octet in octets)

    def __repr__(self) -> str:
        return f"Ipv4Address({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ipv4Address) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))


# The fixed guest-side addressing QEMU user-mode networking uses; every
# nymbox reuses these identical addresses (fingerprint homogenization, §4.2).
GUEST_IP = Ipv4Address.parse("10.0.2.15")
GATEWAY_IP = Ipv4Address.parse("10.0.2.2")
DNS_IP = Ipv4Address.parse("10.0.2.3")
