"""DNS resolution.

DNS is a classic anonymity leak: a browser that resolves names outside the
anonymizer reveals every site visited.  Tor therefore ships a built-in DNS
server, and Nymix points the AnonVM's resolver at the CommVM (§4.1).  The
:class:`DnsResolver` here records *where* each query was answered so tests
and the leak analyzer can prove no resolution escaped the anonymous path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import UnreachableError
from repro.net.addresses import Ipv4Address
from repro.net.internet import Internet


@dataclass
class DnsZone:
    """A static hostname -> address map (a slice of the global namespace)."""

    records: Dict[str, Ipv4Address] = field(default_factory=dict)

    def add(self, hostname: str, ip: Ipv4Address) -> None:
        self.records[hostname] = ip

    def lookup(self, hostname: str) -> Optional[Ipv4Address]:
        return self.records.get(hostname)


@dataclass(frozen=True)
class DnsQueryRecord:
    hostname: str
    answered_by: str  # "anonymizer" or "direct"
    answer: Ipv4Address


class DnsResolver:
    """Resolves names either through an anonymizer or directly.

    ``via`` tags each query's path; a query log full of "anonymizer"
    entries and empty of "direct" ones is what a leak-free nymbox shows.
    """

    def __init__(self, internet: Internet, via: str = "anonymizer") -> None:
        self.internet = internet
        self.via = via
        self.query_log: List[DnsQueryRecord] = []

    def resolve(self, hostname: str) -> Ipv4Address:
        try:
            answer = self.internet.resolve(hostname)
        except UnreachableError:
            raise
        self.query_log.append(
            DnsQueryRecord(hostname=hostname, answered_by=self.via, answer=answer)
        )
        return answer

    def direct_queries(self) -> List[DnsQueryRecord]:
        return [record for record in self.query_log if record.answered_by == "direct"]
