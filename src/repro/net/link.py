"""Point-to-point virtual wires.

The hypervisor connects each AnonVM to its CommVM with a UDP-socket
"virtual wire" that only hypervisor-resident endpoints can touch (§4.2).
A :class:`VirtualWire` carries frames between exactly two NICs, applying
propagation latency; taps (packet captures) may observe both directions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NetworkError
from repro.net.frame import EthernetFrame
from repro.net.nic import VirtualNic
from repro.sim.clock import Timeline


class VirtualWire:
    """A two-endpoint wire with propagation latency and optional taps."""

    def __init__(
        self,
        timeline: Timeline,
        a: VirtualNic,
        b: VirtualNic,
        latency_s: float = 0.0001,
        name: str = "",
    ) -> None:
        if a is b:
            raise NetworkError("a wire needs two distinct endpoints")
        if latency_s < 0:
            raise NetworkError(f"negative latency: {latency_s}")
        self.timeline = timeline
        self.name = name or f"wire({a.name}<->{b.name})"
        self.latency_s = latency_s
        self._a = a
        self._b = b
        self._taps: List[object] = []
        self._up = True
        a.attach(self)
        b.attach(self)
        metrics = timeline.obs.metrics
        self._obs_frames = metrics.counter("net.link.frames")
        self._obs_bytes = metrics.counter("net.link.bytes")
        self._obs_dropped = metrics.counter("net.link.dropped_frames")

    @property
    def endpoints(self) -> tuple:
        return (self._a, self._b)

    @property
    def up(self) -> bool:
        return self._up

    def take_down(self) -> None:
        """Sever the wire (nym teardown)."""
        self._up = False
        self._a.detach()
        self._b.detach()

    def bring_up(self, quiet: bool = False) -> None:
        """Restore a downed wire: both NICs re-attach and frames flow again.

        ``quiet`` suppresses the journal event — used for housekeeping
        re-attachment (the hypervisor's cached LAN wire), where an outage
        recovery was never observed by anyone.
        """
        if self._up:
            return
        self._a.attach(self)
        self._b.attach(self)
        self._up = True
        if not quiet:
            self.timeline.obs.event("net.link.up", wire=self.name)

    def flap(self, down_for_s: float) -> None:
        """Take the wire down now and bring it back ``down_for_s`` later.

        The recovery rides the timeline, so it fires during whatever sleep
        the affected workload is in — a transient outage, not teardown.
        """
        if down_for_s <= 0:
            raise NetworkError(f"flap duration must be positive: {down_for_s!r}")
        self.take_down()
        self.timeline.obs.event(
            "net.link.flap", wire=self.name, down_for_s=round(down_for_s, 6)
        )
        self.timeline.obs.metrics.counter("net.link.flaps").inc()
        self.timeline.after(down_for_s, self.bring_up)

    def add_tap(self, tap: object) -> None:
        """Attach a capture object with an ``observe(wire, sender, frame)`` method."""
        self._taps.append(tap)

    def carry(self, sender: VirtualNic, frame: EthernetFrame) -> None:
        """Propagate ``frame`` from ``sender`` to the far end after latency."""
        if not self._up:
            sender.dropped_frames += 1
            self._obs_dropped.inc()
            return
        if sender is self._a:
            receiver: Optional[VirtualNic] = self._b
        elif sender is self._b:
            receiver = self._a
        else:
            raise NetworkError(f"{sender!r} is not an endpoint of {self.name}")
        self._obs_frames.inc()
        self._obs_bytes.inc(frame.size)
        for tap in self._taps:
            tap.observe(self, sender, frame)  # type: ignore[attr-defined]
        if self.latency_s == 0:
            receiver.deliver(frame)
        else:
            self.timeline.after(self.latency_s, lambda: receiver.deliver(frame))

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"VirtualWire({self.name}, {state}, latency={self.latency_s * 1000:.2f}ms)"
