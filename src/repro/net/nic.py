"""Virtual network interfaces."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import UnreachableError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.frame import EthernetFrame, Ipv4Packet

FrameHandler = Callable[[EthernetFrame], None]


class VirtualNic:
    """A guest-visible NIC: one MAC, optionally one IPv4 address, one wire.

    Frames sent with no wire attached vanish (the "no-response, as if the
    host did not exist" behaviour the paper's validation observed when
    probing across isolation boundaries).
    """

    def __init__(self, name: str, mac: MacAddress, ip: Optional[Ipv4Address] = None) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip
        self._wire = None  # type: Optional[object]
        self._handlers: List[FrameHandler] = []
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.dropped_frames = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, wire: object) -> None:
        self._wire = wire

    def detach(self) -> None:
        self._wire = None

    @property
    def connected(self) -> bool:
        return self._wire is not None

    def on_receive(self, handler: FrameHandler) -> None:
        self._handlers.append(handler)

    # -- data path -----------------------------------------------------------

    def send(self, frame: EthernetFrame, strict: bool = False) -> bool:
        """Transmit a frame.  Returns whether it was carried anywhere.

        With ``strict=True`` an unconnected NIC raises instead of silently
        dropping — used by tests that assert isolation failures loudly.
        """
        self.tx_frames += 1
        self.tx_bytes += frame.size
        if self._wire is None:
            self.dropped_frames += 1
            if strict:
                raise UnreachableError(f"NIC {self.name!r} has no wire attached")
            return False
        self._wire.carry(self, frame)  # type: ignore[attr-defined]
        return True

    def send_packet(self, packet: Ipv4Packet, dst_mac: MacAddress, strict: bool = False) -> bool:
        frame = EthernetFrame(src_mac=self.mac, dst_mac=dst_mac, packet=packet)
        return self.send(frame, strict=strict)

    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the wire when a frame arrives for this NIC."""
        if frame.dst_mac != self.mac and not frame.is_broadcast:
            self.dropped_frames += 1
            return
        self.rx_frames += 1
        self.rx_bytes += frame.size
        for handler in self._handlers:
            handler(frame)

    def __repr__(self) -> str:
        ip = str(self.ip) if self.ip else "-"
        return f"VirtualNic({self.name!r}, mac={self.mac}, ip={ip})"
