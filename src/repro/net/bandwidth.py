"""Flow-level bandwidth accounting for bulk transfers.

Downloads (Figure 5's Linux-kernel fetches, nym-state uploads) are modelled
as flows over a capacity-limited pool — the 10 Mbit/s rate-limited uplink
of the paper's DeterLab testbed.  Completion times come from the exact
processor-sharing model in :mod:`repro.sim.sharing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import NetworkError
from repro.obs import NULL_OBS
from repro.sim.sharing import processor_sharing_times


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow in a transfer batch."""

    payload_bytes: int
    wire_bytes: int  # payload plus protocol/anonymizer overhead
    duration_s: float

    @property
    def goodput_bps(self) -> float:
        if self.duration_s == 0:
            return float("inf")
        return self.payload_bytes * 8 / self.duration_s


class BandwidthPool:
    """A shared uplink of fixed capacity.

    ``rtt_s`` models per-flow handshake cost (one round trip to open the
    connection, as with the 80 ms RTT DeterLab path in §5.2).
    """

    def __init__(self, capacity_bps: float, rtt_s: float = 0.0, obs=NULL_OBS) -> None:
        if capacity_bps <= 0:
            raise NetworkError(f"capacity must be positive, got {capacity_bps}")
        if rtt_s < 0:
            raise NetworkError(f"negative RTT: {rtt_s}")
        self.capacity_bps = capacity_bps
        self.rtt_s = rtt_s
        self.total_wire_bytes = 0
        self._obs_flows = obs.metrics.counter("net.uplink.flows")
        self._obs_wire_bytes = obs.metrics.counter("net.uplink.wire_bytes")
        self._obs_flow_s = obs.metrics.histogram("net.uplink.flow_s")

    def transfer_batch(
        self,
        payload_bytes: Sequence[int],
        overhead_factors: Sequence[float] = (),
        per_flow_ceiling_bps: float = float("inf"),
    ) -> List[FlowResult]:
        """Run a set of flows that start simultaneously and share the pool.

        Args:
            payload_bytes: Useful bytes each flow must deliver.
            overhead_factors: Per-flow multiplier >= 1 converting payload to
                bytes-on-wire (anonymizer cells, TLS, retransmits).  Defaults
                to 1.0 for every flow.
            per_flow_ceiling_bps: Rate cap a single flow cannot exceed even
                when alone (e.g. an exit relay's own bandwidth).
        """
        if not payload_bytes:
            return []
        if overhead_factors and len(overhead_factors) != len(payload_bytes):
            raise NetworkError("overhead_factors length mismatch")
        factors = list(overhead_factors) or [1.0] * len(payload_bytes)
        for factor in factors:
            if factor < 1.0:
                raise NetworkError(f"overhead factor below 1.0: {factor}")
        wire_bits = [size * 8 * factor for size, factor in zip(payload_bytes, factors)]
        times = processor_sharing_times(
            wire_bits, self.capacity_bps, max_share=per_flow_ceiling_bps
        )
        results = []
        for size, factor, bits, elapsed in zip(payload_bytes, factors, wire_bits, times):
            wire_bytes = int(bits / 8)
            self.total_wire_bytes += wire_bytes
            self._obs_flows.inc()
            self._obs_wire_bytes.inc(wire_bytes)
            self._obs_flow_s.observe(elapsed + self.rtt_s)
            results.append(
                FlowResult(
                    payload_bytes=size,
                    wire_bytes=wire_bytes,
                    duration_s=elapsed + self.rtt_s,
                )
            )
        return results

    def transfer(
        self,
        payload_bytes: int,
        overhead_factor: float = 1.0,
        per_flow_ceiling_bps: float = float("inf"),
    ) -> FlowResult:
        """Run one flow alone on the pool."""
        return self.transfer_batch(
            [payload_bytes], [overhead_factor], per_flow_ceiling_bps
        )[0]
