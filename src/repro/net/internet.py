"""The simulated Internet: addressable servers behind a shared uplink."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import NetworkError, UnreachableError
from repro.net.addresses import Ipv4Address
from repro.net.bandwidth import BandwidthPool, FlowResult
from repro.sim.clock import Timeline


@dataclass(frozen=True)
class HttpResponse:
    """What a simulated server hands back for one request."""

    status: int
    body_bytes: int
    cacheable_bytes: int = 0  # portion a browser would keep in its cache
    set_cookie_bytes: int = 0


class Server:
    """A network service at a fixed address.

    Subclasses (websites, cloud providers, directory authorities, download
    mirrors) override :meth:`handle` to describe their responses.
    """

    def __init__(self, hostname: str, ip: Ipv4Address) -> None:
        self.hostname = hostname
        self.ip = ip
        self.requests_served = 0
        self.seen_client_ips: List[Ipv4Address] = []

    def record_client(self, src_ip: Optional[Ipv4Address]) -> None:
        """Log the address this server observes for a request (tracking!)."""
        if src_ip is not None:
            self.seen_client_ips.append(src_ip)

    def handle(self, path: str, request_bytes: int = 500) -> HttpResponse:
        self.requests_served += 1
        return HttpResponse(status=200, body_bytes=10_000)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.hostname!r} @ {self.ip})"


class Internet:
    """Address and name registry plus the shared host uplink.

    The paper's testbed: a 10 Mbit/s, 80 ms RTT path between the Nymix
    host and everything beyond it (DeterLab plus the real Internet).
    """

    def __init__(
        self,
        timeline: Timeline,
        uplink_bps: float = 10_000_000.0,
        rtt_s: float = 0.080,
    ) -> None:
        self.timeline = timeline
        self.rtt_s = rtt_s
        self.uplink = BandwidthPool(
            capacity_bps=uplink_bps, rtt_s=rtt_s, obs=timeline.obs
        )
        self._by_ip: Dict[Ipv4Address, Server] = {}
        self._by_name: Dict[str, Ipv4Address] = {}

    # -- registry ------------------------------------------------------------

    def add_server(self, server: Server) -> Server:
        if server.ip in self._by_ip:
            raise NetworkError(f"address {server.ip} already in use")
        if server.hostname in self._by_name:
            raise NetworkError(f"hostname {server.hostname!r} already registered")
        self._by_ip[server.ip] = server
        self._by_name[server.hostname] = server.ip
        return server

    def resolve(self, hostname: str) -> Ipv4Address:
        try:
            return self._by_name[hostname]
        except KeyError:
            raise UnreachableError(f"NXDOMAIN: {hostname!r}") from None

    def server_at(self, ip: Ipv4Address) -> Server:
        try:
            return self._by_ip[ip]
        except KeyError:
            raise UnreachableError(f"no route to host {ip}") from None

    def server_named(self, hostname: str) -> Server:
        return self.server_at(self.resolve(hostname))

    def known_hosts(self) -> Dict[str, Ipv4Address]:
        return dict(self._by_name)

    # -- data plane ---------------------------------------------------------

    def fetch(
        self,
        hostname: str,
        path: str = "/",
        overhead_factor: float = 1.0,
        extra_rtts: float = 1.0,
        src_ip: Optional[Ipv4Address] = None,
        per_flow_ceiling_bps: float = float("inf"),
    ) -> "FetchResult":
        """One request/response exchange, advancing the timeline.

        ``extra_rtts`` counts handshake round trips beyond the request
        itself (TCP connect, TLS, SOCKS negotiation through an anonymizer).
        ``src_ip`` is the address the destination server observes — the
        client's real public IP for direct traffic, the exit relay's for
        Tor traffic.
        """
        server = self.server_named(hostname)
        server.record_client(src_ip)
        response = server.handle(path)
        flow = self.uplink.transfer(
            response.body_bytes, overhead_factor, per_flow_ceiling_bps
        )
        total = flow.duration_s + self.rtt_s * extra_rtts
        self.timeline.sleep(total)
        return FetchResult(response=response, flow=flow, duration_s=total)


@dataclass(frozen=True)
class FetchResult:
    response: HttpResponse
    flow: Optional[FlowResult]
    duration_s: float
