"""Virtual network stack.

Mirrors the data path of §4.2 of the paper: each AnonVM has exactly one
virtual NIC wired point-to-point (a hypervisor-internal "virtual wire") to
its CommVM; the CommVM reaches the simulated Internet through a user-mode
masquerade NAT on the host uplink.  There is no bridge between nymboxes,
so cross-nym traffic has nowhere to go — the §5.1 isolation property holds
by construction, and :mod:`repro.net.pcap` provides the Wireshark-style
capture used to validate it.

Bulk data transfer is flow-level (a shared-bandwidth model with exact
processor-sharing completion times); control-plane traffic (DHCP, DNS,
circuit building) is packet-level so captures show realistic exchanges.
"""

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.bandwidth import BandwidthPool, FlowResult
from repro.net.dhcp import DhcpServer
from repro.net.dns import DnsResolver, DnsZone
from repro.net.frame import EthernetFrame, Ipv4Packet, Protocol, TcpSegment, UdpDatagram
from repro.net.internet import Internet, Server
from repro.net.link import VirtualWire
from repro.net.nat import MasqueradeNat
from repro.net.nic import VirtualNic
from repro.net.pcap import CaptureEntry, LeakAnalyzer, LeakReport, PacketCapture

__all__ = [
    "Ipv4Address",
    "MacAddress",
    "BandwidthPool",
    "FlowResult",
    "DhcpServer",
    "DnsResolver",
    "DnsZone",
    "EthernetFrame",
    "Ipv4Packet",
    "Protocol",
    "TcpSegment",
    "UdpDatagram",
    "Internet",
    "Server",
    "VirtualWire",
    "MasqueradeNat",
    "VirtualNic",
    "CaptureEntry",
    "LeakAnalyzer",
    "LeakReport",
    "PacketCapture",
]
