"""Minimal DHCP: the one protocol an idle Nymix host is allowed to speak.

The §5.1 validation expects an idle hypervisor to emit *only* DHCP and
anonymizer traffic.  This module provides the DISCOVER/OFFER/REQUEST/ACK
exchange the hypervisor performs on its physical uplink at boot, so
captures contain the realistic four-packet handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import NetworkError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.frame import BROADCAST_MAC, EthernetFrame, Ipv4Packet, UdpDatagram
from repro.net.nic import VirtualNic
from repro.sim.clock import Timeline

_SERVER_PORT = 67
_CLIENT_PORT = 68
_UNSPECIFIED = Ipv4Address.parse("0.0.0.0")
_BROADCAST = Ipv4Address.parse("255.255.255.255")


@dataclass(frozen=True)
class DhcpLease:
    mac: MacAddress
    ip: Ipv4Address
    lease_seconds: float


class DhcpServer:
    """Allocates addresses from a pool, speaking over a NIC on a LAN wire."""

    def __init__(
        self,
        timeline: Timeline,
        nic: VirtualNic,
        pool_start: Ipv4Address,
        pool_size: int = 100,
        lease_seconds: float = 86400.0,
    ) -> None:
        if pool_size <= 0:
            raise NetworkError(f"pool size must be positive, got {pool_size}")
        self.timeline = timeline
        self.nic = nic
        self.lease_seconds = lease_seconds
        self._pool: List[Ipv4Address] = [
            Ipv4Address(pool_start.value + offset) for offset in range(pool_size)
        ]
        self._leases: Dict[MacAddress, DhcpLease] = {}
        nic.on_receive(self._handle_frame)

    def _next_free_ip(self) -> Ipv4Address:
        taken = {lease.ip for lease in self._leases.values()}
        for candidate in self._pool:
            if candidate not in taken:
                return candidate
        raise NetworkError("DHCP pool exhausted")

    def lease_for(self, mac: MacAddress) -> Optional[DhcpLease]:
        return self._leases.get(mac)

    def _reply(self, dst_mac: MacAddress, kind: bytes, ip: Ipv4Address) -> None:
        packet = Ipv4Packet(
            src=self.nic.ip or _UNSPECIFIED,
            dst=_BROADCAST,
            transport=UdpDatagram(
                src_port=_SERVER_PORT,
                dst_port=_CLIENT_PORT,
                payload=kind + b" " + str(ip).encode(),
                label="dhcp",
            ),
        )
        self.nic.send(EthernetFrame(src_mac=self.nic.mac, dst_mac=dst_mac, packet=packet))

    def _handle_frame(self, frame: EthernetFrame) -> None:
        packet = frame.packet
        if packet is None or packet.label != "dhcp":
            return
        payload = packet.transport.payload
        if payload.startswith(b"DISCOVER"):
            lease = self._leases.get(frame.src_mac)
            ip = lease.ip if lease else self._next_free_ip()
            self._leases[frame.src_mac] = DhcpLease(frame.src_mac, ip, self.lease_seconds)
            self._reply(frame.src_mac, b"OFFER", ip)
        elif payload.startswith(b"REQUEST"):
            lease = self._leases.get(frame.src_mac)
            if lease is not None:
                self._reply(frame.src_mac, b"ACK", lease.ip)


class DhcpClient:
    """Drives the 4-packet handshake from a host NIC and configures its IP."""

    def __init__(self, timeline: Timeline, nic: VirtualNic) -> None:
        self.timeline = timeline
        self.nic = nic
        self.acquired_ip: Optional[Ipv4Address] = None
        nic.on_receive(self._handle_frame)

    def _broadcast(self, kind: bytes) -> None:
        packet = Ipv4Packet(
            src=_UNSPECIFIED,
            dst=_BROADCAST,
            transport=UdpDatagram(
                src_port=_CLIENT_PORT, dst_port=_SERVER_PORT, payload=kind, label="dhcp"
            ),
        )
        self.nic.send(
            EthernetFrame(src_mac=self.nic.mac, dst_mac=BROADCAST_MAC, packet=packet)
        )

    def _handle_frame(self, frame: EthernetFrame) -> None:
        packet = frame.packet
        if packet is None or packet.label != "dhcp":
            return
        payload = packet.transport.payload
        if payload.startswith(b"OFFER"):
            self._broadcast(b"REQUEST")
        elif payload.startswith(b"ACK"):
            self.acquired_ip = Ipv4Address.parse(payload.split(b" ")[1].decode())
            self.nic.ip = self.acquired_ip

    def acquire(self, timeout_s: float = 1.0) -> Ipv4Address:
        """Run DISCOVER -> OFFER -> REQUEST -> ACK; returns the leased IP."""
        self._broadcast(b"DISCOVER")
        self.timeline.sleep(timeout_s)
        if self.acquired_ip is None:
            raise NetworkError(f"DHCP timed out on {self.nic.name!r}")
        return self.acquired_ip
