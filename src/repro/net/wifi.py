"""WiFi-layer identity: device fingerprints and social mixes (§7).

Even with perfect software homogeneity, the *radio* betrays users:
drivers [24], 802.11 behaviour [54], and per-device analog imperfections
(radiometric signatures, Brik et al. [7]) all fingerprint hardware, and
MAC addresses are explicit identifiers.  The paper's countermeasures:

* randomized MAC addresses per session,
* a standardized driver/device profile,
* **WiFi social mixes** — card-swap parties (after Stallman's Charlie
  Card swaps [64]): members drop their WiFi cards in a box and draw one
  at random, so a card's radiometric identity no longer maps to a person.

This module models all three, plus the adversaries they defeat (and the
one they don't: the radiometric signature itself survives a swap — it
just points at the wrong person afterwards).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import NetworkError
from repro.net.addresses import MacAddress
from repro.obs import NULL_OBS
from repro.sim.rng import SeededRng


@dataclass(frozen=True)
class RadiometricSignature:
    """The analog fingerprint of one transmitter (Brik et al. [7]).

    Modelled as per-device frequency/magnitude error offsets; devices from
    the same manufacturer with sequential serials still differ.
    """

    frequency_error_ppm: float
    iq_offset: float
    sync_correlation: float

    def matches(self, other: "RadiometricSignature", tolerance: float = 1e-3) -> bool:
        return (
            abs(self.frequency_error_ppm - other.frequency_error_ppm) < tolerance
            and abs(self.iq_offset - other.iq_offset) < tolerance
            and abs(self.sync_correlation - other.sync_correlation) < tolerance
        )


@dataclass
class WifiCard:
    """A physical WiFi adapter: burned-in MAC, driver, analog signature."""

    serial: str
    burned_in_mac: MacAddress
    driver: str
    signature: RadiometricSignature
    active_mac: MacAddress = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.active_mac is None:
            self.active_mac = self.burned_in_mac

    def randomize_mac(self, rng: SeededRng) -> MacAddress:
        """Set a locally administered random MAC for this session."""
        value = rng.randint(0, (1 << 48) - 1)
        value = (value & ~(1 << 40)) | (1 << 41)  # locally administered, unicast
        self.active_mac = MacAddress(value)
        return self.active_mac

    def reset_mac(self) -> None:
        self.active_mac = self.burned_in_mac


def make_card(rng: SeededRng, serial: str, driver: str = "nymix-std") -> WifiCard:
    """Manufacture a card with a unique analog signature."""
    sig_rng = rng.fork(f"sig:{serial}")
    return WifiCard(
        serial=serial,
        burned_in_mac=MacAddress(sig_rng.randint(0, (1 << 46) - 1) & ~(3 << 40)),
        driver=driver,
        signature=RadiometricSignature(
            frequency_error_ppm=sig_rng.uniform(-20.0, 20.0),
            iq_offset=sig_rng.uniform(-0.05, 0.05),
            sync_correlation=sig_rng.uniform(0.90, 0.999),
        ),
    )


@dataclass(frozen=True)
class Transmission:
    """What a radio-level observer captures from one session."""

    mac: MacAddress
    driver: str
    signature: RadiometricSignature


class RadioObserver:
    """The adversary: builds a signature database and re-identifies devices."""

    def __init__(self, obs=NULL_OBS) -> None:
        self._db: List[tuple] = []  # (signature, label)
        self.obs = obs
        self._obs_identified = obs.metrics.counter("wifi.radio.identified")
        self._obs_misses = obs.metrics.counter("wifi.radio.misses")

    def enroll(self, transmission: Transmission, label: str) -> None:
        """Record a known (signature -> identity) observation."""
        self._db.append((transmission.signature, label))

    def identify(self, transmission: Transmission) -> Optional[str]:
        """Who does this transmission's analog fingerprint belong to?"""
        for signature, label in self._db:
            if signature.matches(transmission.signature):
                self._obs_identified.inc()
                return label
        self._obs_misses.inc()
        return None

    def identify_by_mac(self, transmission: Transmission, mac_db: Dict[str, str]) -> Optional[str]:
        return mac_db.get(str(transmission.mac))


class WifiSocialMix:
    """The card-swap party: everyone's card in the box, draw blind.

    A uniformly random derangement-ish shuffle (self-draws allowed, as at
    a real party) severs the card→owner mapping; with several parallel
    mixes a user may hold many cards at once.
    """

    def __init__(self, rng: SeededRng, obs=NULL_OBS) -> None:
        self.rng = rng
        self.obs = obs
        self._box: List[WifiCard] = []
        self._members: List[str] = []

    def contribute(self, member: str, card: WifiCard) -> None:
        if member in self._members:
            raise NetworkError(f"{member!r} already contributed a card")
        self._members.append(member)
        self._box.append(card)

    def swap(self) -> Dict[str, WifiCard]:
        """Everyone draws one card, blind.  Returns member -> drawn card."""
        if len(self._members) < 2:
            raise NetworkError("a social mix needs at least two members")
        drawn = list(self._box)
        self.rng.shuffle(drawn)
        assignment = dict(zip(self._members, drawn))
        kept = sum(
            1
            for member, card in zip(self._members, self._box)
            if assignment[member] is card
        )
        self.obs.metrics.counter("wifi.mix.swaps").inc()
        self.obs.event("wifi.mix.swap", members=len(self._members), self_draws=kept)
        return assignment


def session_transmission(card: WifiCard) -> Transmission:
    """What one online session radiates with this card."""
    return Transmission(mac=card.active_mac, driver=card.driver, signature=card.signature)
