"""Frame and packet value types (object-level, not byte-serialized)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.net.addresses import Ipv4Address, MacAddress

_frame_ids = itertools.count(1)


class Protocol(enum.Enum):
    """IP payload protocols the stack distinguishes."""

    TCP = "tcp"
    UDP = "udp"
    ICMP = "icmp"


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: bytes = b""
    label: str = ""  # human-readable protocol tag for captures ("dhcp", "dns"...)

    @property
    def size(self) -> int:
        return 8 + len(self.payload)


@dataclass(frozen=True)
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int = 0
    flags: str = ""  # e.g. "SYN", "SYN/ACK", "FIN"
    payload: bytes = b""
    label: str = ""

    @property
    def size(self) -> int:
        return 20 + len(self.payload)


@dataclass(frozen=True)
class IcmpMessage:
    kind: str = "echo-request"
    payload: bytes = b""
    label: str = "icmp"

    @property
    def size(self) -> int:
        return 8 + len(self.payload)


Transport = Union[UdpDatagram, TcpSegment, IcmpMessage]


@dataclass(frozen=True)
class Ipv4Packet:
    src: Ipv4Address
    dst: Ipv4Address
    transport: Transport
    ttl: int = 64

    @property
    def protocol(self) -> Protocol:
        if isinstance(self.transport, UdpDatagram):
            return Protocol.UDP
        if isinstance(self.transport, TcpSegment):
            return Protocol.TCP
        return Protocol.ICMP

    @property
    def size(self) -> int:
        return 20 + self.transport.size

    @property
    def label(self) -> str:
        return self.transport.label

    def describe(self) -> str:
        return (
            f"{self.src} -> {self.dst} {self.protocol.value}"
            f"{' [' + self.label + ']' if self.label else ''} ({self.size} B)"
        )


BROADCAST_MAC = MacAddress.parse("ff:ff:ff:ff:ff:ff")


@dataclass(frozen=True)
class EthernetFrame:
    src_mac: MacAddress
    dst_mac: MacAddress
    packet: Optional[Ipv4Packet] = None
    raw_payload: bytes = b""  # for non-IP probes (raw Ethernet injection tests)
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def size(self) -> int:
        inner = self.packet.size if self.packet else len(self.raw_payload)
        return 14 + inner

    @property
    def is_broadcast(self) -> bool:
        return self.dst_mac == BROADCAST_MAC

    def describe(self) -> str:
        if self.packet is not None:
            return self.packet.describe()
        return f"eth {self.src_mac} -> {self.dst_mac} raw ({self.size} B)"
