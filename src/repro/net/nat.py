"""Masquerade NAT: the CommVM's only road to the Internet.

QEMU user-mode networking (slirp) gives a guest a private 10.0.2.0/24
world and rewrites outbound connections to the host's public address.  The
CommVM's outer NIC talks to an instance of this NAT; the NAT's translated
traffic is what a host-side Wireshark (our :class:`PacketCapture`) sees.

The NAT enforces the second half of the §5.1 isolation result: guests can
reach the Internet through it, but never local intranets (RFC 1918 space)
or other guests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import UnreachableError
from repro.net.addresses import Ipv4Address
from repro.net.frame import Ipv4Packet, Protocol, TcpSegment, UdpDatagram
from repro.net.internet import Internet
from repro.net.pcap import PacketCapture
from repro.sim.clock import Timeline

_FIRST_EPHEMERAL_PORT = 49152


@dataclass(frozen=True)
class NatBinding:
    guest_ip: Ipv4Address
    guest_port: int
    dst_ip: Ipv4Address
    dst_port: int
    protocol: Protocol


class MasqueradeNat:
    """Per-nymbox user-mode NAT between a guest and the Internet."""

    def __init__(
        self,
        timeline: Timeline,
        name: str,
        public_ip: Ipv4Address,
        internet: Internet,
        host_capture: Optional[PacketCapture] = None,
    ) -> None:
        self.timeline = timeline
        self.name = name
        self.public_ip = public_ip
        self.internet = internet
        self.host_capture = host_capture
        self._bindings: Dict[NatBinding, int] = {}
        self._next_port = _FIRST_EPHEMERAL_PORT
        self.translated_packets = 0
        self.blocked_packets = 0
        metrics = timeline.obs.metrics
        self._obs_translated = metrics.counter("net.nat.translated_packets")
        self._obs_blocked = metrics.counter("net.nat.blocked_packets")
        self._obs_stream_bytes = metrics.counter("net.nat.stream_bytes")

    # -- translation table ------------------------------------------------------

    def _bind(self, binding: NatBinding) -> int:
        port = self._bindings.get(binding)
        if port is None:
            port = self._next_port
            self._next_port += 1
            self._bindings[binding] = port
        return port

    @property
    def active_bindings(self) -> int:
        return len(self._bindings)

    # -- packet path (control plane) -----------------------------------------------

    def forward(self, packet: Ipv4Packet) -> Ipv4Packet:
        """Translate and deliver one outbound packet; return the translated form.

        Raises :class:`UnreachableError` for destinations the NAT refuses
        to carry (private address space — local intranets are off-limits
        to nymboxes) or that do not exist.
        """
        if packet.dst.is_private():
            self.blocked_packets += 1
            self._obs_blocked.inc()
            raise UnreachableError(
                f"{self.name}: NAT refuses guest traffic to private address {packet.dst}"
            )
        # Destination must exist; the lookup raises UnreachableError otherwise.
        self.internet.server_at(packet.dst)

        transport = packet.transport
        if isinstance(transport, (UdpDatagram, TcpSegment)):
            binding = NatBinding(
                guest_ip=packet.src,
                guest_port=transport.src_port,
                dst_ip=packet.dst,
                dst_port=transport.dst_port,
                protocol=packet.protocol,
            )
            public_port = self._bind(binding)
            if isinstance(transport, UdpDatagram):
                translated_transport = UdpDatagram(
                    src_port=public_port,
                    dst_port=transport.dst_port,
                    payload=transport.payload,
                    label=transport.label,
                )
            else:
                translated_transport = TcpSegment(
                    src_port=public_port,
                    dst_port=transport.dst_port,
                    seq=transport.seq,
                    flags=transport.flags,
                    payload=transport.payload,
                    label=transport.label,
                )
        else:
            translated_transport = transport

        translated = Ipv4Packet(
            src=self.public_ip,
            dst=packet.dst,
            transport=translated_transport,
            ttl=packet.ttl - 1,
        )
        self.translated_packets += 1
        self._obs_translated.inc()
        if self.host_capture is not None:
            self.host_capture.record_flow(
                where=f"uplink({self.name})",
                sender=self.name,
                label=packet.label,
                payload_bytes=packet.size,
                summary=translated.describe(),
            )
        return translated

    # -- flow path (data plane) ----------------------------------------------------

    def stream(
        self,
        dst: Ipv4Address,
        payload_bytes: int,
        label: str,
        overhead_factor: float = 1.0,
    ) -> float:
        """Carry a bulk flow to ``dst`` over the shared uplink.

        Returns the flow duration (the caller advances the timeline; batch
        parallelism is handled at the uplink by the caller instead).
        """
        if dst.is_private():
            self.blocked_packets += 1
            self._obs_blocked.inc()
            raise UnreachableError(
                f"{self.name}: NAT refuses guest traffic to private address {dst}"
            )
        self.internet.server_at(dst)
        flow = self.internet.uplink.transfer(payload_bytes, overhead_factor)
        self._obs_stream_bytes.inc(flow.wire_bytes)
        if self.host_capture is not None:
            self.host_capture.record_flow(
                where=f"uplink({self.name})",
                sender=self.name,
                label=label,
                payload_bytes=flow.wire_bytes,
            )
        return flow.duration_s

    def __repr__(self) -> str:
        return f"MasqueradeNat({self.name!r}, public={self.public_ip})"
