"""The structured event journal: append-only records with JSONL export.

Every record carries the simulated timestamp, a dotted event name, a
monotonically increasing sequence number, and sorted key/value fields.
Because nothing in the simulation reads wall time or OS entropy, two
same-seed runs of the same scenario export **byte-identical** journals —
the journal is therefore both an audit log and a regression oracle
(diff the JSONL of two runs to find the first divergence).

The journal is bounded.  What happens at the bound is explicit:

* ``on_overflow="error"`` (the default) raises
  :class:`~repro.errors.JournalOverflowError` — a run that outgrows its
  journal fails loudly instead of silently truncating the byte-identity
  oracle (two truncated journals still compare equal, which is exactly
  how a determinism gate passes on garbage).
* ``on_overflow="drop"`` restores the old behaviour for callers that
  genuinely want a bounded sample; drops are counted in ``dropped``.
* :meth:`stream_to` switches the journal to **streamed** mode: events
  spill to a JSONL file on disk through a bounded in-memory window, the
  cap no longer applies, and the final file bytes are identical to what
  :meth:`write_jsonl` would have produced from an in-memory journal.
  This is the scale path — a million-event run holds only ``window``
  records in RAM.

Streamed journals also support checkpoint/resume: :meth:`flush` makes
the spool file a prefix-stable artifact, ``spool_offset`` reports the
flushed byte count, and a pickled journal reattaches to its spool file
(truncating any bytes written after the recorded offset) so a resumed
run appends exactly where the checkpoint left off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import JournalOverflowError, ObservabilityError
from repro.obs.metrics import validate_metric_name

#: recognised overflow policies for in-memory journals
_OVERFLOW_MODES = ("error", "drop")


@dataclass(frozen=True)
class EventRecord:
    """One journal entry at a simulated instant."""

    seq: int
    t: float
    name: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def export(self) -> Dict[str, object]:
        record: Dict[str, object] = {"seq": self.seq, "t": self.t, "event": self.name}
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return json.dumps(self.export(), sort_keys=True, separators=(",", ":"))


class EventJournal:
    """Append-only, sim-time-stamped event log for one simulation."""

    def __init__(
        self,
        clock,
        max_events: int = 250_000,
        on_overflow: str = "error",
    ) -> None:
        if on_overflow not in _OVERFLOW_MODES:
            raise ObservabilityError(
                f"unknown on_overflow mode {on_overflow!r} "
                f"(expected one of {_OVERFLOW_MODES})"
            )
        self._clock = clock  # anything with a ``.now`` float property
        self.max_events = max_events
        self.on_overflow = on_overflow
        self._events: List[EventRecord] = []
        self.dropped = 0
        # Monotonic sequence across the whole run (flushed + windowed).
        self._next_seq = 0
        # Per-name totals survive spooling, so count() stays exact after
        # flushed events leave memory (distinct names are few).
        self._name_counts: Dict[str, int] = {}
        # Streaming state: set by stream_to()/resume; None = in-memory.
        self._spool_path: Optional[str] = None
        self._spool_handle = None
        self._window_limit = 0
        self._flushed_events = 0
        self._flushed_bytes = 0

    # -- recording ------------------------------------------------------------

    @property
    def streaming(self) -> bool:
        return self._spool_path is not None

    def record(self, name: str, **fields) -> Optional[EventRecord]:
        """Append one event at the current simulated time."""
        validate_metric_name(name)
        if not self.streaming and len(self._events) >= self.max_events:
            if self.on_overflow == "error":
                raise JournalOverflowError(
                    f"event journal overflowed max_events={self.max_events} "
                    f"(raise the cap, use on_overflow='drop', or spill to "
                    f"disk with stream_to())"
                )
            self.dropped += 1
            return None
        record = EventRecord(
            seq=self._next_seq,
            t=self._clock.now,
            name=name,
            fields=tuple(sorted(fields.items())),
        )
        self._next_seq += 1
        self._name_counts[name] = self._name_counts.get(name, 0) + 1
        self._events.append(record)
        if self.streaming and len(self._events) >= self._window_limit:
            self.flush()
        return record

    # -- streaming ------------------------------------------------------------

    def stream_to(self, path, window: int = 8192) -> None:
        """Spill this journal to a JSONL spool at ``path``.

        From now on at most ``window`` records stay in memory; the cap
        stops applying (disk is the bound).  Events already recorded are
        carried into the spool, so the final file bytes are identical to
        an in-memory run's :meth:`write_jsonl` output regardless of when
        streaming was switched on or how often :meth:`flush` ran.
        """
        if self.streaming:
            raise ObservabilityError(
                f"journal already streams to {self._spool_path!r}"
            )
        if window < 1:
            raise ObservabilityError(f"stream window must be >= 1, got {window}")
        self._spool_path = str(path)
        self._window_limit = window
        self._spool_handle = open(self._spool_path, "wb")
        self._flushed_events = 0
        self._flushed_bytes = 0
        if len(self._events) >= window:
            self.flush()

    def flush(self) -> int:
        """Write the in-memory window to the spool; returns events written.

        Flush timing never changes the spool's final bytes — it only
        bounds memory and establishes checkpointable offsets.
        """
        if not self.streaming:
            return 0
        if not self._events:
            return 0
        handle = self._ensure_spool_handle()
        data = "".join(e.to_json() + "\n" for e in self._events).encode()
        handle.write(data)
        handle.flush()
        written = len(self._events)
        self._flushed_events += written
        self._flushed_bytes += len(data)
        self._events.clear()
        return written

    def close_spool(self) -> None:
        """Flush and release the spool file handle (the path stays set)."""
        if not self.streaming:
            return
        self.flush()
        if self._spool_handle is not None:
            self._spool_handle.close()
            self._spool_handle = None

    def _ensure_spool_handle(self):
        """(Re)open the spool, truncating past the recorded offset.

        After an unpickle (checkpoint resume) the file may hold bytes a
        killed run wrote beyond the checkpoint; they are cut so the
        resumed journal appends exactly at the recorded offset.
        """
        if self._spool_handle is None:
            handle = open(self._spool_path, "r+b")
            handle.truncate(self._flushed_bytes)
            handle.seek(self._flushed_bytes)
            self._spool_handle = handle
        return self._spool_handle

    @property
    def spool_path(self) -> Optional[str]:
        return self._spool_path

    @property
    def spool_offset(self) -> int:
        """Flushed byte count — the resume point a checkpoint records."""
        return self._flushed_bytes

    # -- checkpoint/resume ----------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state["_spool_handle"] = None  # reopened lazily on next flush
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    # -- querying -------------------------------------------------------------

    def __len__(self) -> int:
        """Total events recorded (flushed to the spool + still in memory)."""
        return self._flushed_events + len(self._events)

    def __iter__(self) -> Iterator[EventRecord]:
        """Iterate the in-memory window (everything, unless streaming)."""
        return iter(self._events)

    @property
    def events(self) -> List[EventRecord]:
        return list(self._events)

    def select(self, prefix: str = "") -> List[EventRecord]:
        """In-memory events whose name is ``prefix`` or under ``prefix.``.

        In streamed mode only the unflushed window is visible here; use
        :meth:`count` (exact across the whole run) or read the spool.
        """
        if not prefix:
            return list(self._events)
        dotted = prefix + "."
        return [
            e for e in self._events if e.name == prefix or e.name.startswith(dotted)
        ]

    def count(self, prefix: str = "") -> int:
        """Exact event count by name prefix, including spooled events."""
        if not prefix:
            return self._flushed_events + len(self._events)
        dotted = prefix + "."
        return sum(
            n
            for name, n in self._name_counts.items()
            if name == prefix or name.startswith(dotted)
        )

    # -- export ---------------------------------------------------------------

    def export_jsonl(self) -> str:
        """The whole journal as canonical JSON Lines (one event per line).

        Streamed journals flush and read the spool back, so the result is
        byte-identical to an in-memory journal of the same run.
        """
        if self.streaming:
            self.flush()
            with open(self._spool_path, "rb") as handle:
                data = handle.read(self._flushed_bytes)
            return data.decode()[:-1] if data else ""
        return "\n".join(e.to_json() for e in self._events)

    def write_jsonl(self, path) -> int:
        """Write the journal to ``path``; returns the number of events."""
        total = len(self)
        if self.streaming:
            self.flush()
            if str(path) == self._spool_path:
                return total
        text = self.export_jsonl()
        with open(path, "w") as handle:
            handle.write(text)
            if text:
                handle.write("\n")
        return total

    def __repr__(self) -> str:
        mode = f", spool={self._spool_path!r}" if self.streaming else ""
        return f"EventJournal({len(self)} events, dropped={self.dropped}{mode})"
