"""The structured event journal: append-only records with JSONL export.

Every record carries the simulated timestamp, a dotted event name, a
monotonically increasing sequence number, and sorted key/value fields.
Because nothing in the simulation reads wall time or OS entropy, two
same-seed runs of the same scenario export **byte-identical** journals —
the journal is therefore both an audit log and a regression oracle
(diff the JSONL of two runs to find the first divergence).

The journal is bounded: past ``max_events`` the oldest-first guarantee
is kept by dropping *new* records and counting them in ``dropped``, so a
runaway loop cannot eat the host's memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import validate_metric_name


@dataclass(frozen=True)
class EventRecord:
    """One journal entry at a simulated instant."""

    seq: int
    t: float
    name: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def export(self) -> Dict[str, object]:
        record: Dict[str, object] = {"seq": self.seq, "t": self.t, "event": self.name}
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return json.dumps(self.export(), sort_keys=True, separators=(",", ":"))


class EventJournal:
    """Append-only, sim-time-stamped event log for one simulation."""

    def __init__(self, clock, max_events: int = 250_000) -> None:
        self._clock = clock  # anything with a ``.now`` float property
        self.max_events = max_events
        self._events: List[EventRecord] = []
        self.dropped = 0

    # -- recording ------------------------------------------------------------

    def record(self, name: str, **fields) -> Optional[EventRecord]:
        """Append one event at the current simulated time."""
        validate_metric_name(name)
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return None
        record = EventRecord(
            seq=len(self._events),
            t=self._clock.now,
            name=name,
            fields=tuple(sorted(fields.items())),
        )
        self._events.append(record)
        return record

    # -- querying -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._events)

    @property
    def events(self) -> List[EventRecord]:
        return list(self._events)

    def select(self, prefix: str = "") -> List[EventRecord]:
        """Events whose name is ``prefix`` or sits under ``prefix.``."""
        if not prefix:
            return list(self._events)
        dotted = prefix + "."
        return [
            e for e in self._events if e.name == prefix or e.name.startswith(dotted)
        ]

    def count(self, prefix: str = "") -> int:
        return len(self.select(prefix))

    # -- export ---------------------------------------------------------------

    def export_jsonl(self) -> str:
        """The whole journal as canonical JSON Lines (one event per line)."""
        return "\n".join(e.to_json() for e in self._events)

    def write_jsonl(self, path) -> int:
        """Write the journal to ``path``; returns the number of events."""
        text = self.export_jsonl()
        with open(path, "w") as handle:
            handle.write(text)
            if text:
                handle.write("\n")
        return len(self._events)

    def __repr__(self) -> str:
        return f"EventJournal({len(self._events)} events, dropped={self.dropped})"
