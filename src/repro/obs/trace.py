"""Sim-time span tracing.

Spans read the *simulation* clock, never wall time, so a trace of a run
is as deterministic as the run itself: two same-seed executions yield
byte-identical span trees.  Usage::

    with tracer.span("nymbox.launch", nym="demo"):
        with tracer.span("vm.boot", vm="demo-anon"):
            ...

Spans nest via an explicit stack (the simulation is single-threaded);
each finished span records its start/end sim-times, depth, and the index
of its parent in the finished-span list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError


@dataclass
class SpanRecord:
    """One completed span on the simulated timeline."""

    name: str
    start_s: float
    end_s: float
    depth: int
    parent: Optional[int]  # index into Tracer.finished, None for roots
    attrs: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def export(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "start_s", "depth", "attrs", "children")

    def __init__(self, tracer: "Tracer", name: str, attrs: Tuple) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.depth = 0
        self.children: List[int] = []  # finished-list indices of children

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)


class Tracer:
    """Records a tree of sim-time spans against a simulation clock."""

    def __init__(self, clock) -> None:
        self._clock = clock  # anything with a ``.now`` float property
        self._stack: List[_ActiveSpan] = []
        self.finished: List[SpanRecord] = []

    # -- recording ------------------------------------------------------------

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, tuple(sorted(attrs.items())))

    def _push(self, span: _ActiveSpan) -> None:
        span.start_s = self._clock.now
        span.depth = len(self._stack)
        self._stack.append(span)

    def _pop(self, span: _ActiveSpan) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order"
            )
        self._stack.pop()
        # Children already sit in ``finished``; the parent lands after them
        # and back-patches their parent pointers.
        index = len(self.finished)
        self.finished.append(
            SpanRecord(
                name=span.name,
                start_s=span.start_s,
                end_s=self._clock.now,
                depth=span.depth,
                parent=None,
                attrs=span.attrs,
            )
        )
        for child_index in span.children:
            self.finished[child_index].parent = index
        if self._stack:
            self._stack[-1].children.append(index)

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    # -- export ---------------------------------------------------------------

    def export(self) -> List[Dict[str, object]]:
        """Finished spans in completion order, as plain dicts."""
        return [span.export() for span in self.finished]

    def export_json(self) -> str:
        return json.dumps(self.export(), sort_keys=True, separators=(",", ":"))

    def render_tree(self) -> str:
        """The span tree as indented text, roots in start order::

            nymbox.launch                    0.000 ->  16.423  (16.423 s)
              vm.boot [vm=demo-anon]         0.000 ->   9.873   (9.873 s)
        """
        roots = [
            i for i, span in enumerate(self.finished) if span.parent is None
        ]
        children: Dict[int, List[int]] = {}
        for i, span in enumerate(self.finished):
            if span.parent is not None:
                children.setdefault(span.parent, []).append(i)

        lines: List[str] = []

        def emit(index: int, indent: int) -> None:
            span = self.finished[index]
            attrs = ""
            if span.attrs:
                attrs = " [" + " ".join(f"{k}={v}" for k, v in span.attrs) + "]"
            label = "  " * indent + span.name + attrs
            lines.append(
                f"{label:<48} {span.start_s:>9.3f} -> {span.end_s:>9.3f}"
                f"  ({span.duration_s:.3f} s)"
            )
            for child in sorted(children.get(index, []), key=lambda c: (self.finished[c].start_s, c)):
                emit(child, indent + 1)

        for root in sorted(roots, key=lambda r: (self.finished[r].start_s, r)):
            emit(root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Tracer(finished={len(self.finished)}, active={len(self._stack)})"
