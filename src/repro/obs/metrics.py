"""Hierarchically named metrics: counters, gauges, and histograms.

One :class:`MetricsRegistry` per simulation holds every instrument under a
dotted hierarchical name (``vmm.boot.phase_s``, ``ksm.pages_merged``,
``tor.circuit.build_s``).  Instruments are created on first use and
shared thereafter, so hot paths can bind an instrument once in a
constructor and pay only an attribute access plus an addition per update.

Everything here is deterministic: no wall-clock reads, no process ids,
no unordered iteration in any export — two same-seed simulation runs
produce byte-identical snapshots.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError

#: Dotted lowercase segments: letters/digits/underscores, dot-separated.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

ScalarSnapshot = Union[int, float]
HistogramSnapshot = Dict[str, float]
Snapshot = Dict[str, Union[ScalarSnapshot, HistogramSnapshot]]


def validate_metric_name(name: str) -> str:
    """Check a hierarchical metric name; returns it unchanged if valid."""
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid metric name {name!r}: want dotted lowercase segments "
            "like 'tor.circuit.build_s'"
        )
    return name


class Counter:
    """A monotonically increasing count (events, bytes, packets)."""

    kind = "counter"

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount
        return self.value

    def export(self) -> ScalarSnapshot:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time level (pages sharing, live nyms, queue depth)."""

    kind = "gauge"

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> float:
        self.value = value
        return self.value

    def add(self, delta: float) -> float:
        self.value += delta
        return self.value

    def export(self) -> ScalarSnapshot:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A distribution summary (durations, sizes): count/sum/min/max/last.

    The summary statistics are exact and order-independent except for
    ``last``, which is included because "the most recent boot took X"
    is a natural question for an operator console.
    """

    kind = "histogram"

    __slots__ = ("name", "count", "total", "min", "max", "last")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def export(self) -> HistogramSnapshot:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "last": self.last if self.last is not None else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4f})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by hierarchical name."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- instrument factories -------------------------------------------------

    def _get_or_create(self, name: str, cls) -> Instrument:
        validate_metric_name(name)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ObservabilityError(
                f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """All registered names (optionally under a dotted ``prefix``), sorted."""
        if not prefix:
            return sorted(self._instruments)
        dotted = prefix + "."
        return sorted(
            name
            for name in self._instruments
            if name == prefix or name.startswith(dotted)
        )

    # -- snapshot / diff / export ---------------------------------------------

    def snapshot(self, prefix: str = "") -> Snapshot:
        """Point-in-time view: name -> scalar (counter/gauge) or summary dict."""
        return {
            name: self._instruments[name].export() for name in self.names(prefix)
        }

    def export_json(self, prefix: str = "") -> str:
        """Canonical JSON encoding of :meth:`snapshot` (sorted, compact)."""
        return json.dumps(
            self.snapshot(prefix), sort_keys=True, separators=(",", ":")
        )

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """What changed between two snapshots of the *same* registry.

    Scalars (counters, gauges) and histogram count/sum diff numerically;
    the remaining histogram fields report their ``after`` value.  Metrics
    absent from ``before`` are treated as starting from zero; metrics
    that did not change are omitted.
    """
    delta: Snapshot = {}
    for name, after_value in after.items():
        before_value = before.get(name)
        if isinstance(after_value, dict):
            prior: HistogramSnapshot = (
                before_value if isinstance(before_value, dict) else {}
            )
            if after_value.get("count", 0) == prior.get("count", 0):
                continue
            delta[name] = {
                "count": after_value["count"] - prior.get("count", 0),
                "sum": after_value["sum"] - prior.get("sum", 0.0),
                "min": after_value["min"],
                "max": after_value["max"],
                "mean": after_value["mean"],
                "last": after_value["last"],
            }
        else:
            base = before_value if isinstance(before_value, (int, float)) else 0
            if after_value == base:
                continue
            delta[name] = after_value - base
    return delta
