"""The per-simulation observability facade and its zero-cost no-op twin.

One :class:`Observability` instance per :class:`~repro.sim.clock.Timeline`
bundles the three pillars — a :class:`~repro.obs.metrics.MetricsRegistry`,
a sim-time :class:`~repro.obs.trace.Tracer`, and an
:class:`~repro.obs.journal.EventJournal` — behind one object that every
subsystem reaches as ``timeline.obs``.

When observability is disabled (``NymixConfig(observability=False)``),
the timeline carries :data:`NULL_OBS` instead: the same API surface where
every recording call is a constant-time no-op and ``span()`` returns one
shared do-nothing context manager.  Hot paths bind instruments once at
construction time, so the disabled cost is one attribute access plus an
empty method call — unmeasurable next to the work being instrumented.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry, Snapshot, diff_snapshots
from repro.obs.trace import Tracer


class _FrozenClock:
    """Stand-in clock for an Observability built without a simulation."""

    now = 0.0


class Observability:
    """Metrics + tracing + journal for one simulation timeline."""

    enabled = True

    def __init__(
        self, clock=None, max_events: int = 250_000, on_overflow: str = "error"
    ) -> None:
        self.clock = clock if clock is not None else _FrozenClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock)
        self.journal = EventJournal(
            self.clock, max_events=max_events, on_overflow=on_overflow
        )

    # -- conveniences ---------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Append one journal event (shorthand for ``journal.record``)."""
        self.journal.record(name, **fields)

    def span(self, name: str, **attrs):
        """Open a sim-time span (shorthand for ``tracer.span``)."""
        return self.tracer.span(name, **attrs)

    def snapshot(self, prefix: str = "") -> Snapshot:
        return self.metrics.snapshot(prefix)

    def diff(self, before: Snapshot, prefix: str = "") -> Snapshot:
        """Metric movement since a previously captured snapshot."""
        return diff_snapshots(before, self.metrics.snapshot(prefix))

    def export(self) -> Dict[str, object]:
        """Everything observed, as one JSON-ready structure."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.export(),
            "events": [e.export() for e in self.journal],
        }

    def export_json(self) -> str:
        return json.dumps(self.export(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:
        return (
            f"Observability(metrics={len(self.metrics)}, "
            f"spans={len(self.tracer.finished)}, events={len(self.journal)})"
        )


# -- the disabled path ---------------------------------------------------------


class _NullSpan:
    """A reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _NullCounter:
    __slots__ = ()
    kind = "counter"
    name = ""
    value = 0

    def inc(self, amount: int = 1) -> int:
        return 0

    def export(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    value = 0

    def set(self, value: float) -> float:
        return 0

    def add(self, delta: float) -> float:
        return 0

    def export(self) -> int:
        return 0


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        return None

    def export(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "last": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class _NullMetrics:
    """Registry facade whose instruments all discard their updates."""

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def get(self, name: str) -> None:
        return None

    def names(self, prefix: str = "") -> List[str]:
        return []

    def snapshot(self, prefix: str = "") -> Snapshot:
        return {}

    def export_json(self, prefix: str = "") -> str:
        return "{}"


class _NullTracer:
    finished: List = []

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    @property
    def active_depth(self) -> int:
        return 0

    def export(self) -> List:
        return []

    def export_json(self) -> str:
        return "[]"

    def render_tree(self) -> str:
        return ""


class _NullJournal:
    dropped = 0
    max_events = 0
    streaming = False
    spool_path = None
    spool_offset = 0

    def record(self, name: str, **fields) -> None:
        return None

    def stream_to(self, path, window: int = 8192) -> None:
        return None

    def flush(self) -> int:
        return 0

    def close_spool(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    @property
    def events(self) -> List:
        return []

    def select(self, prefix: str = "") -> List:
        return []

    def count(self, prefix: str = "") -> int:
        return 0

    def export_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path) -> int:
        with open(path, "w") as handle:
            handle.write("")
        return 0


class NullObservability:
    """API-compatible observability sink: every call is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        self.clock = _FrozenClock()
        self.metrics = _NullMetrics()
        self.tracer = _NullTracer()
        self.journal = _NullJournal()

    def event(self, name: str, **fields) -> None:
        return None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self, prefix: str = "") -> Snapshot:
        return {}

    def diff(self, before: Snapshot, prefix: str = "") -> Snapshot:
        return {}

    def export(self) -> Dict[str, object]:
        return {"metrics": {}, "spans": [], "events": []}

    def export_json(self) -> str:
        return json.dumps(self.export(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:
        return "NullObservability()"


#: The process-wide disabled-observability singleton.  Components that can
#: live outside a simulation default their ``obs`` parameter to this.
NULL_OBS = NullObservability()
