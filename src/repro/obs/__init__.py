"""Simulation-native observability: metrics, sim-time tracing, event journal.

The subsystem the evaluation stands on: every resource quantity the paper
reports (KSM pages saved, boot-phase seconds, circuit build latency,
bytes on the wire) flows through one per-simulation
:class:`~repro.obs.facade.Observability` owned by the
:class:`~repro.sim.clock.Timeline` and reachable everywhere as
``timeline.obs``.

* :class:`MetricsRegistry` — counters/gauges/histograms under
  hierarchical dotted names (``vmm.boot.phase_s``, ``ksm.pages_merged``).
* :class:`Tracer` — ``with obs.span("nymbox.launch"): ...`` spans that
  read the *simulation* clock, so traces are deterministic and replayable.
* :class:`EventJournal` — append-only structured records with canonical
  JSONL export; same seed, same scenario => byte-identical journal.
* :data:`NULL_OBS` — the zero-cost no-op recorder used when observability
  is disabled.

See ``docs/observability.md`` for the API tour and naming conventions.
"""

from repro.obs.facade import NULL_OBS, NullObservability, Observability
from repro.obs.journal import EventJournal, EventRecord
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    validate_metric_name,
)
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "NULL_OBS",
    "NullObservability",
    "Observability",
    "EventJournal",
    "EventRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "validate_metric_name",
    "SpanRecord",
    "Tracer",
]
