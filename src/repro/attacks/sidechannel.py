"""Cross-VM side channels (§3.2: the attacks Nymix does *not* stop).

"A compromised AnonVM or CommVM cannot trivially be linked to other
AnonVMs or CommVMs on the same host; however, attacks may be performed
using timing attacks and side channels [79, 80]."

This module makes that residual risk concrete: a cache-contention covert
channel between co-resident VMs.  A sender modulates shared last-level
cache pressure; a receiver times its own memory accesses and reads the
modulation back.  The channel requires *code execution in both VMs* —
which is why the paper treats it as a raised bar rather than a broken
promise — and its capacity degrades with host noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import NymixError
from repro.sim.rng import SeededRng


@dataclass(frozen=True)
class ChannelResult:
    """Outcome of one covert transmission attempt."""

    sent_bits: List[int]
    received_bits: List[int]

    @property
    def bit_errors(self) -> int:
        return sum(1 for a, b in zip(self.sent_bits, self.received_bits) if a != b)

    @property
    def error_rate(self) -> float:
        if not self.sent_bits:
            return 0.0
        return self.bit_errors / len(self.sent_bits)

    @property
    def succeeded(self) -> bool:
        """Usable as a covert channel if well below coin-flip error."""
        return self.error_rate < 0.25


class CacheCovertChannel:
    """Prime-probe style covert channel between two co-resident VMs.

    ``noise`` models other host activity perturbing timing measurements
    (0 = silent lab machine, 0.5 = heavily loaded).  ``co_resident`` is
    the necessary physical condition; VMs on different hosts share no
    cache and the channel reads pure noise.
    """

    #: access-time threshold separating "cache hot" from "evicted"
    SLOW_THRESHOLD = 0.5

    def __init__(
        self,
        rng: SeededRng,
        co_resident: bool = True,
        noise: float = 0.05,
        bit_period_s: float = 0.01,
    ) -> None:
        if not 0 <= noise <= 1:
            raise NymixError(f"noise must be in [0, 1], got {noise}")
        self.rng = rng
        self.co_resident = co_resident
        self.noise = noise
        self.bit_period_s = bit_period_s

    def _probe_timing(self, sender_bit: int) -> float:
        """The receiver's measured access latency for one bit period."""
        if self.co_resident:
            # Sender priming the cache (bit=1) evicts the receiver's lines.
            base = 0.9 if sender_bit else 0.1
        else:
            base = 0.1  # nothing the sender does reaches this host's cache
        jitter = self.rng.gauss(0.0, self.noise)
        return min(1.0, max(0.0, base + jitter))

    def transmit(self, bits: List[int]) -> ChannelResult:
        received = []
        for bit in bits:
            if bit not in (0, 1):
                raise NymixError(f"bits must be 0/1, got {bit!r}")
            timing = self._probe_timing(bit)
            received.append(1 if timing > self.SLOW_THRESHOLD else 0)
        return ChannelResult(sent_bits=list(bits), received_bits=received)

    def capacity_bps(self, trial_bits: int = 256) -> float:
        """Crude usable capacity estimate: goodput after error discount."""
        bits = [self.rng.randint(0, 1) for _ in range(trial_bits)]
        result = self.transmit(bits)
        if not result.succeeded:
            return 0.0
        return (1.0 - result.error_rate) / self.bit_period_s


def link_nyms_via_side_channel(
    rng: SeededRng, both_compromised: bool, co_resident: bool = True, noise: float = 0.05
) -> bool:
    """Can an adversary link two nyms on one host via the cache channel?

    The §3.2 containment argument in one function: the channel works only
    when the adversary runs code in *both* nymboxes simultaneously.
    """
    if not both_compromised:
        return False
    channel = CacheCovertChannel(rng, co_resident=co_resident, noise=noise)
    marker = [1, 0, 1, 1, 0, 0, 1, 0] * 4
    return channel.transmit(marker).succeeded
