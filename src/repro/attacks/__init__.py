"""Adversary models: the attacks Nymix's design is meant to frustrate.

The paper's two-year red-team history is reproduced here as an executable
adversary suite:

* :mod:`repro.attacks.fingerprinting` — Panopticlick-style browser/VM
  fingerprint entropy [19, 23]; Nymix's homogenization should leave zero
  distinguishing bits between nyms.
* :mod:`repro.attacks.staining` — evercookie/malware staining [56, 38];
  stains must die with ephemeral and pre-configured nyms.
* :mod:`repro.attacks.exploits` — in-AnonVM compromise trying to learn
  the user's network identity [27, 61]; it may see only 10.0.2.15 and
  the anonymizer's exit address.
* :mod:`repro.attacks.intersection` — long-term intersection attacks [40]
  and the entry-guard-rotation exposure model that motivates
  quasi-persistent Tor state (§3.5).
* :mod:`repro.attacks.traffic_confirmation` — a global passive adversary
  correlating ingress with egress timing across Tor, Dissent, and the
  mixnet; the anonymity score behind ``repro sweep``.
"""

from repro.attacks.fingerprinting import (
    distinguishing_bits,
    fingerprints_distinguishable,
)
from repro.attacks.staining import EvercookieStain
from repro.attacks.exploits import AnonVmCompromise, CommVmCompromise
from repro.attacks.intersection import GuardExposureModel, IntersectionAttack
from repro.attacks.traffic_confirmation import (
    ConfirmationReport,
    TrafficConfirmationAttack,
)

__all__ = [
    "distinguishing_bits",
    "fingerprints_distinguishable",
    "EvercookieStain",
    "AnonVmCompromise",
    "CommVmCompromise",
    "GuardExposureModel",
    "IntersectionAttack",
    "ConfirmationReport",
    "TrafficConfirmationAttack",
]
