"""Fingerprinting adversaries (Panopticlick / Eckersley-style) [19, 23].

A tracking site hashes every observable attribute of a visitor's browser
and environment; if two visits hash differently the site can tell them
apart, and if a hash is globally rare it identifies the user.  Nymix's
defense is *structural homogeneity*: every AnonVM advertises exactly the
same hardware and browser surface (§4.2), so the information content of
the fingerprint across nyms — and across all Nymix users — is zero bits.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, List, Sequence, Tuple


def _as_key(fingerprint) -> Tuple:
    """Normalize a fingerprint object to a hashable attribute tuple."""
    if hasattr(fingerprint, "as_tuple"):
        return tuple(fingerprint.as_tuple())
    if hasattr(fingerprint, "as_dict"):
        return tuple(sorted(fingerprint.as_dict().items()))
    if isinstance(fingerprint, dict):
        return tuple(sorted(fingerprint.items()))
    return tuple(fingerprint)


def distinguishing_bits(fingerprints: Sequence) -> float:
    """Shannon entropy (bits) an observer gains from the fingerprint.

    0.0 means every fingerprint is identical — the observer learns nothing
    that separates one visitor from another.
    """
    if not fingerprints:
        return 0.0
    counts = Counter(_as_key(fp) for fp in fingerprints)
    total = sum(counts.values())
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def fingerprints_distinguishable(fingerprints: Iterable) -> bool:
    """Can the observer tell at least two of these visitors apart?"""
    keys = {_as_key(fp) for fp in fingerprints}
    return len(keys) > 1


def cpu_timing_fingerprint(durations: Sequence[float], tolerance: float = 0.02) -> List[int]:
    """The §7 "lack of perfect homogeneity" attack: cluster hosts by timing.

    A site running a CPU-intensive probe (a million digits of pi) can bin
    visitors by how long it takes.  Returns a cluster label per visitor;
    all-equal labels mean the timing channel also failed to distinguish.
    """
    labels: List[int] = []
    centers: List[float] = []
    for duration in durations:
        for index, center in enumerate(centers):
            if abs(duration - center) <= tolerance * center:
                labels.append(index)
                break
        else:
            centers.append(duration)
            labels.append(len(centers) - 1)
    return labels
