"""End-to-end traffic confirmation against the simulated transports.

A global passive adversary watches both edges of the anonymity network:
the access links of every potential sender (ingress) and the link from
the network's exit to the destination (egress).  For each packet seen
leaving the exit it asks *which senders transmitted at a time consistent
with this packet's network transit delay?* and intersects the candidate
sets across packets.  The attack is decided entirely by the transport's
delay distribution and by how much the transport's cover traffic makes
every sender look busy:

* **tor** — low-latency onion routing adds only per-hop jitter, so the
  consistency window is narrow and idle senders drop out of the
  candidate set within a couple of packets (the classic result: Tor
  does not resist a global passive adversary).
* **dissent** — every group member transmits in every DC-net round by
  construction, so the candidate set never shrinks below the group.
* **mixnet** — the window widens with layer count and mean hop delay
  (an Erlang sum of exponentials), and loop/drop cover makes senders
  stochastically present; anonymity rises with both knobs, bought with
  latency and bandwidth.  This is the tradeoff the sweep harness charts.

Everything is driven by a :class:`SeededRng`, so the same seed yields
the same verdicts — the attack can sit inside journal-compared runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.errors import SimulationError
from repro.obs import NULL_OBS
from repro.sim.rng import SeededRng

#: delay-model samples the adversary takes to learn the transit window
_CALIBRATION_DRAWS = 200
#: per-hop wire latency mirrored from the transport simulations
_LINK_LATENCY_S = 0.020
#: how often an idle-but-subscribed user sends real traffic (1 per 30 s)
_USER_SEND_RATE_PPS = 1.0 / 30.0

TRANSPORTS = ("tor", "dissent", "mixnet")


@dataclass
class ConfirmationReport:
    """What the confirmation adversary concluded about one transport."""

    transport: str
    senders: int
    packets_observed: int
    window_s: float
    mean_delay_s: float
    candidate_counts: List[int] = field(default_factory=list)
    anonymity_set_size: int = 0
    confirmed: bool = False

    @property
    def mean_candidates(self) -> float:
        if not self.candidate_counts:
            return 0.0
        return sum(self.candidate_counts) / len(self.candidate_counts)

    def export(self) -> dict:
        return {
            "transport": self.transport,
            "senders": self.senders,
            "packets_observed": self.packets_observed,
            "window_s": round(self.window_s, 6),
            "mean_delay_s": round(self.mean_delay_s, 6),
            "mean_candidates": round(self.mean_candidates, 3),
            "anonymity_set_size": self.anonymity_set_size,
            "confirmed": self.confirmed,
        }


class TrafficConfirmationAttack:
    """A seeded global passive adversary correlating ingress with egress.

    ``senders`` is the population sharing the transport (the target is
    sender 0); ``packets`` is how many target packets the adversary gets
    to observe before rendering a verdict.
    """

    def __init__(
        self,
        rng: SeededRng,
        obs=NULL_OBS,
        senders: int = 20,
        packets: int = 10,
    ) -> None:
        if senders < 2:
            raise SimulationError(f"need at least two senders: {senders!r}")
        if packets < 1:
            raise SimulationError(f"need at least one packet: {packets!r}")
        self.rng = rng
        self.obs = obs
        self.senders = senders
        self.packets = packets

    # -- per-transport delay models -------------------------------------------

    def _delay(
        self,
        transport: str,
        rng: SeededRng,
        layers: int,
        mean_hop_delay_s: float,
        round_s: float,
    ) -> float:
        if transport == "tor":
            # Three hops of queueing jitter on top of the wire; no mixing.
            return rng.jitter(4 * _LINK_LATENCY_S, 0.5) + rng.jitter(0.15, 0.5)
        if transport == "dissent":
            # The packet waits for its round boundary, then the round runs.
            return rng.uniform(0.0, round_s) + round_s
        if transport == "mixnet":
            # Erlang: the sum of one exponential mixing delay per layer.
            total = (layers + 1) * _LINK_LATENCY_S
            for _ in range(layers):
                total += -math.log(1.0 - rng.random()) * mean_hop_delay_s
            return total
        raise SimulationError(
            f"unknown transport {transport!r} (known: {', '.join(TRANSPORTS)})"
        )

    # -- the attack -----------------------------------------------------------

    def run(
        self,
        transport: str,
        *,
        layers: int = 3,
        mean_hop_delay_s: float = 0.05,
        cover_rate_pps: float = 0.0,
        round_s: float = 0.45,
    ) -> ConfirmationReport:
        """Correlate the target's packets; returns the adversary's report.

        ``layers``/``mean_hop_delay_s``/``cover_rate_pps`` shape the
        mixnet model; ``round_s`` shapes Dissent's.  For Dissent every
        member transmits in every round regardless of ``cover_rate_pps``.
        """
        draw = self.rng.fork(f"confirm:{transport}")

        # Calibration: the adversary samples the transit-delay law and
        # uses the observed spread as its consistency window.
        samples = sorted(
            self._delay(transport, draw, layers, mean_hop_delay_s, round_s)
            for _ in range(_CALIBRATION_DRAWS)
        )
        lo, hi = samples[0], samples[-1]
        width = hi - lo
        mean_delay = sum(samples) / len(samples)

        # Probability an uninvolved sender emits *something* inside one
        # consistency window: real traffic plus the transport's cover.
        if transport == "dissent":
            presence = 1.0  # every member transmits every round
        else:
            rate = _USER_SEND_RATE_PPS + max(0.0, cover_rate_pps)
            presence = 1.0 - math.exp(-rate * width)

        candidates: Set[int] = set(range(self.senders))
        counts: List[int] = []
        for _ in range(self.packets):
            observed = {0}  # the target really did send this packet
            for sender in range(1, self.senders):
                if draw.random() < presence:
                    observed.add(sender)
            candidates &= observed
            counts.append(len(candidates))

        report = ConfirmationReport(
            transport=transport,
            senders=self.senders,
            packets_observed=self.packets,
            window_s=width,
            mean_delay_s=mean_delay,
            candidate_counts=counts,
            anonymity_set_size=len(candidates),
            confirmed=candidates == {0},
        )
        self.obs.metrics.counter("attack.confirmation.runs").inc()
        self.obs.event(
            "confirmation.result",
            transport=transport,
            anonymity_set=report.anonymity_set_size,
            confirmed=report.confirmed,
        )
        return report


def anonymity_after_packets(
    senders: int, presence: float, packets: int
) -> float:
    """Expected surviving candidates: 1 + (senders-1) * presence^packets."""
    return 1.0 + (senders - 1) * (presence ** packets)
