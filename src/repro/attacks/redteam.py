"""The red team: the paper's standing adversarial review, automated.

"Beyond internal validation, Nymix has been regularly scrutinized for
over 2 years by an independent red-team" (§5.1).  This module packages
the whole adversary suite into one sweep against a live deployment and
reports, per attack, what the adversary achieved — the regression suite
a real red team would leave behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.exploits import AnonVmCompromise, CommVmCompromise
from repro.attacks.fingerprinting import distinguishing_bits
from repro.attacks.staining import EvercookieStain
from repro.core.validation import probe_isolation, validate_system


@dataclass
class AttackOutcome:
    """One red-team exercise: what was attempted, what was gained."""

    name: str
    contained: bool
    details: str


@dataclass
class RedTeamReport:
    outcomes: List[AttackOutcome] = field(default_factory=list)

    @property
    def all_contained(self) -> bool:
        return all(outcome.contained for outcome in self.outcomes)

    def failures(self) -> List[AttackOutcome]:
        return [o for o in self.outcomes if not o.contained]

    def summary(self) -> str:
        verdict = "ALL CONTAINED" if self.all_contained else "BREACHES FOUND"
        lines = [f"red team report: {verdict} ({len(self.outcomes)} exercises)"]
        for outcome in self.outcomes:
            mark = "ok " if outcome.contained else "FAIL"
            lines.append(f"  [{mark}] {outcome.name}: {outcome.details}")
        return "\n".join(lines)


def run_red_team(manager, nyms: int = 3) -> RedTeamReport:
    """Run the full adversarial sweep against ``manager``.

    Creates ``nyms`` fresh nyms (plus uses any already live), attacks
    them, and reports.  Attack side effects (stains, exploit traffic) are
    confined to the nyms this function creates, which it destroys.
    """
    report = RedTeamReport()
    created = [manager.create_nym(name=f"redteam-{i}") for i in range(nyms)]
    for nymbox in created:
        manager.timed_browse(nymbox, "bbc.co.uk")

    # Exercise 1: browser 0-day in every AnonVM.
    real_ip = manager.hypervisor.public_ip
    unmasked = []
    for nymbox in created:
        findings = AnonVmCompromise(nymbox).run()
        if findings.knows_real_network_identity(real_ip):
            unmasked.append(nymbox.nym.name)
    report.outcomes.append(
        AttackOutcome(
            name="anonvm-exploit",
            contained=not unmasked,
            details=(
                f"{len(created)} AnonVMs rooted; real address learned in "
                f"{len(unmasked)} ({unmasked or 'none'})"
            ),
        )
    )

    # Exercise 2: anonymizer compromise (CommVM).
    stolen = []
    for nymbox in created:
        findings = CommVmCompromise(nymbox, real_ip).run()
        stolen.extend(findings.stolen_files)
    report.outcomes.append(
        AttackOutcome(
            name="commvm-exploit",
            contained=not stolen,
            details=(
                "CommVMs rooted: public IP leaks by design; "
                f"browser files stolen: {stolen or 'none'}"
            ),
        )
    )

    # Exercise 3: fingerprint linkage across nyms.
    bits = distinguishing_bits([n.anonvm.fingerprint() for n in created])
    report.outcomes.append(
        AttackOutcome(
            name="fingerprint-linkage",
            contained=bits == 0.0,
            details=f"cross-nym fingerprint entropy: {bits} bits",
        )
    )

    # Exercise 4: staining an ephemeral nym and waiting for it to return.
    target = created[0]
    stain = EvercookieStain("redteam-stain")
    stain.plant(target)
    target_name = target.nym.name
    manager.discard_nym(target)
    replacement = manager.create_nym(name=target_name)
    created[0] = replacement
    report.outcomes.append(
        AttackOutcome(
            name="evercookie-stain",
            contained=not stain.detected(replacement),
            details="stain planted, nym discarded, fresh nym checked",
        )
    )

    # Exercise 5: network probes (the §5.1 matrix + idle scan).
    validation = validate_system(manager, idle_seconds=10.0)
    report.outcomes.append(
        AttackOutcome(
            name="network-probes",
            contained=validation.passed,
            details=validation.summary(),
        )
    )

    # Exercise 6: cross-nym reachability specifically among our targets.
    matrix = probe_isolation(manager)
    report.outcomes.append(
        AttackOutcome(
            name="isolation-matrix",
            contained=matrix.clean,
            details=(
                f"{len(matrix.allowed_pairs)} sanctioned pairs, "
                f"{len(matrix.violations)} violations"
            ),
        )
    )

    for nymbox in created:
        manager.discard_nym(nymbox)
    return report
