"""Long-term intersection attacks [40, 58] and guard exposure (§3.5, §7).

Two adversaries:

* :class:`IntersectionAttack` — the classic statistical-disclosure
  adversary: it watches who is online whenever a linkable pseudonymous
  message appears, and intersects the candidate sets until one user
  remains.  Ephemeral, unlinkable nyms deny it the linkable message
  stream; a long-lived pseudonym feeds it.
* :class:`GuardExposureModel` — why Tor guard state must persist (§3.5):
  an adversary running a fraction of guard relays deanonymizes a client
  the first time the client picks a malicious guard.  Re-selecting guards
  every session (amnesiac Tor) multiplies the draws; persistent guards
  hold one draw per rotation period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.obs import NULL_OBS
from repro.sim.rng import SeededRng


@dataclass
class IntersectionAttack:
    """Statistical disclosure by intersecting online sets.

    ``population`` users each have an independent probability of being
    online during any epoch.  The target posts a linkable message in every
    epoch it is online.  The adversary intersects.
    """

    population: int
    online_probability: float
    rng: SeededRng
    obs: object = NULL_OBS

    def epochs_to_deanonymize(self, target: int = 0, max_epochs: int = 10_000) -> Optional[int]:
        """Epochs of linkable messages until the candidate set is {target}.

        Returns None if the attack has not converged after ``max_epochs``
        (e.g. because the messages are unlinkable and no epochs accrue).
        """
        candidates: Set[int] = set(range(self.population))
        for epoch in range(1, max_epochs + 1):
            online = {
                user
                for user in range(self.population)
                if user == target or self.rng.random() < self.online_probability
            }
            # A linkable message appeared this epoch (the target is online);
            # only users online now remain candidates.
            candidates &= online
            if candidates == {target}:
                self.obs.metrics.counter("attack.intersection.converged").inc()
                self.obs.event(
                    "intersection.converged",
                    population=self.population,
                    epochs=epoch,
                )
                return epoch
        self.obs.metrics.counter("attack.intersection.diverged").inc()
        return None

    def epochs_with_unlinkable_nyms(self) -> Optional[int]:
        """With one-shot ephemeral nyms no two messages are linkable, so
        every epoch restarts the attack: it never converges."""
        return None


@dataclass
class GuardSessionTrace:
    """What one simulated client history exposed to the guard adversary."""

    sessions: int
    distinct_guards: Set[str]
    compromised_at_session: Optional[int]

    @property
    def ever_compromised(self) -> bool:
        return self.compromised_at_session is not None


class GuardExposureModel:
    """Entry-guard compromise over many sessions.

    ``adversary_guards`` of the ``total_guards`` relay population are
    malicious.  Each guard (re)selection is a draw; a draw that includes a
    malicious guard compromises the client from that session on.
    """

    def __init__(
        self,
        rng: SeededRng,
        total_guards: int = 40,
        adversary_guards: int = 4,
        guards_per_client: int = 3,
        obs=NULL_OBS,
    ) -> None:
        if not 0 <= adversary_guards <= total_guards:
            raise ValueError("adversary guard count out of range")
        self.rng = rng
        self.guard_names = [f"guard{i:03d}" for i in range(total_guards)]
        self.malicious = set(self.guard_names[:adversary_guards])
        self.guards_per_client = guards_per_client
        self.obs = obs
        self._obs_draws = obs.metrics.counter("attack.guard.draws")
        self._obs_compromises = obs.metrics.counter("attack.guard.compromises")

    def _draw(self) -> List[str]:
        self._obs_draws.inc()
        return self.rng.sample(self.guard_names, self.guards_per_client)

    def simulate(self, sessions: int, rotate_every_session: bool) -> GuardSessionTrace:
        """Run ``sessions`` client sessions with or without guard persistence."""
        distinct: Set[str] = set()
        compromised_at: Optional[int] = None
        current = self._draw()
        distinct.update(current)
        for session in range(1, sessions + 1):
            if rotate_every_session and session > 1:
                current = self._draw()
                distinct.update(current)
            if compromised_at is None and any(g in self.malicious for g in current):
                compromised_at = session
                self._obs_compromises.inc()
        return GuardSessionTrace(
            sessions=sessions,
            distinct_guards=distinct,
            compromised_at_session=compromised_at,
        )

    def compromise_rate(
        self, sessions: int, rotate_every_session: bool, trials: int = 200
    ) -> float:
        """Fraction of clients compromised within ``sessions`` sessions."""
        hits = 0
        for trial in range(trials):
            model = GuardExposureModel(
                rng=self.rng.fork(f"trial:{rotate_every_session}:{trial}"),
                total_guards=len(self.guard_names),
                adversary_guards=len(self.malicious),
                guards_per_client=self.guards_per_client,
            )
            if model.simulate(sessions, rotate_every_session).ever_compromised:
                hits += 1
        return hits / trials


def linkable_by_exit(exit_ips_a: Sequence[str], exit_ips_b: Sequence[str]) -> bool:
    """Crude linkage heuristic a destination can apply: shared exit + timing.

    Distinct per-nym anonymizer instances make a shared-exit coincidence
    possible but uninformative; a *shared* Tor client guarantees it.
    """
    return bool(set(exit_ips_a) & set(exit_ips_b))


def candidate_count_after_epochs(
    population: int, online_probability: float, epochs: int
) -> float:
    """Expected surviving candidates: population * p^epochs (analytic check)."""
    return population * (online_probability ** epochs)
