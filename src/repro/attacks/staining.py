"""Staining attacks: marking a client for long-term tracking [56, 38].

The GCHQ "MULLENIZE" program stained anonymous traffic by planting
persistent markers on clients; Samy Kamkar's evercookie does the same
from JavaScript, hiding copies of a tracking ID in every storage corner
the browser offers.  Nymix's answer is the usage model: stains live in
the AnonVM's writable state, so an ephemeral nym destroys them at
teardown and a pre-configured nym sheds them at the next restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.nymbox import NymBox

#: every place an evercookie hides a copy of its ID
_STASH_PATHS = (
    "/home/user/.config/chromium/Cookies.evercookie",
    "/home/user/.config/chromium/Local Storage/evercookie",
    "/home/user/.cache/chromium/Cache/evercookie_png",
    "/home/user/.config/chromium/IndexedDB/evercookie",
    "/home/user/.config/flash/evercookie.sol",
)


@dataclass
class EvercookieStain:
    """An in-browser stain: plant it, then ask whether a nym still carries it."""

    tracking_id: str

    def plant(self, nymbox: NymBox) -> int:
        """Write the stain into every stash the AnonVM's browser exposes."""
        payload = f"evercookie:{self.tracking_id}".encode()
        for path in _STASH_PATHS:
            nymbox.anonvm.fs.write(path, payload)
        return len(_STASH_PATHS)

    def surviving_stashes(self, nymbox: NymBox) -> List[str]:
        """Which stash copies are still readable in this nymbox?"""
        payload = f"evercookie:{self.tracking_id}".encode()
        found = []
        for path in _STASH_PATHS:
            if nymbox.anonvm.fs.exists(path) and nymbox.anonvm.fs.read(path) == payload:
                found.append(path)
        return found

    def detected(self, nymbox: NymBox) -> bool:
        """Can the tracking site re-identify this nym?"""
        return bool(self.surviving_stashes(nymbox))
