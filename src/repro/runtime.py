"""Process-wide runtime state: the registry of cross-session caches.

Several hot paths keep **process-global** memo caches — the ntor client
keyshare cache, the mixnet sender-key and keystream caches, the shared
base-image layer — because their contents are pure functions of seeded
key material and identical across sessions.  Left unmanaged they have
two failure modes at production scale:

* they grow without bound (every distinct key ever seen stays resident),
* they leak state across sessions in one process — a long-lived worker
  serving many simulations carries every prior run's key material.

Every such cache registers here.  :func:`reset_process_caches` drops
them all (the :class:`~repro.api.NymixSession` close hook calls it), and
each cache enforces its own ``max_entries`` bound with deterministic
oldest-first eviction.  Cache state never feeds the seeded RNG stream,
so journal bytes are identical whether a cache is warm, cold, bounded,
or mid-eviction — pinned by tests/test_runtime_caches.py.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple


class _RegisteredCache(NamedTuple):
    name: str
    clear: Callable[[], None]
    size: Callable[[], int]


_PROCESS_CACHES: Dict[str, _RegisteredCache] = {}


def register_process_cache(
    name: str, clear: Callable[[], None], size: Callable[[], int]
) -> None:
    """Register a process-global cache for reset/introspection.

    ``clear`` drops every entry; ``size`` reports the current entry
    count.  Re-registering a name replaces the previous registration
    (modules may be reloaded in tests).
    """
    _PROCESS_CACHES[name] = _RegisteredCache(name, clear, size)


def process_cache_sizes() -> Dict[str, int]:
    """Current entry count of every registered process-global cache."""
    return {name: cache.size() for name, cache in sorted(_PROCESS_CACHES.items())}


def reset_process_caches() -> Dict[str, int]:
    """Clear every registered cache; returns the sizes they had.

    Safe at any point: caches only memoize derived values, never RNG
    draws, so clearing them changes performance but not a single journal
    byte.
    """
    sizes = process_cache_sizes()
    for cache in _PROCESS_CACHES.values():
        cache.clear()
    return sizes


def registered_cache_names() -> List[str]:
    return sorted(_PROCESS_CACHES)


def evict_oldest(entries: Dict, max_entries: int) -> int:
    """Shrink ``entries`` to ``max_entries`` by insertion order (FIFO).

    Deterministic: Python dicts iterate in insertion order, so which
    entries go depends only on the call sequence — identical across
    same-seed runs.  Returns the number of evictions.
    """
    evicted = 0
    while len(entries) > max_entries:
        entries.pop(next(iter(entries)))
        evicted += 1
    return evicted
