"""The SaniVM: the only bridge between local data and nymboxes (§3.6, §4.3).

Workflow, exactly as the paper describes it:

1. On boot, Nymix mounts the computer's non-Nymix file systems read-only
   inside the SaniVM (which has **no network interface**).
2. The user browses those files and drops candidates into the destination
   nym's transfer directory.
3. The SaniVM runs the risk analyzer, presents the report, and applies the
   user-chosen scrubbing transforms.
4. The scrubbed file moves to a VirtFS folder shared with the hypervisor,
   which moves it on to a folder shared with the destination AnonVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SanitizeError
from repro.sanitize.fileformats import parse_file
from repro.sanitize.risks import RiskAnalyzer, RiskReport
from repro.sanitize.transforms import ParanoiaLevel, apply_level
from repro.sim.clock import Timeline
from repro.unionfs.layer import Layer, normalize_path
from repro.vmm.virtfs import SharedFolder
from repro.vmm.vm import VirtualMachine, VmRole

#: Seconds of simulated work per transform application (viewer rendering,
#: OpenCV passes); small but nonzero so workflows have realistic timing.
_TRANSFORM_SECONDS = 1.5
_ANALYSIS_SECONDS = 0.8


@dataclass(frozen=True)
class TransferRecord:
    """Audit entry for one sanitized transfer."""

    source_path: str
    nym_id: str
    report: RiskReport
    residual_report: RiskReport  # risks remaining *after* scrubbing
    level: ParanoiaLevel
    elapsed_s: float


class SaniVm:
    """Supervisory wrapper around the SANIVM guest."""

    def __init__(self, timeline: Timeline, vm: VirtualMachine) -> None:
        if vm.spec.role is not VmRole.SANIVM:
            raise SanitizeError(f"VM {vm.vm_id!r} is not a SaniVM")
        if vm.nics:
            raise SanitizeError("a SaniVM must not have network interfaces")
        self.timeline = timeline
        self.vm = vm
        self.analyzer = RiskAnalyzer()
        self._host_mounts: Dict[str, Layer] = {}
        self._nym_outboxes: Dict[str, SharedFolder] = {}
        self.transfer_log: List[TransferRecord] = []

    # -- host file systems (read-only) -----------------------------------------

    def mount_host_filesystem(self, name: str, layer: Layer) -> None:
        """Attach one of the computer's file systems, read-only."""
        if not layer.read_only:
            raise SanitizeError(
                f"host filesystem {name!r} must be mounted read-only in the SaniVM"
            )
        self._host_mounts[name] = layer

    def list_host_files(self, mount: str) -> List[str]:
        try:
            return list(self._host_mounts[mount].paths())
        except KeyError:
            raise SanitizeError(f"no host mount named {mount!r}") from None

    def read_host_file(self, mount: str, path: str) -> bytes:
        try:
            layer = self._host_mounts[mount]
        except KeyError:
            raise SanitizeError(f"no host mount named {mount!r}") from None
        return layer.read(path)

    # -- per-nym transfer directories -----------------------------------------------

    def outbox_for(self, nym_id: str) -> SharedFolder:
        """The VirtFS folder whose contents flow (via the hypervisor) to a nym."""
        if nym_id not in self._nym_outboxes:
            self._nym_outboxes[nym_id] = SharedFolder(f"sanivm-outbox-{nym_id}")
        return self._nym_outboxes[nym_id]

    # -- the scrubbing workflow -----------------------------------------------------

    def analyze(self, mount: str, path: str) -> RiskReport:
        """Step 3a: identify risks and present them to the user."""
        data = self.read_host_file(mount, path)
        self.timeline.sleep(_ANALYSIS_SECONDS)
        return self.analyzer.analyze_bytes(path, data)

    def transfer(
        self,
        mount: str,
        path: str,
        nym_id: str,
        level: ParanoiaLevel = ParanoiaLevel.MEDIUM,
        dst_name: Optional[str] = None,
    ) -> TransferRecord:
        """Full §3.6 workflow: analyze, scrub at ``level``, hand off."""
        start = self.timeline.now
        data = self.read_host_file(mount, path)
        self.timeline.sleep(_ANALYSIS_SECONDS)
        report = self.analyzer.analyze_bytes(path, data)

        parsed = parse_file(data)
        scrubbed = apply_level(parsed, level)
        self.timeline.sleep(_TRANSFORM_SECONDS * max(1, len(report.risks)))
        scrubbed_bytes = scrubbed.to_bytes()
        residual = self.analyzer.analyze_bytes(path, scrubbed_bytes)

        dst = dst_name or normalize_path(path).rsplit("/", 1)[-1]
        self.outbox_for(nym_id).write(dst, scrubbed_bytes)
        record = TransferRecord(
            source_path=path,
            nym_id=nym_id,
            report=report,
            residual_report=residual,
            level=level,
            elapsed_s=self.timeline.now - start,
        )
        self.transfer_log.append(record)
        return record
