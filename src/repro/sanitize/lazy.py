"""User-driven, access-time scrubbing (the §6 UDAC alternative).

"As an alternative to selecting files and folders to scrub, Nymix could
employ concepts introduced by User-Driven Access Control [60].  In this
model, a user could grant access to certain folders and files on the
host to a specific nym.  Nymix could then delay scrubbing of files until
the files have been accessed from within the nym."

:class:`LazyGrant` implements that model on top of the SaniVM: the user
grants a nym access to host paths up front (cheap), and the scrub runs
on first access from inside the nym; results are cached per (path, level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import SanitizeError
from repro.sanitize.fileformats import parse_file
from repro.sanitize.sanivm import SaniVm
from repro.sanitize.transforms import ParanoiaLevel, apply_level
from repro.unionfs.layer import normalize_path


@dataclass
class GrantRecord:
    """One user grant: a nym may pull these host paths, at this level."""

    nym_id: str
    mount: str
    paths: Set[str]
    level: ParanoiaLevel
    accesses: List[str] = field(default_factory=list)


class LazyGrant:
    """Grant-then-scrub-on-access mediation between host files and nyms."""

    def __init__(self, sanivm: SaniVm) -> None:
        self.sanivm = sanivm
        self._grants: Dict[Tuple[str, str], GrantRecord] = {}
        self._scrub_cache: Dict[Tuple[str, str, str], bytes] = {}
        self.scrubs_performed = 0

    # -- granting ------------------------------------------------------------

    def grant(
        self,
        nym_id: str,
        mount: str,
        paths: List[str],
        level: ParanoiaLevel = ParanoiaLevel.MEDIUM,
    ) -> GrantRecord:
        """The user grants ``nym_id`` access to ``paths`` (no scrubbing yet)."""
        known = set(self.sanivm.list_host_files(mount))
        normalized = {normalize_path(p) for p in paths}
        missing = normalized - known
        if missing:
            raise SanitizeError(f"granting unknown paths: {sorted(missing)}")
        record = GrantRecord(nym_id=nym_id, mount=mount, paths=normalized, level=level)
        self._grants[(nym_id, mount)] = record
        return record

    def revoke(self, nym_id: str, mount: str) -> None:
        self._grants.pop((nym_id, mount), None)

    def granted_paths(self, nym_id: str, mount: str) -> Set[str]:
        record = self._grants.get((nym_id, mount))
        return set(record.paths) if record else set()

    # -- access-time scrubbing ------------------------------------------------------

    def access(self, nym_id: str, mount: str, path: str) -> bytes:
        """A nym-side open(): scrub now (or hit the cache) and return bytes.

        Raises :class:`SanitizeError` for paths outside the grant — the
        nym cannot enumerate or touch anything it wasn't given.
        """
        path = normalize_path(path)
        record = self._grants.get((nym_id, mount))
        if record is None or path not in record.paths:
            raise SanitizeError(
                f"nym {nym_id!r} has no grant for {path!r} on {mount!r}"
            )
        record.accesses.append(path)
        cache_key = (mount, path, record.level.value)
        if cache_key not in self._scrub_cache:
            raw = self.sanivm.read_host_file(mount, path)
            scrubbed = apply_level(parse_file(raw), record.level)
            self._scrub_cache[cache_key] = scrubbed.to_bytes()
            self.scrubs_performed += 1
            # Access-time scrubbing still costs the transform time, just later.
            self.sanivm.timeline.sleep(1.5)
        return self._scrub_cache[cache_key]

    def access_count(self, nym_id: str, mount: str) -> int:
        record = self._grants.get((nym_id, mount))
        return len(record.accesses) if record else 0
