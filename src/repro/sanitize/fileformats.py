"""Synthetic image and document containers with embedded identifying data.

Both formats serialize to real bytes: a magic header, a JSON metadata
section, and a body.  Scrubbers operate on the bytes, re-parsing and
re-serializing — so a transform that claims to remove a field has to
actually remove it from the wire form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SanitizeError

_IMAGE_MAGIC = b"SIMG1\n"
_DOC_MAGIC = b"SDOC1\n"


@dataclass(frozen=True)
class FaceRegion:
    """A detectable face: bounding box plus whether it is blurred."""

    x: int
    y: int
    width: int
    height: int
    blurred: bool = False


@dataclass
class SimImage:
    """A JPEG-like photo: pixels, EXIF, faces, an optional watermark."""

    width: int
    height: int
    pixel_seed: int  # stands in for the visible pixel content
    exif: Dict[str, object] = field(default_factory=dict)
    faces: List[FaceRegion] = field(default_factory=list)
    watermark_id: Optional[str] = None  # survives metadata stripping
    noise_level: float = 0.0  # accumulated degradation from transforms

    @classmethod
    def camera_photo(
        cls,
        width: int = 4000,
        height: int = 3000,
        pixel_seed: int = 1,
        gps: Optional[Tuple[float, float]] = (39.906, 116.397),
        camera_serial: str = "NIKON-D3100-2041337",
        faces: int = 0,
        watermark_id: Optional[str] = None,
    ) -> "SimImage":
        """A photo as a smartphone/camera would write it: full of metadata."""
        exif: Dict[str, object] = {
            "Make": "Nikon",
            "Model": "D3100",
            "DateTimeOriginal": "2014:05:01 18:23:11",
            "Software": "CameraFirmware 1.2",
            "SerialNumber": camera_serial,
        }
        if gps is not None:
            exif["GPSLatitude"], exif["GPSLongitude"] = gps
        regions = [
            FaceRegion(x=200 + 400 * i, y=300, width=180, height=220)
            for i in range(faces)
        ]
        return cls(
            width=width,
            height=height,
            pixel_seed=pixel_seed,
            exif=exif,
            faces=regions,
            watermark_id=watermark_id,
        )

    # -- wire form ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        meta = {
            "width": self.width,
            "height": self.height,
            "pixel_seed": self.pixel_seed,
            "exif": self.exif,
            "faces": [
                [f.x, f.y, f.width, f.height, f.blurred] for f in self.faces
            ],
            "watermark_id": self.watermark_id,
            "noise_level": self.noise_level,
        }
        header = json.dumps(meta, sort_keys=True).encode()
        body = b"\xff" * min(256, self.width * self.height // 65536 + 16)
        return _IMAGE_MAGIC + len(header).to_bytes(4, "big") + header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimImage":
        if not data.startswith(_IMAGE_MAGIC):
            raise SanitizeError("not a SimImage")
        offset = len(_IMAGE_MAGIC)
        header_len = int.from_bytes(data[offset : offset + 4], "big")
        meta = json.loads(data[offset + 4 : offset + 4 + header_len])
        return cls(
            width=meta["width"],
            height=meta["height"],
            pixel_seed=meta["pixel_seed"],
            exif=dict(meta["exif"]),
            faces=[FaceRegion(*entry) for entry in meta["faces"]],
            watermark_id=meta["watermark_id"],
            noise_level=meta["noise_level"],
        )

    # -- what survives --------------------------------------------------------------

    @property
    def has_gps(self) -> bool:
        return "GPSLatitude" in self.exif or "GPSLongitude" in self.exif

    @property
    def unblurred_faces(self) -> int:
        return sum(1 for face in self.faces if not face.blurred)

    @property
    def watermark_detectable(self) -> bool:
        """A watermark survives until noise/downscaling degrades it enough."""
        return self.watermark_id is not None and self.noise_level < 0.25


@dataclass
class SimDocument:
    """A PDF/DOC-like document: visible text plus invisible structure."""

    pages: List[str]
    metadata: Dict[str, object] = field(default_factory=dict)
    revision_history: List[str] = field(default_factory=list)
    hidden_text: List[str] = field(default_factory=list)  # white-on-white, cropped

    @classmethod
    def office_document(
        cls,
        pages: Optional[List[str]] = None,
        author: str = "bob.realname",
        organization: str = "State Newspaper",
        revisions: Optional[List[str]] = None,
        hidden_text: Optional[List[str]] = None,
    ) -> "SimDocument":
        """A document as an office suite writes it: author trail included."""
        return cls(
            pages=pages or ["Glorious economic progress continues unabated."],
            metadata={
                "Author": author,
                "Organization": organization,
                "Producer": "OfficeSuite 11.0",
                "CreationDate": "2014-04-30T09:12:00",
            },
            revision_history=revisions
            if revisions is not None
            else ["draft by bob.realname", "edited by editor.chief"],
            hidden_text=list(hidden_text or []),
        )

    def to_bytes(self) -> bytes:
        meta = {
            "pages": self.pages,
            "metadata": self.metadata,
            "revision_history": self.revision_history,
            "hidden_text": self.hidden_text,
        }
        header = json.dumps(meta, sort_keys=True).encode()
        return _DOC_MAGIC + len(header).to_bytes(4, "big") + header

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimDocument":
        if not data.startswith(_DOC_MAGIC):
            raise SanitizeError("not a SimDocument")
        offset = len(_DOC_MAGIC)
        header_len = int.from_bytes(data[offset : offset + 4], "big")
        meta = json.loads(data[offset + 4 : offset + 4 + header_len])
        return cls(
            pages=list(meta["pages"]),
            metadata=dict(meta["metadata"]),
            revision_history=list(meta["revision_history"]),
            hidden_text=list(meta["hidden_text"]),
        )


SimFile = Union[SimImage, SimDocument]


def parse_file(data: bytes) -> SimFile:
    """Dispatch on magic bytes."""
    if data.startswith(_IMAGE_MAGIC):
        return SimImage.from_bytes(data)
    if data.startswith(_DOC_MAGIC):
        return SimDocument.from_bytes(data)
    raise SanitizeError("unrecognized file format")
