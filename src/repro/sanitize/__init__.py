"""Sanitized file transfers: formats, risk analysis, scrubbing, the SaniVM.

The only path data may take from the user's installed OS into a nymbox is
through a dedicated, non-networked SaniVM (§3.6): files are risk-analyzed
(hidden metadata, visible faces, possible watermarks), the user picks a
scrubbing level, transforms are applied, and only then does the file move
— via VirtFS shared folders — into the destination nym's AnonVM.

File formats here are synthetic byte-level containers (:class:`SimImage`,
:class:`SimDocument`) carrying the same classes of identifying data the
paper worries about: EXIF GPS coordinates and camera serials [52], document
author/revision metadata [8], faces, and steganographic watermarks [10].
"""

from repro.sanitize.fileformats import SimDocument, SimImage, parse_file
from repro.sanitize.risks import Risk, RiskAnalyzer, RiskReport
from repro.sanitize.mat import MatScrubber
from repro.sanitize.transforms import (
    PARANOIA_LEVELS,
    ParanoiaLevel,
    blur_faces,
    add_noise,
    rasterize_document,
    strip_metadata,
)
from repro.sanitize.sanivm import SaniVm, TransferRecord

__all__ = [
    "SimDocument",
    "SimImage",
    "parse_file",
    "Risk",
    "RiskAnalyzer",
    "RiskReport",
    "MatScrubber",
    "PARANOIA_LEVELS",
    "ParanoiaLevel",
    "blur_faces",
    "add_noise",
    "rasterize_document",
    "strip_metadata",
    "SaniVm",
    "TransferRecord",
]
