"""A real (minimal) JPEG/EXIF codec: byte-level metadata, byte-level scrubbing.

The synthetic :class:`~repro.sanitize.fileformats.SimImage` carries the
*classes* of risk; this module carries the *actual wire format*: JFIF
segment structure (SOI/APP1/.../SOS/EOI) with an EXIF APP1 segment whose
TIFF IFDs encode camera make/model, timestamps, a body serial number, and
a GPS sub-IFD with rational-degree coordinates — the exact bytes tools
like MAT have to find and remove [52, 71].

The scrubber drops metadata segments while preserving the entropy-coded
image data bit-for-bit, which is what real metadata strippers do.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SanitizeError

SOI = b"\xff\xd8"
EOI = b"\xff\xd9"
APP0 = 0xE0
APP1 = 0xE1
DQT = 0xDB
SOF0 = 0xC0
SOS = 0xDA

EXIF_HEADER = b"Exif\x00\x00"

# TIFF tag ids
TAG_MAKE = 0x010F
TAG_MODEL = 0x0110
TAG_DATETIME = 0x0132
TAG_EXIF_IFD = 0x8769
TAG_GPS_IFD = 0x8825
TAG_BODY_SERIAL = 0xA431
GPS_LAT_REF = 0x0001
GPS_LAT = 0x0002
GPS_LON_REF = 0x0003
GPS_LON = 0x0004

TYPE_ASCII = 2
TYPE_LONG = 4
TYPE_RATIONAL = 5


@dataclass
class ExifData:
    """The identifying fields our EXIF block can carry."""

    make: str = ""
    model: str = ""
    datetime: str = ""
    body_serial: str = ""
    gps: Optional[Tuple[float, float]] = None  # (lat, lon), signed degrees

    def is_empty(self) -> bool:
        return not (self.make or self.model or self.datetime or self.body_serial or self.gps)


@dataclass
class JpegFile:
    """A parsed JPEG: EXIF (if any) plus the opaque image segments."""

    exif: Optional[ExifData]
    image_segments: List[Tuple[int, bytes]]  # (marker, payload) excluding APP1
    scan_data: bytes


# ---------------------------------------------------------------------------
# TIFF IFD writer / reader
# ---------------------------------------------------------------------------


class _TiffWriter:
    """Builds a little-endian TIFF structure with IFD0 + Exif + GPS IFDs."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    @staticmethod
    def _deg_to_rationals(value: float) -> List[Tuple[int, int]]:
        value = abs(value)
        degrees = int(value)
        minutes_f = (value - degrees) * 60
        minutes = int(minutes_f)
        seconds = round((minutes_f - minutes) * 60 * 10_000)
        return [(degrees, 1), (minutes, 1), (seconds, 10_000)]

    @staticmethod
    def _entry_value(entry_type: int, value) -> bytes:
        if entry_type == TYPE_ASCII:
            return value.encode() + b"\x00"
        if entry_type == TYPE_LONG:
            return struct.pack("<L", value)
        if entry_type == TYPE_RATIONAL:
            return b"".join(struct.pack("<LL", num, den) for num, den in value)
        raise SanitizeError(f"unsupported TIFF type {entry_type}")

    @staticmethod
    def _count_for(entry_type: int, raw: bytes, value) -> int:
        if entry_type == TYPE_ASCII:
            return len(raw)
        if entry_type == TYPE_LONG:
            return 1
        if entry_type == TYPE_RATIONAL:
            return len(value)
        raise SanitizeError(f"unsupported TIFF type {entry_type}")

    def _build_ifd(
        self, entries: List[Tuple[int, int, object]], ifd_offset: int
    ) -> bytes:
        """Serialize one IFD at ``ifd_offset`` (offsets are TIFF-absolute)."""
        body = struct.pack("<H", len(entries))
        data_area = b""
        data_offset = ifd_offset + 2 + 12 * len(entries) + 4
        for tag, entry_type, value in entries:
            raw = self._entry_value(entry_type, value)
            count = self._count_for(entry_type, raw, value)
            if len(raw) <= 4:
                inline = raw + b"\x00" * (4 - len(raw))
                body += struct.pack("<HHL", tag, entry_type, count) + inline
            else:
                body += struct.pack("<HHLL", tag, entry_type, count, data_offset + len(data_area))
                data_area += raw
        body += struct.pack("<L", 0)  # no next IFD
        return body + data_area

    def build(self, exif: ExifData) -> bytes:
        ifd0_entries: List[Tuple[int, int, object]] = []
        if exif.make:
            ifd0_entries.append((TAG_MAKE, TYPE_ASCII, exif.make))
        if exif.model:
            ifd0_entries.append((TAG_MODEL, TYPE_ASCII, exif.model))
        if exif.datetime:
            ifd0_entries.append((TAG_DATETIME, TYPE_ASCII, exif.datetime))

        exif_ifd_entries: List[Tuple[int, int, object]] = []
        if exif.body_serial:
            exif_ifd_entries.append((TAG_BODY_SERIAL, TYPE_ASCII, exif.body_serial))

        gps_entries: List[Tuple[int, int, object]] = []
        if exif.gps is not None:
            lat, lon = exif.gps
            gps_entries = [
                (GPS_LAT_REF, TYPE_ASCII, "N" if lat >= 0 else "S"),
                (GPS_LAT, TYPE_RATIONAL, self._deg_to_rationals(lat)),
                (GPS_LON_REF, TYPE_ASCII, "E" if lon >= 0 else "W"),
                (GPS_LON, TYPE_RATIONAL, self._deg_to_rationals(lon)),
            ]

        # Pointers to the sub-IFDs live in IFD0; lay out IFD0 first, then
        # the Exif IFD, then the GPS IFD.  Two-pass: sizes are stable.
        def ifd_size(entries):
            data = sum(
                max(0, len(self._entry_value(t, v)) - 4) if len(self._entry_value(t, v)) > 4 else 0
                for _, t, v in entries
            )
            # inline-vs-offset decision repeated below; compute exactly:
            size = 2 + 12 * len(entries) + 4
            for _, entry_type, value in entries:
                raw = self._entry_value(entry_type, value)
                if len(raw) > 4:
                    size += len(raw)
            return size

        pointer_entries = list(ifd0_entries)
        if exif_ifd_entries:
            pointer_entries.append((TAG_EXIF_IFD, TYPE_LONG, 0))
        if gps_entries:
            pointer_entries.append((TAG_GPS_IFD, TYPE_LONG, 0))

        ifd0_offset = 8
        exif_ifd_offset = ifd0_offset + ifd_size(pointer_entries)
        gps_ifd_offset = exif_ifd_offset + (
            ifd_size(exif_ifd_entries) if exif_ifd_entries else 0
        )

        final_entries = list(ifd0_entries)
        if exif_ifd_entries:
            final_entries.append((TAG_EXIF_IFD, TYPE_LONG, exif_ifd_offset))
        if gps_entries:
            final_entries.append((TAG_GPS_IFD, TYPE_LONG, gps_ifd_offset))
        final_entries.sort(key=lambda e: e[0])  # TIFF requires ascending tags

        out = b"II" + struct.pack("<HL", 42, ifd0_offset)
        out += self._build_ifd(final_entries, ifd0_offset)
        if exif_ifd_entries:
            out += self._build_ifd(exif_ifd_entries, exif_ifd_offset)
        if gps_entries:
            out += self._build_ifd(gps_entries, gps_ifd_offset)
        return out


class _TiffReader:
    def __init__(self, data: bytes) -> None:
        if len(data) < 8:
            raise SanitizeError("truncated TIFF header")
        order = data[:2]
        if order == b"II":
            self._fmt = "<"
        elif order == b"MM":
            self._fmt = ">"
        else:
            raise SanitizeError(f"bad TIFF byte order {order!r}")
        (magic,) = struct.unpack(self._fmt + "H", data[2:4])
        if magic != 42:
            raise SanitizeError(f"bad TIFF magic {magic}")
        self.data = data

    def _read_ifd(self, offset: int) -> Dict[int, Tuple[int, bytes]]:
        data = self.data
        if offset + 2 > len(data):
            raise SanitizeError("IFD offset out of range")
        (count,) = struct.unpack(self._fmt + "H", data[offset : offset + 2])
        entries: Dict[int, Tuple[int, bytes]] = {}
        type_sizes = {1: 1, TYPE_ASCII: 1, 3: 2, TYPE_LONG: 4, TYPE_RATIONAL: 8}
        for index in range(count):
            base = offset + 2 + 12 * index
            tag, entry_type, value_count = struct.unpack(
                self._fmt + "HHL", data[base : base + 8]
            )
            size = type_sizes.get(entry_type, 1) * value_count
            if size <= 4:
                raw = data[base + 8 : base + 8 + size]
            else:
                (value_offset,) = struct.unpack(self._fmt + "L", data[base + 8 : base + 12])
                raw = data[value_offset : value_offset + size]
                if len(raw) != size:
                    raise SanitizeError(f"TIFF value for tag {tag:#06x} out of range")
            entries[tag] = (entry_type, raw)
        return entries

    @staticmethod
    def _ascii(raw: bytes) -> str:
        return raw.rstrip(b"\x00").decode(errors="replace")

    def _rationals(self, raw: bytes) -> List[Tuple[int, int]]:
        return [
            struct.unpack(self._fmt + "LL", raw[i : i + 8])
            for i in range(0, len(raw), 8)
        ]

    def _rationals_to_degrees(self, raw: bytes) -> float:
        parts = self._rationals(raw)
        total = 0.0
        for position, (num, den) in enumerate(parts):
            if den == 0:
                raise SanitizeError("zero denominator in GPS rational")
            total += (num / den) / (60 ** position)
        return total

    def parse(self) -> ExifData:
        (ifd0_offset,) = struct.unpack(self._fmt + "L", self.data[4:8])
        ifd0 = self._read_ifd(ifd0_offset)
        exif = ExifData()
        if TAG_MAKE in ifd0:
            exif.make = self._ascii(ifd0[TAG_MAKE][1])
        if TAG_MODEL in ifd0:
            exif.model = self._ascii(ifd0[TAG_MODEL][1])
        if TAG_DATETIME in ifd0:
            exif.datetime = self._ascii(ifd0[TAG_DATETIME][1])
        if TAG_EXIF_IFD in ifd0:
            (pointer,) = struct.unpack(self._fmt + "L", ifd0[TAG_EXIF_IFD][1])
            sub = self._read_ifd(pointer)
            if TAG_BODY_SERIAL in sub:
                exif.body_serial = self._ascii(sub[TAG_BODY_SERIAL][1])
        if TAG_GPS_IFD in ifd0:
            (pointer,) = struct.unpack(self._fmt + "L", ifd0[TAG_GPS_IFD][1])
            gps = self._read_ifd(pointer)
            if GPS_LAT in gps and GPS_LON in gps:
                lat = self._rationals_to_degrees(gps[GPS_LAT][1])
                lon = self._rationals_to_degrees(gps[GPS_LON][1])
                if GPS_LAT_REF in gps and self._ascii(gps[GPS_LAT_REF][1]) == "S":
                    lat = -lat
                if GPS_LON_REF in gps and self._ascii(gps[GPS_LON_REF][1]) == "W":
                    lon = -lon
                exif.gps = (lat, lon)
        return exif


# ---------------------------------------------------------------------------
# JPEG segment layer
# ---------------------------------------------------------------------------


def encode_jpeg(
    exif: Optional[ExifData],
    scan_data: bytes = b"\x12\x34" * 64,
    extra_segments: Optional[List[Tuple[int, bytes]]] = None,
) -> bytes:
    """Assemble a JPEG: SOI, APP0, optional EXIF APP1, tables, scan, EOI."""
    out = bytearray(SOI)

    def segment(marker: int, payload: bytes) -> None:
        if len(payload) + 2 > 0xFFFF:
            raise SanitizeError("JPEG segment too large")
        out.extend(bytes([0xFF, marker]))
        out.extend(struct.pack(">H", len(payload) + 2))
        out.extend(payload)

    segment(APP0, b"JFIF\x00\x01\x02\x00\x00\x01\x00\x01\x00\x00")
    if exif is not None and not exif.is_empty():
        segment(APP1, EXIF_HEADER + _TiffWriter().build(exif))
    for marker, payload in extra_segments or []:
        segment(marker, payload)
    segment(DQT, bytes(65))
    segment(SOF0, b"\x08\x00\x10\x00\x10\x01\x01\x11\x00")
    segment(SOS, b"\x01\x01\x00\x00\x3f\x00")
    # entropy-coded data: 0xFF bytes must be stuffed to avoid fake markers
    out.extend(scan_data.replace(b"\xff", b"\xff\x00"))
    out.extend(EOI)
    return bytes(out)


def parse_jpeg(data: bytes) -> JpegFile:
    """Walk the segment stream, pulling out EXIF and the scan data."""
    if not data.startswith(SOI):
        raise SanitizeError("not a JPEG (missing SOI)")
    offset = 2
    exif: Optional[ExifData] = None
    segments: List[Tuple[int, bytes]] = []
    while offset < len(data):
        if data[offset] != 0xFF:
            raise SanitizeError(f"expected marker at offset {offset}")
        marker = data[offset + 1]
        if marker == 0xD9:  # EOI without scan
            return JpegFile(exif=exif, image_segments=segments, scan_data=b"")
        (length,) = struct.unpack(">H", data[offset + 2 : offset + 4])
        payload = data[offset + 4 : offset + 2 + length]
        if len(payload) != length - 2:
            raise SanitizeError("truncated JPEG segment")
        if marker == APP1 and payload.startswith(EXIF_HEADER):
            exif = _TiffReader(payload[len(EXIF_HEADER) :]).parse()
        elif marker == SOS:
            # Everything from here to EOI is entropy-coded data.
            body_start = offset + 2 + length
            end = data.rfind(EOI)
            if end < body_start:
                raise SanitizeError("missing EOI after scan data")
            segments.append((marker, payload))
            stuffed = data[body_start:end]
            return JpegFile(
                exif=exif,
                image_segments=segments,
                scan_data=stuffed.replace(b"\xff\x00", b"\xff"),
            )
        else:
            segments.append((marker, payload))
        offset += 2 + length
    raise SanitizeError("JPEG ended without EOI")


def scrub_jpeg(data: bytes) -> bytes:
    """Remove all EXIF metadata; image bytes survive bit-for-bit."""
    parsed = parse_jpeg(data)
    out = bytearray(SOI)
    for marker, payload in parsed.image_segments:
        if marker == SOS:
            continue
        out.extend(bytes([0xFF, marker]))
        out.extend(struct.pack(">H", len(payload) + 2))
        out.extend(payload)
    sos_payloads = [p for m, p in parsed.image_segments if m == SOS]
    sos_payload = sos_payloads[0] if sos_payloads else b"\x01\x01\x00\x00\x3f\x00"
    out.extend(bytes([0xFF, SOS]))
    out.extend(struct.pack(">H", len(sos_payload) + 2))
    out.extend(sos_payload)
    out.extend(parsed.scan_data.replace(b"\xff", b"\xff\x00"))
    out.extend(EOI)
    return bytes(out)
