"""Automated risk analysis: what could identify the user in this file?"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import SanitizeError
from repro.sanitize.fileformats import SimDocument, SimImage, parse_file
from repro.sanitize.jpeg import SOI as JPEG_SOI, ExifData, parse_jpeg


@dataclass(frozen=True)
class Risk:
    """One identified hazard in a file."""

    kind: str  # "exif-gps", "exif-serial", "face", "watermark", ...
    severity: str  # "high", "medium", "low"
    description: str


@dataclass
class RiskReport:
    """Everything the analyzer found, ready to show the user (§3.6)."""

    filename: str
    risks: List[Risk] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.risks

    @property
    def high_risks(self) -> List[Risk]:
        return [risk for risk in self.risks if risk.severity == "high"]

    def kinds(self) -> List[str]:
        return sorted({risk.kind for risk in self.risks})

    def summary(self) -> str:
        if self.clean:
            return f"{self.filename}: no identified risks"
        return f"{self.filename}: {len(self.risks)} risk(s): " + ", ".join(self.kinds())


class RiskAnalyzer:
    """Inspects files for personally identifying material before transfer."""

    def analyze_bytes(self, filename: str, data: bytes) -> RiskReport:
        if data.startswith(JPEG_SOI):
            return self._analyze_jpeg(filename, parse_jpeg(data).exif)
        return self.analyze(filename, parse_file(data))

    def _analyze_jpeg(self, filename: str, exif) -> RiskReport:
        """Byte-level JPEG: risks live in its (optional) EXIF block."""
        report = RiskReport(filename=filename)
        if exif is None:
            return report
        assert isinstance(exif, ExifData)
        if exif.gps is not None:
            report.risks.append(
                Risk(
                    kind="exif-gps",
                    severity="high",
                    description=f"GPS coordinates in EXIF: {exif.gps[0]:.4f}, {exif.gps[1]:.4f}",
                )
            )
        if exif.body_serial:
            report.risks.append(
                Risk(
                    kind="exif-serial",
                    severity="high",
                    description=f"camera serial number: {exif.body_serial}",
                )
            )
        identifying = [f for f in ("make", "model", "datetime") if getattr(exif, f)]
        if identifying:
            report.risks.append(
                Risk(
                    kind="exif-metadata",
                    severity="medium",
                    description=f"identifying EXIF fields: {', '.join(identifying)}",
                )
            )
        return report

    def analyze(self, filename: str, parsed) -> RiskReport:
        if isinstance(parsed, SimImage):
            return self._analyze_image(filename, parsed)
        if isinstance(parsed, SimDocument):
            return self._analyze_document(filename, parsed)
        raise SanitizeError(f"cannot analyze object of type {type(parsed).__name__}")

    def _analyze_image(self, filename: str, image: SimImage) -> RiskReport:
        report = RiskReport(filename=filename)
        if image.has_gps:
            report.risks.append(
                Risk(
                    kind="exif-gps",
                    severity="high",
                    description=(
                        f"GPS coordinates in EXIF: "
                        f"{image.exif.get('GPSLatitude')}, {image.exif.get('GPSLongitude')}"
                    ),
                )
            )
        if "SerialNumber" in image.exif:
            report.risks.append(
                Risk(
                    kind="exif-serial",
                    severity="high",
                    description=f"camera serial number: {image.exif['SerialNumber']}",
                )
            )
        identifying_fields = {"Make", "Model", "Software", "DateTimeOriginal"}
        present = identifying_fields.intersection(image.exif)
        if present:
            report.risks.append(
                Risk(
                    kind="exif-metadata",
                    severity="medium",
                    description=f"identifying EXIF fields: {', '.join(sorted(present))}",
                )
            )
        if image.unblurred_faces:
            report.risks.append(
                Risk(
                    kind="face",
                    severity="high",
                    description=f"{image.unblurred_faces} detectable face(s)",
                )
            )
        if image.watermark_detectable:
            report.risks.append(
                Risk(
                    kind="watermark",
                    severity="medium",
                    description="image may carry an embedded watermark",
                )
            )
        return report

    def _analyze_document(self, filename: str, document: SimDocument) -> RiskReport:
        report = RiskReport(filename=filename)
        if "Author" in document.metadata or "Organization" in document.metadata:
            report.risks.append(
                Risk(
                    kind="doc-author",
                    severity="high",
                    description=(
                        f"author metadata: {document.metadata.get('Author')!r} "
                        f"/ {document.metadata.get('Organization')!r}"
                    ),
                )
            )
        if document.revision_history:
            report.risks.append(
                Risk(
                    kind="doc-revisions",
                    severity="medium",
                    description=f"{len(document.revision_history)} revision-history entries",
                )
            )
        if document.hidden_text:
            report.risks.append(
                Risk(
                    kind="doc-hidden-text",
                    severity="high",
                    description=f"{len(document.hidden_text)} hidden text fragment(s)",
                )
            )
        tool_fields = {"Producer", "CreationDate"}.intersection(document.metadata)
        if tool_fields:
            report.risks.append(
                Risk(
                    kind="doc-tool-metadata",
                    severity="low",
                    description=f"producing-tool fields: {', '.join(sorted(tool_fields))}",
                )
            )
        return report
