"""Scrubbing transforms beyond metadata stripping (§3.6 "paranoia levels").

The paper's menu for images: (a) strip EXIF, (b) blur detectable faces
with OpenCV, (c) reduce resolution and add noise to disrupt unknown
watermarks.  For documents: strip metadata, or reconstruct the document
as a series of bitmaps — destroying anything concealed in its text or
vector structure (§4.3's screenshot-reassembly mode).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro.errors import SanitizeError
from repro.sanitize.fileformats import FaceRegion, SimDocument, SimImage
from repro.sanitize.mat import MatScrubber

SimFile = Union[SimImage, SimDocument]
Transform = Callable[[SimFile], SimFile]

_mat = MatScrubber()


def strip_metadata(parsed: SimFile) -> SimFile:
    """Transform (a): MAT metadata removal."""
    if isinstance(parsed, SimImage):
        return _mat.scrub_image(parsed)
    if isinstance(parsed, SimDocument):
        return _mat.scrub_document(parsed)
    raise SanitizeError(f"cannot strip metadata from {type(parsed).__name__}")


def blur_faces(parsed: SimFile) -> SimFile:
    """Transform (b): blur every detectable face (the OpenCV path)."""
    if not isinstance(parsed, SimImage):
        return parsed
    return SimImage(
        width=parsed.width,
        height=parsed.height,
        pixel_seed=parsed.pixel_seed,
        exif=dict(parsed.exif),
        faces=[
            FaceRegion(f.x, f.y, f.width, f.height, blurred=True)
            for f in parsed.faces
        ],
        watermark_id=parsed.watermark_id,
        noise_level=parsed.noise_level,
    )


def add_noise(parsed: SimFile, amount: float = 0.15, downscale: float = 0.5) -> SimFile:
    """Transform (c): downscale and add noise to disrupt watermarks.

    Each application degrades the image; once accumulated noise crosses
    the detectability threshold, embedded watermarks no longer read out.
    """
    if not isinstance(parsed, SimImage):
        return parsed
    if not 0 < downscale <= 1:
        raise SanitizeError(f"downscale must be in (0, 1], got {downscale}")
    return SimImage(
        width=int(parsed.width * downscale),
        height=int(parsed.height * downscale),
        pixel_seed=parsed.pixel_seed,
        exif=dict(parsed.exif),
        faces=list(parsed.faces),
        watermark_id=parsed.watermark_id,
        noise_level=parsed.noise_level + amount,
    )


def rasterize_document(parsed: SimFile) -> SimFile:
    """Document -> bitmap pages: only what a viewer *displays* survives.

    Reconstructing the document as screenshots drops metadata, revision
    history, and hidden text in one stroke (§4.3's second scrubbing mode);
    a page of visible text becomes a page image of the same visible text.
    """
    if not isinstance(parsed, SimDocument):
        return parsed
    return SimDocument(
        pages=[f"[bitmap render] {page}" for page in parsed.pages],
        metadata={},
        revision_history=[],
        hidden_text=[],
    )


class ParanoiaLevel(enum.Enum):
    """User-selectable scrubbing aggressiveness."""

    LOW = "low"  # metadata only
    MEDIUM = "medium"  # + face blurring
    HIGH = "high"  # + watermark disruption, document rasterization


def _high_image_pipeline(parsed: SimFile) -> SimFile:
    result = strip_metadata(parsed)
    result = blur_faces(result)
    # Two noise passes push accumulated noise past the watermark threshold.
    result = add_noise(result, amount=0.15)
    result = add_noise(result, amount=0.15)
    return result


PARANOIA_LEVELS: Dict[ParanoiaLevel, List[Transform]] = {
    ParanoiaLevel.LOW: [strip_metadata],
    ParanoiaLevel.MEDIUM: [strip_metadata, blur_faces],
    ParanoiaLevel.HIGH: [_high_image_pipeline, rasterize_document],
}


def apply_level(parsed: SimFile, level: ParanoiaLevel) -> SimFile:
    """Run every transform of a paranoia level in order."""
    result = parsed
    for transform in PARANOIA_LEVELS[level]:
        result = transform(result)
    return result


@dataclass(frozen=True)
class TransformChoice:
    """A user's explicit selection (alternative to a preset level)."""

    transforms: Tuple[Transform, ...]

    def apply(self, parsed: SimFile) -> SimFile:
        result = parsed
        for transform in self.transforms:
            result = transform(result)
        return result
