"""MAT-style metadata stripping (the Metadata Anonymisation Toolkit [71]).

Field-aware scrubbing: knows which metadata fields each format carries and
removes them while preserving visible content.  Its documented limitation
(§4.3) — it cannot remove *visible* or *structural* identifying content —
is preserved: faces, hidden text, and watermarks survive MAT and need the
transforms in :mod:`repro.sanitize.transforms`.
"""

from __future__ import annotations

from repro.errors import SanitizeError
from repro.sanitize.fileformats import SimDocument, SimImage, parse_file
from repro.sanitize.jpeg import SOI, scrub_jpeg


class MatScrubber:
    """Strips known metadata fields; returns freshly serialized bytes.

    Handles both the synthetic containers and real byte-level JPEGs
    (see :mod:`repro.sanitize.jpeg`), like MAT's per-format backends.
    """

    def scrub_bytes(self, data: bytes) -> bytes:
        if data.startswith(SOI):
            return scrub_jpeg(data)
        parsed = parse_file(data)
        if isinstance(parsed, SimImage):
            return self.scrub_image(parsed).to_bytes()
        if isinstance(parsed, SimDocument):
            return self.scrub_document(parsed).to_bytes()
        raise SanitizeError(f"MAT cannot scrub {type(parsed).__name__}")

    def scrub_image(self, image: SimImage) -> SimImage:
        """Remove the entire EXIF block; pixels untouched."""
        return SimImage(
            width=image.width,
            height=image.height,
            pixel_seed=image.pixel_seed,
            exif={},
            faces=list(image.faces),  # visible content: MAT cannot help
            watermark_id=image.watermark_id,  # steganographic: ditto
            noise_level=image.noise_level,
        )

    def scrub_document(self, document: SimDocument) -> SimDocument:
        """Remove metadata and revision history; text structure untouched."""
        return SimDocument(
            pages=list(document.pages),
            metadata={},
            revision_history=[],
            hidden_text=list(document.hidden_text),  # structural: survives MAT
        )
